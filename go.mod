module github.com/maya-defense/maya

go 1.22
