package fleet_test

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

func gsFleet(t *testing.T, cfg sim.Config, tenants, ticks int, seed uint64, kind defense.Kind) ([]fleet.TenantResult, *core.Design) {
	t.Helper()
	art, err := difftest.DesignFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := core.DefaultGuard(cfg)
	e := fleet.New(fleet.Spec{
		Config:      cfg,
		Kind:        kind,
		Art:         art,
		PeriodTicks: 20,
		Tenants:     tenants,
		BaseSeed:    seed,
		NewWorkload: func() workload.Workload { return workload.NewApp("blackscholes").Scale(0.02) },
		Guard:       &g,
		MaxTicks:    ticks,
	})
	return e.Run(), art
}

// TestFleetTDPCapNeverExceeded is the batched path's power-safety property:
// across every tenant of a fleet, every mask target the engine commits to —
// including the open-loop dither component — stays within (0, TDP], and for
// the dither-free Constant mask, exactly inside the design band (whose
// ceiling is capped at 0.8*TDP per the paper's §V-B constraint). The
// actuator outputs recorded at each decision must likewise sit inside the
// knobs' physical ranges: a batched clamp/quantize that drifted out of
// range would burn more than the machine's rating or command impossible
// frequencies.
func TestFleetTDPCapNeverExceeded(t *testing.T) {
	cfg := sim.Sys1()
	knobs := cfg.Knobs()
	for _, kind := range []defense.Kind{defense.MayaGS, defense.MayaConstant} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			results, art := gsFleet(t, cfg, 16, 1200, 0x7d9, kind)
			for tn, res := range results {
				if len(res.Targets) == 0 {
					t.Fatalf("tenant %d: no targets recorded", tn)
				}
				for i, tgt := range res.Targets {
					if !(tgt > 0 && tgt <= cfg.TDP) {
						t.Fatalf("tenant %d: target[%d] = %g W breaches (0, TDP=%g]", tn, i, tgt, cfg.TDP)
					}
					if kind == defense.MayaConstant && !art.Band.Contains(tgt) {
						t.Fatalf("tenant %d: constant target[%d] = %g W outside band [%g, %g]",
							tn, i, tgt, art.Band.Min, art.Band.Max)
					}
				}
				for i, in := range res.InputTrace {
					switch {
					case in.FreqGHz < knobs.DVFS.Min || in.FreqGHz > knobs.DVFS.Max:
						t.Fatalf("tenant %d: input[%d] freq %g outside [%g, %g]",
							tn, i, in.FreqGHz, knobs.DVFS.Min, knobs.DVFS.Max)
					case in.Idle < knobs.Idle.Min || in.Idle > knobs.Idle.Max:
						t.Fatalf("tenant %d: input[%d] idle %g outside [%g, %g]",
							tn, i, in.Idle, knobs.Idle.Min, knobs.Idle.Max)
					case in.Balloon < knobs.Balloon.Min || in.Balloon > knobs.Balloon.Max:
						t.Fatalf("tenant %d: input[%d] balloon %g outside [%g, %g]",
							tn, i, in.Balloon, knobs.Balloon.Min, knobs.Balloon.Max)
					}
				}
			}
		})
	}
}

// TestFleetHoldSemanticsSizeInvariant pins the per-tenant stream isolation
// property: a tenant's mask sequence — hold counters (Nhold redraw
// boundaries), Nyquist-capped sinusoid parameters, everything the Targets
// series encodes — is a pure function of (BaseSeed, tenant index). Growing
// the fleet from 1 to 4 to 16 tenants, which changes every neighbor a
// tenant shares slabs with, must not move a single bit of any common
// tenant's targets, actuator commands, or defense trace.
func TestFleetHoldSemanticsSizeInvariant(t *testing.T) {
	cfg := sim.Sys1()
	sizes := []int{1, 4, 16}
	runs := make([][]fleet.TenantResult, len(sizes))
	for i, n := range sizes {
		runs[i], _ = gsFleet(t, cfg, n, 800, 0x51e, defense.MayaGS)
	}
	ref := runs[len(runs)-1]
	for i, n := range sizes[:len(sizes)-1] {
		for tn := 0; tn < n; tn++ {
			assertSameFloats(t, "targets", n, tn, runs[i][tn].Targets, ref[tn].Targets)
			assertSameFloats(t, "defense samples", n, tn, runs[i][tn].DefenseSamples, ref[tn].DefenseSamples)
			a, b := runs[i][tn].InputTrace, ref[tn].InputTrace
			if len(a) != len(b) {
				t.Fatalf("size %d tenant %d: input trace length %d vs %d", n, tn, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] { // bit-for-bit equality is the property under test
					t.Fatalf("size %d tenant %d: input[%d] %+v vs %+v", n, tn, j, a[j], b[j])
				}
			}
		}
	}
}

func assertSameFloats(t *testing.T, what string, size, tenant int, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("size %d tenant %d: %s length %d vs %d", size, tenant, what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("size %d tenant %d: %s[%d] = %x vs %x", size, tenant, what, i,
				math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}
