package fleet_test

import (
	"testing"

	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

const benchTenants = 1000

func benchDesign(b *testing.B) *core.Design {
	b.Helper()
	art, err := difftest.DesignFor(sim.Sys1())
	if err != nil {
		b.Fatal(err)
	}
	return art
}

func benchDeltas(n int) []float64 {
	r := rng.NewNamed(1, "fleet/bench")
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Uniform(-3, 3)
	}
	return out
}

// BenchmarkFleetControllerStepBatched measures one batched control decision
// for 1000 tenants through the SoA bank — the kernel the fleet engine's
// speedup claim rests on. Compare against BenchmarkFleetControllerStepScalar.
func BenchmarkFleetControllerStepBatched(b *testing.B) {
	art := benchDesign(b)
	bank := control.NewBank(art.Controller, benchTenants)
	deltas := benchDeltas(benchTenants)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.StepAll(deltas, nil)
	}
}

// BenchmarkFleetControllerStepScalar is the reference: the same 1000
// decisions through 1000 independent scalar controllers.
func BenchmarkFleetControllerStepScalar(b *testing.B) {
	art := benchDesign(b)
	ctls := make([]*control.Controller, benchTenants)
	for t := range ctls {
		ctls[t] = art.Controller.Clone()
	}
	deltas := benchDeltas(benchTenants)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t, c := range ctls {
			c.Step(deltas[t])
		}
	}
}

func benchSpec(art *core.Design, ticks int) fleet.Spec {
	cfg := sim.Sys1()
	g := core.DefaultGuard(cfg)
	return fleet.Spec{
		Config:      cfg,
		Kind:        defense.MayaGS,
		Art:         art,
		PeriodTicks: 20,
		Tenants:     benchTenants,
		BaseSeed:    7,
		NewWorkload: func() workload.Workload { return workload.NewApp("blackscholes").Scale(0.02) },
		Guard:       &g,
		MaxTicks:    ticks,
	}
}

// BenchmarkFleetTickBatched measures a full control period — 20 machine
// ticks, sensor reads, one batched decision, actuation — for 1000 tenants
// through the fleet engine. Construction is excluded; each iteration runs
// a fresh 10-period fleet so the cost reported per op is 10 periods of
// steady-state work.
func BenchmarkFleetTickBatched(b *testing.B) {
	art := benchDesign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := fleet.New(benchSpec(art, 200))
		b.StartTimer()
		eng.Run()
	}
}

// BenchmarkFleetTickScalar is the reference for BenchmarkFleetTickBatched:
// the same 1000 tenants over the same 10 control periods, each run
// independently through the scalar sim.Run/core.Engine path.
func BenchmarkFleetTickScalar(b *testing.B) {
	art := benchDesign(b)
	cfg := sim.Sys1()
	d := defense.NewDesign(defense.MayaGS, cfg, art, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		machines := make([]*sim.Machine, benchTenants)
		works := make([]workload.Workload, benchTenants)
		pols := make([]sim.Policy, benchTenants)
		for t := 0; t < benchTenants; t++ {
			ms, ws, ps, _ := fleet.TenantSeeds(7, t)
			machines[t] = sim.NewMachine(cfg, ms)
			works[t] = workload.NewApp("blackscholes").Scale(0.02)
			works[t].Reset(ws)
			pol := d.Policy(ps)
			g := core.DefaultGuard(cfg)
			pol.(*core.Engine).SetGuard(&g)
			pols[t] = pol
		}
		b.StartTimer()
		for t := 0; t < benchTenants; t++ {
			sim.Run(machines[t], works[t], pols[t], sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 200})
		}
	}
}
