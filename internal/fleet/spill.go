package fleet

import (
	"sync"

	"github.com/maya-defense/maya/internal/telemetry"
)

// Sample is one tenant's per-period reading as spilled to a concurrent
// observer.
type Sample struct {
	Step   int
	Tenant int
	PowerW float64
}

// Spill is the fleet's only concurrent seam: a mutex-guarded buffer the
// engine pushes one Sample per tenant into at every control period, for a
// reader on another goroutine to Drain while the fleet runs. Everything
// else in the engine — the state slabs, the flight recorders, the result
// accumulators — is single-goroutine by design; the race test drives a
// fleet and a draining reader together under -race to prove the slabs are
// never shared mutably across that boundary.
//
// The zero value is unbounded: correct when a reader is guaranteed to
// drain (tests, mayactl). A long-running daemon with *optional*
// subscribers must call SetLimit, which turns the buffer into a fixed
// ring with drop-oldest semantics — a reader that never shows up costs a
// bounded amount of memory and a drop counter, not an OOM. While the
// buffer stays within the limit, semantics are identical to the unbounded
// buffer (the race test's exact drained-sample accounting pins that).
type Spill struct {
	mu  sync.Mutex
	buf []Sample

	// Bounded mode (SetLimit): buf is a ring of fixed capacity `limit`
	// holding `n` samples starting at `head`.
	limit   int
	head, n int

	dropped uint64
	dropC   *telemetry.Counter
}

// NewSpill returns a bounded spill retaining at most limit samples
// (drop-oldest beyond that); limit <= 0 means unbounded.
func NewSpill(limit int) *Spill {
	s := &Spill{}
	s.SetLimit(limit)
	return s
}

// SetLimit bounds the buffer to at most limit samples, dropping the
// oldest on overflow; limit <= 0 removes the bound. Call before the run
// starts (it discards any buffered samples).
func (s *Spill) SetLimit(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit <= 0 {
		s.limit, s.buf, s.head, s.n = 0, nil, 0, 0
		return
	}
	s.limit = limit
	s.buf = make([]Sample, limit)
	s.head, s.n = 0, 0
}

// SetDropCounter mirrors drops into a telemetry counter (conventionally
// the registry's maya_fleet_spill_dropped_total); nil detaches.
func (s *Spill) SetDropCounter(c *telemetry.Counter) {
	s.mu.Lock()
	s.dropC = c
	s.mu.Unlock()
}

// push appends samples from the engine's goroutine.
func (s *Spill) push(smp Sample) {
	s.mu.Lock()
	if s.limit <= 0 {
		s.buf = append(s.buf, smp)
		s.mu.Unlock()
		return
	}
	if s.n == s.limit {
		// Full: overwrite the oldest sample.
		s.buf[s.head] = smp
		s.head = (s.head + 1) % s.limit
		s.dropped++
		c := s.dropC
		s.mu.Unlock()
		if c != nil {
			c.Inc()
		}
		return
	}
	s.buf[(s.head+s.n)%s.limit] = smp
	s.n++
	s.mu.Unlock()
}

// Drain removes and returns all buffered samples, oldest first.
func (s *Spill) Drain() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit <= 0 {
		out := s.buf
		s.buf = nil
		return out
	}
	if s.n == 0 {
		return nil
	}
	out := make([]Sample, s.n)
	for i := range out {
		out[i] = s.buf[(s.head+i)%s.limit]
	}
	s.head, s.n = 0, 0
	return out
}

// Len reports the number of buffered samples.
func (s *Spill) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit <= 0 {
		return len(s.buf)
	}
	return s.n
}

// Dropped reports how many samples drop-oldest has discarded in total.
func (s *Spill) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
