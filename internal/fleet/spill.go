package fleet

import "sync"

// Sample is one tenant's per-period reading as spilled to a concurrent
// observer.
type Sample struct {
	Step   int
	Tenant int
	PowerW float64
}

// Spill is the fleet's only concurrent seam: a mutex-guarded buffer the
// engine pushes one Sample per tenant into at every control period, for a
// reader on another goroutine to Drain while the fleet runs. Everything
// else in the engine — the state slabs, the flight recorders, the result
// accumulators — is single-goroutine by design; the race test drives a
// fleet and a draining reader together under -race to prove the slabs are
// never shared mutably across that boundary.
type Spill struct {
	mu  sync.Mutex
	buf []Sample
}

// push appends samples from the engine's goroutine.
func (s *Spill) push(smp Sample) {
	s.mu.Lock()
	s.buf = append(s.buf, smp)
	s.mu.Unlock()
}

// Drain removes and returns all buffered samples.
func (s *Spill) Drain() []Sample {
	s.mu.Lock()
	out := s.buf
	s.buf = nil
	s.mu.Unlock()
	return out
}
