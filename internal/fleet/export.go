package fleet

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV writes every tenant's per-period trace as one CSV with a
// leading tenant column:
//
//	tenant,time_s,power_w,target_w,freq_ghz,idle,balloon
//
// ids supplies the tenant-column value per result (nil means slice
// positions 0..N-1). The encoding is shared by `mayactl -fleet -csv` and
// cmd/mayad's /traces.csv export — one implementation, so a daemon-served
// trace byte-diffs cleanly against a solo mayactl run.
func WriteCSV(w io.Writer, results []TenantResult, ids []int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tenant", "time_s", "power_w", "target_w", "freq_ghz", "idle", "balloon"}); err != nil {
		return err
	}
	for i, res := range results {
		id := i
		if ids != nil {
			id = ids[i]
		}
		targets := res.Targets
		if res.FirstStep < len(targets) {
			targets = targets[res.FirstStep:]
		}
		for j, p := range res.DefenseSamples {
			row := []string{
				strconv.Itoa(id),
				strconv.FormatFloat(float64(j)*0.02, 'f', 2, 64),
				strconv.FormatFloat(p, 'f', 3, 64),
				"",
				"", "", "",
			}
			if j < len(targets) {
				row[3] = strconv.FormatFloat(targets[j], 'f', 3, 64)
			}
			if j < len(res.InputTrace) {
				in := res.InputTrace[j]
				row[4] = strconv.FormatFloat(in.FreqGHz, 'f', 1, 64)
				row[5] = strconv.FormatFloat(in.Idle, 'f', 2, 64)
				row[6] = strconv.FormatFloat(in.Balloon, 'f', 1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
