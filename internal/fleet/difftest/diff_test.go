package difftest

import (
	"testing"

	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/sim"
)

func kitchenSink(t testing.TB) fault.Plan {
	t.Helper()
	p, ok := fault.PlanByName("kitchen-sink")
	if !ok {
		t.Fatal("kitchen-sink plan missing")
	}
	return p
}

// TestFleetMatchesScalar is the headline equivalence table: every defense
// kind, tenant counts 1/2/16, short app workloads, warmup, flight
// recorders, and guards — each case bit-compared tenant by tenant against
// the scalar reference.
func TestFleetMatchesScalar(t *testing.T) {
	cfg := sim.Sys1()
	cases := []Case{}
	for _, kind := range defense.Kinds {
		for _, tenants := range []int{1, 2, 16} {
			cases = append(cases, Case{
				Name:    kind.String(),
				Config:  cfg,
				Kind:    kind,
				Tenants: tenants,
				Ticks:   400,
				Seed:    0xfee1 + uint64(tenants),
				Scale:   0.02,
				Flight:  64,
				Guard:   true,
			})
		}
	}
	// Warmup alignment: recording starts mid-operation.
	cases = append(cases, Case{
		Name: "gs-warmup", Config: cfg, Kind: defense.MayaGS,
		Tenants: 3, Ticks: 300, Warmup: 100, Seed: 7, Scale: 0.02,
		Flight: 64, Guard: true,
	})
	// Idle fleet (no workload).
	cases = append(cases, Case{
		Name: "constant-idle", Config: cfg, Kind: defense.MayaConstant,
		Tenants: 4, Ticks: 300, Seed: 9, Flight: 64, Guard: true,
	})
	// A second machine config.
	cases = append(cases, Case{
		Name: "sys3-gs", Config: sim.Sys3(), Kind: defense.MayaGS,
		Tenants: 4, Ticks: 300, Seed: 11, Scale: 0.02, Flight: 64, Guard: true,
	})
	for _, c := range cases {
		c := c
		t.Run(c.Name+"/"+itoa(c.Tenants), func(t *testing.T) {
			t.Parallel()
			if err := Diff(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFleetMatchesScalarUnderFaults pins equivalence under every canned
// fault plan — sensor glitches, counter wraps, stuck actuators, deadline
// misses, and all of them at once — for the Maya kinds with guard and
// flight attached, plus a non-Maya control.
func TestFleetMatchesScalarUnderFaults(t *testing.T) {
	cfg := sim.Sys1()
	var cases []Case
	for _, plan := range fault.Plans() {
		for _, kind := range []defense.Kind{defense.MayaGS, defense.MayaConstant, defense.RandomInputs} {
			cases = append(cases, Case{
				Name:    kind.String() + "/" + plan.Name,
				Config:  cfg,
				Kind:    kind,
				Tenants: 3,
				Ticks:   400,
				Seed:    0xbad + uint64(len(cases)),
				Plan:    plan,
				Scale:   0.02,
				Flight:  64,
				Guard:   true,
			})
		}
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := Diff(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFleetMatchesScalarLarge is the 1000-tenant acceptance case: short,
// but every tenant bit-compared, with and without the kitchen-sink plan.
func TestFleetMatchesScalarLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-tenant differential run skipped in -short mode")
	}
	cfg := sim.Sys1()
	for _, c := range []Case{
		{Name: "gs-1000", Config: cfg, Kind: defense.MayaGS, Tenants: 1000,
			Ticks: 60, Seed: 0x1000, Scale: 0.02, Flight: 8, Guard: true},
		{Name: "gs-1000-faulted", Config: cfg, Kind: defense.MayaGS, Tenants: 1000,
			Ticks: 60, Seed: 0x1001, Plan: kitchenSink(t), Scale: 0.02, Flight: 8, Guard: true},
	} {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := Diff(c); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
