// Package difftest is the fleet engine's equivalence proof harness: for
// any (machine config, defense kind, fault plan, seed, tenant count, tick
// count) it runs the batched fleet and, per tenant, an independent scalar
// core.Engine/sim.Run with the same derived seeds, and asserts the two
// produce bit-for-bit identical traces, flight records, and guard
// decisions. The scalar side is composed purely from the untouched
// reference pieces (sim.Machine, sim.Run, fault wrappers), so a pass means
// the batched kernels changed nothing but the speed — the same pinning
// discipline as internal/nn's batch tests, extended to a whole closed-loop
// system.
package difftest

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// Case is one differential scenario.
type Case struct {
	Name    string
	Config  sim.Config
	Kind    defense.Kind
	Tenants int
	Ticks   int
	Warmup  int
	Seed    uint64
	Plan    fault.Plan
	// Scale is the per-tenant workload scale (blackscholes); 0 runs the
	// fleet idle.
	Scale float64
	// Flight, when > 0, attaches per-tenant flight recorders of that
	// capacity (Maya kinds).
	Flight int
	// Guard attaches core.DefaultGuard (Maya kinds), exercising the
	// sanitize/hold/reinit decisions under faults.
	Guard bool
}

// designs caches one synthesized artifact per machine config: synthesis is
// the expensive part and equivalence does not depend on design quality, so
// a shortened excitation keeps the suite fast.
var designs struct {
	mu sync.Mutex
	m  map[string]*core.Design
}

// DesignFor returns the cached Maya artifact for cfg.
func DesignFor(cfg sim.Config) (*core.Design, error) {
	designs.mu.Lock()
	defer designs.mu.Unlock()
	if d, ok := designs.m[cfg.Name]; ok {
		return d, nil
	}
	opts := core.DefaultDesignOptions()
	opts.ExcitationTicks = 4000
	d, err := core.DesignFor(cfg, opts)
	if err != nil {
		return nil, err
	}
	if designs.m == nil {
		designs.m = make(map[string]*core.Design)
	}
	designs.m[cfg.Name] = d
	return d, nil
}

func (c Case) maya() bool {
	return c.Kind == defense.MayaConstant || c.Kind == defense.MayaGS
}

func (c Case) newWorkload() workload.Workload {
	if c.Scale <= 0 {
		return workload.Idle{}
	}
	return workload.NewApp("blackscholes").Scale(c.Scale)
}

func (c Case) guard() *core.Guard {
	if !c.Guard {
		return nil
	}
	g := core.DefaultGuard(c.Config)
	return &g
}

// scalarTenant is one tenant's reference run, assembled exactly as the
// fleet assembles it — same derived seeds, same wiring order — but from
// the scalar pieces.
type scalarTenant struct {
	res     sim.RunResult
	targets []float64
	flight  *telemetry.FlightRecorder
	stats   fault.Stats
}

// runScalar runs each tenant independently through the scalar reference
// path.
func runScalar(c Case) ([]scalarTenant, error) {
	var art *core.Design
	if c.maya() {
		var err error
		if art, err = DesignFor(c.Config); err != nil {
			return nil, err
		}
	}
	d := defense.NewDesign(c.Kind, c.Config, art, 20)
	guard := c.guard()
	out := make([]scalarTenant, c.Tenants)
	for t := 0; t < c.Tenants; t++ {
		ms, ws, ps, fs := fleet.TenantSeeds(c.Seed, t)
		m := sim.NewMachine(c.Config, ms)
		var inj *fault.Injector
		if !c.Plan.Empty() {
			inj = fault.MustNew(c.Plan, fs)
			inj.Attach(m)
		}
		var sensor sim.PowerSensor = sim.NewRAPLSensor(m)
		if inj != nil {
			sensor = inj.Sensor(sensor)
		}
		w := c.newWorkload()
		w.Reset(ws)
		pol := d.Policy(ps)
		var eng *core.Engine
		if c.maya() {
			eng = pol.(*core.Engine)
			if guard != nil {
				eng.SetGuard(guard)
			}
			if c.Flight > 0 {
				eng.SetFlight(telemetry.NewFlightRecorder(c.Flight))
			}
		}
		if inj != nil {
			pol = inj.Policy(pol)
		}
		res := sim.Run(m, w, pol, sim.RunSpec{
			ControlPeriodTicks: 20,
			MaxTicks:           c.Ticks,
			WarmupTicks:        c.Warmup,
			DefenseSensor:      sensor,
		})
		out[t] = scalarTenant{res: res}
		if eng != nil {
			out[t].targets = eng.Targets
			out[t].flight = eng.Flight()
		}
		if inj != nil {
			out[t].stats = inj.Stats()
		}
	}
	return out, nil
}

// runBatched runs the whole case through the fleet engine.
func runBatched(c Case) ([]fleet.TenantResult, error) {
	var art *core.Design
	if c.maya() {
		var err error
		if art, err = DesignFor(c.Config); err != nil {
			return nil, err
		}
	}
	spec := fleet.Spec{
		Config:         c.Config,
		Kind:           c.Kind,
		Art:            art,
		PeriodTicks:    20,
		Tenants:        c.Tenants,
		BaseSeed:       c.Seed,
		Plan:           c.Plan,
		Guard:          c.guard(),
		FlightCapacity: c.Flight,
		WarmupTicks:    c.Warmup,
		MaxTicks:       c.Ticks,
	}
	if c.Scale > 0 {
		spec.NewWorkload = c.newWorkload
	}
	return fleet.New(spec).Run(), nil
}

// Diff runs both paths and returns nil only if every tenant is bit-for-bit
// identical across every recorded quantity.
func Diff(c Case) error {
	scalar, err := runScalar(c)
	if err != nil {
		return err
	}
	batched, err := runBatched(c)
	if err != nil {
		return err
	}
	if len(scalar) != len(batched) {
		return fmt.Errorf("%s: tenant counts differ: %d vs %d", c.Name, len(scalar), len(batched))
	}
	for t := range scalar {
		if err := diffTenant(scalar[t], batched[t]); err != nil {
			return fmt.Errorf("%s: tenant %d: %w", c.Name, t, err)
		}
	}
	return nil
}

func diffTenant(s scalarTenant, b fleet.TenantResult) error {
	if err := diffFloats("defense samples", s.res.DefenseSamples, b.DefenseSamples); err != nil {
		return err
	}
	if err := diffFloats("tick power", s.res.TickPowerW, b.TickPowerW); err != nil {
		return err
	}
	if err := diffFloats("tick wall power", s.res.TickWallW, b.TickWallW); err != nil {
		return err
	}
	if err := diffFloats("mask targets", s.targets, b.Targets); err != nil {
		return err
	}
	if len(s.res.InputTrace) != len(b.InputTrace) {
		return fmt.Errorf("input trace lengths differ: %d vs %d", len(s.res.InputTrace), len(b.InputTrace))
	}
	for i := range s.res.InputTrace {
		sv, bv := s.res.InputTrace[i], b.InputTrace[i]
		if math.Float64bits(sv.FreqGHz) != math.Float64bits(bv.FreqGHz) ||
			math.Float64bits(sv.Idle) != math.Float64bits(bv.Idle) ||
			math.Float64bits(sv.Balloon) != math.Float64bits(bv.Balloon) {
			return fmt.Errorf("input trace[%d] differs: %+v vs %+v", i, sv, bv)
		}
	}
	if s.res.FinishedTick != b.FinishedTick {
		return fmt.Errorf("finished tick differs: %d vs %d", s.res.FinishedTick, b.FinishedTick)
	}
	if s.res.FirstStep != b.FirstStep {
		return fmt.Errorf("first step differs: %d vs %d", s.res.FirstStep, b.FirstStep)
	}
	if math.Float64bits(s.res.EnergyJ) != math.Float64bits(b.EnergyJ) {
		return fmt.Errorf("energy differs: %x vs %x", math.Float64bits(s.res.EnergyJ), math.Float64bits(b.EnergyJ))
	}
	if s.stats != b.Stats {
		return fmt.Errorf("fault stats differ: %v vs %v", s.stats, b.Stats)
	}
	if (s.flight == nil) != (b.Flight == nil) {
		return fmt.Errorf("flight recorder presence differs")
	}
	if s.flight != nil {
		var sb, bb bytes.Buffer
		if err := s.flight.Flush(&sb); err != nil {
			return fmt.Errorf("scalar flight flush: %w", err)
		}
		if err := b.Flight.Flush(&bb); err != nil {
			return fmt.Errorf("batched flight flush: %w", err)
		}
		if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
			return fmt.Errorf("flight records differ:\n%s", firstDiffLine(sb.Bytes(), bb.Bytes()))
		}
	}
	return nil
}

func diffFloats(what string, s, b []float64) error {
	if len(s) != len(b) {
		return fmt.Errorf("%s lengths differ: %d vs %d", what, len(s), len(b))
	}
	for i := range s {
		if math.Float64bits(s[i]) != math.Float64bits(b[i]) {
			return fmt.Errorf("%s[%d] differs: %x (%g) vs %x (%g)",
				what, i, math.Float64bits(s[i]), s[i], math.Float64bits(b[i]), b[i])
		}
	}
	return nil
}

// firstDiffLine locates the first JSONL line where two flight flushes
// diverge.
func firstDiffLine(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\nscalar:  %s\nbatched: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}
