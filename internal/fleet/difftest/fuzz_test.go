package difftest

import (
	"testing"

	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/sim"
)

// FuzzFleetMatchesScalar randomizes the whole case space — seed, tenant
// count, run length, defense kind, fault plan, workload scale, warmup —
// and requires the batched trace to equal the scalar trace byte for byte.
// Any divergence the table tests missed (an accumulation-order slip in a
// kernel, a fault-stream draw out of order, an off-by-one at a period
// boundary) surfaces here as a one-line reproducer.
func FuzzFleetMatchesScalar(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(200), uint8(4), uint8(0), uint8(2), false)
	f.Add(uint64(42), uint8(1), uint16(100), uint8(3), uint8(6), uint8(1), true)
	f.Add(uint64(7), uint8(5), uint16(300), uint8(4), uint8(5), uint8(0), false)
	f.Add(uint64(0xbad), uint8(3), uint16(150), uint8(2), uint8(4), uint8(3), true)
	f.Add(uint64(99), uint8(8), uint16(80), uint8(0), uint8(1), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, tenants uint8, ticks uint16, kindSel, planSel, scaleSel uint8, warmup bool) {
		plans := fault.Plans()
		c := Case{
			Name:    "fuzz",
			Config:  sim.Sys1(),
			Kind:    defense.Kinds[int(kindSel)%len(defense.Kinds)],
			Tenants: 1 + int(tenants%8),
			Ticks:   40 + int(ticks%360),
			Seed:    seed,
			Scale:   float64(scaleSel%5) * 0.01,
			Flight:  32,
			Guard:   true,
		}
		if sel := int(planSel) % (len(plans) + 1); sel > 0 {
			c.Plan = plans[sel-1]
		}
		if warmup {
			c.Warmup = 60
		}
		if err := Diff(c); err != nil {
			t.Fatal(err)
		}
	})
}
