package fleet

import (
	"testing"

	"github.com/maya-defense/maya/internal/telemetry"
)

func sampleN(i int) Sample { return Sample{Step: i, Tenant: i % 3, PowerW: float64(i)} }

// TestSpillUnboundedKeepsEverything pins the zero-value contract the race
// test's exact drained-sample accounting depends on: without a limit, no
// sample is ever dropped.
func TestSpillUnboundedKeepsEverything(t *testing.T) {
	var s Spill
	for i := 0; i < 1000; i++ {
		s.push(sampleN(i))
	}
	if s.Dropped() != 0 {
		t.Fatalf("unbounded spill dropped %d samples", s.Dropped())
	}
	got := s.Drain()
	if len(got) != 1000 {
		t.Fatalf("drained %d samples, want 1000", len(got))
	}
	for i, smp := range got {
		if smp != sampleN(i) {
			t.Fatalf("sample %d = %+v, want %+v", i, smp, sampleN(i))
		}
	}
	if len(s.Drain()) != 0 {
		t.Fatal("second drain not empty")
	}
}

// TestSpillBoundedDropsOldest drives a bounded spill past its limit with
// no reader and checks drop-oldest semantics: the retained window is the
// newest `limit` samples in push order, and the drop count is exact.
func TestSpillBoundedDropsOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	s := NewSpill(4)
	s.SetDropCounter(m.SpillDropped)
	for i := 0; i < 10; i++ {
		s.push(sampleN(i))
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	if got := m.SpillDropped.Value(); got != 6 {
		t.Fatalf("maya_fleet_spill_dropped_total = %d, want 6", got)
	}
	got := s.Drain()
	if len(got) != 4 {
		t.Fatalf("drained %d samples, want 4", len(got))
	}
	for i, smp := range got {
		if smp != sampleN(6+i) {
			t.Fatalf("sample %d = %+v, want %+v (newest window)", i, smp, sampleN(6+i))
		}
	}
}

// TestSpillBoundedInBoundsIsLossless checks the in-bounds case: as long
// as a reader drains before the limit is hit, a bounded spill loses
// nothing and preserves order — byte-for-byte the unbounded behavior.
func TestSpillBoundedInBoundsIsLossless(t *testing.T) {
	s := NewSpill(8)
	next := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			s.push(sampleN(next))
			next++
		}
		got := s.Drain()
		if len(got) != 8 {
			t.Fatalf("round %d: drained %d, want 8", round, len(got))
		}
		for i, smp := range got {
			if want := sampleN(next - 8 + i); smp != want {
				t.Fatalf("round %d sample %d = %+v, want %+v", round, i, smp, want)
			}
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("in-bounds use dropped %d samples", s.Dropped())
	}
}

// TestSpillWrapAfterPartialDrain exercises ring wrap with interleaved
// partial fills: head bookkeeping must survive drains at arbitrary fill
// levels.
func TestSpillWrapAfterPartialDrain(t *testing.T) {
	s := NewSpill(5)
	for i := 0; i < 3; i++ {
		s.push(sampleN(i))
	}
	if got := s.Drain(); len(got) != 3 {
		t.Fatalf("drained %d, want 3", len(got))
	}
	for i := 3; i < 10; i++ { // 7 pushes into capacity 5: 2 drops
		s.push(sampleN(i))
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
	got := s.Drain()
	if len(got) != 5 {
		t.Fatalf("drained %d, want 5", len(got))
	}
	for i, smp := range got {
		if want := sampleN(5 + i); smp != want {
			t.Fatalf("sample %d = %+v, want %+v", i, smp, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
}
