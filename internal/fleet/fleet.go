// Package fleet steps many defended machines in one process: a structure-
// of-arrays batched engine over the scalar building blocks. Per-tenant
// state — controller vectors, integrators, machine power-model state, mask
// RNG positions — lives column-wise in contiguous slabs (control.Bank,
// sim.MachineBank), so one fleet tick runs the machine model and the
// controller as batched kernels that load each shared coefficient once per
// fleet instead of once per machine.
//
// The batched path is pinned bit-for-bit to the scalar reference: every
// tenant of a fleet run produces exactly the traces, flight records, and
// guard decisions of an independent scalar core.Engine/sim.Run with the
// same derived seeds. The difftest subpackage is that proof, table-driven
// across all five defenses, fault plans, and tenant counts; golden_test.go
// pins a committed 16-tenant trace. The scalar path stays untouched as the
// reference implementation — the fleet engine reuses its exact decision
// code (core.Engine.BeginStep/FinishStep, fault.Injector) and batches only
// the arithmetic between them.
package fleet

import (
	"fmt"

	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// tenantDomain separates per-tenant seed derivation from other users of
// rng.ChildSeed on the same base seed.
const tenantDomain = 0xf1ee7 // "FLEET"

// TenantSeeds derives tenant t's four independent run seeds from the fleet
// base seed: machine noise, workload phase, policy secret, and fault
// streams. The scalar reference run for tenant t must use exactly these
// seeds — the differential harness does — and the derivation is pure, so
// seeds never depend on fleet size or construction order.
func TenantSeeds(base uint64, t int) (machine, work, policy, faults uint64) {
	tb := rng.ChildSeed(rng.ChildSeed(base, tenantDomain), uint64(t))
	return rng.ChildSeed(tb, 0), rng.ChildSeed(tb, 1), rng.ChildSeed(tb, 2), rng.ChildSeed(tb, 3)
}

// Spec configures a fleet run: one machine configuration and defense kind
// across Tenants machines, each with its own derived seeds, workload
// instance, and fault injector.
type Spec struct {
	Config sim.Config
	Kind   defense.Kind
	// Art is the synthesized Maya artifact; required for the Maya kinds,
	// ignored otherwise.
	Art *core.Design
	// PeriodTicks is the control period (default 20, the paper's 20 ms).
	PeriodTicks int
	Tenants     int
	// BaseSeed roots every tenant's seed derivation (see TenantSeeds).
	BaseSeed uint64
	// NewWorkload builds one tenant's workload (it is Reset with the
	// tenant's workload seed). Nil runs every tenant idle.
	NewWorkload func() workload.Workload
	// Plan, when non-empty, attaches a per-tenant fault injector seeded
	// with the tenant's fault seed.
	Plan fault.Plan
	// Guard, when non-nil, is installed on every tenant's engine (Maya
	// kinds only, like the scalar path).
	Guard *core.Guard
	// FlightCapacity, when > 0, attaches a flight recorder of that
	// capacity to every tenant's engine (Maya kinds only).
	FlightCapacity int
	// WarmupTicks and MaxTicks mirror sim.RunSpec: an unrecorded idle
	// warmup, then the recorded run.
	WarmupTicks int
	MaxTicks    int
}

// TenantResult is one tenant's view of a fleet run: exactly the
// sim.RunResult a scalar run produces, plus the Maya-side artifacts.
type TenantResult struct {
	sim.RunResult
	// Targets aliases the tenant engine's mask-target log (Maya kinds).
	Targets []float64
	// Flight is the tenant's flight recorder, if one was attached.
	Flight *telemetry.FlightRecorder
	// Stats counts the faults the tenant's injector fired.
	Stats fault.Stats
}

// Engine is one fleet in flight. Like the scalar engine it is single-
// goroutine: one caller owns it; concurrent observers read only through
// the telemetry registry and the Spill (see race tests).
type Engine struct {
	spec Spec
	bank *sim.MachineBank

	// Maya path: per-tenant engines share one batched controller bank.
	// The engines carry everything per-tenant and sequential (mask stream,
	// dither, NLMS estimator, guard hold state, flight); the bank carries
	// the controller state slabs that StepAll batches.
	engines []*core.Engine
	ctlBank *control.Bank

	// Non-Maya path: plain per-tenant policies (fault-wrapped as needed).
	policies []sim.Policy

	injectors []*fault.Injector
	sensors   []sim.PowerSensor
	workloads []workload.Workload

	// Timing-fault bookkeeping for the Maya path, mirroring
	// fault.FaultyPolicy's prev/prevPower fields per tenant.
	prevIn    []sim.Inputs
	prevPower []float64

	// Per-period scratch.
	ins     []sim.Inputs
	pw      []float64
	deltaY  []float64
	active  []bool
	pres    []core.StepPre
	stepRes []sim.StepResult
	idle    []workload.Workload

	metrics *Metrics
	spill   *Spill
}

// New assembles a fleet. It panics on an invalid spec (like sim.NewMachine
// on an invalid config).
func New(spec Spec) *Engine {
	if spec.Tenants <= 0 {
		panic("fleet: Spec.Tenants must be positive")
	}
	if spec.PeriodTicks <= 0 {
		spec.PeriodTicks = 20
	}
	if spec.MaxTicks <= 0 {
		spec.MaxTicks = 1 << 20
	}
	maya := spec.Kind == defense.MayaConstant || spec.Kind == defense.MayaGS
	if maya && spec.Art == nil {
		panic("fleet: Maya kinds need a synthesized core.Design")
	}
	d := defense.NewDesign(spec.Kind, spec.Config, spec.Art, spec.PeriodTicks)

	T := spec.Tenants
	e := &Engine{
		spec:      spec,
		injectors: make([]*fault.Injector, T),
		sensors:   make([]sim.PowerSensor, T),
		workloads: make([]workload.Workload, T),
		prevIn:    make([]sim.Inputs, T),
		prevPower: make([]float64, T),
		ins:       make([]sim.Inputs, T),
		pw:        make([]float64, T),
		deltaY:    make([]float64, T),
		active:    make([]bool, T),
		pres:      make([]core.StepPre, T),
		stepRes:   make([]sim.StepResult, T),
		idle:      make([]workload.Workload, T),
	}
	if maya {
		e.engines = make([]*core.Engine, T)
	} else {
		e.policies = make([]sim.Policy, T)
	}

	machineSeeds := make([]uint64, T)
	for t := 0; t < T; t++ {
		machineSeeds[t], _, _, _ = TenantSeeds(spec.BaseSeed, t)
	}
	e.bank = sim.NewMachineBank(spec.Config, machineSeeds)

	for t := 0; t < T; t++ {
		_, ws, ps, fs := TenantSeeds(spec.BaseSeed, t)
		if !spec.Plan.Empty() {
			e.injectors[t] = fault.MustNew(spec.Plan, fs)
			e.injectors[t].AttachHooks(e.bank.Tenant(t))
		}
		var sensor sim.PowerSensor = e.bank.Sensor(t)
		if e.injectors[t] != nil {
			sensor = e.injectors[t].Sensor(sensor)
		}
		e.sensors[t] = sensor

		if spec.NewWorkload != nil {
			w := spec.NewWorkload()
			w.Reset(ws)
			e.workloads[t] = w
		} else {
			e.workloads[t] = workload.Idle{}
		}
		e.idle[t] = workload.Idle{}

		pol := d.Policy(ps)
		if maya {
			eng, ok := pol.(*core.Engine)
			if !ok {
				panic(fmt.Sprintf("fleet: %v policy is %T, not *core.Engine", spec.Kind, pol))
			}
			if spec.Guard != nil {
				eng.SetGuard(spec.Guard)
			}
			if spec.FlightCapacity > 0 {
				eng.SetFlight(telemetry.NewFlightRecorder(spec.FlightCapacity))
			}
			e.engines[t] = eng
		} else {
			if e.injectors[t] != nil {
				pol = e.injectors[t].Policy(pol)
			}
			e.policies[t] = pol
		}
	}
	if maya {
		e.ctlBank = control.NewBank(spec.Art.Controller, T)
		if spec.Guard != nil {
			e.ctlBank.SetIntegratorClamp(spec.Guard.IntegratorClamp)
		}
	}
	return e
}

// SetMetrics attaches fleet telemetry (nil detaches).
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// SetSpill attaches a concurrent-reader spill buffer: every control period
// the engine pushes one Sample per tenant into it (nil detaches).
func (e *Engine) SetSpill(s *Spill) { e.spill = s }

// Tenants returns the fleet size.
func (e *Engine) Tenants() int { return e.spec.Tenants }

// decideAll runs every tenant's control decision for one step: the
// fleet-path equivalent of calling each tenant's (possibly fault-wrapped)
// policy. On the Maya path the controller arithmetic for the whole fleet
// runs as one batched control.Bank.StepAll between the per-tenant
// BeginStep/FinishStep halves; everything else stays the scalar code.
func (e *Engine) decideAll(step int) {
	if e.engines == nil {
		for t, p := range e.policies {
			e.ins[t] = p.Decide(step, e.pw[t])
		}
		return
	}
	anyFault := false
	for t, eng := range e.engines {
		pw := e.pw[t]
		if inj := e.injectors[t]; inj != nil {
			anyFault = true
			miss, stale := inj.TimingDecision(step)
			if miss {
				// The wakeup never happened: hold the previous command;
				// the engine (mask, controller, estimator) does not advance.
				e.prevPower[t] = e.pw[t]
				e.ins[t] = e.prevIn[t]
				e.active[t] = false
				continue
			}
			if stale {
				pw = e.prevPower[t]
			}
			e.prevPower[t] = e.pw[t]
		}
		e.active[t] = true
		e.pres[t] = eng.BeginStep(step, pw)
		e.deltaY[t] = e.pres[t].DeltaY
	}
	active := e.active
	if !anyFault {
		active = nil
	}
	e.ctlBank.StepAll(e.deltaY, active)
	for t, eng := range e.engines {
		if !e.active[t] {
			continue
		}
		in := eng.FinishStep(step, e.pres[t], e.ctlBank.U(t), e.ctlBank.Tenant(t))
		e.ins[t] = in
		e.prevIn[t] = in
	}
}

// Run executes the fleet to MaxTicks and returns one result per tenant.
// The loop is sim.Run transcribed over the bank: identical per-tenant
// phase order (step machine → observe sensor → period boundary: read,
// decide, actuate), so every tenant's recorded trace matches its scalar
// twin's bit for bit.
func (e *Engine) Run() []TenantResult {
	spec := e.spec
	T := spec.Tenants
	if e.metrics != nil {
		e.metrics.Tenants.Set(float64(T))
	}
	res := make([]TenantResult, T)
	for t := range res {
		res[t].FinishedTick = -1
	}
	step := 0

	// Initial decision before any power is read.
	for t := range e.pw {
		e.pw[t] = 0
	}
	e.decideAll(step)
	e.bank.SetInputsAll(e.ins)

	// Unrecorded warmup: the defense regulates the idle fleet.
	for tick := 0; tick < spec.WarmupTicks; tick++ {
		e.bank.StepAll(e.idle, e.stepRes)
		for t := range e.sensors {
			e.sensors[t].Observe(e.stepRes[t])
		}
		if (tick+1)%spec.PeriodTicks == 0 {
			for t := range e.sensors {
				e.pw[t] = e.sensors[t].ReadW()
			}
			step++
			e.decideAll(step)
			e.bank.SetInputsAll(e.ins)
		}
	}

	startEnergy := make([]float64, T)
	for t := 0; t < T; t++ {
		startEnergy[t] = e.bank.TrueEnergyJ(t)
		res[t].FirstStep = step
		res[t].InputTrace = append(res[t].InputTrace, e.bank.Inputs(t))
	}
	for tick := 0; tick < spec.MaxTicks; tick++ {
		tPhase := e.clock()
		e.bank.StepAll(e.workloads, e.stepRes)
		for t := 0; t < T; t++ {
			r := e.stepRes[t]
			res[t].TickPowerW = append(res[t].TickPowerW, r.PowerW)
			res[t].TickWallW = append(res[t].TickWallW, r.WallW)
			e.sensors[t].Observe(r)
			if r.Finished && res[t].FinishedTick < 0 {
				res[t].FinishedTick = int64(tick) + 1
			}
		}
		if e.metrics != nil {
			e.metrics.Ticks.Add(uint64(T))
			tNow := e.clock()
			e.metrics.MachineNs.Add(uint64(tNow - tPhase))
			tPhase = tNow
		}
		if (tick+1)%spec.PeriodTicks == 0 {
			for t := 0; t < T; t++ {
				e.pw[t] = e.sensors[t].ReadW()
				res[t].DefenseSamples = append(res[t].DefenseSamples, e.pw[t])
			}
			if e.metrics != nil {
				tNow := e.clock()
				e.metrics.SenseNs.Add(uint64(tNow - tPhase))
				tPhase = tNow
			}
			step++
			e.decideAll(step)
			if e.metrics != nil {
				e.metrics.Periods.Inc()
				tNow := e.clock()
				e.metrics.ControlNs.Add(uint64(tNow - tPhase))
				tPhase = tNow
			}
			e.bank.SetInputsAll(e.ins)
			for t := 0; t < T; t++ {
				res[t].InputTrace = append(res[t].InputTrace, e.bank.Inputs(t))
			}
			if e.metrics != nil {
				e.metrics.ActuateNs.Add(uint64(e.clock() - tPhase))
			}
			if e.spill != nil {
				for t := 0; t < T; t++ {
					e.spill.push(Sample{Step: step, Tenant: t, PowerW: e.pw[t]})
				}
			}
		}
	}
	for t := 0; t < T; t++ {
		res[t].EnergyJ = e.bank.TrueEnergyJ(t) - startEnergy[t]
		res[t].Seconds = float64(len(res[t].TickPowerW)) * spec.Config.TickSeconds
		if e.engines != nil {
			res[t].Targets = e.engines[t].Targets
			res[t].Flight = e.engines[t].Flight()
		}
		if e.injectors[t] != nil {
			res[t].Stats = e.injectors[t].Stats()
		}
	}
	return res
}

// Engines returns the per-tenant engines (Maya kinds; nil otherwise).
func (e *Engine) Engines() []*core.Engine { return e.engines }
