// Package fleet steps many defended machines in one process: a structure-
// of-arrays batched engine over the scalar building blocks. Per-tenant
// state — controller vectors, integrators, machine power-model state, mask
// RNG positions — lives column-wise in contiguous slabs (control.Bank,
// sim.MachineBank), so one fleet tick runs the machine model and the
// controller as batched kernels that load each shared coefficient once per
// fleet instead of once per machine.
//
// The batched path is pinned bit-for-bit to the scalar reference: every
// tenant of a fleet run produces exactly the traces, flight records, and
// guard decisions of an independent scalar core.Engine/sim.Run with the
// same derived seeds. The difftest subpackage is that proof, table-driven
// across all five defenses, fault plans, and tenant counts; golden_test.go
// pins a committed 16-tenant trace. The scalar path stays untouched as the
// reference implementation — the fleet engine reuses its exact decision
// code (core.Engine.BeginStep/FinishStep, fault.Injector) and batches only
// the arithmetic between them.
package fleet

import (
	"fmt"

	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// tenantDomain separates per-tenant seed derivation from other users of
// rng.ChildSeed on the same base seed.
const tenantDomain = 0xf1ee7 // "FLEET"

// TenantSeeds derives tenant t's four independent run seeds from the fleet
// base seed: machine noise, workload phase, policy secret, and fault
// streams. The scalar reference run for tenant t must use exactly these
// seeds — the differential harness does — and the derivation is pure, so
// seeds never depend on fleet size or construction order.
func TenantSeeds(base uint64, t int) (machine, work, policy, faults uint64) {
	tb := rng.ChildSeed(rng.ChildSeed(base, tenantDomain), uint64(t))
	return rng.ChildSeed(tb, 0), rng.ChildSeed(tb, 1), rng.ChildSeed(tb, 2), rng.ChildSeed(tb, 3)
}

// Spec configures a fleet run: one machine configuration and defense kind
// across Tenants machines, each with its own derived seeds, workload
// instance, and fault injector.
type Spec struct {
	Config sim.Config
	Kind   defense.Kind
	// Art is the synthesized Maya artifact; required for the Maya kinds,
	// ignored otherwise.
	Art *core.Design
	// PeriodTicks is the control period (default 20, the paper's 20 ms).
	PeriodTicks int
	Tenants     int
	// BaseSeed roots every tenant's seed derivation (see TenantSeeds).
	BaseSeed uint64
	// SeedAt, when non-nil, overrides per-tenant seed derivation: it
	// returns slot t's four run seeds in TenantSeeds order. This is how a
	// daemon packs tenants with unrelated identities into one bank — each
	// slot carries TenantSeeds(itsOwnSeed, itsOwnIndex) — while staying
	// bit-identical to a solo run with those seeds. Nil derives
	// TenantSeeds(BaseSeed, t).
	SeedAt func(t int) (machine, work, policy, faults uint64)
	// NewWorkload builds one tenant's workload (it is Reset with the
	// tenant's workload seed). Nil runs every tenant idle.
	NewWorkload func() workload.Workload
	// Plan, when non-empty, attaches a per-tenant fault injector seeded
	// with the tenant's fault seed.
	Plan fault.Plan
	// Guard, when non-nil, is installed on every tenant's engine (Maya
	// kinds only, like the scalar path).
	Guard *core.Guard
	// FlightCapacity, when > 0, attaches a flight recorder of that
	// capacity to every tenant's engine (Maya kinds only).
	FlightCapacity int
	// WarmupTicks and MaxTicks mirror sim.RunSpec: an unrecorded idle
	// warmup, then the recorded run.
	WarmupTicks int
	MaxTicks    int
}

// TenantResult is one tenant's view of a fleet run: exactly the
// sim.RunResult a scalar run produces, plus the Maya-side artifacts.
type TenantResult struct {
	sim.RunResult
	// Targets aliases the tenant engine's mask-target log (Maya kinds).
	Targets []float64
	// Flight is the tenant's flight recorder, if one was attached.
	Flight *telemetry.FlightRecorder
	// Stats counts the faults the tenant's injector fired.
	Stats fault.Stats
}

// Engine is one fleet in flight. Like the scalar engine it is single-
// goroutine: one caller owns it; concurrent observers read only through
// the telemetry registry and the Spill (see race tests).
type Engine struct {
	spec Spec
	bank *sim.MachineBank

	// Maya path: per-tenant engines share one batched controller bank.
	// The engines carry everything per-tenant and sequential (mask stream,
	// dither, NLMS estimator, guard hold state, flight); the bank carries
	// the controller state slabs that StepAll batches.
	engines []*core.Engine
	ctlBank *control.Bank

	// Non-Maya path: plain per-tenant policies (fault-wrapped as needed).
	policies []sim.Policy

	injectors []*fault.Injector
	sensors   []sim.PowerSensor
	workloads []workload.Workload

	// Timing-fault bookkeeping for the Maya path, mirroring
	// fault.FaultyPolicy's prev/prevPower fields per tenant.
	prevIn    []sim.Inputs
	prevPower []float64

	// Per-period scratch.
	ins     []sim.Inputs
	pw      []float64
	deltaY  []float64
	active  []bool
	pres    []core.StepPre
	stepRes []sim.StepResult
	idle    []workload.Workload

	metrics *Metrics
	spill   *Spill

	// Incremental-run state (Start/StepPeriod/Results). Run wraps the
	// three; a daemon interleaves them with admissions and evictions.
	res         []TenantResult
	startEnergy []float64
	step        int
	tick        int
	started     bool
	finished    bool
	// dead marks evicted slots: they keep stepping (per-tenant
	// independence makes that invisible to the survivors) but stop
	// recording, and their accumulated buffers are released.
	dead  []bool
	alive int
}

// New assembles a fleet. It panics on an invalid spec (like sim.NewMachine
// on an invalid config).
func New(spec Spec) *Engine {
	if spec.Tenants <= 0 {
		panic("fleet: Spec.Tenants must be positive")
	}
	if spec.PeriodTicks <= 0 {
		spec.PeriodTicks = 20
	}
	if spec.MaxTicks <= 0 {
		spec.MaxTicks = 1 << 20
	}
	maya := spec.Kind == defense.MayaConstant || spec.Kind == defense.MayaGS
	if maya && spec.Art == nil {
		panic("fleet: Maya kinds need a synthesized core.Design")
	}
	d := defense.NewDesign(spec.Kind, spec.Config, spec.Art, spec.PeriodTicks)

	T := spec.Tenants
	e := &Engine{
		spec:      spec,
		injectors: make([]*fault.Injector, T),
		sensors:   make([]sim.PowerSensor, T),
		workloads: make([]workload.Workload, T),
		prevIn:    make([]sim.Inputs, T),
		prevPower: make([]float64, T),
		ins:       make([]sim.Inputs, T),
		pw:        make([]float64, T),
		deltaY:    make([]float64, T),
		active:    make([]bool, T),
		pres:      make([]core.StepPre, T),
		stepRes:   make([]sim.StepResult, T),
		idle:      make([]workload.Workload, T),
		dead:      make([]bool, T),
		alive:     T,
	}
	if maya {
		e.engines = make([]*core.Engine, T)
	} else {
		e.policies = make([]sim.Policy, T)
	}

	seedAt := spec.SeedAt
	if seedAt == nil {
		seedAt = func(t int) (uint64, uint64, uint64, uint64) {
			return TenantSeeds(spec.BaseSeed, t)
		}
	}
	machineSeeds := make([]uint64, T)
	for t := 0; t < T; t++ {
		machineSeeds[t], _, _, _ = seedAt(t)
	}
	e.bank = sim.NewMachineBank(spec.Config, machineSeeds)

	for t := 0; t < T; t++ {
		_, ws, ps, fs := seedAt(t)
		if !spec.Plan.Empty() {
			e.injectors[t] = fault.MustNew(spec.Plan, fs)
			e.injectors[t].AttachHooks(e.bank.Tenant(t))
		}
		var sensor sim.PowerSensor = e.bank.Sensor(t)
		if e.injectors[t] != nil {
			sensor = e.injectors[t].Sensor(sensor)
		}
		e.sensors[t] = sensor

		if spec.NewWorkload != nil {
			w := spec.NewWorkload()
			w.Reset(ws)
			e.workloads[t] = w
		} else {
			e.workloads[t] = workload.Idle{}
		}
		e.idle[t] = workload.Idle{}

		pol := d.Policy(ps)
		if maya {
			eng, ok := pol.(*core.Engine)
			if !ok {
				panic(fmt.Sprintf("fleet: %v policy is %T, not *core.Engine", spec.Kind, pol))
			}
			if spec.Guard != nil {
				eng.SetGuard(spec.Guard)
			}
			if spec.FlightCapacity > 0 {
				eng.SetFlight(telemetry.NewFlightRecorder(spec.FlightCapacity))
			}
			e.engines[t] = eng
		} else {
			if e.injectors[t] != nil {
				pol = e.injectors[t].Policy(pol)
			}
			e.policies[t] = pol
		}
	}
	if maya {
		e.ctlBank = control.NewBank(spec.Art.Controller, T)
		if spec.Guard != nil {
			e.ctlBank.SetIntegratorClamp(spec.Guard.IntegratorClamp)
		}
	}
	return e
}

// SetMetrics attaches fleet telemetry (nil detaches).
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// SetSpill attaches a concurrent-reader spill buffer: every control period
// the engine pushes one Sample per tenant into it (nil detaches).
func (e *Engine) SetSpill(s *Spill) { e.spill = s }

// Tenants returns the fleet size.
func (e *Engine) Tenants() int { return e.spec.Tenants }

// decideAll runs every tenant's control decision for one step: the
// fleet-path equivalent of calling each tenant's (possibly fault-wrapped)
// policy. On the Maya path the controller arithmetic for the whole fleet
// runs as one batched control.Bank.StepAll between the per-tenant
// BeginStep/FinishStep halves; everything else stays the scalar code.
func (e *Engine) decideAll(step int) {
	if e.engines == nil {
		for t, p := range e.policies {
			e.ins[t] = p.Decide(step, e.pw[t])
		}
		return
	}
	anyFault := false
	for t, eng := range e.engines {
		pw := e.pw[t]
		if inj := e.injectors[t]; inj != nil {
			anyFault = true
			miss, stale := inj.TimingDecision(step)
			if miss {
				// The wakeup never happened: hold the previous command;
				// the engine (mask, controller, estimator) does not advance.
				e.prevPower[t] = e.pw[t]
				e.ins[t] = e.prevIn[t]
				e.active[t] = false
				continue
			}
			if stale {
				pw = e.prevPower[t]
			}
			e.prevPower[t] = e.pw[t]
		}
		e.active[t] = true
		e.pres[t] = eng.BeginStep(step, pw)
		e.deltaY[t] = e.pres[t].DeltaY
	}
	active := e.active
	if !anyFault {
		active = nil
	}
	e.ctlBank.StepAll(e.deltaY, active)
	for t, eng := range e.engines {
		if !e.active[t] {
			continue
		}
		in := eng.FinishStep(step, e.pres[t], e.ctlBank.U(t), e.ctlBank.Tenant(t))
		e.ins[t] = in
		e.prevIn[t] = in
	}
}

// Run executes the fleet to MaxTicks and returns one result per tenant.
// The loop is sim.Run transcribed over the bank: identical per-tenant
// phase order (step machine → observe sensor → period boundary: read,
// decide, actuate), so every tenant's recorded trace matches its scalar
// twin's bit for bit. Run is Start + StepPeriod-to-exhaustion + Results;
// incremental callers (cmd/mayad's shard scheduler) drive the three
// directly so admissions and evictions can interleave with the run.
func (e *Engine) Run() []TenantResult {
	e.Start()
	for e.StepPeriod() {
	}
	return e.Results()
}

// Start runs the initial decision and the unrecorded warmup, then arms
// recording: after Start, StepPeriod advances the recorded run one
// control period at a time. Start may be called once.
func (e *Engine) Start() {
	if e.started {
		panic("fleet: Engine.Start called twice")
	}
	e.started = true
	spec := e.spec
	T := spec.Tenants
	if e.metrics != nil {
		e.metrics.Tenants.Set(float64(T))
	}
	e.res = make([]TenantResult, T)
	for t := range e.res {
		e.res[t].FinishedTick = -1
	}
	e.step = 0

	// Initial decision before any power is read.
	for t := range e.pw {
		e.pw[t] = 0
	}
	e.decideAll(e.step)
	e.bank.SetInputsAll(e.ins)

	// Unrecorded warmup: the defense regulates the idle fleet.
	for tick := 0; tick < spec.WarmupTicks; tick++ {
		e.bank.StepAll(e.idle, e.stepRes)
		for t := range e.sensors {
			e.sensors[t].Observe(e.stepRes[t])
		}
		if (tick+1)%spec.PeriodTicks == 0 {
			for t := range e.sensors {
				e.pw[t] = e.sensors[t].ReadW()
			}
			e.step++
			e.decideAll(e.step)
			e.bank.SetInputsAll(e.ins)
		}
	}

	e.startEnergy = make([]float64, T)
	for t := 0; t < T; t++ {
		e.startEnergy[t] = e.bank.TrueEnergyJ(t)
		e.res[t].FirstStep = e.step
		e.res[t].InputTrace = append(e.res[t].InputTrace, e.bank.Inputs(t))
	}
}

// StepPeriod advances the recorded run by one control period (or the
// trailing partial period when MaxTicks is not a period multiple) and
// reports whether ticks remain. It must follow Start.
func (e *Engine) StepPeriod() bool {
	if !e.started {
		panic("fleet: Engine.StepPeriod before Start")
	}
	spec := e.spec
	T := spec.Tenants
	res := e.res
	for e.tick < spec.MaxTicks {
		tick := e.tick
		tPhase := e.clock()
		e.bank.StepAll(e.workloads, e.stepRes)
		for t := 0; t < T; t++ {
			r := e.stepRes[t]
			e.sensors[t].Observe(r)
			if e.dead[t] {
				continue
			}
			res[t].TickPowerW = append(res[t].TickPowerW, r.PowerW)
			res[t].TickWallW = append(res[t].TickWallW, r.WallW)
			if r.Finished && res[t].FinishedTick < 0 {
				res[t].FinishedTick = int64(tick) + 1
			}
		}
		if e.metrics != nil {
			e.metrics.Ticks.Add(uint64(T))
			tNow := e.clock()
			e.metrics.MachineNs.Add(uint64(tNow - tPhase))
			tPhase = tNow
		}
		e.tick++
		if (tick+1)%spec.PeriodTicks == 0 {
			for t := 0; t < T; t++ {
				e.pw[t] = e.sensors[t].ReadW()
				if !e.dead[t] {
					res[t].DefenseSamples = append(res[t].DefenseSamples, e.pw[t])
				}
			}
			if e.metrics != nil {
				tNow := e.clock()
				e.metrics.SenseNs.Add(uint64(tNow - tPhase))
				tPhase = tNow
			}
			e.step++
			e.decideAll(e.step)
			if e.metrics != nil {
				e.metrics.Periods.Inc()
				tNow := e.clock()
				e.metrics.ControlNs.Add(uint64(tNow - tPhase))
				tPhase = tNow
			}
			e.bank.SetInputsAll(e.ins)
			for t := 0; t < T; t++ {
				if !e.dead[t] {
					res[t].InputTrace = append(res[t].InputTrace, e.bank.Inputs(t))
				}
			}
			if e.metrics != nil {
				e.metrics.ActuateNs.Add(uint64(e.clock() - tPhase))
			}
			if e.spill != nil {
				for t := 0; t < T; t++ {
					if !e.dead[t] {
						e.spill.push(Sample{Step: e.step, Tenant: t, PowerW: e.pw[t]})
					}
				}
			}
			break
		}
	}
	return e.tick < spec.MaxTicks
}

// Results finalizes and returns one result per tenant slot: exactly what
// Run returns when the run consumed MaxTicks, and a bit-identical prefix
// of that when called early (a daemon draining mid-run). Evicted slots
// are zero. Results may be called once.
func (e *Engine) Results() []TenantResult {
	if !e.started {
		panic("fleet: Engine.Results before Start")
	}
	if e.finished {
		panic("fleet: Engine.Results called twice")
	}
	e.finished = true
	res := e.res
	for t := 0; t < e.spec.Tenants; t++ {
		if e.dead[t] {
			continue
		}
		res[t].EnergyJ = e.bank.TrueEnergyJ(t) - e.startEnergy[t]
		res[t].Seconds = float64(len(res[t].TickPowerW)) * e.spec.Config.TickSeconds
		if e.engines != nil {
			res[t].Targets = e.engines[t].Targets
			res[t].Flight = e.engines[t].Flight()
		}
		if e.injectors[t] != nil {
			res[t].Stats = e.injectors[t].Stats()
		}
	}
	return res
}

// Evict stops recording slot t and releases its accumulated buffers. The
// slot's machine and controller keep stepping — tenant slabs are fully
// independent, so the survivors' traces are unchanged whether an evicted
// neighbor steps or not, and continuing to step costs no extra code path.
// Evicting every slot leaves a bank that is pure overhead; the owner
// should drop it.
func (e *Engine) Evict(t int) {
	if e.dead[t] {
		return
	}
	e.dead[t] = true
	e.alive--
	if e.res != nil {
		e.res[t] = TenantResult{}
	}
}

// Alive reports how many slots have not been evicted.
func (e *Engine) Alive() int { return e.alive }

// Step reports the control-step counter (warmup steps included); Tick
// reports recorded machine ticks consumed, up to Spec.MaxTicks.
func (e *Engine) Step() int { return e.step }

// Tick reports how many recorded machine ticks have run.
func (e *Engine) Tick() int { return e.tick }

// Engines returns the per-tenant engines (Maya kinds; nil otherwise).
func (e *Engine) Engines() []*core.Engine { return e.engines }
