package fleet_test

import (
	"io"
	"sync"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// TestFleetConcurrentObserver steps a fleet on one goroutine while a reader
// on another continuously drains the spill buffer and snapshots/exports the
// telemetry registry. Under -race (the CI race job runs the whole tree)
// this proves the engine's concurrency contract: the spill mutex and the
// registry's internal synchronization are the only cross-goroutine seams,
// and the state slabs never leak across them.
func TestFleetConcurrentObserver(t *testing.T) {
	cfg := sim.Sys1()
	art, err := difftest.DesignFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := core.DefaultGuard(cfg)
	eng := fleet.New(fleet.Spec{
		Config:      cfg,
		Kind:        defense.MayaGS,
		Art:         art,
		PeriodTicks: 20,
		Tenants:     32,
		BaseSeed:    0xace,
		NewWorkload: func() workload.Workload { return workload.NewApp("blackscholes").Scale(0.02) },
		Guard:       &g,
		MaxTicks:    4000,
	})
	reg := telemetry.NewRegistry()
	eng.SetMetrics(fleet.NewMetrics(reg))
	spill := &fleet.Spill{}
	eng.SetSpill(spill)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	drained := 0
	go func() {
		defer wg.Done()
		for {
			drained += len(spill.Drain())
			reg.Snapshot()
			if err := reg.WriteJSONL(io.Discard); err != nil {
				t.Error(err)
				return
			}
			select {
			case <-done:
				drained += len(spill.Drain())
				return
			default:
			}
		}
	}()
	results := eng.Run()
	close(done)
	wg.Wait()

	if len(results) != 32 {
		t.Fatalf("got %d tenant results, want 32", len(results))
	}
	// One sample per tenant per control period: 4000 ticks / 20 = 200
	// periods, all drained between pushes or in the final sweep.
	if want := 32 * (4000 / 20); drained != want {
		t.Fatalf("drained %d samples, want %d", drained, want)
	}
}
