package fleet_test

import (
	"bytes"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

func churnSpec(t *testing.T, tenants int, seedAt func(int) (uint64, uint64, uint64, uint64)) fleet.Spec {
	t.Helper()
	cfg := sim.Sys1()
	art, err := difftest.DesignFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := core.DefaultGuard(cfg)
	return fleet.Spec{
		Config:         cfg,
		Kind:           defense.MayaGS,
		Art:            art,
		PeriodTicks:    20,
		Tenants:        tenants,
		BaseSeed:       0xc4a2,
		SeedAt:         seedAt,
		NewWorkload:    func() workload.Workload { return workload.NewApp("blackscholes").Scale(0.02) },
		Guard:          &g,
		FlightCapacity: 40/20 + 400/20 + 8,
		WarmupTicks:    40,
		MaxTicks:       400,
	}
}

// TestFleetEvictMidRunLeavesSurvivorsIdentical is the fleet-level half of
// the daemon's churn-determinism story: evicting a tenant mid-run (slot
// keeps stepping, recording stops, buffers released) must leave every
// surviving tenant's full result — trace, targets, flight, inputs —
// byte-identical to the same fleet run with no eviction.
func TestFleetEvictMidRunLeavesSurvivorsIdentical(t *testing.T) {
	full := fleet.New(churnSpec(t, 4, nil)).Run()

	e := fleet.New(churnSpec(t, 4, nil))
	e.Start()
	periods := 0
	for {
		more := e.StepPeriod()
		periods++
		if periods == 10 {
			e.Evict(2)
		}
		if !more {
			break
		}
	}
	if e.Alive() != 3 {
		t.Fatalf("Alive = %d, want 3", e.Alive())
	}
	churned := e.Results()

	for _, tn := range []int{0, 1, 3} {
		assertTenantEqual(t, tn, churned[tn], full[tn])
	}
	if len(churned[2].DefenseSamples) != 0 || churned[2].Flight != nil {
		t.Fatalf("evicted slot retained buffers: %d samples", len(churned[2].DefenseSamples))
	}
}

// TestFleetSeedAtMatchesSoloRun pins the SeedAt override: a bank slot
// carrying TenantSeeds(S, I) must reproduce, bit for bit, tenant I of a
// plain BaseSeed=S fleet — the property cmd/mayad uses to pack tenants
// with unrelated identities into shared banks.
func TestFleetSeedAtMatchesSoloRun(t *testing.T) {
	const base, index = 0x5eed, 5
	ref := fleet.New(churnSpec(t, index+1, func(tn int) (uint64, uint64, uint64, uint64) {
		return fleet.TenantSeeds(base, tn)
	})).Run()

	solo := fleet.New(churnSpec(t, 1, func(int) (uint64, uint64, uint64, uint64) {
		return fleet.TenantSeeds(base, index)
	})).Run()

	assertTenantEqual(t, index, solo[0], ref[index])
}

func assertTenantEqual(t *testing.T, tn int, got, want fleet.TenantResult) {
	t.Helper()
	if len(got.DefenseSamples) != len(want.DefenseSamples) {
		t.Fatalf("tenant %d: %d samples vs %d", tn, len(got.DefenseSamples), len(want.DefenseSamples))
	}
	for i := range got.DefenseSamples {
		if got.DefenseSamples[i] != want.DefenseSamples[i] {
			t.Fatalf("tenant %d sample %d: %v != %v", tn, i, got.DefenseSamples[i], want.DefenseSamples[i])
		}
	}
	for i := range got.TickPowerW {
		if got.TickPowerW[i] != want.TickPowerW[i] {
			t.Fatalf("tenant %d tick %d: %v != %v", tn, i, got.TickPowerW[i], want.TickPowerW[i])
		}
	}
	if got.EnergyJ != want.EnergyJ {
		t.Fatalf("tenant %d energy %v != %v", tn, got.EnergyJ, want.EnergyJ)
	}
	var gb, wb bytes.Buffer
	if got.Flight != nil || want.Flight != nil {
		if err := got.Flight.Flush(&gb); err != nil {
			t.Fatal(err)
		}
		if err := want.Flight.Flush(&wb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
			t.Fatalf("tenant %d flight traces differ", tn)
		}
	}
	var gc, wc bytes.Buffer
	if err := fleet.WriteCSV(&gc, []fleet.TenantResult{got}, []int{tn}); err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteCSV(&wc, []fleet.TenantResult{want}, []int{tn}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gc.Bytes(), wc.Bytes()) {
		t.Fatalf("tenant %d CSV exports differ", tn)
	}
}
