package fleet

import (
	"time"

	"github.com/maya-defense/maya/internal/telemetry"
)

// Metrics instruments a fleet run's tick phases. The phase timers measure
// the host (overhead accounting, like Engine.DecideTime on the scalar
// path); they never feed decisions, and with metrics detached the run
// takes no timestamps at all — which is why the differential harness,
// which runs metrics-free, is unaffected.
type Metrics struct {
	// Ticks counts machine ticks stepped, summed across tenants.
	Ticks *telemetry.Counter
	// Periods counts control periods (one batched decide each).
	Periods *telemetry.Counter
	// Tenants records the fleet size of the current run.
	Tenants *telemetry.Gauge
	// MachineNs, SenseNs, ControlNs, ActuateNs accumulate host wall time
	// per fleet tick phase: the batched machine step, the per-tenant
	// sensor reads, the batched control decision, and the batched
	// actuator commit.
	MachineNs *telemetry.Counter
	SenseNs   *telemetry.Counter
	ControlNs *telemetry.Counter
	ActuateNs *telemetry.Counter
	// SpillDropped counts samples a bounded Spill discarded (drop-oldest)
	// because no subscriber drained them; wire it with
	// Spill.SetDropCounter.
	SpillDropped *telemetry.Counter
}

// NewMetrics registers the fleet instruments. Multiple fleets may share a
// registry; counters then aggregate across them.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Ticks:     reg.Counter("maya_fleet_ticks_total", "machine ticks stepped across all tenants"),
		Periods:   reg.Counter("maya_fleet_periods_total", "fleet control periods executed"),
		Tenants:   reg.Gauge("maya_fleet_tenants", "tenant count of the current fleet run"),
		MachineNs: reg.Counter("maya_fleet_machine_ns_total", "host ns in the batched machine step"),
		SenseNs:   reg.Counter("maya_fleet_sense_ns_total", "host ns in per-tenant sensor reads"),
		ControlNs: reg.Counter("maya_fleet_control_ns_total", "host ns in the batched control decision"),
		ActuateNs: reg.Counter("maya_fleet_actuate_ns_total", "host ns in the batched actuator commit"),
		SpillDropped: reg.Counter("maya_fleet_spill_dropped_total",
			"spill samples discarded by drop-oldest because no reader drained"),
	}
}

// clock returns a host timestamp for phase accounting, or 0 with metrics
// detached so the metric-free path takes no timestamps.
func (e *Engine) clock() int64 {
	if e.metrics == nil {
		return 0
	}
	return time.Now().UnixNano() //maya:wallclock fleet phase overhead accounting; never feeds decisions
}
