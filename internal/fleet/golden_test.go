package fleet_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// goldenFleetPath pins a 16-tenant, 512-tick Maya GS fleet run: the flight
// records of all tenants, flushed in tenant order with a header line per
// tenant.
const goldenFleetPath = "testdata/fleet_sys1_gs_16x512.jsonl"

// goldenFleetTrace produces the trace the golden file pins. Every knob here
// (seed, tenant count, ticks, workload scale) is part of the file's
// identity — change one and the file must be regenerated.
func goldenFleetTrace(t *testing.T) []byte {
	t.Helper()
	cfg := sim.Sys1()
	art, err := difftest.DesignFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := core.DefaultGuard(cfg)
	results := fleet.New(fleet.Spec{
		Config:         cfg,
		Kind:           defense.MayaGS,
		Art:            art,
		PeriodTicks:    20,
		Tenants:        16,
		BaseSeed:       0x90d1,
		NewWorkload:    func() workload.Workload { return workload.NewApp("blackscholes").Scale(0.05) },
		Guard:          &g,
		FlightCapacity: 512/20 + 8,
		MaxTicks:       512,
	}).Run()

	var buf bytes.Buffer
	for tn, res := range results {
		buf.WriteString("# tenant " + strconv.Itoa(tn) + "\n")
		if err := res.Flight.Flush(&buf); err != nil {
			t.Fatalf("tenant %d flight flush: %v", tn, err)
		}
	}
	return buf.Bytes()
}

// TestGoldenFleetTrace pins the batched pipeline end to end — seed
// derivation, the SoA machine and controller kernels, batched actuation,
// and the per-tenant flight encoding — to a committed byte-exact trace, the
// fleet counterpart of internal/core's TestGoldenFlightTrace. The
// differential suite proves fleet == scalar for the cases it runs; this
// file additionally pins both against history, so a drift that changed
// scalar and batched paths in lockstep still fails loudly.
//
// To regenerate after an INTENTIONAL change:
//
//	MAYA_UPDATE_GOLDEN=1 go test ./internal/fleet -run TestGoldenFleetTrace
func TestGoldenFleetTrace(t *testing.T) {
	got := goldenFleetTrace(t)
	if os.Getenv("MAYA_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFleetPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFleetPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFleetPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenFleetPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with MAYA_UPDATE_GOLDEN=1): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("fleet trace diverged from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("fleet trace length changed: got %d lines, golden %d", len(gl), len(wl))
}

// TestGoldenFleetTraceParses guards the reader side: each tenant's section
// of the committed trace must round-trip through telemetry.ReadFlight.
func TestGoldenFleetTraceParses(t *testing.T) {
	raw, err := os.ReadFile(goldenFleetPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with MAYA_UPDATE_GOLDEN=1): %v", err)
	}
	sections := bytes.Split(raw, []byte("# tenant "))[1:]
	if len(sections) != 16 {
		t.Fatalf("golden trace has %d tenant sections, want 16", len(sections))
	}
	for tn, sec := range sections {
		body := sec[bytes.IndexByte(sec, '\n')+1:]
		recs, skipped, err := telemetry.ReadFlight(bytes.NewReader(body))
		if err != nil || skipped != 0 {
			t.Fatalf("tenant %d section unreadable: %d skipped, err %v", tn, skipped, err)
		}
		// Step 0 plus one record per 20-tick period over 512 ticks.
		if len(recs) != 512/20+1 {
			t.Fatalf("tenant %d has %d records, want %d", tn, len(recs), 512/20+1)
		}
		for i, rec := range recs {
			if rec.Step != i {
				t.Fatalf("tenant %d record %d has step %d", tn, i, rec.Step)
			}
			if rec.Rejected || rec.StateReinit {
				t.Fatalf("nominal golden trace carries fault flags: tenant %d step %d: %+v", tn, i, rec)
			}
		}
	}
}
