package nn_test

import (
	"fmt"

	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
)

// Example trains the attacker's MLP on a toy two-class problem and
// evaluates it with a confusion matrix, the §VI-A workflow in miniature.
func Example() {
	r := rng.New(1)
	var data []nn.Example
	for i := 0; i < 400; i++ {
		y := i % 2
		center := -2.0
		if y == 1 {
			center = 2.0
		}
		data = append(data, nn.Example{
			X: []float64{center + r.NormFloat64(), r.NormFloat64()},
			Y: y,
		})
	}
	train, val, test := nn.Split(r, data, 0.6, 0.2)
	m := nn.NewMLP(r, 2, 8, 2)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 30
	m.Train(r, train, val, cfg)

	cm := nn.Confusion(m, test, []string{"low", "high"})
	fmt.Println("separable problem learned:", cm.AverageAccuracy() > 0.9)
	// Output: separable problem learned: true
}
