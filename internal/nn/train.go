package nn

import (
	"fmt"
	"math"
	"strings"

	"github.com/maya-defense/maya/internal/rng"
)

// Example is one labeled feature vector.
type Example struct {
	X []float64
	Y int
}

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// WeightDecay is the L2 penalty coefficient.
	WeightDecay float64
	// Patience stops training after this many epochs without validation
	// improvement (0 disables early stopping).
	Patience int
	// Verbose emits per-epoch progress via the Log callback.
	Log func(epoch int, trainLoss, valAcc float64)
}

// DefaultTrainConfig returns settings that converge for the attack
// feature sizes used in this repository. Early stopping is off by default:
// validation accuracy can sit at chance for several epochs while the loss
// is still falling, and stopping there would under-train the attacker —
// the security evaluation needs the strongest classifier it can get.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, BatchSize: 32, LR: 3e-3, WeightDecay: 1e-5, Patience: 0}
}

// adamState holds per-parameter moments.
type adamState struct {
	m, v []float64
	t    int
}

// Train fits the network on train, monitoring accuracy on val for early
// stopping. It returns the best validation accuracy observed.
//
// Optimization runs on the batched kernels: each minibatch is gathered
// into row-major matrices and pushed through forwardBatch/backwardBatch,
// which stream every weight row once per minibatch instead of once per
// example. Gradient elements accumulate example contributions in the same
// order as the historical per-example loop, so for a fixed rng.Stream the
// final weights are bit-for-bit identical to the scalar path it replaced.
func (m *MLP) Train(r *rng.Stream, train, val []Example, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	nLayers := len(m.weights)

	// Gradient buffers and Adam state per layer.
	gw := make([]*dense, nLayers)
	gb := make([][]float64, nLayers)
	aw := make([]*adamState, nLayers)
	ab := make([]*adamState, nLayers)
	for l := range m.weights {
		gw[l] = newDense(m.weights[l].rows, m.weights[l].cols)
		gb[l] = make([]float64, len(m.biases[l]))
		aw[l] = &adamState{m: make([]float64, len(m.weights[l].w)), v: make([]float64, len(m.weights[l].w))}
		ab[l] = &adamState{m: make([]float64, len(m.biases[l])), v: make([]float64, len(m.biases[l]))}
	}
	batchSize := cfg.BatchSize
	if batchSize > len(train) && len(train) > 0 {
		batchSize = len(train)
	}
	bb := m.newBatch(batchSize)
	outW := m.sizes[len(m.sizes)-1]
	logp := bb.acts[len(bb.acts)-1]

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	bestVal := math.Inf(-1)
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range gw {
				zero(gw[l].w)
				zero(gb[l])
			}
			rows := bb.load(m, train, order[start:end])
			m.forwardBatch(bb, rows)
			for bi := 0; bi < rows; bi++ {
				totalLoss += -logp[bi*outW+bb.labels[bi]]
			}
			m.backwardBatch(bb, rows, gw, gb)
			scale := 1 / float64(end-start)
			for l := range gw {
				adamStep(m.weights[l].w, gw[l].w, aw[l], cfg.LR, scale, cfg.WeightDecay)
				adamStep(m.biases[l], gb[l], ab[l], cfg.LR, scale, 0)
			}
		}
		valAcc := 0.0
		if len(val) > 0 {
			correct := 0
			m.predictWithBatch(bb, val, func(i, pred int) {
				if pred == val[i].Y {
					correct++
				}
			})
			valAcc = float64(correct) / float64(len(val))
		}
		if cfg.Log != nil {
			cfg.Log(epoch, totalLoss/float64(len(train)), valAcc)
		}
		if valAcc > bestVal {
			bestVal = valAcc
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if len(val) == 0 {
		return 0
	}
	return bestVal
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// adamStep applies one Adam update to params given summed gradients and the
// batch scale factor. The bias-correction divisions are hoisted out of the
// element loop as reciprocals (lr/c1 and 1/√c2 are per-step constants), so
// each element costs one divide and one square root instead of three divides
// and a square root — the divider unit dominates this loop. The hoisted form
// rounds differently from the textbook lr·(m̂)/(√v̂+ε) in the last bits but
// is the same function of the same state, applied identically everywhere, so
// training remains fully deterministic for a fixed rng.Stream.
//
//maya:hotpath
func adamStep(params, grads []float64, st *adamState, lr, scale, decay float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	st.t++
	c1 := 1 - math.Pow(beta1, float64(st.t))
	c2 := 1 - math.Pow(beta2, float64(st.t))
	im := lr / c1
	isq := 1 / math.Sqrt(c2)
	mm := st.m[:len(params)]
	vv := st.v[:len(params)]
	gs := grads[:len(params)]
	for i, p := range params {
		g := gs[i]*scale + decay*p
		mi := beta1*mm[i] + (1-beta1)*g
		vi := beta2*vv[i] + (1-beta2)*g*g
		mm[i] = mi
		vv[i] = vi
		params[i] = p - im*mi/(math.Sqrt(vi)*isq+eps)
	}
}

// Accuracy returns the fraction of examples classified correctly. The
// forward passes run through the batched kernels.
func (m *MLP) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	m.predictBatches(examples, func(i, pred int) {
		if pred == examples[i].Y {
			correct++
		}
	})
	return float64(correct) / float64(len(examples))
}

// Split shuffles examples and divides them into train/validation/test sets
// with the paper's 60/20/20 proportions (§VI-A).
func Split(r *rng.Stream, examples []Example, trainFrac, valFrac float64) (train, val, test []Example) {
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		panic(fmt.Sprintf("nn: bad split fractions %g/%g", trainFrac, valFrac))
	}
	shuffled := append([]Example(nil), examples...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := len(shuffled)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	return shuffled[:nTrain], shuffled[nTrain : nTrain+nVal], shuffled[nTrain+nVal:]
}

// ConfusionMatrix is row-normalized: Matrix[true][pred] is the fraction of
// class `true` examples predicted as `pred` (the format of Figs 6, 8, 9).
type ConfusionMatrix struct {
	Classes []string
	Matrix  [][]float64
	Counts  [][]int
}

// Confusion evaluates the model on examples and builds the matrix.
func Confusion(m *MLP, examples []Example, classes []string) *ConfusionMatrix {
	k := len(classes)
	cm := &ConfusionMatrix{Classes: classes}
	cm.Counts = make([][]int, k)
	cm.Matrix = make([][]float64, k)
	for i := 0; i < k; i++ {
		cm.Counts[i] = make([]int, k)
		cm.Matrix[i] = make([]float64, k)
	}
	m.predictBatches(examples, func(i, pred int) {
		cm.Counts[examples[i].Y][pred]++
	})
	for i := 0; i < k; i++ {
		total := 0
		for _, c := range cm.Counts[i] {
			total += c
		}
		if total == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			cm.Matrix[i][j] = float64(cm.Counts[i][j]) / float64(total)
		}
	}
	return cm
}

// AverageAccuracy returns the mean of the diagonal (the paper's headline
// metric: "averaging all the diagonal entries gives the overall average
// accuracy").
func (cm *ConfusionMatrix) AverageAccuracy() float64 {
	if len(cm.Matrix) == 0 {
		return 0
	}
	s := 0.0
	for i := range cm.Matrix {
		s += cm.Matrix[i][i]
	}
	return s / float64(len(cm.Matrix))
}

// String renders the matrix in the style of Fig 6. The rendering is built
// in a strings.Builder (the historical += concatenation reallocated the
// whole string O(k²) times) but stays byte-identical.
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	b.Grow(16 + len(cm.Classes)*6 + len(cm.Matrix)*(10+len(cm.Classes)*6) + 32)
	b.WriteString("true\\pred")
	for j := range cm.Classes {
		fmt.Fprintf(&b, "%6d", j)
	}
	b.WriteByte('\n')
	for i, row := range cm.Matrix {
		fmt.Fprintf(&b, "%8d ", i)
		for _, v := range row {
			fmt.Fprintf(&b, "%6.2f", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "average accuracy: %.1f%%\n", 100*cm.AverageAccuracy())
	return b.String()
}
