package nn

import (
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/rng"
)

// Example is one labeled feature vector.
type Example struct {
	X []float64
	Y int
}

// TrainConfig controls optimization.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// WeightDecay is the L2 penalty coefficient.
	WeightDecay float64
	// Patience stops training after this many epochs without validation
	// improvement (0 disables early stopping).
	Patience int
	// Verbose emits per-epoch progress via the Log callback.
	Log func(epoch int, trainLoss, valAcc float64)
}

// DefaultTrainConfig returns settings that converge for the attack
// feature sizes used in this repository. Early stopping is off by default:
// validation accuracy can sit at chance for several epochs while the loss
// is still falling, and stopping there would under-train the attacker —
// the security evaluation needs the strongest classifier it can get.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, BatchSize: 32, LR: 3e-3, WeightDecay: 1e-5, Patience: 0}
}

// adamState holds per-parameter moments.
type adamState struct {
	m, v []float64
	t    int
}

// Train fits the network on train, monitoring accuracy on val for early
// stopping. It returns the best validation accuracy observed.
func (m *MLP) Train(r *rng.Stream, train, val []Example, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	nLayers := len(m.weights)

	// Gradient buffers and Adam state per layer.
	gw := make([]*dense, nLayers)
	gb := make([][]float64, nLayers)
	aw := make([]*adamState, nLayers)
	ab := make([]*adamState, nLayers)
	for l := range m.weights {
		gw[l] = newDense(m.weights[l].rows, m.weights[l].cols)
		gb[l] = make([]float64, len(m.biases[l]))
		aw[l] = &adamState{m: make([]float64, len(m.weights[l].w)), v: make([]float64, len(m.weights[l].w))}
		ab[l] = &adamState{m: make([]float64, len(m.biases[l])), v: make([]float64, len(m.biases[l]))}
	}
	acts := m.newActs()
	deltas := make([][]float64, len(m.sizes))
	for i, s := range m.sizes {
		deltas[i] = make([]float64, s)
	}

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	bestVal := math.Inf(-1)
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range gw {
				zero(gw[l].w)
				zero(gb[l])
			}
			for _, idx := range order[start:end] {
				ex := train[idx]
				m.forward(ex.X, acts)
				logp := acts[len(acts)-1]
				totalLoss += -logp[ex.Y]
				m.backward(ex, acts, deltas, gw, gb)
			}
			scale := 1 / float64(end-start)
			for l := range gw {
				adamStep(m.weights[l].w, gw[l].w, aw[l], cfg.LR, scale, cfg.WeightDecay)
				adamStep(m.biases[l], gb[l], ab[l], cfg.LR, scale, 0)
			}
		}
		valAcc := m.Accuracy(val)
		if cfg.Log != nil {
			cfg.Log(epoch, totalLoss/float64(len(train)), valAcc)
		}
		if valAcc > bestVal {
			bestVal = valAcc
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if len(val) == 0 {
		return 0
	}
	return bestVal
}

// backward accumulates gradients for one example into gw/gb. acts must hold
// the forward activations for the example.
func (m *MLP) backward(ex Example, acts, deltas [][]float64, gw []*dense, gb [][]float64) {
	L := len(m.weights)
	// Output delta: softmax − onehot (derivative of NLL∘LogSoftmax).
	out := acts[L]
	dOut := deltas[L]
	for j := range dOut {
		p := math.Exp(out[j])
		if j == ex.Y {
			p -= 1
		}
		dOut[j] = p
	}
	for l := L - 1; l >= 0; l-- {
		w := m.weights[l]
		in := acts[l]
		d := deltas[l+1]
		// Gradients.
		g := gw[l]
		for i := 0; i < w.rows; i++ {
			xi := in[i]
			if xi == 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
				continue
			}
			row := g.w[i*w.cols : (i+1)*w.cols]
			for j := range row {
				row[j] += xi * d[j]
			}
		}
		bg := gb[l]
		for j := range bg {
			bg[j] += d[j]
		}
		if l == 0 {
			break
		}
		// Propagate: delta_l = (W delta_{l+1}) ⊙ ReLU'(act_l).
		dPrev := deltas[l]
		for i := 0; i < w.rows; i++ {
			if in[i] <= 0 { // ReLU derivative is 0 here
				dPrev[i] = 0
				continue
			}
			row := w.w[i*w.cols : (i+1)*w.cols]
			s := 0.0
			for j, wv := range row {
				s += wv * d[j]
			}
			dPrev[i] = s
		}
	}
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// adamStep applies one Adam update to params given summed gradients and the
// batch scale factor.
func adamStep(params, grads []float64, st *adamState, lr, scale, decay float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	st.t++
	c1 := 1 - math.Pow(beta1, float64(st.t))
	c2 := 1 - math.Pow(beta2, float64(st.t))
	for i := range params {
		g := grads[i]*scale + decay*params[i]
		st.m[i] = beta1*st.m[i] + (1-beta1)*g
		st.v[i] = beta2*st.v[i] + (1-beta2)*g*g
		params[i] -= lr * (st.m[i] / c1) / (math.Sqrt(st.v[i]/c2) + eps)
	}
}

// Accuracy returns the fraction of examples classified correctly.
func (m *MLP) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	acts := m.newActs()
	for _, ex := range examples {
		m.forward(ex.X, acts)
		logp := acts[len(acts)-1]
		best := 0
		for i, v := range logp {
			if v > logp[best] {
				best = i
			}
		}
		if best == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// Split shuffles examples and divides them into train/validation/test sets
// with the paper's 60/20/20 proportions (§VI-A).
func Split(r *rng.Stream, examples []Example, trainFrac, valFrac float64) (train, val, test []Example) {
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		panic(fmt.Sprintf("nn: bad split fractions %g/%g", trainFrac, valFrac))
	}
	shuffled := append([]Example(nil), examples...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := len(shuffled)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	return shuffled[:nTrain], shuffled[nTrain : nTrain+nVal], shuffled[nTrain+nVal:]
}

// ConfusionMatrix is row-normalized: Matrix[true][pred] is the fraction of
// class `true` examples predicted as `pred` (the format of Figs 6, 8, 9).
type ConfusionMatrix struct {
	Classes []string
	Matrix  [][]float64
	Counts  [][]int
}

// Confusion evaluates the model on examples and builds the matrix.
func Confusion(m *MLP, examples []Example, classes []string) *ConfusionMatrix {
	k := len(classes)
	cm := &ConfusionMatrix{Classes: classes}
	cm.Counts = make([][]int, k)
	cm.Matrix = make([][]float64, k)
	for i := 0; i < k; i++ {
		cm.Counts[i] = make([]int, k)
		cm.Matrix[i] = make([]float64, k)
	}
	acts := m.newActs()
	for _, ex := range examples {
		m.forward(ex.X, acts)
		logp := acts[len(acts)-1]
		best := 0
		for i, v := range logp {
			if v > logp[best] {
				best = i
			}
		}
		cm.Counts[ex.Y][best]++
	}
	for i := 0; i < k; i++ {
		total := 0
		for _, c := range cm.Counts[i] {
			total += c
		}
		if total == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			cm.Matrix[i][j] = float64(cm.Counts[i][j]) / float64(total)
		}
	}
	return cm
}

// AverageAccuracy returns the mean of the diagonal (the paper's headline
// metric: "averaging all the diagonal entries gives the overall average
// accuracy").
func (cm *ConfusionMatrix) AverageAccuracy() float64 {
	if len(cm.Matrix) == 0 {
		return 0
	}
	s := 0.0
	for i := range cm.Matrix {
		s += cm.Matrix[i][i]
	}
	return s / float64(len(cm.Matrix))
}

// String renders the matrix in the style of Fig 6.
func (cm *ConfusionMatrix) String() string {
	out := "true\\pred"
	for j := range cm.Classes {
		out += fmt.Sprintf("%6d", j)
	}
	out += "\n"
	for i, row := range cm.Matrix {
		out += fmt.Sprintf("%8d ", i)
		for _, v := range row {
			out += fmt.Sprintf("%6.2f", v)
		}
		out += "\n"
	}
	out += fmt.Sprintf("average accuracy: %.1f%%\n", 100*cm.AverageAccuracy())
	return out
}
