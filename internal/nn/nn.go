// Package nn implements the attacker's classifier: a multilayer perceptron
// with ReLU hidden layers and a LogSoftmax output (§VI-A: "a three-layer
// multilayer perceptron (MLP) neural network. The network uses ReLU units
// for its hidden layers and the output layer uses Logsoftmax"), trained
// with minibatch gradient descent on a negative log-likelihood loss.
//
// The implementation is a plain feed-forward network over float64 slices —
// no external dependencies — sized for the one-hot-encoded power windows
// and FFT feature vectors the attacks produce.
package nn

import (
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/rng"
)

// MLP is a fully connected network: input → hidden... → output, ReLU
// between layers, LogSoftmax on the output.
type MLP struct {
	sizes   []int
	weights []*dense // weights[l]: sizes[l] × sizes[l+1]
	biases  [][]float64
}

// dense is a minimal row-major weight matrix (rows=in, cols=out).
type dense struct {
	rows, cols int
	w          []float64
}

func newDense(rows, cols int) *dense {
	return &dense{rows: rows, cols: cols, w: make([]float64, rows*cols)}
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(r, 3000, 64, 32, 11) for a three-layer classifier. Weights use
// He initialization (appropriate for ReLU).
func NewMLP(r *rng.Stream, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size %d", s))
		}
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		w := newDense(sizes[l], sizes[l+1])
		std := math.Sqrt(2 / float64(sizes[l]))
		for i := range w.w {
			w.w[i] = r.NormFloat64() * std
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, sizes[l+1]))
	}
	return m
}

// NumClasses returns the output dimension.
func (m *MLP) NumClasses() int { return m.sizes[len(m.sizes)-1] }

// InputSize returns the input dimension.
func (m *MLP) InputSize() int { return m.sizes[0] }

// NumParams returns the trainable parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l].w) + len(m.biases[l])
	}
	return n
}

// forwardInto computes all layer activations, writing into acts (allocated
// by the caller via newActs). acts[0] is the input; acts[L] holds the
// log-probabilities.
func (m *MLP) forward(x []float64, acts [][]float64) {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("nn: input size %d want %d", len(x), m.sizes[0]))
	}
	copy(acts[0], x)
	last := len(m.weights) - 1
	for l, w := range m.weights {
		in, out := acts[l], acts[l+1]
		b := m.biases[l]
		for j := 0; j < w.cols; j++ {
			out[j] = b[j]
		}
		for i := 0; i < w.rows; i++ {
			xi := in[i]
			if xi == 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
				continue // one-hot inputs are mostly zero
			}
			row := w.w[i*w.cols : (i+1)*w.cols]
			for j, wv := range row {
				out[j] += xi * wv
			}
		}
		if l != last {
			for j := range out {
				if out[j] < 0 {
					out[j] = 0 // ReLU
				}
			}
		}
	}
	logSoftmax(acts[len(acts)-1])
}

// logSoftmax converts logits to log-probabilities in place.
func logSoftmax(z []float64) {
	max := z[0]
	for _, v := range z {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range z {
		sum += math.Exp(v - max)
	}
	lse := max + math.Log(sum)
	for i := range z {
		z[i] -= lse
	}
}

func (m *MLP) newActs() [][]float64 {
	acts := make([][]float64, len(m.sizes))
	for i, s := range m.sizes {
		acts[i] = make([]float64, s)
	}
	return acts
}

// Predict returns the most likely class for x.
func (m *MLP) Predict(x []float64) int {
	acts := m.newActs()
	m.forward(x, acts)
	logp := acts[len(acts)-1]
	best := 0
	for i, v := range logp {
		if v > logp[best] {
			best = i
		}
	}
	return best
}

// LogProbs returns the log-probability vector for x.
func (m *MLP) LogProbs(x []float64) []float64 {
	acts := m.newActs()
	m.forward(x, acts)
	out := make([]float64, m.NumClasses())
	copy(out, acts[len(acts)-1])
	return out
}
