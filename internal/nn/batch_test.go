package nn

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
)

// This file keeps the pre-batching per-example training path alive as a
// test-only reference: the batched kernels replaced it in production, and
// these tests pin the replacement to be bit-for-bit identical on a fixed
// seed, not merely close.

// scalarBackward is the historical per-example gradient accumulation.
func scalarBackward(m *MLP, ex Example, acts, deltas [][]float64, gw []*dense, gb [][]float64) {
	L := len(m.weights)
	out := acts[L]
	dOut := deltas[L]
	for j := range dOut {
		p := math.Exp(out[j])
		if j == ex.Y {
			p -= 1
		}
		dOut[j] = p
	}
	for l := L - 1; l >= 0; l-- {
		w := m.weights[l]
		in := acts[l]
		d := deltas[l+1]
		g := gw[l]
		for i := 0; i < w.rows; i++ {
			xi := in[i]
			if xi == 0 {
				continue
			}
			row := g.w[i*w.cols : (i+1)*w.cols]
			for j := range row {
				row[j] += xi * d[j]
			}
		}
		bg := gb[l]
		for j := range bg {
			bg[j] += d[j]
		}
		if l == 0 {
			break
		}
		dPrev := deltas[l]
		for i := 0; i < w.rows; i++ {
			if in[i] <= 0 {
				dPrev[i] = 0
				continue
			}
			row := w.w[i*w.cols : (i+1)*w.cols]
			s := 0.0
			for j, wv := range row {
				s += wv * d[j]
			}
			dPrev[i] = s
		}
	}
}

// scalarAccuracy is the historical per-example evaluation loop.
func scalarAccuracy(m *MLP, examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	acts := m.newActs()
	for _, ex := range examples {
		m.forward(ex.X, acts)
		logp := acts[len(acts)-1]
		best := 0
		for i, v := range logp {
			if v > logp[best] {
				best = i
			}
		}
		if best == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// scalarTrain is the historical per-example training loop, kept verbatim
// (modulo the extracted backward/accuracy helpers above) as the reference
// for the batched Train.
func scalarTrain(m *MLP, r *rng.Stream, train, val []Example, cfg TrainConfig) float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	nLayers := len(m.weights)
	gw := make([]*dense, nLayers)
	gb := make([][]float64, nLayers)
	aw := make([]*adamState, nLayers)
	ab := make([]*adamState, nLayers)
	for l := range m.weights {
		gw[l] = newDense(m.weights[l].rows, m.weights[l].cols)
		gb[l] = make([]float64, len(m.biases[l]))
		aw[l] = &adamState{m: make([]float64, len(m.weights[l].w)), v: make([]float64, len(m.weights[l].w))}
		ab[l] = &adamState{m: make([]float64, len(m.biases[l])), v: make([]float64, len(m.biases[l]))}
	}
	acts := m.newActs()
	deltas := make([][]float64, len(m.sizes))
	for i, s := range m.sizes {
		deltas[i] = make([]float64, s)
	}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	bestVal := math.Inf(-1)
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for l := range gw {
				zero(gw[l].w)
				zero(gb[l])
			}
			for _, idx := range order[start:end] {
				ex := train[idx]
				m.forward(ex.X, acts)
				logp := acts[len(acts)-1]
				totalLoss += -logp[ex.Y]
				scalarBackward(m, ex, acts, deltas, gw, gb)
			}
			scale := 1 / float64(end-start)
			for l := range gw {
				adamStep(m.weights[l].w, gw[l].w, aw[l], cfg.LR, scale, cfg.WeightDecay)
				adamStep(m.biases[l], gb[l], ab[l], cfg.LR, scale, 0)
			}
		}
		valAcc := scalarAccuracy(m, val)
		_ = totalLoss
		if valAcc > bestVal {
			bestVal = valAcc
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if len(val) == 0 {
		return 0
	}
	return bestVal
}

// trainSets builds a dataset with both dense and exactly-zero features (the
// zero-skip path must agree between scalar and batched kernels), sized so
// the final minibatch is partial.
func trainSets(seed uint64, n, dim, classes int) (train, val []Example) {
	r := rng.New(seed)
	all := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			switch {
			case r.Float64() < 0.4:
				x[j] = 0 // exercise the sparsity skip
			default:
				x[j] = r.Normal(float64(i%classes), 1)
			}
		}
		all = append(all, Example{X: x, Y: i % classes})
	}
	cut := n * 3 / 4
	return all[:cut], all[cut:]
}

func TestBatchedTrainMatchesScalarBitForBit(t *testing.T) {
	const seed = 42
	train, val := trainSets(7, 70, 12, 3) // 52 train rows: one full batch of 32, one partial of 20
	cfg := TrainConfig{Epochs: 6, BatchSize: 32, LR: 3e-3, WeightDecay: 1e-5}

	a := NewMLP(rng.New(seed), 12, 16, 8, 3)
	b := NewMLP(rng.New(seed), 12, 16, 8, 3)
	valA := a.Train(rng.New(seed+1), train, val, cfg)
	valB := scalarTrain(b, rng.New(seed+1), train, val, cfg)

	if valA != valB {
		t.Fatalf("best validation accuracy differs: batched %v scalar %v", valA, valB)
	}
	for l := range a.weights {
		for i, w := range a.weights[l].w {
			if w != b.weights[l].w[i] {
				t.Fatalf("layer %d weight %d differs: batched %x scalar %x",
					l, i, math.Float64bits(w), math.Float64bits(b.weights[l].w[i]))
			}
		}
		for j, bv := range a.biases[l] {
			if bv != b.biases[l][j] {
				t.Fatalf("layer %d bias %d differs: batched %x scalar %x",
					l, j, math.Float64bits(bv), math.Float64bits(b.biases[l][j]))
			}
		}
	}
}

func TestBatchedTrainMatchesScalarTinyBatches(t *testing.T) {
	// Batch size 1 degenerates the batched kernels to the scalar shape;
	// batch size larger than the dataset exercises the clamped buffer.
	train, val := trainSets(11, 13, 6, 2)
	for _, bs := range []int{1, 5, 64} {
		cfg := TrainConfig{Epochs: 3, BatchSize: bs, LR: 1e-2}
		a := NewMLP(rng.New(5), 6, 8, 2)
		b := NewMLP(rng.New(5), 6, 8, 2)
		a.Train(rng.New(6), train, val, cfg)
		scalarTrain(b, rng.New(6), train, val, cfg)
		for l := range a.weights {
			for i, w := range a.weights[l].w {
				if w != b.weights[l].w[i] {
					t.Fatalf("batch=%d: layer %d weight %d differs", bs, l, i)
				}
			}
		}
	}
}

func TestBatchedEvalMatchesScalar(t *testing.T) {
	// Accuracy and Confusion run on the batched forward; their per-example
	// decisions must match the scalar forward exactly, including across the
	// evalBatchSize boundary.
	r := rng.New(31)
	m := NewMLP(r, 9, 12, 4)
	var examples []Example
	for i := 0; i < evalBatchSize*2+17; i++ {
		x := make([]float64, 9)
		for j := range x {
			if r.Float64() < 0.3 {
				x[j] = 0
			} else {
				x[j] = r.NormFloat64()
			}
		}
		examples = append(examples, Example{X: x, Y: i % 4})
	}
	if got, want := m.Accuracy(examples), scalarAccuracy(m, examples); got != want {
		t.Fatalf("batched accuracy %v, scalar %v", got, want)
	}
	var batched []int
	m.predictBatches(examples, func(i, pred int) { batched = append(batched, pred) })
	for i, ex := range examples {
		if p := m.Predict(ex.X); p != batched[i] {
			t.Fatalf("example %d: batched pred %d, scalar pred %d", i, batched[i], p)
		}
	}
}

func TestConfusionStringGolden(t *testing.T) {
	cm := &ConfusionMatrix{
		Classes: []string{"a", "b", "c"},
		Matrix: [][]float64{
			{0.9, 0.1, 0},
			{0.25, 0.5, 0.25},
			{0, 0, 1},
		},
	}
	want := "true\\pred     0     1     2\n" +
		"       0   0.90  0.10  0.00\n" +
		"       1   0.25  0.50  0.25\n" +
		"       2   0.00  0.00  1.00\n" +
		"average accuracy: 80.0%\n"
	if got := cm.String(); got != want {
		t.Fatalf("rendering changed:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: batched vs scalar kernels on an attack-shaped network (dense
// 2400-dim features — the production QuantizedWindows/FFT feature width for
// the default 24000-tick traces — with the default 64/32 hidden layers and
// 11 classes). Dense features are the worst case for the scalar path: it
// re-streams the full first-layer weight matrix for every example, where the
// batched kernel streams it once per minibatch. Model initialization runs
// outside the timer: the benchmarks measure training epochs, and the init
// cost is identical constant work on both sides.

const (
	benchDim     = 2400
	benchClasses = 11
)

func benchData(b *testing.B) ([]Example, []Example) {
	b.Helper()
	r := rng.New(77)
	mk := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			x := make([]float64, benchDim)
			for j := range x {
				x[j] = r.Float64()
			}
			out[i] = Example{X: x, Y: i % benchClasses}
		}
		return out
	}
	return mk(256), mk(64)
}

func benchCfg() TrainConfig {
	return TrainConfig{Epochs: 2, BatchSize: 32, LR: 3e-3, WeightDecay: 1e-5}
}

func benchTrain(b *testing.B, train, val []Example, fit func(*MLP)) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewMLP(rng.New(1), benchDim, 64, 32, benchClasses)
		b.StartTimer()
		fit(m)
	}
}

func BenchmarkTrainBatched(b *testing.B) {
	train, val := benchData(b)
	benchTrain(b, train, val, func(m *MLP) {
		m.Train(rng.New(2), train, val, benchCfg())
	})
}

func BenchmarkTrainScalar(b *testing.B) {
	train, val := benchData(b)
	benchTrain(b, train, val, func(m *MLP) {
		scalarTrain(m, rng.New(2), train, val, benchCfg())
	})
}

func BenchmarkAccuracyBatched(b *testing.B) {
	train, _ := benchData(b)
	m := NewMLP(rng.New(1), benchDim, 64, 32, benchClasses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Accuracy(train)
	}
}

func BenchmarkAccuracyScalar(b *testing.B) {
	train, _ := benchData(b)
	m := NewMLP(rng.New(1), benchDim, 64, 32, benchClasses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scalarAccuracy(m, train)
	}
}
