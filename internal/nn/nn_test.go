package nn

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
)

func TestLogSoftmaxNormalized(t *testing.T) {
	z := []float64{1, 2, 3, 4}
	logSoftmax(z)
	sum := 0.0
	for _, v := range z {
		if v > 0 {
			t.Fatalf("log-probability %g > 0", v)
		}
		sum += math.Exp(v)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestLogSoftmaxStability(t *testing.T) {
	z := []float64{1000, 1001, 999}
	logSoftmax(z)
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("unstable logsoftmax: %v", z)
		}
	}
}

func TestMLPShapes(t *testing.T) {
	r := rng.New(1)
	m := NewMLP(r, 10, 8, 4, 3)
	if m.InputSize() != 10 || m.NumClasses() != 3 {
		t.Fatalf("shape wrong: in=%d out=%d", m.InputSize(), m.NumClasses())
	}
	want := 10*8 + 8 + 8*4 + 4 + 4*3 + 3
	if m.NumParams() != want {
		t.Fatalf("params=%d want %d", m.NumParams(), want)
	}
	lp := m.LogProbs(make([]float64, 10))
	if len(lp) != 3 {
		t.Fatalf("logprobs len %d", len(lp))
	}
}

func TestPredictDeterministic(t *testing.T) {
	r := rng.New(2)
	m := NewMLP(r, 5, 4, 2)
	x := []float64{1, 0, 0.5, -1, 0.2}
	if m.Predict(x) != m.Predict(x) {
		t.Fatal("predict not deterministic")
	}
}

// blob generates a linearly separable 2-class dataset.
func blob(r *rng.Stream, n int) []Example {
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		y := i % 2
		cx := -2.0
		if y == 1 {
			cx = 2.0
		}
		out = append(out, Example{
			X: []float64{cx + r.NormFloat64(), r.NormFloat64()},
			Y: y,
		})
	}
	return out
}

func TestTrainsSeparableProblem(t *testing.T) {
	r := rng.New(3)
	data := blob(r, 400)
	train, val, test := Split(r, data, 0.6, 0.2)
	m := NewMLP(r, 2, 8, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	m.Train(r, train, val, cfg)
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("separable accuracy %g", acc)
	}
}

func TestTrainsXOR(t *testing.T) {
	// Nonlinear problem: requires the hidden layer to work.
	r := rng.New(4)
	var data []Example
	for i := 0; i < 600; i++ {
		a, b := r.Float64() > 0.5, r.Float64() > 0.5
		y := 0
		if a != b {
			y = 1
		}
		x := []float64{0, 0}
		if a {
			x[0] = 1
		}
		if b {
			x[1] = 1
		}
		x[0] += 0.1 * r.NormFloat64()
		x[1] += 0.1 * r.NormFloat64()
		data = append(data, Example{X: x, Y: y})
	}
	train, val, test := Split(r, data, 0.6, 0.2)
	m := NewMLP(r, 2, 16, 8, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 80
	cfg.Patience = 0
	m.Train(r, train, val, cfg)
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("XOR accuracy %g", acc)
	}
}

func TestRandomLabelsStayAtChance(t *testing.T) {
	// The Maya GS security premise as seen by the classifier: when features
	// carry no label information, test accuracy stays near chance.
	r := rng.New(5)
	const k = 4
	var data []Example
	for i := 0; i < 800; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		data = append(data, Example{X: x, Y: r.Intn(k)})
	}
	train, val, test := Split(r, data, 0.6, 0.2)
	m := NewMLP(r, 6, 16, k)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	m.Train(r, train, val, cfg)
	if acc := m.Accuracy(test); acc > 0.45 {
		t.Fatalf("uninformative features classified at %g (chance 0.25)", acc)
	}
}

func TestSplitProportionsAndDisjoint(t *testing.T) {
	r := rng.New(6)
	data := blob(r, 100)
	train, val, test := Split(r, data, 0.6, 0.2)
	if len(train) != 60 || len(val) != 20 || len(test) != 20 {
		t.Fatalf("split %d/%d/%d", len(train), len(val), len(test))
	}
}

func TestSplitBadFractionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(rng.New(1), nil, 0.8, 0.3)
}

func TestConfusionMatrix(t *testing.T) {
	r := rng.New(7)
	data := blob(r, 400)
	train, val, test := Split(r, data, 0.6, 0.2)
	m := NewMLP(r, 2, 8, 2)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	m.Train(r, train, val, cfg)
	cm := Confusion(m, test, []string{"neg", "pos"})
	// Rows normalized.
	for i, row := range cm.Matrix {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	if cm.AverageAccuracy() < 0.85 {
		t.Fatalf("avg accuracy %g", cm.AverageAccuracy())
	}
	if cm.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network.
	r := rng.New(8)
	m := NewMLP(r, 3, 4, 2)
	ex := Example{X: []float64{0.5, -0.3, 0.8}, Y: 1}

	loss := func() float64 {
		acts := m.newActs()
		m.forward(ex.X, acts)
		return -acts[len(acts)-1][ex.Y]
	}

	// Analytic gradients.
	gw := []*dense{newDense(3, 4), newDense(4, 2)}
	gb := [][]float64{make([]float64, 4), make([]float64, 2)}
	acts := m.newActs()
	deltas := make([][]float64, 3)
	deltas[0] = make([]float64, 3)
	deltas[1] = make([]float64, 4)
	deltas[2] = make([]float64, 2)
	m.forward(ex.X, acts)
	scalarBackward(m, ex, acts, deltas, gw, gb)

	const h = 1e-6
	for l := range m.weights {
		for i := range m.weights[l].w {
			orig := m.weights[l].w[i]
			m.weights[l].w[i] = orig + h
			lp := loss()
			m.weights[l].w[i] = orig - h
			lm := loss()
			m.weights[l].w[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-gw[l].w[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d weight %d: numeric %g analytic %g", l, i, num, gw[l].w[i])
			}
		}
		for j := range m.biases[l] {
			orig := m.biases[l][j]
			m.biases[l][j] = orig + h
			lp := loss()
			m.biases[l][j] = orig - h
			lm := loss()
			m.biases[l][j] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-gb[l][j]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d bias %d: numeric %g analytic %g", l, j, num, gb[l][j])
			}
		}
	}
}
