package nn

import "math"

// batch holds reusable row-major minibatch buffers for the network's
// batched kernels: acts[l] and deltas[l] are rows×sizes[l] matrices stored
// row-major, labels carries each row's class. actsT[l] additionally keeps
// the transposed (feature-major) copy of each layer's input activations:
// the matrix kernels walk input features column-wise, and the transposed
// copy turns those walks into sequential streams for one cheap transpose
// pass per layer. One batch is allocated per Train/Accuracy/Confusion call
// and reused across every minibatch, so the kernels themselves never
// allocate.
//
// The kernels accumulate each output element in exactly the order the
// original per-example loops did (example-index order per accumulator), so
// training is bit-for-bit identical to the scalar path for a fixed
// rng.Stream — only faster: weight rows are loaded once per minibatch
// instead of once per example.
type batch struct {
	cap    int // allocated row capacity
	acts   [][]float64
	actsT  [][]float64 // actsT[l]: sizes[l]×rows transpose of acts[l], l < len(weights)
	deltas [][]float64
	labels []int
	xsrc   [][]float64 // scratch: the batch's example feature slices
	tRows  int         // row count the actsT buffers were last built for
}

// newBatch allocates minibatch buffers for up to rows examples.
func (m *MLP) newBatch(rows int) *batch {
	if rows < 1 {
		rows = 1
	}
	bb := &batch{
		cap:    rows,
		acts:   make([][]float64, len(m.sizes)),
		actsT:  make([][]float64, len(m.sizes)-1),
		deltas: make([][]float64, len(m.sizes)),
		labels: make([]int, rows),
		xsrc:   make([][]float64, 0, rows),
	}
	for i, s := range m.sizes {
		bb.acts[i] = make([]float64, rows*s)
		bb.deltas[i] = make([]float64, rows*s)
		if i < len(m.sizes)-1 {
			bb.actsT[i] = make([]float64, rows*s)
		}
	}
	return bb
}

// transpose rebuilds actsT[l] from the first rows rows of acts[l].
//
//maya:hotpath
func (bb *batch) transpose(l, width, rows int) {
	src := bb.acts[l]
	dst := bb.actsT[l]
	for i := 0; i < width; i++ {
		col := dst[i*rows:]
		col = col[:rows]
		for bi := range col {
			col[bi] = src[bi*width+i]
		}
	}
}

// load gathers examples into the batch's transposed input matrix and
// labels, returning the row count. The kernels only ever read the input
// layer feature-major, so the features go straight from each example into
// actsT[0] without a row-major staging copy. It panics if an example does
// not match the input size.
func (bb *batch) load(m *MLP, examples []Example, idx []int) int {
	rows := len(idx)
	if rows > bb.cap {
		panic("nn: minibatch larger than batch buffer capacity")
	}
	in := m.sizes[0]
	xs := bb.xsrc[:0]
	for bi, i := range idx {
		ex := examples[i]
		if len(ex.X) != in {
			panic("nn: example feature size does not match network input size")
		}
		xs = append(xs, ex.X)
		bb.labels[bi] = ex.Y
	}
	bb.gather(xs, in, rows)
	return rows
}

// loadRange gathers examples[from:from+rows] in order (the evaluation path,
// which consumes examples sequentially without an index permutation).
func (bb *batch) loadRange(m *MLP, examples []Example, from, rows int) {
	in := m.sizes[0]
	xs := bb.xsrc[:0]
	for bi := 0; bi < rows; bi++ {
		ex := examples[from+bi]
		if len(ex.X) != in {
			panic("nn: example feature size does not match network input size")
		}
		xs = append(xs, ex.X)
		bb.labels[bi] = ex.Y
	}
	bb.gather(xs, in, rows)
}

// gather writes the batch's feature slices into actsT[0] feature-major —
// rows parallel sequential reads, one sequential write stream.
//
//maya:hotpath
func (bb *batch) gather(xs [][]float64, in, rows int) {
	t0 := bb.actsT[0]
	for i := 0; i < in; i++ {
		col := t0[i*rows:]
		col = col[:rows]
		for bi := range col {
			col[bi] = xs[bi][i]
		}
	}
	bb.tRows = rows
}

// forwardBatch runs the network forward over the first rows rows of
// bb.acts[0], leaving per-row log-probabilities in the last activation
// matrix. Each weight row is streamed once per minibatch and reused across
// all rows — the matrix-matrix form of the scalar forward pass — in 4×2
// tiles: four input features by two batch rows, so each weight load feeds
// two independent accumulators (wider tiles spill registers and run slower). Per output element the unrolled accumulation
// `o + x0·r0 + x1·r1 + x2·r2 + x3·r3` associates left-to-right, which is
// exactly the scalar path's sequential order, so results are bit-identical;
// the two rows never mix.
//
//maya:hotpath
func (m *MLP) forwardBatch(bb *batch, rows int) {
	checkBatchRows(bb.tRows == rows)
	last := len(m.weights) - 1
	for l, w := range m.weights {
		inW, cols := w.rows, w.cols
		inT, out := bb.actsT[l], bb.acts[l+1]
		b := m.biases[l]
		for bi := 0; bi < rows; bi++ {
			copy(out[bi*cols:(bi+1)*cols], b)
		}
		i := 0
		for ; i+4 <= inW; i += 4 {
			// Two-step reslices pin every row's length so the compiler
			// proves all the inner-loop indexing in bounds.
			r0 := w.w[i*cols:]
			r0 = r0[:cols]
			r1 := w.w[(i+1)*cols:]
			r1 = r1[:cols]
			r2 := w.w[(i+2)*cols:]
			r2 = r2[:cols]
			r3 := w.w[(i+3)*cols:]
			r3 = r3[:cols]
			xa := inT[i*rows:]
			xa = xa[:rows]
			xb := inT[(i+1)*rows:]
			xb = xb[:rows]
			xc := inT[(i+2)*rows:]
			xc = xc[:rows]
			xd := inT[(i+3)*rows:]
			xd = xd[:rows]
			bi := 0
			for ; bi+2 <= rows; bi += 2 {
				x0, x1, x2, x3 := xa[bi], xb[bi], xc[bi], xd[bi]
				y0, y1, y2, y3 := xa[bi+1], xb[bi+1], xc[bi+1], xd[bi+1]
				oa := out[bi*cols:]
				oa = oa[:cols]
				ob := out[(bi+1)*cols:]
				ob = ob[:cols]
				if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 && y0 != 0 && y1 != 0 && y2 != 0 && y3 != 0 { //nolint:maya/floateq dense fast path; zeros take the exact-skip path in forwardRow4
					for j := range oa {
						rv0, rv1, rv2, rv3 := r0[j], r1[j], r2[j], r3[j]
						oa[j] = oa[j] + x0*rv0 + x1*rv1 + x2*rv2 + x3*rv3
						ob[j] = ob[j] + y0*rv0 + y1*rv1 + y2*rv2 + y3*rv3
					}
					continue
				}
				forwardRow4(oa, x0, x1, x2, x3, r0, r1, r2, r3)
				forwardRow4(ob, y0, y1, y2, y3, r0, r1, r2, r3)
			}
			for ; bi < rows; bi++ {
				o := out[bi*cols:]
				o = o[:cols]
				forwardRow4(o, xa[bi], xb[bi], xc[bi], xd[bi], r0, r1, r2, r3)
			}
		}
		for ; i < inW; i++ {
			row := w.w[i*cols:]
			row = row[:cols]
			xcol := inT[i*rows:]
			xcol = xcol[:rows]
			for bi, xi := range xcol {
				if xi == 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
					continue
				}
				o := out[bi*cols:]
				o = o[:cols]
				for j, wv := range row {
					o[j] += xi * wv
				}
			}
		}
		if l != last {
			hot := out[:rows*cols]
			for j := range hot {
				if hot[j] < 0 {
					hot[j] = 0 // ReLU
				}
			}
			bb.transpose(l+1, cols, rows)
		}
	}
	outW := m.sizes[len(m.sizes)-1]
	logp := bb.acts[len(bb.acts)-1]
	for bi := 0; bi < rows; bi++ {
		logSoftmax(logp[bi*outW : (bi+1)*outW])
	}
}

// backwardBatch accumulates gradients for the first rows rows into gw/gb.
// bb must hold the forward activations and labels for those rows. Per
// gradient element the example contributions arrive in row order — the
// same floating-point summation order as the scalar per-example loop.
//
//maya:hotpath
func (m *MLP) backwardBatch(bb *batch, rows int, gw []*dense, gb [][]float64) {
	checkBatchRows(bb.tRows == rows)
	L := len(m.weights)
	outW := m.sizes[L]
	out := bb.acts[L]
	dOut := bb.deltas[L]
	// Output delta per row: softmax − onehot (derivative of NLL∘LogSoftmax).
	for bi := 0; bi < rows; bi++ {
		o := out[bi*outW : (bi+1)*outW]
		d := dOut[bi*outW : (bi+1)*outW]
		y := bb.labels[bi]
		for j := range d {
			p := math.Exp(o[j])
			if j == y {
				p -= 1
			}
			d[j] = p
		}
	}
	for l := L - 1; l >= 0; l-- {
		w := m.weights[l]
		inW, cols := w.rows, w.cols
		inT := bb.actsT[l]
		d := bb.deltas[l+1]
		// Weight gradients: G += Xᵀ·D in 4×2 tiles: four batch rows by two
		// gradient rows, so each delta load feeds two independent gradient
		// accumulators (wider tiles spill registers and run slower). The unrolled `g + x0·d0 + x1·d1 + x2·d2 + x3·d3`
		// associates left-to-right — batch-row order, exactly the scalar
		// path's summation order per gradient element; the two rows never mix.
		g := gw[l]
		i := 0
		for ; i+2 <= inW; i += 2 {
			grow0 := g.w[i*cols:]
			grow0 = grow0[:cols]
			grow1 := g.w[(i+1)*cols:]
			grow1 = grow1[:cols]
			xc0 := inT[i*rows:]
			xc0 = xc0[:rows]
			xc1 := inT[(i+1)*rows:]
			xc1 = xc1[:rows]
			bi := 0
			for ; bi+4 <= rows; bi += 4 {
				x0, x1, x2, x3 := xc0[bi], xc0[bi+1], xc0[bi+2], xc0[bi+3]
				y0, y1, y2, y3 := xc1[bi], xc1[bi+1], xc1[bi+2], xc1[bi+3]
				d0 := d[bi*cols:]
				d0 = d0[:cols]
				d1 := d[(bi+1)*cols:]
				d1 = d1[:cols]
				d2 := d[(bi+2)*cols:]
				d2 = d2[:cols]
				d3 := d[(bi+3)*cols:]
				d3 = d3[:cols]
				if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 && y0 != 0 && y1 != 0 && y2 != 0 && y3 != 0 { //nolint:maya/floateq dense fast path; zeros take the exact-skip path in gradRow4
					for j := range grow0 {
						dv0, dv1, dv2, dv3 := d0[j], d1[j], d2[j], d3[j]
						grow0[j] = grow0[j] + x0*dv0 + x1*dv1 + x2*dv2 + x3*dv3
						grow1[j] = grow1[j] + y0*dv0 + y1*dv1 + y2*dv2 + y3*dv3
					}
					continue
				}
				gradRow4(grow0, x0, x1, x2, x3, d0, d1, d2, d3)
				gradRow4(grow1, y0, y1, y2, y3, d0, d1, d2, d3)
			}
			for ; bi < rows; bi++ {
				drow := d[bi*cols:]
				drow = drow[:cols]
				if xi := xc0[bi]; xi != 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
					for j, dv := range drow {
						grow0[j] += xi * dv
					}
				}
				if yi := xc1[bi]; yi != 0 { //nolint:maya/floateq sparsity skip
					for j, dv := range drow {
						grow1[j] += yi * dv
					}
				}
			}
		}
		for ; i < inW; i++ {
			grow := g.w[i*cols:]
			grow = grow[:cols]
			xcol := inT[i*rows:]
			xcol = xcol[:rows]
			for bi := 0; bi < rows; bi++ {
				xi := xcol[bi]
				if xi == 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
					continue
				}
				drow := d[bi*cols:]
				drow = drow[:cols]
				for j, dv := range drow {
					grow[j] += xi * dv
				}
			}
		}
		bg := gb[l]
		for bi := 0; bi < rows; bi++ {
			drow := d[bi*cols : (bi+1)*cols]
			for j, dv := range drow {
				bg[j] += dv
			}
		}
		if l == 0 {
			break
		}
		// Propagate: Dprev = (D·Wᵀ) ⊙ ReLU'(act). Four weight rows per pass
		// give four independent dot-product chains over one delta row; each
		// dot product keeps the scalar path's j order. Dots for ReLU-dead
		// units are computed and discarded — the stored value is 0 either
		// way, so results are unchanged and the loop stays branch-light.
		dPrev := bb.deltas[l]
		i = 0
		for ; i+4 <= inW; i += 4 {
			w0 := w.w[i*cols:]
			w0 = w0[:cols]
			w1 := w.w[(i+1)*cols:]
			w1 = w1[:cols]
			w2 := w.w[(i+2)*cols:]
			w2 = w2[:cols]
			w3 := w.w[(i+3)*cols:]
			w3 = w3[:cols]
			xa := inT[i*rows:]
			xa = xa[:rows]
			xb := inT[(i+1)*rows:]
			xb = xb[:rows]
			xc := inT[(i+2)*rows:]
			xc = xc[:rows]
			xd := inT[(i+3)*rows:]
			xd = xd[:rows]
			for bi := range xa {
				drow := d[bi*cols:]
				drow = drow[:cols]
				var s0, s1, s2, s3 float64
				for j, dv := range drow {
					s0 += w0[j] * dv
					s1 += w1[j] * dv
					s2 += w2[j] * dv
					s3 += w3[j] * dv
				}
				p := dPrev[bi*inW+i : bi*inW+i+4]
				p[0], p[1], p[2], p[3] = 0, 0, 0, 0
				if xa[bi] > 0 {
					p[0] = s0
				}
				if xb[bi] > 0 {
					p[1] = s1
				}
				if xc[bi] > 0 {
					p[2] = s2
				}
				if xd[bi] > 0 {
					p[3] = s3
				}
			}
		}
		for ; i < inW; i++ {
			wrow := w.w[i*cols:]
			wrow = wrow[:cols]
			xcol := inT[i*rows:]
			xcol = xcol[:rows]
			for bi, xi := range xcol {
				if xi <= 0 { // ReLU derivative is 0 here
					dPrev[bi*inW+i] = 0
					continue
				}
				drow := d[bi*cols:]
				drow = drow[:cols]
				s := 0.0
				for j, wv := range drow {
					s += wrow[j] * wv
				}
				dPrev[bi*inW+i] = s
			}
		}
	}
}

// forwardRow4 accumulates one output row's contributions from four input
// features, skipping exact zeros term by term in feature order — the scalar
// path's summation order. It is the fallback for rows that fail the dense
// all-nonzero tile check.
//
//maya:hotpath
func forwardRow4(o []float64, x0, x1, x2, x3 float64, r0, r1, r2, r3 []float64) {
	r0 = r0[:len(o)]
	r1 = r1[:len(o)]
	r2 = r2[:len(o)]
	r3 = r3[:len(o)]
	if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 { //nolint:maya/floateq dense fast path; zeros take the exact-skip path below
		for j := range o {
			o[j] = o[j] + x0*r0[j] + x1*r1[j] + x2*r2[j] + x3*r3[j]
		}
		return
	}
	if x0 != 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
		for j, v := range r0 {
			o[j] += x0 * v
		}
	}
	if x1 != 0 { //nolint:maya/floateq sparsity skip
		for j, v := range r1 {
			o[j] += x1 * v
		}
	}
	if x2 != 0 { //nolint:maya/floateq sparsity skip
		for j, v := range r2 {
			o[j] += x2 * v
		}
	}
	if x3 != 0 { //nolint:maya/floateq sparsity skip
		for j, v := range r3 {
			o[j] += x3 * v
		}
	}
}

// gradRow4 accumulates one weight-gradient row's contributions from four
// batch rows, skipping exact zeros term by term in batch-row order — the
// scalar path's summation order. It is the fallback for gradient rows that
// fail the dense all-nonzero tile check.
//
//maya:hotpath
func gradRow4(grow []float64, x0, x1, x2, x3 float64, d0, d1, d2, d3 []float64) {
	d0 = d0[:len(grow)]
	d1 = d1[:len(grow)]
	d2 = d2[:len(grow)]
	d3 = d3[:len(grow)]
	if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 { //nolint:maya/floateq dense fast path; zeros take the exact-skip path below
		for j := range grow {
			grow[j] = grow[j] + x0*d0[j] + x1*d1[j] + x2*d2[j] + x3*d3[j]
		}
		return
	}
	if x0 != 0 { //nolint:maya/floateq sparsity skip: one-hot inputs are exactly zero
		for j, dv := range d0 {
			grow[j] += x0 * dv
		}
	}
	if x1 != 0 { //nolint:maya/floateq sparsity skip
		for j, dv := range d1 {
			grow[j] += x1 * dv
		}
	}
	if x2 != 0 { //nolint:maya/floateq sparsity skip
		for j, dv := range d2 {
			grow[j] += x2 * dv
		}
	}
	if x3 != 0 { //nolint:maya/floateq sparsity skip
		for j, dv := range d3 {
			grow[j] += x3 * dv
		}
	}
}

// checkBatchRows panics when a kernel is invoked for a row count the
// transposed activation buffers were not built for. It lives outside the
// hot kernels so the panic's string boxing stays off the //maya:hotpath
// allocation budget.
func checkBatchRows(ok bool) {
	if !ok {
		panic("nn: batch kernels invoked without a matching load")
	}
}

// evalBatchSize is the row count used by the batched evaluation paths
// (Accuracy, Confusion). Results do not depend on it — rows are
// independent — so it is purely a cache/footprint trade-off.
const evalBatchSize = 64

// predictBatches runs batched forward passes over examples and calls visit
// with each example's index and predicted class, in order.
func (m *MLP) predictBatches(examples []Example, visit func(i, pred int)) {
	if len(examples) == 0 {
		return
	}
	rows := evalBatchSize
	if len(examples) < rows {
		rows = len(examples)
	}
	m.predictWithBatch(m.newBatch(rows), examples, visit)
}

// predictWithBatch is predictBatches over a caller-provided batch buffer;
// Train uses it to evaluate validation accuracy each epoch without
// reallocating. Predictions do not depend on the buffer's row capacity —
// rows are independent.
func (m *MLP) predictWithBatch(bb *batch, examples []Example, visit func(i, pred int)) {
	rows := bb.cap
	outW := m.sizes[len(m.sizes)-1]
	logp := bb.acts[len(bb.acts)-1]
	for from := 0; from < len(examples); from += rows {
		n := rows
		if from+n > len(examples) {
			n = len(examples) - from
		}
		bb.loadRange(m, examples, from, n)
		m.forwardBatch(bb, n)
		for bi := 0; bi < n; bi++ {
			row := logp[bi*outW : (bi+1)*outW]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			visit(from+bi, best)
		}
	}
}
