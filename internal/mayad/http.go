package mayad

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/maya-defense/maya/internal/fleet"
)

// maxSpecBytes bounds one admission request body; a TenantSpec is a few
// hundred bytes, so anything larger is garbage or abuse.
const maxSpecBytes = 1 << 16

// retryAfterSeconds is the constant backoff hint sent with every shed
// (503) response.
const retryAfterSeconds = "1"

// Handler returns the daemon's API mux. cmd/mayad mounts it as the app
// handler of a hardened debugsrv server, which adds /metrics and pprof
// and owns the HTTP lifecycle (timeouts, graceful drain).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tenants", s.handleAdmit)
	mux.HandleFunc("GET /tenants", s.handleList)
	mux.HandleFunc("GET /tenants/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /tenants/{id}", s.handleEvict)
	mux.HandleFunc("GET /tenants/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /tenants/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /traces.csv", s.handleTracesCSV)
	mux.HandleFunc("GET /spill", s.handleSpill)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// shed writes the load-shedding response: 503 with a Retry-After hint.
func shed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var sp TenantSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad tenant spec: " + err.Error()})
		return
	}
	id, err := s.Admit(sp)
	var sa *shedError
	switch {
	case errors.As(err, &sa):
		shed(w, err)
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	st, _ := s.Status(id)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// tenantID parses the {id} path value; a -1 return means the 404 has been
// written.
func tenantID(w http.ResponseWriter, r *http.Request) int {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "bad tenant id"})
		return -1
	}
	return id
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := tenantID(w, r)
	if id < 0 {
		return
	}
	st, ok := s.Status(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no tenant %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := tenantID(w, r)
	if id < 0 {
		return
	}
	ok, err := s.Evict(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no tenant %d", id)})
		return
	}
	if err != nil {
		shed(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"evicted": id})
}

// handleTrace serves one finished tenant's period trace;
// ?format=csv|json|mayt selects the encoding (default csv). The bytes
// come from the shared internal/trace writers, so a converted mayactl
// export compares equal.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := tenantID(w, r)
	if id < 0 {
		return
	}
	tn, ready, ok := s.result(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no tenant %d", id)})
		return
	}
	if !ready {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("tenant %d has not finished", id)})
		return
	}
	d := tenantDataset(tn)
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		err = d.WriteCSV(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		err = d.WriteJSON(w)
	case "mayt", "bin":
		w.Header().Set("Content-Type", "application/octet-stream")
		err = d.WriteBinary(w)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown format %q (csv, json, mayt)", format)})
		return
	}
	_ = err // headers are sent; a broken pipe mid-body is the client's problem
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	id := tenantID(w, r)
	if id < 0 {
		return
	}
	tn, ready, ok := s.result(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no tenant %d", id)})
		return
	}
	if !ready {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("tenant %d has not finished", id)})
		return
	}
	s.mu.Lock()
	flight := tn.flight
	s.mu.Unlock()
	if len(flight) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("tenant %d recorded no flight trace", id)})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = w.Write(flight)
}

// handleTracesCSV streams every finished tenant's trace as one fleet CSV,
// rows ordered by tenant Index. When the daemon holds indices 0..N-1 of
// one base seed, the bytes equal `mayactl -fleet N -csv` output exactly.
func (s *Server) handleTracesCSV(w http.ResponseWriter, _ *http.Request) {
	results, ids := s.finishedResults()
	w.Header().Set("Content-Type", "text/csv")
	_ = fleet.WriteCSV(w, results, ids)
}

func (s *Server) handleSpill(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.DrainSpill())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
