package mayad

import "github.com/maya-defense/maya/internal/telemetry"

// metrics are the daemon's own instruments (the fleet engines underneath
// add the maya_fleet_* series, including fleet_spill_dropped_total's
// maya_fleet_spill_dropped_total).
type metrics struct {
	Admitted *telemetry.Counter
	// Shed counts admissions rejected with 503 + Retry-After: draining,
	// tenant capacity, or a full shard queue.
	Shed    *telemetry.Counter
	Evicted *telemetry.Counter
	Done    *telemetry.Counter
	Failed  *telemetry.Counter
	// Tenants gauges residents (queued + running).
	Tenants *telemetry.Gauge
	Banks   *telemetry.Gauge
	Shards  *telemetry.Gauge
	// Draining is 1 once Drain begins.
	Draining    *telemetry.Gauge
	SpoolErrors *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		Admitted:    reg.Counter("mayad_admitted_total", "tenants accepted by admission control"),
		Shed:        reg.Counter("mayad_admission_shed_total", "admissions shed with 503 (draining, capacity, or full shard queue)"),
		Evicted:     reg.Counter("mayad_evicted_total", "tenants evicted by DELETE before finishing"),
		Done:        reg.Counter("mayad_done_total", "tenant runs completed to MaxTicks"),
		Failed:      reg.Counter("mayad_failed_total", "tenant runs that could not start (design synthesis failed)"),
		Tenants:     reg.Gauge("mayad_tenants", "tenants resident (queued + running)"),
		Banks:       reg.Gauge("mayad_banks", "fleet banks currently stepping across all shards"),
		Shards:      reg.Gauge("mayad_shards", "scheduler shard count"),
		Draining:    reg.Gauge("mayad_draining", "1 once graceful drain has begun"),
		SpoolErrors: reg.Counter("mayad_spool_errors_total", "tenant spool writes that failed during drain"),
	}
}
