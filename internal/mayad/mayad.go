// Package mayad is the fleet-defense daemon behind cmd/mayad: a
// long-running server that admits tenants — (machine, defense, workload,
// seed) quadruples — over HTTP, steps them on a sharded scheduler built
// from internal/fleet banks, and serves their traces, flight records, and
// telemetry back out.
//
// Determinism is the core contract: a tenant admitted with (seed S, index
// I) produces exactly the trace of tenant I in a solo `mayactl -fleet`
// run with base seed S — byte-identical at any shard count, any bank
// packing, and regardless of which other tenants share the daemon. The
// fleet engine's per-tenant independence (pinned by its differential
// tests) makes this structural: each bank slot carries
// fleet.TenantSeeds(S, I) via Spec.SeedAt, so neither scheduling order
// nor co-residency can leak into a tenant's samples.
//
// The daemon degrades under load instead of falling over: admissions pass
// through bounded per-shard queues and a MaxTenants cap, and excess
// requests are shed with 503 + Retry-After (counted in
// mayad_admission_shed_total). Shutdown is a graceful drain: shards stop
// at a period boundary, in-flight banks finalize into bit-identical
// prefixes of their full runs, and tenant traces are spooled to disk.
package mayad

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/trace"
	"github.com/maya-defense/maya/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// Shards is the number of scheduler workers (default 1). Tenants are
	// assigned round-robin; per-tenant determinism makes the count
	// unobservable in any trace.
	Shards int
	// MaxTenants caps tenants resident in the daemon (queued + running);
	// admissions beyond it are shed with 503 (default 64).
	MaxTenants int
	// QueueDepth bounds each shard's command queue; a full queue sheds
	// the admission instead of blocking the HTTP handler (default 16).
	QueueDepth int
	// SpillLimit bounds each bank's spill buffer (drop-oldest); 0 uses
	// 4096.
	SpillLimit int
	// SpoolDir, when non-empty, receives one trace file per finished
	// tenant on drain (tenant-<id>.mayt, plus tenant-<id>.flight.jsonl
	// for Maya tenants with flight recording).
	SpoolDir string
	// Pace, when > 0, sleeps this long between scheduler passes so a
	// small fleet does not spin a core; 0 runs flat out (tests, CI).
	Pace time.Duration
	// DesignFor synthesizes the Maya artifact for a machine config. Nil
	// uses core.DesignFor with core.DefaultDesignOptions — the exact
	// artifact mayactl builds, which the byte-identity contract needs.
	// Tests inject a cheaper synthesis here.
	DesignFor func(sim.Config) (*core.Design, error)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.SpillLimit <= 0 {
		c.SpillLimit = 4096
	}
	if c.DesignFor == nil {
		c.DesignFor = func(cfg sim.Config) (*core.Design, error) {
			return core.DesignFor(cfg, core.DefaultDesignOptions())
		}
	}
	return c
}

// TenantSpec is the admission request body: everything that defines one
// defended tenant. The zero value of each field selects the mayactl
// default, so `{}` admits the same run `mayactl -fleet 1` produces.
type TenantSpec struct {
	// Machine is a built-in preset name (sys1, sys2, sys3; default sys1).
	Machine string `json:"machine,omitempty"`
	// Defense is a design name (baseline, noisy, random, constant, gs;
	// default gs).
	Defense string `json:"defense,omitempty"`
	// Workload uses mayactl's grammar: an app label, video/<name>,
	// web/<name>, instr/<name>, or idle (default blackscholes).
	Workload string `json:"workload,omitempty"`
	// Scale multiplies workload phase work (default 0.2).
	Scale float64 `json:"scale,omitempty"`
	// Seed roots the tenant's seed derivation (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Index selects which derived tenant stream this run carries: the
	// tenant reproduces slot Index of a `mayactl -fleet` run with base
	// seed Seed.
	Index int `json:"index,omitempty"`
	// Seconds is the recorded duration (default 20); MaxTicks overrides
	// it when positive.
	Seconds  float64 `json:"seconds,omitempty"`
	MaxTicks int     `json:"max_ticks,omitempty"`
	// WarmupTicks is the unrecorded warmup (default 2000, mayactl's
	// value; pass a negative value for none).
	WarmupTicks int `json:"warmup_ticks,omitempty"`
	// Faults names a canned fault plan (empty = no faults).
	Faults string `json:"faults,omitempty"`
	// Flight attaches a flight recorder (Maya defenses only).
	Flight bool `json:"flight,omitempty"`
}

// Tenant lifecycle states.
const (
	StateQueued  = "queued"  // admitted, waiting for its shard to bank it
	StateRunning = "running" // stepping in a fleet bank
	StateDone    = "done"    // ran to MaxTicks; results held
	StateDrained = "drained" // stopped early by daemon drain; prefix results held
	StateEvicted = "evicted" // removed by DELETE before finishing
	StateFailed  = "failed"  // admission resolved but the run could not start
)

// tenant is one admitted run. Mutable fields are guarded by Server.mu;
// the shard goroutine takes the lock briefly at each transition.
type tenant struct {
	id    int
	spec  TenantSpec // normalized (defaults applied)
	shard int

	// Resolved at admission (validation) time.
	cfg  sim.Config
	kind defense.Kind
	plan fault.Plan

	state string
	err   string
	// res holds the finished result (done/drained); TickPowerW/TickWallW
	// are released to bound resident memory.
	res fleet.TenantResult
	// flight is the tenant's flight trace, flushed to JSONL bytes at
	// finalization.
	flight []byte
}

// Server is the daemon: admission control, the sharded scheduler, and the
// result store. Create with New, launch with Start, serve Handler over
// HTTP (cmd/mayad mounts it on debugsrv), stop with Drain.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	met     *metrics
	fleetM  *fleet.Metrics
	designs *designCache

	mu       sync.Mutex
	tenants  map[int]*tenant
	nextID   int
	draining bool
	resident int // queued + running tenants, vs cfg.MaxTenants

	shards []*shard
	wg     sync.WaitGroup

	drainOnce sync.Once
}

// New builds a stopped server; metrics register on reg immediately so the
// first scrape sees every series at zero.
func New(cfg Config, reg *telemetry.Registry) *Server {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		met:     newMetrics(reg),
		fleetM:  fleet.NewMetrics(reg),
		designs: &designCache{synth: cfg.DesignFor},
		tenants: make(map[int]*tenant),
	}
	s.met.Shards.Set(float64(cfg.Shards))
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(s, i))
	}
	return s
}

// Registry returns the telemetry registry the daemon's metrics live in.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Start launches the shard workers.
func (s *Server) Start() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			sh.loop()
		}(sh)
	}
}

// shedError is an admission rejection the HTTP layer maps to 503 +
// Retry-After.
type shedError struct{ reason string }

func (e *shedError) Error() string { return "admission shed: " + e.reason }

// normalize applies the mayactl-default zero values.
func (sp TenantSpec) normalize() TenantSpec {
	if sp.Machine == "" {
		sp.Machine = "sys1"
	}
	if sp.Defense == "" {
		sp.Defense = "gs"
	}
	if sp.Workload == "" {
		sp.Workload = "blackscholes"
	}
	if sp.Scale <= 0 {
		sp.Scale = 0.2
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Seconds <= 0 {
		sp.Seconds = 20
	}
	if sp.MaxTicks <= 0 {
		sp.MaxTicks = int(sp.Seconds * 1000)
	}
	switch {
	case sp.WarmupTicks == 0:
		sp.WarmupTicks = 2000
	case sp.WarmupTicks < 0:
		sp.WarmupTicks = 0
	}
	return sp
}

// resolve validates a normalized spec against the name registries.
func (sp TenantSpec) resolve() (sim.Config, defense.Kind, fault.Plan, error) {
	cfg, ok := sim.PresetByName(sp.Machine)
	if !ok {
		return sim.Config{}, 0, fault.Plan{}, fmt.Errorf("unknown machine %q", sp.Machine)
	}
	kind, ok := defense.KindByName(sp.Defense)
	if !ok {
		return sim.Config{}, 0, fault.Plan{}, fmt.Errorf("unknown defense %q", sp.Defense)
	}
	if _, err := workload.New(sp.Workload, sp.Scale); err != nil {
		return sim.Config{}, 0, fault.Plan{}, err
	}
	var plan fault.Plan
	if sp.Faults != "" {
		plan, ok = fault.PlanByName(sp.Faults)
		if !ok {
			return sim.Config{}, 0, fault.Plan{}, fmt.Errorf("unknown fault plan %q", sp.Faults)
		}
	}
	if sp.Flight && !kind.IsMaya() {
		return sim.Config{}, 0, fault.Plan{}, fmt.Errorf("flight recording needs a Maya defense (constant or gs), not %q", sp.Defense)
	}
	return cfg, kind, plan, nil
}

// Admit validates and enqueues a tenant. It returns the assigned id, or a
// *shedError when the daemon is draining, full, or the shard queue has no
// room — the caller sheds with 503 — or a plain error for an invalid spec
// (400).
func (s *Server) Admit(sp TenantSpec) (int, error) {
	sp = sp.normalize()
	cfg, kind, plan, err := sp.resolve()
	if err != nil {
		return 0, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.Shed.Inc()
		return 0, &shedError{"draining"}
	}
	if s.resident >= s.cfg.MaxTenants {
		s.mu.Unlock()
		s.met.Shed.Inc()
		return 0, &shedError{"tenant capacity"}
	}
	id := s.nextID
	s.nextID++
	tn := &tenant{
		id: id, spec: sp, shard: id % s.cfg.Shards,
		cfg: cfg, kind: kind, plan: plan,
		state: StateQueued,
	}
	sh := s.shards[tn.shard]
	select {
	case sh.cmds <- command{admit: tn}:
	default:
		s.mu.Unlock()
		s.met.Shed.Inc()
		return 0, &shedError{"shard queue full"}
	}
	s.tenants[id] = tn
	s.resident++
	s.mu.Unlock()

	s.met.Admitted.Inc()
	s.met.Tenants.Set(float64(s.Resident()))
	return id, nil
}

// Evict removes tenant id. Finished tenants are deleted outright;
// queued/running ones are evicted through their shard (the slot keeps
// stepping unrecorded, invisible to its bank neighbors). The bool reports
// whether the tenant existed.
func (s *Server) Evict(id int) (bool, error) {
	s.mu.Lock()
	tn, ok := s.tenants[id]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	switch tn.state {
	case StateDone, StateDrained, StateEvicted, StateFailed:
		delete(s.tenants, id)
		s.mu.Unlock()
		return true, nil
	}
	sh := s.shards[tn.shard]
	select {
	case sh.cmds <- command{evict: id, hasEvict: true}:
	default:
		s.mu.Unlock()
		return true, &shedError{"shard queue full"}
	}
	s.mu.Unlock()
	s.met.Evicted.Inc()
	return true, nil
}

// Resident reports tenants currently queued or running.
func (s *Server) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident
}

// TenantStatus is the API view of one tenant.
type TenantStatus struct {
	ID    int        `json:"id"`
	State string     `json:"state"`
	Shard int        `json:"shard"`
	Spec  TenantSpec `json:"spec"`
	Error string     `json:"error,omitempty"`
	// Progress of the recorded run, in machine ticks.
	Tick     int `json:"tick"`
	MaxTicks int `json:"max_ticks"`
	// Result summary, present once state is done or drained.
	EnergyJ      float64 `json:"energy_j,omitempty"`
	Seconds      float64 `json:"seconds,omitempty"`
	FinishedTick int64   `json:"finished_tick,omitempty"`
	Samples      int     `json:"samples,omitempty"`
}

func (s *Server) statusLocked(tn *tenant) TenantStatus {
	st := TenantStatus{
		ID: tn.id, State: tn.state, Shard: tn.shard, Spec: tn.spec,
		Error: tn.err, MaxTicks: tn.spec.MaxTicks,
	}
	switch tn.state {
	case StateDone, StateDrained:
		st.Tick = len(tn.res.DefenseSamples) * PeriodTicks
		if st.Tick > st.MaxTicks {
			st.Tick = st.MaxTicks
		}
		st.EnergyJ = tn.res.EnergyJ
		st.Seconds = tn.res.Seconds
		st.FinishedTick = tn.res.FinishedTick
		st.Samples = len(tn.res.DefenseSamples)
	}
	return st
}

// Status returns tenant id's status; ok is false for an unknown id.
func (s *Server) Status(id int) (TenantStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn, ok := s.tenants[id]
	if !ok {
		return TenantStatus{}, false
	}
	return s.statusLocked(tn), true
}

// List returns every tenant's status, ordered by id.
func (s *Server) List() []TenantStatus {
	s.mu.Lock()
	out := make([]TenantStatus, 0, len(s.tenants))
	for _, tn := range s.tenants {
		out = append(out, s.statusLocked(tn))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// result returns a finished tenant's result. ok distinguishes unknown ids
// from known-but-unfinished ones (ready false).
func (s *Server) result(id int) (tn *tenant, ready, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return nil, false, false
	}
	if t.state != StateDone && t.state != StateDrained {
		return t, false, true
	}
	return t, true, true
}

// finishedResults snapshots every finished tenant's result ordered by
// spec Index (ties by id), the order that byte-matches `mayactl -fleet
// -csv` when the daemon holds indices 0..N-1 of one base seed.
func (s *Server) finishedResults() (results []fleet.TenantResult, ids []int) {
	s.mu.Lock()
	var fin []*tenant
	for _, tn := range s.tenants {
		if tn.state == StateDone || tn.state == StateDrained {
			fin = append(fin, tn)
		}
	}
	s.mu.Unlock()
	sort.Slice(fin, func(i, j int) bool {
		if fin[i].spec.Index != fin[j].spec.Index {
			return fin[i].spec.Index < fin[j].spec.Index
		}
		return fin[i].id < fin[j].id
	})
	for _, tn := range fin {
		results = append(results, tn.res)
		ids = append(ids, tn.spec.Index)
	}
	return results, ids
}

// setState flips a tenant's lifecycle state (shard goroutine).
func (s *Server) setState(tn *tenant, state string) {
	s.mu.Lock()
	tn.state = state
	s.mu.Unlock()
}

// transition moves a tenant to a terminal state, storing its result and
// flight bytes and releasing its residency slot.
func (s *Server) transition(tn *tenant, state string, res fleet.TenantResult, flight []byte) {
	s.mu.Lock()
	if tn.state == StateQueued || tn.state == StateRunning {
		s.resident--
	}
	tn.state = state
	tn.res = res
	tn.flight = flight
	resident := s.resident
	s.mu.Unlock()
	s.met.Tenants.Set(float64(resident))
	if state == StateDone {
		s.met.Done.Inc()
	}
}

// fail marks a tenant's run as unstartable (design synthesis failed).
func (s *Server) fail(tn *tenant, err error) {
	s.mu.Lock()
	if tn.state == StateQueued || tn.state == StateRunning {
		s.resident--
	}
	tn.state = StateFailed
	tn.err = err.Error()
	resident := s.resident
	s.mu.Unlock()
	s.met.Tenants.Set(float64(resident))
	s.met.Failed.Inc()
}

// SpillSample is one spilled control-period reading, translated from bank
// slots to tenant ids (-1 when the slot was already evicted).
type SpillSample struct {
	Shard  int     `json:"shard"`
	Tenant int     `json:"tenant"`
	Step   int     `json:"step"`
	PowerW float64 `json:"power_w"`
}

// DrainSpill empties every shard's bank spill buffers: the streaming
// observation tap. Samples older than each bank's bound have been dropped
// (drop-oldest, counted in maya_fleet_spill_dropped_total).
func (s *Server) DrainSpill() []SpillSample {
	out := []SpillSample{}
	for _, sh := range s.shards {
		out = append(out, sh.spillSamples()...)
	}
	return out
}

// Drain stops the daemon gracefully: new admissions shed with 503, every
// shard finalizes its banks at the next period boundary (tenant results
// become bit-identical prefixes of their full runs), and finished traces
// are spooled to Config.SpoolDir. Idempotent; blocks until the shards
// have exited and the spool is flushed.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.met.Draining.Set(1)
		for _, sh := range s.shards {
			close(sh.stop)
		}
		s.wg.Wait()
		if err := s.spool(); err != nil {
			s.met.SpoolErrors.Inc()
		}
	})
}

// spool writes every finished tenant's trace (and flight JSONL, when
// recorded) under Config.SpoolDir.
func (s *Server) spool() error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.SpoolDir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	var fin []*tenant
	for _, tn := range s.tenants {
		if tn.state == StateDone || tn.state == StateDrained {
			fin = append(fin, tn)
		}
	}
	s.mu.Unlock()
	sort.Slice(fin, func(i, j int) bool { return fin[i].id < fin[j].id })
	var firstErr error
	for _, tn := range fin {
		d := tenantDataset(tn)
		path := filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("tenant-%d.mayt", tn.id))
		if err := trace.WriteDatasetFile(path, d); err != nil && firstErr == nil {
			firstErr = err
		}
		if len(tn.flight) > 0 {
			fp := filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("tenant-%d.flight.jsonl", tn.id))
			if err := os.WriteFile(fp, tn.flight, 0o644); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// tenantDataset wraps one finished tenant's period trace as a
// single-trace dataset (PeriodMS from the control period).
func tenantDataset(tn *tenant) *trace.Dataset {
	d := &trace.Dataset{ClassNames: []string{tn.spec.Workload}}
	d.Add(0, float64(PeriodTicks)*tn.cfg.TickSeconds*1000, tn.res.DefenseSamples)
	return d
}

// PeriodTicks is the control period every run uses (the paper's 20 ms).
const PeriodTicks = 20

// designCache memoizes Maya artifact synthesis per machine config name.
// Synthesis is expensive (a full excitation + identification pass), runs
// at most once per machine, and every bank on any shard shares the
// result — exactly the artifact a solo mayactl run builds.
type designCache struct {
	synth func(sim.Config) (*core.Design, error)
	mu    sync.Mutex
	byCfg map[string]*designEntry
}

type designEntry struct {
	once sync.Once
	art  *core.Design
	err  error
}

func (c *designCache) Get(cfg sim.Config) (*core.Design, error) {
	c.mu.Lock()
	if c.byCfg == nil {
		c.byCfg = make(map[string]*designEntry)
	}
	e, ok := c.byCfg[cfg.Name]
	if !ok {
		e = &designEntry{}
		c.byCfg[cfg.Name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.art, e.err = c.synth(cfg) })
	return e.art, e.err
}
