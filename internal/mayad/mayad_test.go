package mayad_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/debugsrv"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/fleet/difftest"
	"github.com/maya-defense/maya/internal/mayad"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/trace"
	"github.com/maya-defense/maya/internal/workload"
)

// Short-run parameters shared by every test: 2 warmup periods + 20
// recorded periods keeps a full daemon round-trip in the -race budget.
const (
	testWarmup   = 40
	testMaxTicks = 400
	testScale    = 0.02
)

func testConfig(shards int) mayad.Config {
	return mayad.Config{
		Shards: shards,
		DesignFor: func(cfg sim.Config) (*core.Design, error) {
			return difftest.DesignFor(cfg)
		},
	}
}

func testSpec(seed uint64, index int) mayad.TenantSpec {
	return mayad.TenantSpec{
		Workload: "blackscholes", Scale: testScale,
		Seed: seed, Index: index,
		MaxTicks: testMaxTicks, WarmupTicks: testWarmup,
		Flight: true,
	}
}

// refResults runs the mayactl-equivalent solo fleet for base seed S and N
// tenants: the byte-identity reference every daemon trace must match.
func refResults(t *testing.T, base uint64, tenants int) []fleet.TenantResult {
	t.Helper()
	cfg := sim.Sys1()
	art, err := difftest.DesignFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fleet.New(fleet.Spec{
		Config:      cfg,
		Kind:        defense.MayaGS,
		Art:         art,
		PeriodTicks: mayad.PeriodTicks,
		Tenants:     tenants,
		BaseSeed:    base,
		NewWorkload: func() workload.Workload {
			return workload.NewApp("blackscholes").Scale(testScale)
		},
		FlightCapacity: testWarmup/mayad.PeriodTicks + testMaxTicks/mayad.PeriodTicks + 8,
		WarmupTicks:    testWarmup,
		MaxTicks:       testMaxTicks,
	}).Run()
}

// admit POSTs a tenant spec and returns the response and decoded status.
func admit(t *testing.T, base string, sp mayad.TenantSpec) (*http.Response, mayad.TenantStatus) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st mayad.TenantStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// dbgServer runs the daemon behind the hardened debugsrv front end, the
// way cmd/mayad serves it: API plus /metrics on one listener.
type dbgServer struct {
	srv    *debugsrv.Server
	cancel context.CancelFunc
	url    string
}

func debugServe(s *mayad.Server) (*dbgServer, error) {
	ctx, cancel := context.WithCancel(context.Background())
	d, err := debugsrv.ServeHandler(ctx, "127.0.0.1:0", s.Registry(), s.Handler())
	if err != nil {
		cancel()
		return nil, err
	}
	return &dbgServer{srv: d, cancel: cancel, url: "http://" + d.Addr()}, nil
}

func (d *dbgServer) close() {
	d.cancel()
	d.srv.Wait()
}

// waitState polls a tenant's status until it reaches one of the wanted
// states (1 ms cadence, bounded tries).
func waitState(t *testing.T, base string, id int, want ...string) mayad.TenantStatus {
	t.Helper()
	var st mayad.TenantStatus
	for tries := 0; tries < 20000; tries++ {
		code, body := get(t, fmt.Sprintf("%s/tenants/%d", base, id))
		if code != http.StatusOK {
			t.Fatalf("status %d for tenant %d: %s", code, id, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("tenant %d stuck in %q, wanted %v", id, st.State, want)
	return st
}

// TestDaemonMatchesFleetAcrossShards is the tentpole acceptance test: N
// tenants admitted over HTTP carrying (seed S, index 0..N-1) must
// produce — at shard counts 1, 2, and 8 — exactly the bytes of a solo
// fleet run with base seed S: the combined /traces.csv, each per-tenant
// trace export in every format, and each flight trace.
func TestDaemonMatchesFleetAcrossShards(t *testing.T) {
	const base, tenants = 0xda3e0, 4
	ref := refResults(t, base, tenants)
	var refCSV bytes.Buffer
	if err := fleet.WriteCSV(&refCSV, ref, nil); err != nil {
		t.Fatal(err)
	}
	// Flight recorders flush once; snapshot the reference bytes before
	// the per-shard subtests each compare against them.
	refFlight := make([][]byte, tenants)
	for i := range refFlight {
		var buf bytes.Buffer
		if err := ref[i].Flight.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		refFlight[i] = buf.Bytes()
	}

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			srv := mayad.New(testConfig(shards), nil)
			srv.Start()
			defer srv.Drain()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for i := 0; i < tenants; i++ {
				resp, st := admit(t, ts.URL, testSpec(base, i))
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("admit %d: status %d", i, resp.StatusCode)
				}
				if st.ID != i {
					t.Fatalf("admit %d: got id %d", i, st.ID)
				}
			}
			for i := 0; i < tenants; i++ {
				st := waitState(t, ts.URL, i, mayad.StateDone)
				if st.Samples != testMaxTicks/mayad.PeriodTicks {
					t.Fatalf("tenant %d: %d samples, want %d", i, st.Samples, testMaxTicks/mayad.PeriodTicks)
				}
			}

			code, gotCSV := get(t, ts.URL+"/traces.csv")
			if code != http.StatusOK {
				t.Fatalf("/traces.csv: status %d", code)
			}
			if !bytes.Equal(gotCSV, refCSV.Bytes()) {
				t.Fatalf("/traces.csv differs from solo fleet run (%d vs %d bytes)", len(gotCSV), refCSV.Len())
			}

			for i := 0; i < tenants; i++ {
				d := &trace.Dataset{ClassNames: []string{"blackscholes"}}
				d.Add(0, 20, ref[i].DefenseSamples)
				var want bytes.Buffer
				if err := d.WriteCSV(&want); err != nil {
					t.Fatal(err)
				}
				if _, got := get(t, fmt.Sprintf("%s/tenants/%d/trace", ts.URL, i)); !bytes.Equal(got, want.Bytes()) {
					t.Fatalf("tenant %d csv trace differs", i)
				}
				want.Reset()
				if err := d.WriteBinary(&want); err != nil {
					t.Fatal(err)
				}
				if _, got := get(t, fmt.Sprintf("%s/tenants/%d/trace?format=mayt", ts.URL, i)); !bytes.Equal(got, want.Bytes()) {
					t.Fatalf("tenant %d mayt trace differs", i)
				}
				if _, got := get(t, fmt.Sprintf("%s/tenants/%d/flight", ts.URL, i)); !bytes.Equal(got, refFlight[i]) {
					t.Fatalf("tenant %d flight trace differs", i)
				}
			}
		})
	}
}

// TestChurnSurvivorsMatchSoloRuns evicts one tenant mid-run over HTTP and
// checks the survivors still finish byte-identical to their solo
// reference — co-residency and churn must never show in a trace.
func TestChurnSurvivorsMatchSoloRuns(t *testing.T) {
	const base, tenants = 0xc0ffee, 3
	ref := refResults(t, base, tenants)

	cfg := testConfig(2)
	cfg.Pace = time.Millisecond // stretch the run so the evict lands mid-flight
	srv := mayad.New(cfg, nil)
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < tenants; i++ {
		if resp, _ := admit(t, ts.URL, testSpec(base, i)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("admit %d failed", i)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/tenants/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d", resp.StatusCode)
	}

	for _, i := range []int{0, 2} {
		st := waitState(t, ts.URL, i, mayad.StateDone)
		if st.EnergyJ != ref[i].EnergyJ {
			t.Fatalf("tenant %d energy %v != %v", i, st.EnergyJ, ref[i].EnergyJ)
		}
		d := &trace.Dataset{ClassNames: []string{"blackscholes"}}
		d.Add(0, 20, ref[i].DefenseSamples)
		var want bytes.Buffer
		if err := d.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if _, got := get(t, fmt.Sprintf("%s/tenants/%d/trace", ts.URL, i)); !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("survivor %d trace differs from solo run", i)
		}
	}
}

// TestAdmissionShedsWhenFull drives admission past MaxTenants and checks
// the shed path end to end: 503, Retry-After, and the counter visible in
// a /metrics scrape through the hardened debugsrv front end.
func TestAdmissionShedsWhenFull(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxTenants = 2
	cfg.Pace = time.Millisecond
	srv := mayad.New(cfg, nil)
	srv.Start()
	defer srv.Drain()

	dbg, err := debugServe(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.close()
	base := dbg.url

	for i := 0; i < 2; i++ {
		if resp, _ := admit(t, base, testSpec(0xfeed, i)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("admit %d failed", i)
		}
	}
	resp, _ := admit(t, base, testSpec(0xfeed, 2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload admit: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}

	code, metrics := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(string(metrics), "mayad_admission_shed_total 1") {
		t.Fatalf("shed counter missing from /metrics:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "mayad_admitted_total 2") {
		t.Fatalf("admitted counter missing from /metrics")
	}
}

// TestShardQueueShedsWhenStalled fills a depth-1 shard queue on a server
// whose shards were never started: the second admission must shed rather
// than block the HTTP handler.
func TestShardQueueShedsWhenStalled(t *testing.T) {
	cfg := testConfig(1)
	cfg.QueueDepth = 1
	srv := mayad.New(cfg, nil) // Start intentionally not called
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := admit(t, ts.URL, testSpec(1, 0)); resp.StatusCode != http.StatusCreated {
		t.Fatal("first admit should fill the queue")
	}
	resp, _ := admit(t, ts.URL, testSpec(1, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-full admit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full shed lost its Retry-After header")
	}
}

// TestDrainFlushesPrefixAndSpools stops the daemon mid-run and checks the
// graceful-drain contract: tenants finalize as bit-identical prefixes of
// their full runs, admissions shed 503 while draining, and traces land in
// the spool directory.
func TestDrainFlushesPrefixAndSpools(t *testing.T) {
	const base = 0xd7a1
	ref := refResults(t, base, 1)

	cfg := testConfig(1)
	cfg.Pace = 2 * time.Millisecond
	cfg.SpoolDir = t.TempDir()
	srv := mayad.New(cfg, nil)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := admit(t, ts.URL, testSpec(base, 0)); resp.StatusCode != http.StatusCreated {
		t.Fatal("admit failed")
	}
	waitState(t, ts.URL, 0, mayad.StateRunning, mayad.StateDone)
	srv.Drain()

	st := waitState(t, ts.URL, 0, mayad.StateDrained, mayad.StateDone)
	if st.Samples == 0 && st.State == mayad.StateDrained {
		// Drained before the first recorded period: legal, but then the
		// prefix check is vacuous; the pace above makes this implausible.
		t.Log("drained with zero samples")
	}
	if st.Samples > len(ref[0].DefenseSamples) {
		t.Fatalf("drained run has %d samples, solo run only %d", st.Samples, len(ref[0].DefenseSamples))
	}

	if resp, _ := admit(t, ts.URL, testSpec(base, 1)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission during drain: status %d, want 503", resp.StatusCode)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: %d %s", code, body)
	}

	// The drained trace is a bit-identical prefix of the solo run.
	_, got := get(t, ts.URL+"/tenants/0/trace")
	d := &trace.Dataset{ClassNames: []string{"blackscholes"}}
	d.Add(0, 20, ref[0].DefenseSamples[:st.Samples])
	var want bytes.Buffer
	if err := d.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("drained trace is not a prefix of the solo run")
	}

	spooled, err := trace.ReadDatasetFile(cfg.SpoolDir+"/tenant-0.mayt", nil)
	if err != nil {
		t.Fatalf("spooled trace unreadable: %v", err)
	}
	if len(spooled.Traces) != 1 || len(spooled.Traces[0].Samples) != st.Samples {
		t.Fatalf("spooled trace has wrong shape: %d traces", len(spooled.Traces))
	}
}

// TestSpillDrainStreams checks the observation tap: spilled samples carry
// daemon tenant ids and match the tenants' recorded period samples.
func TestSpillDrainStreams(t *testing.T) {
	const base = 0x5b11
	srv := mayad.New(testConfig(1), nil)
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := admit(t, ts.URL, testSpec(base, 0)); resp.StatusCode != http.StatusCreated {
		t.Fatal("admit failed")
	}
	waitState(t, ts.URL, 0, mayad.StateDone)

	code, body := get(t, ts.URL+"/spill")
	if code != http.StatusOK {
		t.Fatalf("/spill: status %d", code)
	}
	var samples []mayad.SpillSample
	if err := json.Unmarshal(body, &samples); err != nil {
		t.Fatal(err)
	}
	// The bank is gone once the run finalizes, so a post-completion drain
	// may legally return nothing; what it must never do is invent
	// samples for unknown tenants.
	for _, smp := range samples {
		if smp.Tenant != 0 {
			t.Fatalf("spill sample for unknown tenant %d", smp.Tenant)
		}
	}
}

// TestBadSpecsRejected covers admission validation: unknown names 400,
// malformed JSON 400, unknown tenant 404.
func TestBadSpecsRejected(t *testing.T) {
	srv := mayad.New(testConfig(1), nil)
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, sp := range []mayad.TenantSpec{
		{Machine: "sys9"},
		{Defense: "rot13"},
		{Workload: "solitaire"},
		{Faults: "gremlins"},
		{Defense: "baseline", Flight: true},
	} {
		if resp, _ := admit(t, ts.URL, sp); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", sp, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/tenants", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if code, _ := get(t, ts.URL+"/tenants/99"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
}
