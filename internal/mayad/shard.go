package mayad

import (
	"bytes"
	"sync"
	"time"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/fleet"
	"github.com/maya-defense/maya/internal/workload"
)

// command is one unit of shard work, delivered over the bounded queue.
type command struct {
	admit    *tenant
	evict    int
	hasEvict bool
}

// bankKey groups pending admissions that can share one fleet bank: the
// whole fleet.Spec apart from the per-slot seeds. Per-tenant independence
// means the grouping never shows in a trace — it only batches the
// arithmetic.
type bankKey struct {
	machine  string
	kind     defense.Kind
	workload string
	scale    float64
	warmup   int
	maxTicks int
	faults   string
	flight   bool
}

func (tn *tenant) key() bankKey {
	return bankKey{
		machine: tn.spec.Machine, kind: tn.kind,
		workload: tn.spec.Workload, scale: tn.spec.Scale,
		warmup: tn.spec.WarmupTicks, maxTicks: tn.spec.MaxTicks,
		faults: tn.spec.Faults, flight: tn.spec.Flight,
	}
}

// bank is one fleet engine in flight plus the tenants in its slots.
type bank struct {
	eng   *fleet.Engine
	spill *fleet.Spill
	slots []*tenant
}

// shard is one scheduler worker: it owns its banks outright (only the
// shard goroutine calls engine methods) and talks to the rest of the
// daemon through the bounded cmds queue and brief Server.mu sections.
type shard struct {
	s    *Server
	id   int
	cmds chan command
	stop chan struct{}

	// mu guards the banks slice for the spill-drain reader; the engines
	// themselves are shard-goroutine-only.
	mu    sync.Mutex
	banks []*bank

	// pending holds admitted tenants awaiting bank launch; shard
	// goroutine only.
	pending []*tenant
}

func newShard(s *Server, id int) *shard {
	return &shard{
		s: s, id: id,
		cmds: make(chan command, s.cfg.QueueDepth),
		stop: make(chan struct{}),
	}
}

// loop is the shard scheduler: drain commands, launch pending tenants
// into banks, advance every bank one control period, repeat. On stop it
// finalizes in-flight banks at the period boundary so every tenant holds
// a bit-identical prefix of its full run.
func (sh *shard) loop() {
	for {
		if len(sh.banks) == 0 && len(sh.pending) == 0 {
			// Idle: block until work or drain arrives.
			select {
			case cmd := <-sh.cmds:
				sh.handle(cmd)
			case <-sh.stop:
				sh.shutdown()
				return
			}
		}
	drain:
		for {
			select {
			case cmd := <-sh.cmds:
				sh.handle(cmd)
			default:
				break drain
			}
		}
		select {
		case <-sh.stop:
			sh.shutdown()
			return
		default:
		}
		sh.launch()
		sh.stepOnce()
		if sh.s.cfg.Pace > 0 && len(sh.banks) > 0 {
			time.Sleep(sh.s.cfg.Pace)
		}
	}
}

func (sh *shard) handle(cmd command) {
	if cmd.admit != nil {
		sh.pending = append(sh.pending, cmd.admit)
	}
	if cmd.hasEvict {
		sh.evict(cmd.evict)
	}
}

func (sh *shard) evict(id int) {
	for i, tn := range sh.pending {
		if tn.id == id {
			sh.pending = append(sh.pending[:i], sh.pending[i+1:]...)
			sh.s.transition(tn, StateEvicted, fleet.TenantResult{}, nil)
			return
		}
	}
	for bi, b := range sh.banks {
		for slot, tn := range b.slots {
			if tn == nil || tn.id != id {
				continue
			}
			b.eng.Evict(slot)
			sh.mu.Lock() // the spill reader iterates b.slots
			b.slots[slot] = nil
			sh.mu.Unlock()
			sh.s.transition(tn, StateEvicted, fleet.TenantResult{}, nil)
			if b.eng.Alive() == 0 {
				// Every slot is dead: the bank is pure overhead, drop it.
				sh.removeBank(bi)
			}
			return
		}
	}
}

// launch groups pending tenants by bank key and starts one fleet bank per
// group. Tenants admitted in one scheduler pass with identical specs
// share a bank; the grouping is invisible in their traces.
func (sh *shard) launch() {
	if len(sh.pending) == 0 {
		return
	}
	groups := make(map[bankKey][]*tenant)
	var order []bankKey
	for _, tn := range sh.pending {
		k := tn.key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], tn)
	}
	sh.pending = sh.pending[:0]
	for _, k := range order {
		sh.launchBank(groups[k])
	}
}

func (sh *shard) launchBank(group []*tenant) {
	lead := group[0]
	sp := lead.spec
	maya := lead.kind.IsMaya()

	var art *core.Design
	if maya {
		var err error
		art, err = sh.s.designs.Get(lead.cfg)
		if err != nil {
			for _, tn := range group {
				sh.s.fail(tn, err)
			}
			return
		}
	}

	spec := fleet.Spec{
		Config:      lead.cfg,
		Kind:        lead.kind,
		Art:         art,
		PeriodTicks: PeriodTicks,
		Tenants:     len(group),
		SeedAt: func(t int) (uint64, uint64, uint64, uint64) {
			return fleet.TenantSeeds(group[t].spec.Seed, group[t].spec.Index)
		},
		Plan:        lead.plan,
		WarmupTicks: sp.WarmupTicks,
		MaxTicks:    sp.MaxTicks,
	}
	if sp.Workload != "idle" {
		name, scale := sp.Workload, sp.Scale
		spec.NewWorkload = func() workload.Workload {
			w, err := workload.New(name, scale)
			if err != nil {
				panic(err) // validated at admission
			}
			return w
		}
	}
	if sp.Faults != "" && maya {
		g := core.DefaultGuard(lead.cfg)
		spec.Guard = &g
	}
	if sp.Flight {
		spec.FlightCapacity = sp.WarmupTicks/PeriodTicks + sp.MaxTicks/PeriodTicks + 8
	}

	eng := fleet.New(spec)
	eng.SetMetrics(sh.s.fleetM)
	spill := fleet.NewSpill(sh.s.cfg.SpillLimit)
	spill.SetDropCounter(sh.s.fleetM.SpillDropped)
	eng.SetSpill(spill)
	eng.Start()

	b := &bank{eng: eng, spill: spill, slots: append([]*tenant(nil), group...)}
	sh.mu.Lock()
	sh.banks = append(sh.banks, b)
	sh.mu.Unlock()
	sh.s.met.Banks.Add(1)
	for _, tn := range group {
		sh.s.setState(tn, StateRunning)
	}
}

// stepOnce advances every bank one control period, finalizing banks that
// reached MaxTicks.
func (sh *shard) stepOnce() {
	for bi := 0; bi < len(sh.banks); {
		b := sh.banks[bi]
		if b.eng.StepPeriod() {
			bi++
			continue
		}
		sh.finalize(b, StateDone)
		sh.removeBank(bi)
	}
}

// finalize reads a bank's results and hands each surviving tenant its
// trace; state is StateDone for natural completion, StateDrained when the
// daemon stopped the run early (the results are then a bit-identical
// prefix of the full run).
func (sh *shard) finalize(b *bank, state string) {
	results := b.eng.Results()
	for slot, tn := range b.slots {
		if tn == nil {
			continue
		}
		res := results[slot]
		var flight []byte
		if res.Flight != nil {
			var buf bytes.Buffer
			if err := res.Flight.Flush(&buf); err == nil {
				flight = buf.Bytes()
			}
		}
		// Release the bulky per-tick traces; the period-level trace,
		// inputs, and targets are what the export endpoints serve.
		res.TickPowerW = nil
		res.TickWallW = nil
		res.Flight = nil
		sh.s.transition(tn, state, res, flight)
	}
}

func (sh *shard) removeBank(i int) {
	sh.mu.Lock()
	sh.banks = append(sh.banks[:i], sh.banks[i+1:]...)
	sh.mu.Unlock()
	sh.s.met.Banks.Add(-1)
}

// shutdown drains the command queue (late admissions finalize empty, as
// drained), then finalizes every in-flight bank at the current period
// boundary.
func (sh *shard) shutdown() {
	for {
		select {
		case cmd := <-sh.cmds:
			sh.handle(cmd)
		default:
			for _, tn := range sh.pending {
				sh.s.transition(tn, StateDrained, fleet.TenantResult{}, nil)
			}
			sh.pending = nil
			for _, b := range sh.banks {
				sh.finalize(b, StateDrained)
			}
			sh.mu.Lock()
			sh.banks = nil
			sh.mu.Unlock()
			return
		}
	}
}

// spillSamples drains this shard's bank spills, translating bank slots to
// tenant ids.
func (sh *shard) spillSamples() []SpillSample {
	sh.mu.Lock()
	banks := append([]*bank(nil), sh.banks...)
	sh.mu.Unlock()
	var out []SpillSample
	for _, b := range banks {
		for _, smp := range b.spill.Drain() {
			id := -1
			if smp.Tenant < len(b.slots) && b.slots[smp.Tenant] != nil {
				id = b.slots[smp.Tenant].id
			}
			out = append(out, SpillSample{
				Shard: sh.id, Tenant: id, Step: smp.Step, PowerW: smp.PowerW,
			})
		}
	}
	return out
}
