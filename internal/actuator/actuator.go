// Package actuator models the three power-changing inputs that Maya
// actuates (§V): the DVFS level (cpufreq), the idle-injection level
// (Intel powerclamp), and the balloon-application level. Each input is a
// quantized knob with a legal range and step; the controller works in a
// normalized [0, 1] space and the knob translates between the two.
package actuator

import (
	"fmt"
	"math"
)

// Knob is a quantized actuator input.
type Knob struct {
	Name string
	Min  float64
	Max  float64
	Step float64
}

// NewKnob validates and returns a knob.
func NewKnob(name string, min, max, step float64) Knob {
	if max < min {
		panic(fmt.Sprintf("actuator: %s max %g < min %g", name, max, min))
	}
	if step < 0 {
		panic(fmt.Sprintf("actuator: %s negative step", name))
	}
	return Knob{Name: name, Min: min, Max: max, Step: step}
}

// Quantize clamps v to [Min, Max] and snaps it to the nearest legal step.
func (k Knob) Quantize(v float64) float64 {
	if v < k.Min {
		v = k.Min
	}
	if v > k.Max {
		v = k.Max
	}
	if k.Step == 0 { //nolint:maya/floateq Step==0 is the unquantized-knob sentinel, set exactly
		return v
	}
	n := math.Round((v - k.Min) / k.Step)
	q := k.Min + n*k.Step
	if q > k.Max {
		q -= k.Step
	}
	if q < k.Min {
		q = k.Min
	}
	return q
}

// QuantizeSlab is Quantize applied element-wise across a tenant slab: the
// fleet engine's batched actuator commit. Each element runs the exact
// arithmetic of Quantize, so dst[i] is bit-identical to Quantize(src[i]).
// dst and src may alias; they must have equal length.
//
//maya:hotpath
func (k Knob) QuantizeSlab(dst, src []float64) {
	checkSlabLens(len(dst) == len(src))
	if k.Step == 0 { //nolint:maya/floateq Step==0 is the unquantized-knob sentinel, set exactly
		for i, v := range src {
			if v < k.Min {
				v = k.Min
			}
			if v > k.Max {
				v = k.Max
			}
			dst[i] = v
		}
		return
	}
	for i, v := range src {
		if v < k.Min {
			v = k.Min
		}
		if v > k.Max {
			v = k.Max
		}
		n := math.Round((v - k.Min) / k.Step)
		q := k.Min + n*k.Step
		if q > k.Max {
			q -= k.Step
		}
		if q < k.Min {
			q = k.Min
		}
		dst[i] = q
	}
}

// checkSlabLens panics when the QuantizeSlab destination does not match the
// source length. It lives outside the slab kernel so the panic's string
// boxing stays off the //maya:hotpath allocation budget.
func checkSlabLens(ok bool) {
	if !ok {
		panic("actuator: QuantizeSlab length mismatch")
	}
}

// Levels returns the number of legal settings.
func (k Knob) Levels() int {
	if k.Step == 0 { //nolint:maya/floateq Step==0 is the unquantized-knob sentinel, set exactly
		return 1
	}
	return int(math.Floor((k.Max-k.Min)/k.Step+1e-9)) + 1
}

// FromNorm maps a normalized value x in [0, 1] to a quantized knob setting.
// Values outside [0, 1] are clamped.
func (k Knob) FromNorm(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return k.Quantize(k.Min + x*(k.Max-k.Min))
}

// ToNorm maps a knob setting to [0, 1].
func (k Knob) ToNorm(v float64) float64 {
	if k.Max == k.Min { //nolint:maya/floateq degenerate-range guard; Max and Min are exact config values
		return 0
	}
	x := (v - k.Min) / (k.Max - k.Min)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// Set bundles Maya's three inputs for one machine.
type Set struct {
	DVFS    Knob // core frequency in GHz
	Idle    Knob // forced-idle fraction
	Balloon Knob // balloon duty fraction
}

// StandardIdle returns the powerclamp-style idle knob: 0–48 % in 4 % steps
// (§V: "can be 0%-48% in steps of 4%").
func StandardIdle() Knob { return NewKnob("idle", 0, 0.48, 0.04) }

// StandardBalloon returns the balloon knob: 0–100 % in 10 % steps
// (§V: "can be 0%-100% in steps of 10%").
func StandardBalloon() Knob { return NewKnob("balloon", 0, 1.0, 0.10) }

// DVFSKnob returns a cpufreq-style ladder between min and max GHz with
// 0.1 GHz increments (§V).
func DVFSKnob(minGHz, maxGHz float64) Knob {
	return NewKnob("dvfs", minGHz, maxGHz, 0.1)
}

// Norms returns the normalized values of the three inputs as the vector
// ordering used throughout the controller: [dvfs, idle, balloon].
func (s Set) Norms(dvfs, idle, balloon float64) [3]float64 {
	return [3]float64{s.DVFS.ToNorm(dvfs), s.Idle.ToNorm(idle), s.Balloon.ToNorm(balloon)}
}

// FromNorms quantizes a normalized input vector into knob settings.
func (s Set) FromNorms(u [3]float64) (dvfs, idle, balloon float64) {
	return s.DVFS.FromNorm(u[0]), s.Idle.FromNorm(u[1]), s.Balloon.FromNorm(u[2])
}

// FromNormInfo is FromNorm plus a clip report: clipped is true when x lay
// outside [0, 1], i.e. the commanded value exceeded the knob's authority
// and was clamped before quantization. The telemetry layer counts these
// events; sustained clipping on a knob means the controller is asking for
// more range than the actuator has.
func (k Knob) FromNormInfo(x float64) (v float64, clipped bool) {
	clipped = x < 0 || x > 1
	return k.FromNorm(x), clipped
}

// FromNormsInfo quantizes like FromNorms and reports, per input, whether
// the normalized command was clipped to [0, 1].
func (s Set) FromNormsInfo(u [3]float64) (dvfs, idle, balloon float64, clipped [3]bool) {
	dvfs, clipped[0] = s.DVFS.FromNormInfo(u[0])
	idle, clipped[1] = s.Idle.FromNormInfo(u[1])
	balloon, clipped[2] = s.Balloon.FromNormInfo(u[2])
	return dvfs, idle, balloon, clipped
}
