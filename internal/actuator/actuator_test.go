package actuator

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/maya-defense/maya/internal/rng"
)

func TestQuantizeSnapAndClamp(t *testing.T) {
	k := NewKnob("dvfs", 1.2, 2.0, 0.1)
	cases := []struct{ in, want float64 }{
		{1.23, 1.2}, {1.26, 1.3}, {0.5, 1.2}, {9, 2.0}, {1.95, 2.0}, {1.2, 1.2},
	}
	for _, c := range cases {
		if got := k.Quantize(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantize(%g)=%g want %g", c.in, got, c.want)
		}
	}
}

func TestLevels(t *testing.T) {
	if got := NewKnob("dvfs", 1.2, 2.0, 0.1).Levels(); got != 9 {
		t.Fatalf("dvfs levels=%d want 9", got)
	}
	if got := StandardIdle().Levels(); got != 13 {
		t.Fatalf("idle levels=%d want 13 (0..48%% by 4%%)", got)
	}
	if got := StandardBalloon().Levels(); got != 11 {
		t.Fatalf("balloon levels=%d want 11 (0..100%% by 10%%)", got)
	}
}

func TestNormRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := DVFSKnob(0.8, 3.5)
		x := r.Float64()
		v := k.FromNorm(x)
		// Quantized value must be a legal ladder setting within range.
		if v < k.Min-1e-9 || v > k.Max+1e-9 {
			return false
		}
		steps := (v - k.Min) / k.Step
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			return false
		}
		// Round-tripping through norm space must be idempotent.
		return math.Abs(k.FromNorm(k.ToNorm(v))-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromNormClamps(t *testing.T) {
	k := StandardIdle()
	if k.FromNorm(-3) != 0 {
		t.Fatal("negative norm should clamp to min")
	}
	if math.Abs(k.FromNorm(5)-0.48) > 1e-9 {
		t.Fatal("norm > 1 should clamp to max")
	}
}

func TestSetVectorOrdering(t *testing.T) {
	s := Set{DVFS: DVFSKnob(1.2, 2.0), Idle: StandardIdle(), Balloon: StandardBalloon()}
	u := s.Norms(2.0, 0, 1.0)
	if u[0] != 1 || u[1] != 0 || u[2] != 1 {
		t.Fatalf("norms=%v", u)
	}
	d, i, b := s.FromNorms([3]float64{0, 1, 0.5})
	if d != 1.2 || math.Abs(i-0.48) > 1e-9 || math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("FromNorms=(%g,%g,%g)", d, i, b)
	}
}

func TestFromNormsInfoClipFlags(t *testing.T) {
	s := Set{DVFS: DVFSKnob(1.2, 2.0), Idle: StandardIdle(), Balloon: StandardBalloon()}

	// In-range commands produce the same values as FromNorms and no clips.
	in := [3]float64{0.5, 0.25, 1}
	d, i, b, clipped := s.FromNormsInfo(in)
	wd, wi, wb := s.FromNorms(in)
	if d != wd || i != wi || b != wb {
		t.Fatalf("FromNormsInfo=(%g,%g,%g) disagrees with FromNorms=(%g,%g,%g)", d, i, b, wd, wi, wb)
	}
	if clipped != [3]bool{false, false, false} {
		t.Fatalf("in-range command reported clips: %v", clipped)
	}
	// Boundary values are legal, not clipped.
	if _, _, _, c := s.FromNormsInfo([3]float64{0, 1, 0}); c != [3]bool{false, false, false} {
		t.Fatalf("boundary command reported clips: %v", c)
	}

	// Out-of-range commands clamp to the same value FromNorm gives and flag
	// exactly the offending axes.
	d, i, b, clipped = s.FromNormsInfo([3]float64{-0.2, 1.7, 0.5})
	if d != 1.2 || math.Abs(i-0.48) > 1e-9 || math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("clamped values (%g,%g,%g)", d, i, b)
	}
	if clipped != [3]bool{true, true, false} {
		t.Fatalf("clip flags %v, want [true true false]", clipped)
	}
}

func TestZeroStepKnob(t *testing.T) {
	k := NewKnob("fixed", 5, 5, 0)
	if k.Levels() != 1 || k.Quantize(99) != 5 || k.ToNorm(5) != 0 {
		t.Fatal("degenerate knob misbehaves")
	}
}
