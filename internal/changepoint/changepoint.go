// Package changepoint implements offline change-point detection for power
// traces, reproducing the signal-analysis step of §VII-B (Fig 11): the paper
// uses MATLAB's findchangepts to show that application phases remain
// recoverable under every defense except Maya GS.
//
// Two detectors are provided: PELT (Pruned Exact Linear Time) with a
// per-change-point penalty, and top-down binary segmentation with a fixed
// change-point budget. Both support a cost over mean shifts or joint
// mean+variance shifts (Gaussian likelihood cost).
package changepoint

import (
	"math"
	"sort"
)

// Cost selects the segment-cost model.
type Cost int

const (
	// CostMean penalizes squared deviation from the segment mean; detects
	// level shifts.
	CostMean Cost = iota
	// CostMeanVar is the Gaussian negative log-likelihood cost; detects
	// changes in mean and/or variance.
	CostMeanVar
	// CostEdge fits each segment with a straight line and penalizes the
	// residual: it detects slope changes ("edges" — the paper lists mean,
	// variance, edges, and fourier coefficients as the properties
	// change-point analysis targets, §VII-B).
	CostEdge
)

// prefix sums enable O(1) segment cost evaluation.
type prefixes struct {
	sum   []float64 // sum[i] = x[0]+..+x[i-1]
	sumSq []float64
	sumTX []float64 // sumTX[i] = Σ_{j<i} j·x[j] (for linear-fit costs)
}

func newPrefixes(x []float64) *prefixes {
	n := len(x)
	p := &prefixes{
		sum:   make([]float64, n+1),
		sumSq: make([]float64, n+1),
		sumTX: make([]float64, n+1),
	}
	for i, v := range x {
		p.sum[i+1] = p.sum[i] + v
		p.sumSq[i+1] = p.sumSq[i] + v*v
		p.sumTX[i+1] = p.sumTX[i] + float64(i)*v
	}
	return p
}

// segCost returns the cost of the segment x[a:b] (b exclusive, b > a).
func (p *prefixes) segCost(a, b int, cost Cost) float64 {
	n := float64(b - a)
	s := p.sum[b] - p.sum[a]
	ss := p.sumSq[b] - p.sumSq[a]
	mean := s / n
	// Sum of squared deviations from the mean.
	sse := ss - n*mean*mean
	if sse < 0 {
		sse = 0 // guard round-off
	}
	switch cost {
	case CostMean:
		return sse
	case CostEdge:
		// Residual of the least-squares line over the segment, computed
		// from prefix sums in O(1). Local time τ = 0..n−1.
		if b-a < 3 {
			return 0
		}
		sumTau := n * (n - 1) / 2
		sumTau2 := n * (n - 1) * (2*n - 1) / 6
		sumTauX := (p.sumTX[b] - p.sumTX[a]) - float64(a)*s
		den := n*sumTau2 - sumTau*sumTau
		if den <= 0 {
			return sse
		}
		beta := (n*sumTauX - sumTau*s) / den
		alpha := (s - beta*sumTau) / n
		// With the normal equations satisfied, SSE collapses to
		// Σx² − αΣx − βΣτx.
		lineSSE := ss - alpha*s - beta*sumTauX
		if lineSSE < 0 {
			lineSSE = 0
		}
		return lineSSE
	case CostMeanVar:
		// Gaussian NLL up to constants: n * log(variance), floored to avoid
		// -inf on constant segments.
		v := sse / n
		const minVar = 1e-8
		if v < minVar {
			v = minVar
		}
		return n * math.Log(v)
	default:
		panic("changepoint: unknown cost")
	}
}

// PELT finds change points minimizing total segment cost plus penalty per
// change point. It returns the sorted indices where new segments begin
// (excluding 0). minSegment sets the smallest allowed segment length
// (values < 1 are treated as 1).
func PELT(x []float64, cost Cost, penalty float64, minSegment int) []int {
	n := len(x)
	if n == 0 {
		return nil
	}
	if minSegment < 1 {
		minSegment = 1
	}
	p := newPrefixes(x)
	// f[t] = minimal cost of segmenting x[0:t].
	f := make([]float64, n+1)
	prev := make([]int, n+1)
	f[0] = -penalty
	for i := 1; i <= n; i++ {
		f[i] = math.Inf(1)
	}
	candidates := []int{0}
	for t := minSegment; t <= n; t++ {
		bestCost, bestPrev := math.Inf(1), 0
		for _, s := range candidates {
			if t-s < minSegment {
				continue
			}
			c := f[s] + p.segCost(s, t, cost) + penalty
			if c < bestCost {
				bestCost, bestPrev = c, s
			}
		}
		f[t] = bestCost
		prev[t] = bestPrev
		// PELT pruning: drop candidates that can never win again.
		pruned := candidates[:0]
		for _, s := range candidates {
			if t-s < minSegment || f[s]+p.segCost(s, t, cost) <= f[t] {
				pruned = append(pruned, s)
			}
		}
		candidates = append(pruned, t-minSegment+1)
	}
	// Backtrack.
	var cps []int
	for t := n; t > 0; {
		s := prev[t]
		if s > 0 {
			cps = append(cps, s)
		}
		t = s
	}
	sort.Ints(cps)
	return cps
}

// BinarySegmentation splits the signal top-down until either maxChanges
// change points are found or no split improves cost by more than minGain.
// It returns sorted change-point indices.
func BinarySegmentation(x []float64, cost Cost, maxChanges int, minGain float64, minSegment int) []int {
	n := len(x)
	if n == 0 || maxChanges <= 0 {
		return nil
	}
	if minSegment < 1 {
		minSegment = 1
	}
	p := newPrefixes(x)

	type split struct {
		a, b int // segment bounds
		at   int // best split position
		gain float64
	}
	bestSplit := func(a, b int) split {
		s := split{a: a, b: b, at: -1, gain: 0}
		if b-a < 2*minSegment {
			return s
		}
		whole := p.segCost(a, b, cost)
		for t := a + minSegment; t <= b-minSegment; t++ {
			g := whole - (p.segCost(a, t, cost) + p.segCost(t, b, cost))
			if g > s.gain {
				s.gain, s.at = g, t
			}
		}
		return s
	}

	segments := []split{bestSplit(0, n)}
	var cps []int
	for len(cps) < maxChanges {
		// Pick the segment whose best split yields the largest gain.
		bi, bg := -1, minGain
		for i, s := range segments {
			if s.at >= 0 && s.gain > bg {
				bi, bg = i, s.gain
			}
		}
		if bi < 0 {
			break
		}
		s := segments[bi]
		cps = append(cps, s.at)
		segments[bi] = bestSplit(s.a, s.at)
		segments = append(segments, bestSplit(s.at, s.b))
	}
	sort.Ints(cps)
	return cps
}

// MatchScore compares detected change points against ground truth: it
// returns the fraction of true change points that have a detection within
// tol samples. Used by tests and the Fig 11 harness to quantify "phases
// recoverable" vs "phases erased".
func MatchScore(truth, detected []int, tol int) float64 {
	if len(truth) == 0 {
		return 1
	}
	hits := 0
	for _, tr := range truth {
		for _, d := range detected {
			if abs(d-tr) <= tol {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(truth))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
