package changepoint

import (
	"testing"
	"testing/quick"

	"github.com/maya-defense/maya/internal/rng"
)

// step builds a piecewise-constant signal with noise.
func step(r *rng.Stream, levels []float64, segLen int, noise float64) ([]float64, []int) {
	var x []float64
	var cps []int
	for i, l := range levels {
		if i > 0 {
			cps = append(cps, len(x))
		}
		for j := 0; j < segLen; j++ {
			x = append(x, r.Normal(l, noise))
		}
	}
	return x, cps
}

func TestPELTFindsLevelShifts(t *testing.T) {
	r := rng.New(1)
	x, truth := step(r, []float64{5, 15, 8, 20}, 100, 0.5)
	got := PELT(x, CostMean, 50, 5)
	if MatchScore(truth, got, 5) < 1 {
		t.Fatalf("PELT missed shifts: truth=%v got=%v", truth, got)
	}
	// No gross overdetection: at most a few spurious points.
	if len(got) > len(truth)+2 {
		t.Fatalf("PELT overdetected: %v", got)
	}
}

func TestPELTConstantSignalNoChanges(t *testing.T) {
	r := rng.New(2)
	x := make([]float64, 500)
	for i := range x {
		x[i] = r.Normal(10, 0.3)
	}
	got := PELT(x, CostMean, 50, 5)
	if len(got) != 0 {
		t.Fatalf("constant signal produced change points: %v", got)
	}
}

func TestPELTVarianceChange(t *testing.T) {
	r := rng.New(3)
	var x []float64
	for i := 0; i < 200; i++ {
		x = append(x, r.Normal(10, 0.2))
	}
	for i := 0; i < 200; i++ {
		x = append(x, r.Normal(10, 3.0)) // same mean, bigger variance
	}
	got := PELT(x, CostMeanVar, 20, 10)
	if MatchScore([]int{200}, got, 15) < 1 {
		t.Fatalf("variance change missed: %v", got)
	}
}

func TestBinarySegmentationFindsShifts(t *testing.T) {
	r := rng.New(4)
	x, truth := step(r, []float64{3, 12, 6}, 150, 0.4)
	got := BinarySegmentation(x, CostMean, 5, 10, 10)
	if MatchScore(truth, got, 8) < 1 {
		t.Fatalf("binseg missed: truth=%v got=%v", truth, got)
	}
}

func TestBinarySegmentationBudget(t *testing.T) {
	r := rng.New(5)
	x, _ := step(r, []float64{1, 5, 9, 13, 17, 21}, 60, 0.2)
	got := BinarySegmentation(x, CostMean, 2, 1, 5)
	if len(got) > 2 {
		t.Fatalf("budget exceeded: %v", got)
	}
}

func TestChangePointsSortedAndInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x, _ := step(r, []float64{4, 9, 2}, 50, 1.0)
		for _, algo := range [][]int{
			PELT(x, CostMean, 30, 5),
			BinarySegmentation(x, CostMean, 4, 5, 5),
		} {
			last := 0
			for _, cp := range algo {
				if cp <= last && last != 0 || cp <= 0 || cp >= len(x) {
					return false
				}
				if cp <= last {
					return false
				}
				last = cp
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchScore(t *testing.T) {
	if MatchScore(nil, []int{1, 2}, 3) != 1 {
		t.Fatal("empty truth should score 1")
	}
	if got := MatchScore([]int{100, 200}, []int{102}, 5); got != 0.5 {
		t.Fatalf("score=%g want 0.5", got)
	}
	if got := MatchScore([]int{100}, []int{300}, 5); got != 0 {
		t.Fatalf("score=%g want 0", got)
	}
}

func TestPELTEmptyInput(t *testing.T) {
	if got := PELT(nil, CostMean, 10, 1); got != nil {
		t.Fatalf("PELT(nil)=%v", got)
	}
}

func TestPELTPenaltyMonotonicity(t *testing.T) {
	// Higher penalty must not produce more change points.
	r := rng.New(7)
	x, _ := step(r, []float64{5, 10, 5, 10}, 80, 1.2)
	low := PELT(x, CostMean, 5, 5)
	high := PELT(x, CostMean, 500, 5)
	if len(high) > len(low) {
		t.Fatalf("penalty monotonicity violated: low=%d high=%d", len(low), len(high))
	}
}

func TestCostEdgeDetectsSlopeChange(t *testing.T) {
	// Piecewise-linear: up-ramp then down-ramp — no mean shift at the knee
	// worth speaking of, but a clear edge.
	r := rng.New(9)
	var x []float64
	for i := 0; i < 200; i++ {
		x = append(x, float64(i)*0.05+r.Normal(0, 0.1))
	}
	for i := 0; i < 200; i++ {
		x = append(x, 10-float64(i)*0.05+r.Normal(0, 0.1))
	}
	got := BinarySegmentation(x, CostEdge, 3, 1, 20)
	if MatchScore([]int{200}, got, 15) < 1 {
		t.Fatalf("slope change missed: %v", got)
	}
}

func TestCostEdgeIgnoresCleanLine(t *testing.T) {
	r := rng.New(10)
	var x []float64
	for i := 0; i < 400; i++ {
		x = append(x, 3+float64(i)*0.02+r.Normal(0, 0.05))
	}
	got := BinarySegmentation(x, CostEdge, 3, 1, 20)
	if len(got) != 0 {
		t.Fatalf("clean line produced edges: %v", got)
	}
}

func TestCostEdgeSegmentCostNonNegative(t *testing.T) {
	r := rng.New(11)
	x := make([]float64, 300)
	for i := range x {
		x[i] = r.Normal(5, 2)
	}
	p := newPrefixes(x)
	for a := 0; a < 280; a += 17 {
		for b := a + 3; b <= 300; b += 23 {
			if c := p.segCost(a, b, CostEdge); c < 0 {
				t.Fatalf("negative edge cost at [%d,%d): %g", a, b, c)
			}
			// The line fit can never do worse than the mean fit.
			if p.segCost(a, b, CostEdge) > p.segCost(a, b, CostMean)+1e-9 {
				t.Fatalf("edge cost exceeds mean cost at [%d,%d)", a, b)
			}
		}
	}
}
