package covert

import (
	"sync"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/sim"
)

var (
	artMu sync.Mutex
	art   *core.Design
)

func sys1Art(t *testing.T) *core.Design {
	t.Helper()
	artMu.Lock()
	defer artMu.Unlock()
	if art == nil {
		d, err := core.DesignFor(sim.Sys1(), core.DefaultDesignOptions())
		if err != nil {
			t.Fatal(err)
		}
		art = d
	}
	return art
}

func TestRandomBits(t *testing.T) {
	bits := RandomBits(1000, 3)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("non-binary bit %d", b)
		}
		ones += b
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("bit balance off: %d ones", ones)
	}
	// Reproducible.
	again := RandomBits(1000, 3)
	for i := range bits {
		if bits[i] != again[i] {
			t.Fatal("message not reproducible")
		}
	}
}

func TestSenderDemandFollowsBits(t *testing.T) {
	s := NewSender([]int{1, 0, 1}, 10)
	for i := 0; i < 30; i++ {
		d := s.Demand()
		wantBurst := []bool{true, false, true}[i/10]
		if wantBurst && d.Threads == 0 {
			t.Fatalf("tick %d: expected burst", i)
		}
		if !wantBurst && d.Threads != 0 {
			t.Fatalf("tick %d: expected idle", i)
		}
	}
	s.Reset(0)
	if d := s.Demand(); d.Threads == 0 {
		t.Fatal("reset did not restart the bit stream")
	}
}

func TestDecodePerfectSignal(t *testing.T) {
	// Synthetic receiver trace: clean two-level OOK.
	bits := []int{1, 0, 0, 1, 1, 0, 1, 0}
	var samples []float64
	for _, b := range bits {
		level := 10.0
		if b == 1 {
			level = 20.0
		}
		for i := 0; i < 5; i++ {
			samples = append(samples, level)
		}
	}
	got := Decode(samples, 10, 50, len(bits))
	if BitErrorRate(bits, got) != 0 {
		t.Fatalf("clean signal decoded with errors: %v vs %v", got, bits)
	}
}

func TestBitErrorRate(t *testing.T) {
	if ber := BitErrorRate([]int{1, 0, 1, 0}, []int{1, 0, 0, 0}); ber != 0.25 {
		t.Fatalf("ber=%g", ber)
	}
	if ber := BitErrorRate([]int{1, 1}, nil); ber != 1 {
		t.Fatalf("missing bits ber=%g", ber)
	}
}

func TestChannelWorksUndefended(t *testing.T) {
	// The Shao et al. premise: with no defense, an outlet receiver decodes
	// the sender's bits reliably. (Their oscilloscope read unfiltered
	// switching noise at 33 ms/bit; our outlet model passes only
	// PSU-smoothed power, so the demonstration channel signals at
	// 480 ms/bit — the defense conclusion is unchanged.)
	cfg := sim.Sys1()
	bits := RandomBits(64, 7)
	res := Run(cfg, sim.NewBaselinePolicy(cfg), bits, 480, 10, 500, 5)
	if res.BER > 0.05 {
		t.Fatalf("undefended covert channel broken: BER %.2f", res.BER)
	}
}

func TestMayaThwartsChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// §I: "Maya has already thwarted a newly-developed remote power
	// attack." Under Maya GS the receiver's BER must approach coin-flip.
	cfg := sim.Sys1()
	d := sys1Art(t)
	bits := RandomBits(64, 7)

	base := Run(cfg, sim.NewBaselinePolicy(cfg), bits, 480, 10, 500, 5)
	eng := core.NewGSEngine(d, cfg, 20, 99)
	eng.Reset(99)
	defended := Run(cfg, eng, bits, 480, 10, 2000, 5)

	t.Logf("BER undefended %.3f, under Maya GS %.3f", base.BER, defended.BER)
	if defended.BER < 0.25 {
		t.Fatalf("covert channel survives Maya: BER %.2f", defended.BER)
	}
	if defended.BER <= base.BER {
		t.Fatal("Maya did not degrade the channel at all")
	}
}
