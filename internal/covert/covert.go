// Package covert implements the power covert channel that Maya is credited
// with thwarting (§I, Shao et al. [63]): a sender process on the victim
// machine modulates power draw to encode bits, and a receiver connected to
// the same power delivery network — e.g. an outlet 90 feet away — decodes
// them from the voltage/power signal. The paper reports the attacker
// decoding one bit per 33 ms; with Maya deployed (actions every 40 ms) the
// channel is destroyed.
//
// The sender here uses on-off keying: for each bit period it either runs a
// compute burst (1) or idles (0). The receiver integrates outlet power over
// each bit period and thresholds against the median — a matched filter for
// OOK. Under Maya, the controller absorbs the sender's activity into the
// mask, collapsing the channel's signal-to-noise ratio.
package covert

import (
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

// Sender is a workload that encodes a bit string through power modulation.
// It never finishes; each bit occupies BitTicks of wall time.
type Sender struct {
	Bits     []int
	BitTicks int
	// BurstThreads and BurstActivity set the 1-bit power burst intensity.
	BurstThreads  int
	BurstActivity float64

	tick int64
}

// NewSender builds an OOK sender for the given bit string.
func NewSender(bits []int, bitTicks int) *Sender {
	if bitTicks <= 0 {
		panic("covert: non-positive bit period")
	}
	return &Sender{Bits: bits, BitTicks: bitTicks, BurstThreads: 6, BurstActivity: 1.0}
}

// RandomBits generates n random bits from a seed (the message).
func RandomBits(n int, seed uint64) []int {
	r := rng.NewNamed(seed, "covert/message")
	out := make([]int, n)
	for i := range out {
		if r.Bool(0.5) {
			out[i] = 1
		}
	}
	return out
}

// Name implements workload.Workload.
func (s *Sender) Name() string { return "covert-sender" }

// Demand implements workload.Workload: bursts during 1-bits, idles in 0-bits.
func (s *Sender) Demand() workload.Demand {
	bit := 0
	idx := int(s.tick) / s.BitTicks
	s.tick++
	if idx < len(s.Bits) {
		bit = s.Bits[idx]
	}
	if bit == 0 {
		return workload.Demand{}
	}
	return workload.Demand{Threads: s.BurstThreads, Activity: s.BurstActivity, MemFrac: 0.05}
}

// Advance implements workload.Workload (the sender is time-driven).
func (s *Sender) Advance(float64) bool { return false }

// Done implements workload.Workload.
func (s *Sender) Done() bool { return false }

// TotalWork implements workload.Workload.
func (s *Sender) TotalWork() float64 { return 0 }

// Reset implements workload.Workload.
func (s *Sender) Reset(uint64) { s.tick = 0 }

// Decode recovers bits from a receiver-side power trace sampled at
// samplePeriodTicks, given the bit period in ticks. It integrates each bit
// window and separates the two OOK levels with one-dimensional 2-means
// clustering (self-calibrating even when the message's 0/1 counts are
// unbalanced).
func Decode(samples []float64, samplePeriodTicks, bitTicks, nbits int) []int {
	perBit := bitTicks / samplePeriodTicks
	if perBit < 1 {
		perBit = 1
	}
	energies := make([]float64, 0, nbits)
	for b := 0; b < nbits; b++ {
		lo := b * perBit
		hi := lo + perBit
		if hi > len(samples) {
			break
		}
		energies = append(energies, signal.Mean(samples[lo:hi]))
	}
	if len(energies) == 0 {
		return nil
	}
	th := twoMeansThreshold(energies)
	bits := make([]int, len(energies))
	for i, e := range energies {
		if e > th {
			bits[i] = 1
		}
	}
	return bits
}

// twoMeansThreshold runs Lloyd's algorithm with two centroids initialized
// at the extremes and returns their midpoint.
func twoMeansThreshold(x []float64) float64 {
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	c0, c1 := lo, hi
	for iter := 0; iter < 50; iter++ {
		var s0, s1 float64
		var n0, n1 int
		mid := (c0 + c1) / 2
		for _, v := range x {
			if v <= mid {
				s0 += v
				n0++
			} else {
				s1 += v
				n1++
			}
		}
		if n0 == 0 || n1 == 0 {
			break
		}
		nc0, nc1 := s0/float64(n0), s1/float64(n1)
		if nc0 == c0 && nc1 == c1 { //nolint:maya/floateq fixed-point detection: stop when the estimate stops changing at all
			break
		}
		c0, c1 = nc0, nc1
	}
	return (c0 + c1) / 2
}

// BitErrorRate compares sent and decoded bits.
func BitErrorRate(sent, got []int) float64 {
	n := len(sent)
	if len(got) < n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	errs := 0
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	// Bits never received count as errors.
	errs += len(sent) - n
	return float64(errs) / float64(len(sent))
}

// ChannelResult reports one covert-channel evaluation.
type ChannelResult struct {
	Bits    int
	BitMS   float64
	BER     float64
	Decoded int
}

// Run evaluates the channel on a machine under a policy: the sender
// transmits nbits of bitTicks each while the receiver taps the outlet at
// the given sampling period. warmupTicks precedes transmission.
func Run(cfg sim.Config, pol sim.Policy, bits []int, bitTicks, samplePeriodTicks, warmupTicks int, seed uint64) ChannelResult {
	m := sim.NewMachine(cfg, seed)
	sender := NewSender(bits, bitTicks)
	outlet := sim.NewOutletSensor(cfg, seed+1)
	sampler := &sim.Sampler{Sensor: outlet, PeriodTicks: samplePeriodTicks}
	sim.Run(m, sender, pol, sim.RunSpec{
		ControlPeriodTicks: 20,
		MaxTicks:           len(bits) * bitTicks,
		WarmupTicks:        warmupTicks,
		Samplers:           []*sim.Sampler{sampler},
	})
	got := Decode(sampler.Samples, samplePeriodTicks, bitTicks, len(bits))
	return ChannelResult{
		Bits:    len(bits),
		BitMS:   float64(bitTicks),
		BER:     BitErrorRate(bits, got),
		Decoded: len(got),
	}
}
