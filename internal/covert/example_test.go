package covert_test

import (
	"fmt"

	"github.com/maya-defense/maya/internal/covert"
	"github.com/maya-defense/maya/internal/sim"
)

// Example demonstrates the remote power covert channel of §I on an
// undefended machine: a sender process modulates power, an outlet receiver
// decodes the bits.
func Example() {
	cfg := sim.Sys1()
	bits := covert.RandomBits(32, 7)
	res := covert.Run(cfg, sim.NewBaselinePolicy(cfg), bits, 480, 10, 500, 5)
	fmt.Printf("sent %d bits at %.0f ms/bit, BER %.2f\n", res.Bits, res.BitMS, res.BER)
	// Output: sent 32 bits at 480 ms/bit, BER 0.00
}
