package lint

import "go/ast"

// DetWallclock flags wall-clock reads (time.Now, time.Since) outside sites
// annotated //maya:wallclock. The mask stream, the controller, and every
// experiment report must be a pure function of the seed; a wall-clock read
// in a decision path silently breaks trace reproducibility. Overhead
// accounting that measures the host (and never feeds back into decisions)
// is legitimate — annotate it, which doubles as an audit trail of every
// place real time enters the system.
// The interprocedural half (detflow.go) additionally walks the callee
// cones of trace/flight writers: there even a *blessed* read is a finding,
// because accounting values must never be serialized into artifacts the
// byte-identity gates compare.
var DetWallclock = &Analyzer{
	Name:       "detwallclock",
	Doc:        "time.Now/time.Since outside //maya:wallclock sites; blessed reads reachable from trace/flight writers",
	Run:        runDetWallclock,
	RunProgram: runDetWallclockProgram,
}

func runDetWallclock(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := pkg.callPkgFunc(call)
			if pkgPath != "time" || (name != "Now" && name != "Since") {
				return true
			}
			if pkg.blessed(f, call.Pos(), DirWallclock) {
				return true
			}
			pass.Reportf(call.Pos(), "wall-clock read time.%s outside a //maya:wallclock site; decisions and reports must be functions of the seed", name)
			return true
		})
	}
}
