package lint

import (
	"go/ast"
	"go/types"
)

// SendLoop flags sends on provably-unbuffered channels inside hot loops:
// the body of a //maya:hotpath function, or a range-over-channel loop
// (the shape of every tick consumer in the runner). An unbuffered send
// blocks until a receiver is ready, so one slow consumer stalls the whole
// loop — in a per-tick pipeline that is a deadline miss amplifier. Buffer
// the channel to decouple producer and consumer, or move the send off the
// per-tick path.
//
// Only channels this function provably made unbuffered are flagged — a
// local `make(chan T)` or `make(chan T, 0)` — because a channel received
// as a parameter may be buffered by the caller. Sends inside a select are
// exempt: select makes the blocking explicit and usually pairs the send
// with a cancellation case.
var SendLoop = &Analyzer{
	Name:       "sendloop",
	Doc:        "send on a provably-unbuffered channel inside a //maya:hotpath loop or range-over-channel tick loop",
	RunProgram: runSendLoop,
}

func runSendLoop(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, n := range g.Nodes {
		unbuffered := unbufferedChans(n)
		if len(unbuffered) == 0 {
			continue
		}
		hot := n.Pkg.funcDirective(n.Decl, DirHotpath)
		checkSendLoops(pass, n, unbuffered, hot)
	}
}

// unbufferedChans collects the local variables in n's body bound to a
// make(chan T) with no capacity or a constant zero capacity.
func unbufferedChans(n *Node) map[types.Object]bool {
	pkg := n.Pkg
	out := map[types.Object]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		asg, ok := node.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if !isUnbufferedMake(pkg, rhs) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isUnbufferedMake(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "make" {
		return false
	}
	if b, ok := pkg.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) == 0 || !chanUnder(pkg.typeOf(call.Args[0])) {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv, ok := pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkSendLoops walks the loops of n and flags unbuffered sends inside
// loops that qualify as hot: any loop when the function is //maya:hotpath,
// else only range-over-channel loops.
func checkSendLoops(pass *ProgramPass, n *Node, unbuffered map[types.Object]bool, hot bool) {
	pkg := n.Pkg
	var walk func(node ast.Node, inHotLoop bool, loopKind string)
	walk = func(node ast.Node, inHotLoop bool, loopKind string) {
		ast.Inspect(node, func(inner ast.Node) bool {
			if inner == node {
				return true
			}
			switch v := inner.(type) {
			case *ast.FuncLit:
				// A literal's body runs on its own schedule (often a
				// spawned goroutine); its sends are not this loop's sends.
				return false
			case *ast.SelectStmt:
				// Sends under select are explicit about blocking; walk only
				// the clause bodies so a send in a case guard is exempt but
				// a bare send in a case body still counts.
				for _, clause := range v.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s, inHotLoop, loopKind)
						}
					}
				}
				return false
			case *ast.ForStmt:
				kind := loopKind
				in := inHotLoop || hot
				if hot && kind == "" {
					kind = "//maya:hotpath loop"
				}
				walk(v.Body, in, kind)
				return false
			case *ast.RangeStmt:
				kind := loopKind
				in := inHotLoop || hot
				if chanUnder(pkg.typeOf(v.X)) {
					in = true
					if kind == "" {
						kind = "range-over-channel loop"
					}
				} else if hot && kind == "" {
					kind = "//maya:hotpath loop"
				}
				walk(v.Body, in, kind)
				return false
			case *ast.SendStmt:
				if !inHotLoop {
					return true
				}
				id, ok := ast.Unparen(v.Chan).(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil || !unbuffered[obj] {
					return true
				}
				pass.Reportf(v.Arrow, "send on unbuffered channel %s inside a %s; an unready receiver stalls every iteration — buffer the channel or move the send off the per-tick path", id.Name, loopKind)
			}
			return true
		})
	}
	walk(n.Decl.Body, false, "")
}
