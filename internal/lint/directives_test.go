package lint

import (
	"go/token"
	"reflect"
	"testing"
)

func TestMayaDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//maya:wallclock", "wallclock", true},
		{"//maya:wallclock measures the host by design", "wallclock", true},
		{"//maya:hotpath", "hotpath", true},
		{"//maya:", "", false},
		{"// maya:wallclock", "", false}, // directives are not prose; no space
		{"//nolint:maya/floateq", "", false},
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		name, ok := mayaDirective(tc.text)
		if name != tc.name || ok != tc.ok {
			t.Errorf("mayaDirective(%q) = %q, %v; want %q, %v", tc.text, name, ok, tc.name, tc.ok)
		}
	}
}

func TestNolintNames(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
	}{
		{"//nolint:maya/floateq", []string{"floateq"}, ""},
		{"//nolint:maya/floateq exact zero test", []string{"floateq"}, "exact zero test"},
		{"//nolint:maya/floateq,maya/maprange reason", []string{"floateq", "maprange"}, "reason"},
		{"//nolint:gosec,maya/detrand", []string{"detrand"}, ""}, // other linters' entries ignored
		{"//nolint:gosec", nil, ""},
		{"//nolint", nil, ""},
		{"// not a directive", nil, ""},
	}
	for _, tc := range cases {
		names, reason, ok := nolintNames(tc.text)
		if !reflect.DeepEqual(names, tc.names) || reason != tc.reason || ok != (tc.names != nil) {
			t.Errorf("nolintNames(%q) = %v, %q, %v; want %v, %q", tc.text, names, reason, ok, tc.names, tc.reason)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "floateq", File: "x.go", Line: 3, Col: 7, Message: "msg"}
	if got, want := d.String(), "x.go:3:7: floateq: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOnlyWhitespaceBefore(t *testing.T) {
	src := []byte("a := 1 // trailing\n\t// standalone\n")
	type pos struct {
		offset     int
		standalone bool
	}
	for _, tc := range []pos{
		{offset: 7, standalone: false}, // the trailing comment
		{offset: 20, standalone: true}, // the indented standalone comment
		{offset: 0, standalone: true},  // start of file
	} {
		got := onlyWhitespaceBefore(src, token.Position{Offset: tc.offset})
		if got != tc.standalone {
			t.Errorf("offset %d: standalone = %v, want %v", tc.offset, got, tc.standalone)
		}
	}
}
