package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSARIFStructure validates the emitted log against the slice of the
// SARIF 2.1.0 schema the findings use: required top-level fields, the
// run/tool/driver spine, and for every result a resolvable ruleId, a
// message, and a physical location with a relative URI and a 1-based
// startLine. The check decodes into untyped maps so a struct-tag typo in
// the writer cannot hide from it.
func TestSARIFStructure(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "lockhold", File: "/mod/internal/fleet/spill.go", Line: 42, Col: 7, Message: "channel send while holding s.mu"},
		{Analyzer: "hotalloc", File: "/mod/internal/core/engine.go", Line: 9, Col: 1, Message: "fmt.Sprintf in hot path step"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, Analyzers(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	schema, _ := log["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema reference", schema)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %T(len %d), want one run", log["runs"], len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "mayalint" {
		t.Errorf("driver.name = %v, want mayalint", driver["name"])
	}
	ruleIDs := map[string]bool{}
	for _, r := range driver["rules"].([]any) {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		if id == "" {
			t.Error("rule with empty id")
		}
		if desc := rule["shortDescription"].(map[string]any)["text"]; desc == "" {
			t.Errorf("rule %s has no shortDescription.text", id)
		}
		ruleIDs[id] = true
	}
	for _, a := range Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from driver.rules", a.Name)
		}
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(diags) {
		t.Fatalf("results len = %d, want %d", len(results), len(diags))
	}
	for i, r := range results {
		res := r.(map[string]any)
		id, _ := res["ruleId"].(string)
		if !ruleIDs[id] {
			t.Errorf("result %d ruleId %q not in driver.rules", i, id)
		}
		if res["level"] != "error" {
			t.Errorf("result %d level = %v, want error", i, res["level"])
		}
		if txt := res["message"].(map[string]any)["text"]; txt == "" {
			t.Errorf("result %d has empty message.text", i)
		}
		locs := res["locations"].([]any)
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string)
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("result %d uri %q is not a relative forward-slash path", i, uri)
		}
		line, _ := phys["region"].(map[string]any)["startLine"].(float64)
		if line < 1 {
			t.Errorf("result %d startLine = %v, want >= 1", i, line)
		}
	}
}

// TestSARIFEmpty: a clean run still renders a well-formed log with an
// empty (not null) results array, which is what artifact consumers expect.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, Analyzers(), ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must serialize results as [], got:\n%s", buf.String())
	}
}
