package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The project's directive comments. A //maya:<name> directive blesses a
// site that would otherwise be flagged; a //nolint:maya/<name> comment
// suppresses a specific finding. Both are parsed here so every analyzer
// shares one set of placement rules:
//
//   - in a function's doc comment, a maya: directive covers the whole
//     function (including closures declared inside it);
//   - trailing a statement, it covers that line;
//   - standing alone on its own line, it covers the next line (so a
//     directive can carry an explanation without fighting gofmt).
//
// nolint directives use the same trailing/standalone placement.

// DirWallclock, DirHotpath, DirCachekey, and DirColdpath are the
// recognized //maya: directive names.
const (
	DirWallclock = "wallclock"
	DirHotpath   = "hotpath"
	// DirCachekey marks experiment-cache key-derivation functions; the
	// cachekey analyzer holds them to stricter determinism rules than the
	// rest of the repo (see cachekey.go).
	DirCachekey = "cachekey"
	// DirColdpath asserts that a function is deliberately off the hot
	// path (panic formatting, error reporting): hotalloc's transitive cone
	// walk does not descend into it even when it is called from a
	// //maya:hotpath function. Doc-comment placement only.
	DirColdpath = "coldpath"
)

type nolintDirective struct {
	file string
	// line/col locate the comment itself (where unused/unknown directives
	// are reported); appliesTo is the source line whose findings it covers.
	line      int
	col       int
	appliesTo int
	names     []string // suppressed analyzer names, "maya/" prefix stripped
	reason    string   // prose after the name list; audited by -nolint-report
	used      bool
}

type directiveIndex struct {
	// lines maps file → line → directive names effective on that line.
	lines map[string]map[string]bool // key "file:line"
	// funcs maps a FuncDecl with a doc directive to the directive names.
	funcs   map[*ast.FuncDecl]map[string]bool
	nolints []*nolintDirective
}

// directives parses and caches the package's directive comments.
func (p *Package) directives() *directiveIndex {
	if p.dirIndex != nil {
		return p.dirIndex
	}
	idx := &directiveIndex{
		lines: map[string]map[string]bool{},
		funcs: map[*ast.FuncDecl]map[string]bool{},
	}
	for _, f := range p.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				idx.addComment(p.Fset, f, c)
			}
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if name, ok := mayaDirective(c.Text); ok {
					if idx.funcs[fd] == nil {
						idx.funcs[fd] = map[string]bool{}
					}
					idx.funcs[fd][name] = true
				}
			}
		}
	}
	p.dirIndex = idx
	return idx
}

func (idx *directiveIndex) addComment(fset *token.FileSet, f *File, c *ast.Comment) {
	pos := fset.Position(c.Pos())
	standalone := onlyWhitespaceBefore(f.src, pos)
	if name, ok := mayaDirective(c.Text); ok {
		idx.markLine(pos.Filename, pos.Line, name)
		if standalone {
			idx.markLine(pos.Filename, pos.Line+1, name)
		}
		return
	}
	names, reason, ok := nolintNames(c.Text)
	if !ok {
		return
	}
	appliesTo := pos.Line
	if standalone {
		appliesTo = pos.Line + 1
	}
	idx.nolints = append(idx.nolints, &nolintDirective{
		file: pos.Filename, line: pos.Line, col: pos.Column,
		appliesTo: appliesTo, names: names, reason: reason,
	})
}

func (idx *directiveIndex) markLine(file string, line int, name string) {
	key := lineKey(file, line)
	if idx.lines[key] == nil {
		idx.lines[key] = map[string]bool{}
	}
	idx.lines[key][name] = true
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// onlyWhitespaceBefore reports whether the comment at pos is the first
// non-blank thing on its source line.
func onlyWhitespaceBefore(src []byte, pos token.Position) bool {
	if pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// mayaDirective parses "//maya:<name>" (optionally followed by prose) and
// returns the directive name.
func mayaDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//maya:")
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", false
	}
	return name, true
}

// nolintNames parses "//nolint:maya/a,maya/b <reason>" and returns the
// maya-scoped analyzer names plus the trailing explanation. Entries for
// other linters are ignored; a bare "//nolint" without maya entries is not
// ours.
func nolintNames(text string) (names []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, "//nolint:")
	if !found {
		return nil, "", false
	}
	// Allow a trailing explanation after whitespace: "//nolint:maya/x exact
	// zero test". The list itself must not contain spaces.
	list, after, _ := strings.Cut(strings.TrimSpace(rest), " ")
	for _, entry := range strings.Split(list, ",") {
		if name, isMaya := strings.CutPrefix(strings.TrimSpace(entry), "maya/"); isMaya && name != "" {
			names = append(names, name)
		}
	}
	return names, strings.TrimSpace(after), len(names) > 0
}

// suppressing returns the directive covering d, if any.
func (idx *directiveIndex) suppressing(d Diagnostic) *nolintDirective {
	for _, nd := range idx.nolints {
		if nd.file != d.File || nd.appliesTo != d.Line {
			continue
		}
		for _, name := range nd.names {
			if name == d.Analyzer {
				return nd
			}
		}
	}
	return nil
}

// blessed reports whether the node at pos is covered by the named //maya:
// directive — on its own line, on the line above (standalone form), or on
// the enclosing function's doc comment.
func (p *Package) blessed(f *File, pos token.Pos, name string) bool {
	idx := p.directives()
	position := p.Fset.Position(pos)
	if idx.lines[lineKey(position.Filename, position.Line)][name] {
		return true
	}
	if fd := enclosingFunc(f.AST, pos); fd != nil && idx.funcs[fd][name] {
		return true
	}
	return false
}

// funcDirective reports whether the declaration carries the named //maya:
// directive in its doc comment.
func (p *Package) funcDirective(fd *ast.FuncDecl, name string) bool {
	return p.directives().funcs[fd][name]
}
