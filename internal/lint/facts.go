package lint

import (
	"go/ast"
	"go/token"
)

// funcFacts is one function's dataflow-relevant summary, computed once per
// call-graph node and consumed by the interprocedural analyzers: hotalloc
// charges a hot path for allocations in its callee cone, cachekey and
// detwallclock trace wall-clock taint into sinks, and lockhold treats a
// call to a blocking function like a direct channel operation.
type funcFacts struct {
	allocs    []allocSite
	wall      []wallSite
	blocks    []blockSite
	mapRanges []token.Pos
	// mathRand reports a use of math/rand (only reachable under a
	// //nolint:maya/detrand suppression; the taint pass still tracks it).
	mathRand []token.Pos
}

// wallSite is one time.Now/time.Since call.
type wallSite struct {
	pos     token.Pos
	name    string // "Now" or "Since"
	blessed bool   // covered by //maya:wallclock
}

// blockSite is one potentially blocking operation.
type blockSite struct {
	pos     token.Pos
	what    string // "channel send", "channel receive", ...
	spawned bool   // inside a go-statement closure: blocks the spawned goroutine, not the caller
}

// Facts computes (once) and returns the node's summary.
func (n *Node) Facts() *funcFacts {
	if n.facts == nil {
		n.facts = collectFacts(n)
	}
	return n.facts
}

func collectFacts(n *Node) *funcFacts {
	pkg, fd := n.Pkg, n.Decl
	f := &funcFacts{allocs: collectAllocs(pkg, fd)}
	spawnedIn := spawnedRanges(fd)
	spawned := func(pos token.Pos) bool {
		for _, r := range spawnedIn {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			pkgPath, name := pkg.callPkgFunc(v)
			switch {
			case pkgPath == "time" && (name == "Now" || name == "Since"):
				f.wall = append(f.wall, wallSite{
					pos:     v.Pos(),
					name:    name,
					blessed: pkg.blessed(n.File, v.Pos(), DirWallclock),
				})
			case pkgPath == "time" && name == "Sleep":
				f.blocks = append(f.blocks, blockSite{v.Pos(), "time.Sleep", spawned(v.Pos())})
			}
			if tname, mname, ok := pkg.syncMethodCall(v); ok && tname == "WaitGroup" && mname == "Wait" {
				// sync.Cond.Wait is deliberately not a block site: a Cond
				// waits with its lock held by design. WaitGroup.Wait is
				// the blocking join.
				f.blocks = append(f.blocks, blockSite{v.Pos(), "sync.WaitGroup.Wait", spawned(v.Pos())})
			}
		case *ast.SendStmt:
			f.blocks = append(f.blocks, blockSite{v.Arrow, "channel send", spawned(v.Arrow)})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				f.blocks = append(f.blocks, blockSite{v.OpPos, "channel receive", spawned(v.OpPos)})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				f.blocks = append(f.blocks, blockSite{v.Select, "select", spawned(v.Select)})
			}
		case *ast.RangeStmt:
			t := pkg.typeOf(v.X)
			if mapUnder(t) {
				f.mapRanges = append(f.mapRanges, v.For)
			}
			if chanUnder(t) {
				f.blocks = append(f.blocks, blockSite{v.For, "range over channel", spawned(v.For)})
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil && obj.Pkg() != nil {
				if p := obj.Pkg().Path(); p == "math/rand" || p == "math/rand/v2" {
					f.mathRand = append(f.mathRand, v.Pos())
				}
			}
		}
		return true
	})
	return f
}

// spawnedRanges returns the source ranges of function literals launched by
// go statements inside fd; operations inside them run on the spawned
// goroutine.
func spawnedRanges(fd *ast.FuncDecl) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(fd, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return out
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
