package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands in non-test
// code. Accumulated rounding differences are how "the same" control
// trajectory diverges between runs or hosts; comparisons should use a
// tolerance. The rare legitimate exact comparisons — degenerate-range
// guards, has-this-been-set-at-all zero tests of values assigned exactly —
// carry a //nolint:maya/floateq with a reason.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= on floats in non-test code; compare with a tolerance or suppress with a reason",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg.typeOf(bin.X)) && !isFloat(pkg.typeOf(bin.Y)) {
				return true
			}
			// A comparison folded to a constant is decided at compile time.
			if tv, ok := pkg.Info.Types[bin]; ok && tv.Value != nil {
				return true
			}
			pass.Reportf(bin.OpPos, "float %s comparison; use a tolerance (exact comparisons diverge across runs and hosts)", bin.Op)
			return true
		})
	}
}
