package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadCallgraphFixture builds the whole-program graph over the fixture
// tree once per test run.
func loadCallgraphFixture(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", "src"), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return NewProgram(pkgs).Graph()
}

// nodeBySuffix finds the unique node whose key ends in suffix.
func nodeBySuffix(t *testing.T, g *CallGraph, suffix string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Key, suffix) {
			if found != nil {
				t.Fatalf("node suffix %q is ambiguous: %s and %s", suffix, found.Key, n.Key)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with key suffix %q", suffix)
	}
	return found
}

// edgeTo returns the caller's edge to callee, or nil.
func edgeTo(caller, callee *Node) *Edge {
	for _, e := range caller.Out {
		if e.Callee == callee {
			return e
		}
	}
	return nil
}

func TestCallGraphGenericInstantiation(t *testing.T) {
	g := loadCallgraphFixture(t)
	useMap := nodeBySuffix(t, g, "callgraph.UseMap")
	mapFn := nodeBySuffix(t, g, "callgraph.Map")
	e := edgeTo(useMap, mapFn)
	if e == nil {
		t.Fatalf("no edge UseMap → Map; out-edges: %v", edgeKeys(useMap))
	}
	if e.Kind != KindStatic {
		t.Errorf("UseMap → Map kind = %v, want KindStatic", e.Kind)
	}
}

func TestCallGraphFunctionTypedField(t *testing.T) {
	g := loadCallgraphFixture(t)
	advance := nodeBySuffix(t, g, "callgraph.Ring).Advance")
	inc := nodeBySuffix(t, g, "callgraph.inc")
	dbl := nodeBySuffix(t, g, "callgraph.dbl")
	// r.step(x) dispatches through a func-typed field: both address-taken
	// functions of that signature are candidates.
	for _, callee := range []*Node{inc, dbl} {
		e := edgeTo(advance, callee)
		if e == nil {
			t.Errorf("no edge Advance → %s; out-edges: %v", callee.Key, edgeKeys(advance))
			continue
		}
		if e.Kind != KindValue {
			t.Errorf("Advance → %s kind = %v, want KindValue", callee.Key, e.Kind)
		}
	}
	// Counter.Add has a different signature (no result): not a candidate.
	add := nodeBySuffix(t, g, "callgraph.Counter).Add")
	if e := edgeTo(advance, add); e != nil {
		t.Errorf("unexpected edge Advance → Counter.Add (signature mismatch)")
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g := loadCallgraphFixture(t)
	drive := nodeBySuffix(t, g, "callgraph.Drive")
	add := nodeBySuffix(t, g, "callgraph.Counter).Add")
	// Bind returns c.Add as a method value; Drive's f(3) must reach it.
	e := edgeTo(drive, add)
	if e == nil {
		t.Fatalf("no edge Drive → Counter.Add; out-edges: %v", edgeKeys(drive))
	}
	if e.Kind != KindValue {
		t.Errorf("Drive → Counter.Add kind = %v, want KindValue", e.Kind)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadCallgraphFixture(t)
	apply := nodeBySuffix(t, g, "callgraph.Apply")
	step := nodeBySuffix(t, g, "callgraph.Unit).Step")
	e := edgeTo(apply, step)
	if e == nil {
		t.Fatalf("no edge Apply → Unit.Step; out-edges: %v", edgeKeys(apply))
	}
	if e.Kind != KindInterface {
		t.Errorf("Apply → Unit.Step kind = %v, want KindInterface", e.Kind)
	}
}

func TestCallGraphSpawnedEdges(t *testing.T) {
	g := loadCallgraphFixture(t)
	// The sendloop fixture spawns drain with `go drain(out)`.
	emit := nodeBySuffix(t, g, "sendloop.emit")
	drain := nodeBySuffix(t, g, "sendloop.drain")
	e := edgeTo(emit, drain)
	if e == nil {
		t.Fatalf("no edge emit → drain; out-edges: %v", edgeKeys(emit))
	}
	if !e.Spawned {
		t.Errorf("emit → drain not marked Spawned")
	}
}

func edgeKeys(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.Key)
	}
	return out
}
