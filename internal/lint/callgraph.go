package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the interprocedural half of the framework: a whole-program
// call graph over go/types, built once per Run and shared by every
// analyzer with a RunProgram hook. Nodes are the module's declared
// functions and methods (generic instantiations collapse onto their
// origin); edges record the call site so diagnostics can carry per-edge
// blame chains. Three resolution strategies cover the repo's call shapes:
//
//   - static: direct function calls and concrete-receiver method calls,
//     resolved through go/types object identity within a unit and through
//     a canonical symbol key (types.Func.FullName) across units — the
//     source importer re-checks dependencies, so the same function is a
//     different *types.Func object in each unit and pointer identity
//     cannot be trusted across packages;
//   - interface: calls through an interface method link to every module
//     method with the same name and signature (class-hierarchy style);
//   - value: calls through function-typed variables, parameters, and
//     struct fields link to every module function whose address is taken
//     somewhere in the program with a matching signature (RTA style).
//     Method values (x.M) and function-typed field assignments register
//     the target as address-taken.
//
// Interface and value edges are deliberately imprecise (they
// over-approximate); analyzers choose per rule whether to follow them.

// Program aggregates the loaded packages for whole-program analyzers.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet
	// Root is the module root directory, for rendering positions in
	// diagnostics relative to the repository.
	Root string
	// owner maps a file path to the unit that type-checked it, so
	// program-level diagnostics route to the right suppression index.
	owner map[string]*Package
	graph *CallGraph
}

// NewProgram wraps the loaded packages. The call graph is built lazily on
// first use so runs of purely per-package analyzers pay nothing for it.
func NewProgram(pkgs []*Package) *Program {
	pr := &Program{Pkgs: pkgs, owner: map[string]*Package{}}
	for _, p := range pkgs {
		if pr.Fset == nil {
			pr.Fset = p.Fset
		}
		if pr.Root == "" {
			if root, _, err := findModule(p.Dir); err == nil {
				pr.Root = root
			}
		}
		for _, f := range p.Files {
			pr.owner[f.Name] = p
		}
	}
	return pr
}

// Graph builds (once) and returns the whole-program call graph.
func (pr *Program) Graph() *CallGraph {
	if pr.graph == nil {
		pr.graph = buildGraph(pr)
	}
	return pr.graph
}

// EdgeKind classifies how a call site was resolved to its callee.
type EdgeKind int

const (
	// KindStatic is a direct call of a declared function or a method call
	// on a concrete receiver.
	KindStatic EdgeKind = iota
	// KindInterface is a call through an interface method, linked to every
	// implementation by name+signature.
	KindInterface
	// KindValue is an indirect call through a function-typed value, linked
	// to every address-taken function of matching signature.
	KindValue
)

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Pos    token.Pos
	Kind   EdgeKind
	// Spawned marks a call that starts a goroutine (go f(...)); the callee
	// runs concurrently, so e.g. its blocking behavior does not block the
	// caller.
	Spawned bool
}

// Node is one declared function or method in the module.
type Node struct {
	Key  string // canonical symbol ("pkg.F", "(*pkg.T).M"); unique per graph
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *File
	Out  []*Edge
	In   []*Edge

	facts *funcFacts
}

// Name renders the node for diagnostics, with the module prefix trimmed.
func (n *Node) Name() string {
	return trimModule(n.Key)
}

func trimModule(s string) string {
	// "(github.com/maya-defense/maya/internal/mat.Matrix).At" →
	// "(internal/mat.Matrix).At"; the prefix may sit inside receiver parens,
	// so cut it wherever it appears rather than only at the front.
	if i := strings.Index(s, "internal/"); i > 0 {
		return s[:strings.IndexFunc(s, func(r rune) bool { return r != '(' && r != '*' })] + s[i:]
	}
	return s
}

// CallGraph is the whole-program call graph.
type CallGraph struct {
	prog  *Program
	Nodes []*Node // deterministic order: package, file, declaration
	byKey map[string]*Node
	// byFn resolves same-unit references by object identity; each unit's
	// definitions register their own *types.Func.
	byFn map[*types.Func]*Node
	// addrTaken maps a signature key to nodes whose address escapes into a
	// function value somewhere in the program.
	addrTaken map[string][]*Node
	// methods maps name+signature to concrete method nodes, for
	// interface-call resolution.
	methods map[string][]*Node
}

// NodeOf returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if n := g.byFn[fn]; n != nil {
		return n
	}
	return g.byKey[fn.FullName()]
}

func buildGraph(pr *Program) *CallGraph {
	g := &CallGraph{
		prog:      pr,
		byKey:     map[string]*Node{},
		byFn:      map[*types.Func]*Node{},
		addrTaken: map[string][]*Node{},
		methods:   map[string][]*Node{},
	}
	// Pass 1: nodes for every declared function with a body.
	for _, pkg := range pr.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue // type error; lenient loading
				}
				key := fn.FullName()
				if _, taken := g.byKey[key]; taken {
					// External test units are checked under the compiled
					// package's path, so a same-named helper collides;
					// disambiguate (such symbols are never called
					// cross-package anyway).
					key = key + "#" + pkg.Path
				}
				n := &Node{Key: key, Fn: fn, Decl: fd, Pkg: pkg, File: f}
				g.byKey[key] = n
				g.byFn[fn] = n
				g.Nodes = append(g.Nodes, n)
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && !types.IsInterface(recv.Type()) {
					mk := methodKey(fn.Name(), fn.Type().(*types.Signature))
					g.methods[mk] = append(g.methods[mk], n)
				}
			}
		}
	}
	// Pass 2: address-taken registration, so value edges see the full set.
	for _, n := range g.Nodes {
		g.collectAddrTaken(n)
	}
	// Pass 3: edges.
	for _, n := range g.Nodes {
		g.collectEdges(n)
	}
	return g
}

// collectAddrTaken registers every function referenced as a value (not in
// call position) inside n's body.
func (g *CallGraph) collectAddrTaken(n *Node) {
	pkg := n.Pkg
	callFuns := map[ast.Node]bool{}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(v.Fun)
			callFuns[fun] = true
			if ix, ok := fun.(*ast.IndexExpr); ok {
				fun = ast.Unparen(ix.X)
				callFuns[fun] = true
			} else if ix, ok := fun.(*ast.IndexListExpr); ok {
				fun = ast.Unparen(ix.X)
				callFuns[fun] = true
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				callFuns[sel.Sel] = true
			}
		case *ast.Ident:
			if !callFuns[v] {
				g.registerValue(pkg, v)
			}
		case *ast.SelectorExpr:
			if !callFuns[v] && !callFuns[v.Sel] {
				g.registerValue(pkg, v.Sel)
			}
		}
		return true
	})
}

func (g *CallGraph) registerValue(pkg *Package, id *ast.Ident) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	target := g.NodeOf(fn)
	if target == nil {
		return
	}
	sk := sigKey(fn.Origin().Type().(*types.Signature))
	for _, existing := range g.addrTaken[sk] {
		if existing == target {
			return
		}
	}
	g.addrTaken[sk] = append(g.addrTaken[sk], target)
}

// collectEdges resolves every call site in n's body.
func (g *CallGraph) collectEdges(n *Node) {
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.GoStmt:
			goCalls[v.Call] = true
		case *ast.CallExpr:
			g.resolveCall(n, v, goCalls[v])
		}
		return true
	})
}

// calleeFunc resolves a call's callee to a declared function, unwrapping
// explicit generic instantiation (f[T](...)).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch v := fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[v].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[v.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (g *CallGraph) resolveCall(n *Node, call *ast.CallExpr, spawned bool) {
	pkg := n.Pkg
	if fn := calleeFunc(pkg, call); fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			// Interface dispatch: link to every same-name, same-signature
			// concrete method in the module.
			for _, callee := range g.methods[methodKey(fn.Name(), sig)] {
				g.addEdge(n, callee, call.Lparen, KindInterface, spawned)
			}
			return
		}
		if callee := g.NodeOf(fn); callee != nil {
			g.addEdge(n, callee, call.Lparen, KindStatic, spawned)
		}
		return
	}
	// Indirect call through a function value (variable, parameter, field,
	// or call result).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := typeAsSignature(pkg.typeOf(call.Fun))
	if !ok {
		return
	}
	for _, callee := range g.addrTaken[sigKey(sig)] {
		g.addEdge(n, callee, call.Lparen, KindValue, spawned)
	}
}

func (g *CallGraph) addEdge(caller, callee *Node, pos token.Pos, kind EdgeKind, spawned bool) {
	e := &Edge{Caller: caller, Callee: callee, Pos: pos, Kind: kind, Spawned: spawned}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// methodKey identifies a method by name and receiver-less signature, the
// matching rule for interface dispatch. Signatures are compared as
// package-path-qualified strings because objects from different
// type-checker universes (each unit re-checks its imports from source) are
// never pointer-identical.
func methodKey(name string, sig *types.Signature) string {
	return name + "|" + sigKey(sig)
}

// sigKey renders a signature's parameter and result types (receiver
// excluded) as a canonical, universe-independent string.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	qual := func(p *types.Package) string { return p.Path() }
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteByte(')')
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteByte('(')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	b.WriteByte(')')
	return b.String()
}

// Visit is one node reached during a cone walk, with the edge path back to
// the root for blame rendering.
type Visit struct {
	Node *Node
	Via  *Edge
	prev *Visit
}

// Path returns the edges from the root to this visit, in call order.
func (v *Visit) Path() []*Edge {
	var rev []*Edge
	for cur := v; cur != nil && cur.Via != nil; cur = cur.prev {
		rev = append(rev, cur.Via)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Chain renders "a → b → c" for diagnostics (caller of the first edge
// through every callee).
func (v *Visit) Chain() string {
	path := v.Path()
	if len(path) == 0 {
		return v.Node.Name()
	}
	var b strings.Builder
	b.WriteString(path[0].Caller.Name())
	for _, e := range path {
		b.WriteString(" → ")
		b.WriteString(e.Callee.Name())
	}
	return b.String()
}

// Cone walks the callee cone of start.Node in breadth-first order
// (excluding start itself), following only edges accepted by follow, and
// calls visit for each node the first time it is reached. Paths chain
// through start, so a seeded start (carrying the edge from the true root)
// yields full blame chains. A nil follow accepts every edge; visit
// returning false prunes the walk below that node.
func (g *CallGraph) Cone(start *Visit, follow func(*Edge) bool, visit func(*Visit) (descend bool)) {
	seen := map[*Node]bool{start.Node: true}
	queue := []*Visit{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Node.Out {
			if seen[e.Callee] || (follow != nil && !follow(e)) {
				continue
			}
			seen[e.Callee] = true
			next := &Visit{Node: e.Callee, Via: e, prev: cur}
			if visit(next) {
				queue = append(queue, next)
			}
		}
	}
}

// relPos renders a position relative to the module root for diagnostics.
func (pr *Program) relPos(pos token.Pos) string {
	p := pr.Fset.Position(pos)
	file := p.Filename
	if pr.Root != "" {
		if rel, err := filepath.Rel(pr.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return file + ":" + strconv.Itoa(p.Line)
}
