package lint

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves a call's callee to its types.Object (function or
// builtin), or nil when type information is missing.
func (p *Package) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// callPkgFunc returns the package path and name of a called package-level
// function ("time", "Now"), or "" when the call is not a direct package
// function call (method calls return the receiver's package path).
func (p *Package) callPkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	obj := p.calleeObject(call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isMethodCall reports whether call invokes a method, and if so returns the
// defining package path and the method name.
func (p *Package) isMethodCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, found := p.Info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	fn := selection.Obj()
	if fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// syncMethodCall reports whether call invokes a method on a sync type
// (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Cond, ...), returning
// the receiver type's name and the method name. Embedded sync fields
// resolve here too: the selection's obj is still the sync method.
func (p *Package) syncMethodCall(call *ast.CallExpr) (typeName, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, found := p.Info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	fn := selection.Obj()
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	return named.Obj().Name(), fn.Name(), true
}

// typeOf returns the expression's type, or nil.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isFloat reports whether t is (an alias of) a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isRNGStream reports whether t is *rng.Stream from this module.
func isRNGStream(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Stream" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/rng")
}

// chanUnder reports whether t's underlying type is a channel.
func chanUnder(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// pathHasSuffix matches an import path suffix on path-segment boundaries.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// rootIdent unwraps selectors, indexes, stars, and parens to the base
// identifier of an lvalue-ish expression ("x" in x.f[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			// Unwrap conversions like byName(s) used in sort.Sort(byName(s)).
			if len(v.Args) == 1 {
				e = v.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// isBuiltin reports whether the call invokes the named builtin.
func (p *Package) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
