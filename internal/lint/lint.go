package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one project rule: a name (used in //nolint:maya/<name>
// directives and -run filters), a one-line description, and a Run function
// that inspects a type-checked package and reports findings through the
// Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned for editors and CI annotations.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NolintName is the pseudo-analyzer under which the framework reports
// problems with suppression directives themselves (unused or unknown).
// It cannot be suppressed.
const NolintName = "nolint"

// Analyzers returns every analyzer in the standard order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetWallclock,
		DetRand,
		MapRange,
		RNGShare,
		FloatEq,
		HotAlloc,
		CacheKey,
	}
}

// Run applies the analyzers to every package, resolves //nolint:maya/<name>
// suppressions, reports unused or malformed suppressions, and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
		}
		out = append(out, suppress(pkg, raw, known)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// suppress drops diagnostics covered by a nolint directive and reports
// directives that suppressed nothing (so stale annotations rot away instead
// of silently masking future findings) or that name no known analyzer.
func suppress(pkg *Package, raw []Diagnostic, ran map[string]bool) []Diagnostic {
	registered := map[string]bool{}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	dirs := pkg.directives()
	var out []Diagnostic
	for _, d := range raw {
		if nd := dirs.suppressing(d); nd != nil {
			nd.used = true
			continue
		}
		out = append(out, d)
	}
	for _, nd := range dirs.nolints {
		relevant := false
		for _, name := range nd.names {
			if !registered[name] {
				out = append(out, Diagnostic{
					Analyzer: NolintName, File: nd.file, Line: nd.line, Col: nd.col,
					Message: fmt.Sprintf("nolint names unknown analyzer maya/%s", name),
				})
			}
			// A directive can only prove itself unused against analyzers
			// that actually ran; skip the check when filtering to a subset.
			if ran[name] {
				relevant = true
			}
		}
		if !nd.used && relevant {
			out = append(out, Diagnostic{
				Analyzer: NolintName, File: nd.file, Line: nd.line, Col: nd.col,
				Message: "unused nolint suppression (no finding on this line)",
			})
		}
	}
	return out
}

// enclosingFunc returns the innermost function declaration containing pos,
// or nil. Function literals belong to their enclosing declaration.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
