package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one project rule: a name (used in //nolint:maya/<name>
// directives and -run filters), a one-line description, and up to two run
// functions — Run inspects one type-checked package at a time; RunProgram
// sees the whole program at once, with the call graph, for the
// interprocedural rules. Either may be nil.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// Diagnostic is one finding, positioned for editors and CI annotations.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.Pkg.Fset, p.Analyzer.Name, p.diags, pos, format, args...)
}

// ProgramPass is one analyzer's view of the whole program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	report(p.Prog.Fset, p.Analyzer.Name, p.diags, pos, format, args...)
}

func report(fset *token.FileSet, analyzer string, diags *[]Diagnostic, pos token.Pos, format string, args ...any) {
	position := fset.Position(pos)
	*diags = append(*diags, Diagnostic{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NolintName is the pseudo-analyzer under which the framework reports
// problems with suppression directives themselves (unused or unknown).
// It cannot be suppressed.
const NolintName = "nolint"

// Analyzers returns every analyzer in the standard order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetWallclock,
		DetRand,
		MapRange,
		RNGShare,
		FloatEq,
		HotAlloc,
		CacheKey,
		LockHold,
		CtxProp,
		SendLoop,
	}
}

// Run applies the analyzers to every package, resolves //nolint:maya/<name>
// suppressions, reports unused or malformed suppressions, and returns the
// surviving diagnostics sorted by position. The whole-program analyzers
// run over a Program built from the same packages; build one explicitly
// with NewProgram and call RunProgram to amortize the call graph across
// several invocations.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram(pkgs), analyzers)
}

// RunProgram is Run over a pre-built Program.
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Per-package passes.
	rawByPkg := make(map[*Package][]Diagnostic, len(prog.Pkgs))
	for _, pkg := range prog.Pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
			}
		}
		rawByPkg[pkg] = raw
	}
	// Whole-program passes; findings route to the package owning the file
	// so the package's suppression index covers them.
	var progDiags []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram != nil {
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &progDiags})
		}
	}
	var out []Diagnostic
	for _, d := range progDiags {
		if pkg := prog.owner[d.File]; pkg != nil {
			rawByPkg[pkg] = append(rawByPkg[pkg], d)
		} else {
			out = append(out, d)
		}
	}
	for _, pkg := range prog.Pkgs {
		out = append(out, suppress(pkg, rawByPkg[pkg], known)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// suppress drops diagnostics covered by a nolint directive and reports
// directives that suppressed nothing (so stale annotations rot away instead
// of silently masking future findings) or that name no known analyzer.
func suppress(pkg *Package, raw []Diagnostic, ran map[string]bool) []Diagnostic {
	registered := map[string]bool{}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	dirs := pkg.directives()
	var out []Diagnostic
	for _, d := range raw {
		if nd := dirs.suppressing(d); nd != nil {
			nd.used = true
			continue
		}
		out = append(out, d)
	}
	for _, nd := range dirs.nolints {
		relevant := false
		for _, name := range nd.names {
			if !registered[name] {
				out = append(out, Diagnostic{
					Analyzer: NolintName, File: nd.file, Line: nd.line, Col: nd.col,
					Message: fmt.Sprintf("nolint names unknown analyzer maya/%s", name),
				})
			}
			// A directive can only prove itself unused against analyzers
			// that actually ran; skip the check when filtering to a subset.
			if ran[name] {
				relevant = true
			}
		}
		if !nd.used && relevant {
			out = append(out, Diagnostic{
				Analyzer: NolintName, File: nd.file, Line: nd.line, Col: nd.col,
				Message: "unused nolint suppression (no finding on this line)",
			})
		}
	}
	return out
}

// enclosingFunc returns the innermost function declaration containing pos,
// or nil. Function literals belong to their enclosing declaration.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}
