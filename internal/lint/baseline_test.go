package lint

import (
	"path/filepath"
	"testing"
)

func baselineDiags() []Diagnostic {
	return []Diagnostic{
		{Analyzer: "lockhold", File: "/mod/a/x.go", Line: 10, Col: 3, Message: "channel send while holding mu"},
		{Analyzer: "lockhold", File: "/mod/a/x.go", Line: 40, Col: 3, Message: "channel send while holding mu"},
		{Analyzer: "ctxprop", File: "/mod/b/y.go", Line: 7, Col: 1, Message: "goroutine blocks but ignores in-scope context ctx"},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := baselineDiags()
	b := NewBaseline(diags, "/mod")
	if len(b.Findings) != 2 {
		t.Fatalf("entries = %d, want 2 (identical findings collapse with a count)", len(b.Findings))
	}
	fresh, stale := b.Filter(diags, "/mod")
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("self-filter: fresh=%v stale=%v, want none", fresh, stale)
	}

	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale = loaded.Filter(diags, "/mod")
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("after round trip: fresh=%v stale=%v, want none", fresh, stale)
	}
}

// A finding that moves to another line keeps its fingerprint: baselines
// must not churn on unrelated edits above the finding.
func TestBaselineLineIndependent(t *testing.T) {
	diags := baselineDiags()
	b := NewBaseline(diags, "/mod")
	moved := diags
	moved[0].Line = 99
	fresh, stale := b.Filter(moved, "/mod")
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("moved finding: fresh=%v stale=%v, want none", fresh, stale)
	}
}

func TestBaselineNewFindingFails(t *testing.T) {
	b := NewBaseline(baselineDiags(), "/mod")
	extra := append(baselineDiags(), Diagnostic{
		Analyzer: "sendloop", File: "/mod/a/x.go", Line: 3, Col: 1, Message: "send on unbuffered channel out",
	})
	fresh, _ := b.Filter(extra, "/mod")
	if len(fresh) != 1 || fresh[0].Analyzer != "sendloop" {
		t.Errorf("fresh = %v, want the one sendloop finding", fresh)
	}
}

// A third identical finding exceeds the recorded count and must surface.
func TestBaselineCountExceeded(t *testing.T) {
	b := NewBaseline(baselineDiags(), "/mod")
	extra := append(baselineDiags(), Diagnostic{
		Analyzer: "lockhold", File: "/mod/a/x.go", Line: 80, Col: 3, Message: "channel send while holding mu",
	})
	fresh, _ := b.Filter(extra, "/mod")
	if len(fresh) != 1 || fresh[0].Line != 80 {
		t.Errorf("fresh = %v, want the over-count lockhold finding", fresh)
	}
}

// Fixed findings leave stale entries behind so the ledger shrinks.
func TestBaselineStale(t *testing.T) {
	b := NewBaseline(baselineDiags(), "/mod")
	_, stale := b.Filter(baselineDiags()[:1], "/mod")
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want the drained lockhold count and the ctxprop entry", stale)
	}
	for _, e := range stale {
		if e.Count != 1 {
			t.Errorf("stale entry %s count = %d, want 1", e.key(), e.Count)
		}
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := b.Filter(baselineDiags(), "/mod")
	if len(fresh) != 3 || len(stale) != 0 {
		t.Errorf("empty baseline: fresh=%d stale=%d, want 3 and 0", len(fresh), len(stale))
	}
}
