package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestNolintReport(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), []string{"./nolint"})
	if err != nil {
		t.Fatal(err)
	}
	entries, problems := NolintReport(pkgs, "")
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5:\n%+v", len(entries), entries)
	}
	for _, e := range entries {
		if len(e.Analyzers) == 0 {
			t.Errorf("%s:%d: entry with no analyzers", e.File, e.Line)
		}
		if strings.Contains(e.File, "\\") || filepath.IsAbs(e.File) {
			t.Errorf("entry file %q is not a relative forward-slash path", e.File)
		}
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want the reason-less and unknown-analyzer directives", problems)
	}
	var sawReasonless, sawUnknown bool
	for _, p := range problems {
		if strings.Contains(p, "has no reason") {
			sawReasonless = true
		}
		if strings.Contains(p, "unknown analyzer maya/bogus") {
			sawUnknown = true
		}
	}
	if !sawReasonless || !sawUnknown {
		t.Errorf("problems = %v, want one reason-less and one unknown-analyzer", problems)
	}
}
