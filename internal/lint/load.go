package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file with the raw text kept around so directive
// handling can tell trailing comments from standalone comment lines.
type File struct {
	AST  *ast.File
	Name string // path as recorded in the FileSet
	Test bool   // *_test.go
	src  []byte
}

// Package is one type-checked unit: either a package's compiled files plus
// its in-package tests, or the external _test package of a directory.
type Package struct {
	// Path is the import path ("…/internal/core"); external test packages
	// carry the conventional ".test" suffix.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*File
	// Types and Info hold the (possibly partial) type-checking results.
	// Analyzers must tolerate missing entries: loading is lenient so one
	// broken file cannot hide findings in the rest of the package.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects what the checker complained about, for -debug
	// output; lenient loading means these are warnings, not failures.
	TypeErrors []error

	dirIndex *directiveIndex
}

// IsTestFile reports whether pos sits in a *_test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the packages matched by the go-style dir
// patterns ("./...", "./internal/core", "."), resolved relative to dir.
// testdata, hidden, and underscore-prefixed directories are skipped, as the
// go tool does. Loading is lenient: type errors are collected on the
// package, not fatal, so analyzers see as much of the tree as possible.
func Load(dir string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One importer instance for the whole run so its source-level package
	// cache is shared across every unit we check.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		units, err := loadDir(fset, imp, d, modRoot, modPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves dir patterns to a sorted list of directories that
// contain Go files.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("lint: bad pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses one directory and type-checks it as up to two units: the
// package (compiled sources plus in-package tests) and, when present, the
// external _test package.
func loadDir(fset *token.FileSet, imp types.Importer, dir, modRoot, modPath string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var inPkg, extTest []*File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{AST: af, Name: path, Test: strings.HasSuffix(name, "_test.go"), src: src}
		if f.Test && strings.HasSuffix(af.Name.Name, "_test") {
			extTest = append(extTest, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	// modRoot is absolute (findModule resolves it) but dir is whatever the
	// caller passed; resolve it so Rel yields the real module-relative path
	// and distinct directories never collapse onto the same import path.
	importPath := modPath
	if absDir, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(modRoot, absDir); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
	}
	var pkgs []*Package
	if len(inPkg) > 0 {
		pkgs = append(pkgs, check(fset, imp, importPath, dir, inPkg))
	}
	if len(extTest) > 0 {
		pkgs = append(pkgs, check(fset, imp, importPath+".test", dir, extTest))
	}
	return pkgs, nil
}

// check type-checks one unit leniently, recording rather than failing on
// type errors.
func check(fset *token.FileSet, imp types.Importer, path, dir string, files []*File) *Package {
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	tpkg, _ := conf.Check(strings.TrimSuffix(path, ".test"), fset, asts, info)
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}
