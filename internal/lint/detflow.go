package lint

import "strings"

// detflow is the interprocedural half of detwallclock and detrand: forward
// taint from nondeterminism sources (wall-clock reads, math/rand) into the
// sinks whose output must be a pure function of the seed. The per-package
// halves already flag unblessed sources at their sites; what only a
// whole-program view can catch is a *blessed* source — legitimate
// overhead accounting — sitting in the callee cone of a trace or flight
// writer, where its value would be serialized into an artifact that the
// byte-identity gates compare across runs.
//
// Sink roots are the repo's serialization entry points: exported Write*,
// Encode*, and Flush/Record functions in internal/trace and the flight
// recorder and trace exporter in internal/telemetry.

// writerSink reports whether n is a trace/flight writer root.
func writerSink(n *Node) bool {
	pkgPath := ""
	if n.Fn.Pkg() != nil {
		pkgPath = n.Fn.Pkg().Path()
	}
	name := n.Fn.Name()
	exported := name != "" && name[0] >= 'A' && name[0] <= 'Z'
	if !exported || n.File.Test {
		return false
	}
	switch {
	case pathHasSuffix(pkgPath, "internal/trace"):
		return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Append")
	case pathHasSuffix(pkgPath, "internal/telemetry"):
		return strings.HasPrefix(name, "Write") || name == "Record" || name == "Flush"
	}
	return false
}

func runDetWallclockProgram(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, root := range g.Nodes {
		if !writerSink(root) {
			continue
		}
		// The writer's own body: a blessed read here is just as much a
		// leak into the artifact as one a call deep.
		for _, w := range root.Facts().wall {
			if w.blessed {
				pass.Reportf(w.pos, "trace/flight writer %s contains a //maya:wallclock-blessed read time.%s; blessed accounting must never feed serialized artifacts", root.Decl.Name.Name, w.name)
			}
		}
		for _, e := range root.Out {
			if !followWriter(e) {
				continue
			}
			start := &Visit{Node: e.Callee, Via: e}
			reportWriterWall(pass, root, start)
			g.Cone(start, func(e2 *Edge) bool { return followWriter(e2) }, func(v *Visit) bool {
				reportWriterWall(pass, root, v)
				return true
			})
		}
	}
}

// followWriter prunes the writer cone: nested sink roots are audited on
// their own, and test helpers never feed committed artifacts.
func followWriter(e *Edge) bool {
	return !writerSink(e.Callee) && !e.Callee.File.Test
}

func reportWriterWall(pass *ProgramPass, root *Node, v *Visit) {
	for _, w := range v.Node.Facts().wall {
		if !w.blessed {
			continue // flagged at its site by the per-package pass
		}
		pass.Reportf(v.Path()[0].Pos, "trace/flight writer %s reaches a //maya:wallclock-blessed read time.%s at %s (%s); blessed accounting must never feed serialized artifacts",
			root.Decl.Name.Name, w.name, pass.Prog.relPos(w.pos), v.Chain())
	}
}

// runDetRandProgram traces math/rand uses — which survive in the tree only
// under an audited //nolint:maya/detrand suppression — into the
// determinism sinks: //maya:cachekey derivations are covered by the
// cachekey cone walk, so this pass covers the trace/flight writers.
func runDetRandProgram(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, root := range g.Nodes {
		if !writerSink(root) {
			continue
		}
		for _, e := range root.Out {
			if !followWriter(e) {
				continue
			}
			start := &Visit{Node: e.Callee, Via: e}
			reportWriterRand(pass, root, start)
			g.Cone(start, func(e2 *Edge) bool { return followWriter(e2) }, func(v *Visit) bool {
				reportWriterRand(pass, root, v)
				return true
			})
		}
	}
}

func reportWriterRand(pass *ProgramPass, root *Node, v *Visit) {
	for _, pos := range v.Node.Facts().mathRand {
		pass.Reportf(v.Path()[0].Pos, "trace/flight writer %s reaches a math/rand use at %s (%s); suppressed math/rand must stay out of serialized artifacts",
			root.Decl.Name.Name, pass.Prog.relPos(pos), v.Chain())
	}
}
