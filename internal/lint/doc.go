// Package lint is mayalint: a stdlib-only static-analysis framework
// (go/parser, go/ast, go/types — no external dependencies) with
// project-specific analyzers that mechanically enforce the invariants
// Maya's security argument rests on. The paper's §IV reproducibility claim
// — the mask stream is an exact function of a secret seed — and this
// repository's byte-identical experiment reports are properties the Go
// compiler cannot check; these analyzers gate them at review time.
//
// # Analyzers
//
//   - detwallclock: time.Now/time.Since outside //maya:wallclock sites.
//   - detrand: any import of math/rand; use internal/rng.
//   - maprange: order-sensitive work (append, output, JSON, telemetry)
//     inside a map range.
//   - rngshare: a *rng.Stream crossing a goroutine boundary without child
//     derivation.
//   - floateq: ==/!= on floats in non-test code.
//   - hotalloc: fmt, string building, or interface boxing inside
//     //maya:hotpath functions.
//   - cachekey: wall-clock reads (even //maya:wallclock-blessed ones) or
//     map ranges inside //maya:cachekey experiment-cache key derivations.
//
// # Directive syntax
//
// Annotations bless sites that are legitimate by design:
//
//	//maya:wallclock <optional reason>
//	//maya:hotpath   <optional reason>
//	//maya:cachekey  <optional reason>
//
// A maya: directive in a function's doc comment covers the whole function
// (closures included). On a line of its own it covers the next source
// line; trailing a statement it covers that line. //maya:wallclock marks
// overhead accounting that measures the host and never feeds decisions;
// //maya:hotpath opts a function into hotalloc's allocation rules;
// //maya:cachekey (doc-comment placement only) opts a key-derivation
// function into the cachekey audit, under which wall-clock blessings stop
// applying and map iteration is banned outright.
//
// Suppressions silence one finding, with an unused-suppression check so
// stale annotations are themselves findings:
//
//	x := a == b //nolint:maya/floateq exact zero test of a value set to 0
//	//nolint:maya/maprange order is folded through a commutative sum
//	y := collect(m)
//
// The list form //nolint:maya/a,maya/b is accepted; entries for other
// linters in the same comment are ignored. Suppressions naming an unknown
// analyzer, or matching no finding, are reported under the pseudo-analyzer
// "nolint", which cannot itself be suppressed.
//
// # Running
//
//	go run ./cmd/mayalint ./...            # text findings, exit 1 if any
//	go run ./cmd/mayalint -json ./...      # machine-readable findings
//	scripts/lint.sh                        # CI entry point
//
// Loading is lenient: files that fail to type-check perfectly still get
// analyzed with partial type information, so one broken file cannot mask
// findings elsewhere.
package lint
