// Package lint is mayalint: a stdlib-only static-analysis framework
// (go/parser, go/ast, go/types — no external dependencies) with
// project-specific analyzers that mechanically enforce the invariants
// Maya's security argument rests on. The paper's §IV reproducibility claim
// — the mask stream is an exact function of a secret seed — and this
// repository's byte-identical experiment reports are properties the Go
// compiler cannot check; these analyzers gate them at review time.
//
// # The interprocedural engine
//
// Beyond the per-package passes, the framework builds a whole-program
// call graph over go/types (callgraph.go): static calls and concrete
// method calls resolve exactly; interface calls resolve by method
// name+signature over the program's concrete method sets; calls through
// function values — the runner/fleet callback fields — resolve to every
// address-taken function of the same signature. Generic instantiations
// collapse onto their origin declaration. Each graph node carries a
// computed fact summary (facts.go): allocation sites, wall-clock reads
// (with their //maya:wallclock blessing), blocking operations, map
// ranges, and math/rand uses. Analyzers walk callee cones over these
// summaries and report with full blame chains ("a → b → c"), so a
// finding three calls deep lands on the call edge the author can see.
//
// # Analyzers
//
//   - detwallclock: time.Now/time.Since outside //maya:wallclock sites;
//     interprocedurally, even *blessed* reads reachable from trace/flight
//     writers (blessed accounting must never feed serialized artifacts).
//   - detrand: any import of math/rand; use internal/rng. Suppressed
//     survivors are still traced into trace/flight writer cones.
//   - maprange: order-sensitive work (append, output, JSON, telemetry)
//     inside a map range.
//   - rngshare: a *rng.Stream crossing a goroutine boundary without child
//     derivation — directly, via struct fields or composite literals, or
//     through a callee that leaks its stream parameter (escape analysis
//     with fixpoint propagation across call sites).
//   - floateq: ==/!= on floats in non-test code.
//   - hotalloc: fmt, string building, or interface boxing inside
//     //maya:hotpath functions — transitively through the callee cone,
//     charged to the call edge leaving the hot function. Constants are
//     exempt (they box to static data); //maya:coldpath stops the walk.
//   - cachekey: wall-clock reads (even //maya:wallclock-blessed ones),
//     map ranges, or math/rand anywhere in the callee cone of a
//     //maya:cachekey experiment-cache key derivation.
//   - lockhold: a sync.Mutex/RWMutex held across a channel operation,
//     select, WaitGroup.Wait, sleep, or a call whose cone blocks.
//     sync.Cond.Wait is exempt (it waits with its lock by design).
//   - ctxprop: context.Background()/TODO() passed to a callee, or a
//     blocking goroutine spawned without the context, while a
//     context.Context parameter is in scope.
//   - sendloop: a send on a provably-unbuffered channel inside a
//     //maya:hotpath loop or a range-over-channel tick loop; select-
//     wrapped sends are exempt.
//
// # Directive syntax
//
// Annotations bless sites that are legitimate by design:
//
//	//maya:wallclock <optional reason>
//	//maya:hotpath   <optional reason>
//	//maya:coldpath  <optional reason>
//	//maya:cachekey  <optional reason>
//
// A maya: directive in a function's doc comment covers the whole function
// (closures included). On a line of its own it covers the next source
// line; trailing a statement it covers that line. //maya:wallclock marks
// overhead accounting that measures the host and never feeds decisions;
// //maya:hotpath opts a function into hotalloc's allocation rules;
// //maya:coldpath (doc-comment placement) asserts a function is off every
// hot path — panic formatting, error paths — so the transitive hotalloc
// walk does not descend into it; //maya:cachekey (doc-comment placement
// only) opts a key-derivation function into the cachekey audit, under
// which wall-clock blessings stop applying and map iteration is banned
// outright.
//
// Suppressions silence one finding, with an unused-suppression check so
// stale annotations are themselves findings:
//
//	x := a == b //nolint:maya/floateq exact zero test of a value set to 0
//	//nolint:maya/maprange order is folded through a commutative sum
//	y := collect(m)
//
// The list form //nolint:maya/a,maya/b is accepted; entries for other
// linters in the same comment are ignored. Suppressions naming an unknown
// analyzer, or matching no finding, are reported under the pseudo-analyzer
// "nolint", which cannot itself be suppressed. The prose after the name
// list is the suppression's reason: `mayalint -nolint-report` enumerates
// every suppression with its reason and fails on reason-less directives,
// so the suppression set doubles as an audit trail.
//
// # Baseline
//
// lint.baseline.json at the module root is the committed ledger of
// audited legacy findings. Fingerprints are analyzer + module-relative
// file + message — deliberately line-independent, so edits above a
// finding do not churn the ledger — with a count per fingerprint. New
// findings fail CI; baselined ones don't; a baselined finding that gets
// fixed fails as stale until its entry is pruned, so the ledger only
// ever shrinks. Regenerate with `mayalint -write-baseline
// lint.baseline.json` (then audit the diff).
//
// # Running
//
//	go run ./cmd/mayalint ./...             # text findings, exit 1 if any
//	go run ./cmd/mayalint -json ./...       # machine-readable findings
//	go run ./cmd/mayalint -sarif ./...      # SARIF 2.1.0 for code scanners
//	go run ./cmd/mayalint -nolint-report    # audit the suppression set
//	scripts/lint.sh                         # CI entry point: baseline +
//	                                        # JSON + SARIF + nolint audit
//
// Loading is lenient: files that fail to type-check perfectly still get
// analyzed with partial type information, so one broken file cannot mask
// findings elsewhere.
package lint
