package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockHold flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, selects without a
// default, range-over-channel loops, sync.WaitGroup.Wait, and time.Sleep —
// plus, through the call graph, calls to module functions that block
// transitively. A lock held across a blocking operation couples every
// other lock user to an unrelated goroutine's progress; in a sharded tick
// scheduler that is a priority inversion that shows up as missed
// deadlines, and under shutdown it is how deadlocks assemble. The
// mutex-guarded seams feeding mayad — fleet.Spill, the telemetry registry
// — are the surfaces this rule protects.
//
// sync.Cond.Wait is deliberately exempt: a Cond waits with its lock held
// by design. Locks released on every path before the operation are
// tracked: an Unlock in a conditional branch keeps the lock held on the
// fallthrough analysis, which errs on the reporting side.
var LockHold = &Analyzer{
	Name:       "lockhold",
	Doc:        "mutex held across a channel operation, WaitGroup.Wait, sleep, or a transitively blocking call",
	RunProgram: runLockHold,
}

// heldLock is one currently-held mutex, keyed by the rendered receiver
// expression ("s.mu").
type heldLock struct {
	expr string
	pos  token.Pos // the Lock call
}

func runLockHold(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, n := range g.Nodes {
		lh := &lockWalker{pass: pass, g: g, node: n}
		lh.walkStmts(n.Decl.Body.List, map[string]heldLock{})
	}
}

type lockWalker struct {
	pass *ProgramPass
	g    *CallGraph
	node *Node
}

// walkStmts processes a statement list in order, threading the set of held
// locks through it. Nested blocks inherit a copy: a lock taken inside a
// branch does not leak out, and an unlock inside a branch conservatively
// keeps the lock held after it.
func (w *lockWalker) walkStmts(list []ast.Stmt, held map[string]heldLock) {
	for _, stmt := range list {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]heldLock) {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok && w.lockTransition(call, held) {
			return
		}
		w.checkExpr(v.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for the
		// remainder of the function, which is exactly what the walk models
		// by ignoring it. Other defers are checked as expressions (a
		// deferred blocking call runs while any still-held lock is held,
		// but modeling defer ordering is not worth the precision).
		if tname, mname, ok := w.node.Pkg.syncMethodCall(v.Call); ok && isMutexType(tname) && (mname == "Unlock" || mname == "RUnlock") {
			return
		}
		w.checkExpr(v.Call, held)
	case *ast.SendStmt:
		w.flagIfHeld(v.Arrow, "channel send", held)
		w.checkExpr(v.Chan, held)
		w.checkExpr(v.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.lockTransition(call, held) {
				continue
			}
			w.checkExpr(rhs, held)
		}
		for _, lhs := range v.Lhs {
			w.checkExpr(lhs, held)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			w.walkStmt(v.Init, held)
		}
		w.checkExpr(v.Cond, held)
		w.walkStmts(v.Body.List, copyHeld(held))
		if v.Else != nil {
			w.walkStmt(v.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		w.walkStmts(v.List, copyHeld(held))
	case *ast.ForStmt:
		if v.Init != nil {
			w.walkStmt(v.Init, held)
		}
		if v.Cond != nil {
			w.checkExpr(v.Cond, held)
		}
		w.walkStmts(v.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if chanUnder(w.node.Pkg.typeOf(v.X)) {
			w.flagIfHeld(v.For, "range over channel", held)
		}
		w.checkExpr(v.X, held)
		w.walkStmts(v.Body.List, copyHeld(held))
	case *ast.SelectStmt:
		if !selectHasDefault(v) {
			w.flagIfHeld(v.Select, "select", held)
		}
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.walkStmt(v.Init, held)
		}
		if v.Tag != nil {
			w.checkExpr(v.Tag, held)
		}
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			w.checkExpr(res, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks; its
		// own body is analyzed when its function is visited. Nothing to
		// check here beyond argument evaluation.
		for _, arg := range v.Call.Args {
			w.checkExpr(arg, held)
		}
	case *ast.LabeledStmt:
		w.walkStmt(v.Stmt, held)
	}
}

// lockTransition updates the held set for Lock/Unlock calls and reports
// whether the call was one.
func (w *lockWalker) lockTransition(call *ast.CallExpr, held map[string]heldLock) bool {
	tname, mname, ok := w.node.Pkg.syncMethodCall(call)
	if !ok || !isMutexType(tname) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch mname {
	case "Lock", "RLock":
		held[key] = heldLock{expr: key, pos: call.Pos()}
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	case "TryLock", "TryRLock":
		// The result decides whether the lock is held; treat as held to
		// err on the reporting side only when the call is a statement
		// (discarded result means it IS held on success with no release
		// tracking) — too rare to model; ignore.
		return true
	}
	return false
}

func isMutexType(name string) bool {
	return name == "Mutex" || name == "RWMutex"
}

// checkExpr scans an expression for blocking operations and blocking calls
// performed under held locks. Function literals are skipped: their bodies
// run when invoked, not where written (immediately-invoked literals are
// caught as calls through the graph's value edges).
func (w *lockWalker) checkExpr(expr ast.Expr, held map[string]heldLock) {
	if expr == nil || len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				w.flagIfHeld(v.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			w.checkCall(v, held)
		}
		return true
	})
}

// checkCall flags directly blocking calls (WaitGroup.Wait, time.Sleep) and
// calls into module functions whose cone blocks.
func (w *lockWalker) checkCall(call *ast.CallExpr, held map[string]heldLock) {
	pkg := w.node.Pkg
	if tname, mname, ok := pkg.syncMethodCall(call); ok {
		if tname == "WaitGroup" && mname == "Wait" {
			w.flagIfHeld(call.Pos(), "sync.WaitGroup.Wait", held)
		}
		return
	}
	if pkgPath, name := pkg.callPkgFunc(call); pkgPath == "time" && name == "Sleep" {
		w.flagIfHeld(call.Pos(), "time.Sleep", held)
		return
	}
	// Transitive: does the callee's cone contain a blocking operation on
	// the calling goroutine?
	callee := w.g.NodeOf(calleeFunc(pkg, call))
	if callee == nil || callee == w.node {
		return
	}
	start := &Visit{Node: callee, Via: &Edge{Caller: w.node, Callee: callee, Pos: call.Pos(), Kind: KindStatic}}
	if v, site := findBlocking(w.g, start); v != nil {
		lock := minHeld(held)
		w.pass.Reportf(call.Pos(), "call to %s blocks (%s at %s, via %s) while holding %s (locked at %s); shrink the critical section",
			callee.Name(), site.what, w.pass.Prog.relPos(site.pos), v.Chain(), lock.expr, w.pass.Prog.relPos(lock.pos))
	}
}

// findBlocking returns the first visit (BFS order) whose node blocks on
// the calling goroutine, with the site.
func findBlocking(g *CallGraph, start *Visit) (*Visit, *blockSite) {
	var found *Visit
	var site *blockSite
	check := func(v *Visit) bool {
		for i := range v.Node.Facts().blocks {
			b := &v.Node.Facts().blocks[i]
			if !b.spawned {
				found, site = v, b
				return false
			}
		}
		return true
	}
	if !check(start) {
		return found, site
	}
	g.Cone(start, func(e *Edge) bool {
		return e.Kind == KindStatic && !e.Spawned && !e.Callee.File.Test
	}, func(v *Visit) bool {
		return found == nil && check(v)
	})
	return found, site
}

func (w *lockWalker) flagIfHeld(pos token.Pos, what string, held map[string]heldLock) {
	if len(held) == 0 {
		return
	}
	lock := minHeld(held)
	w.pass.Reportf(pos, "%s while holding %s (locked at %s); shrink the critical section — a blocked %s stalls every other lock user",
		what, lock.expr, w.pass.Prog.relPos(lock.pos), what)
}

// minHeld picks the deterministic representative lock for the message.
func minHeld(held map[string]heldLock) heldLock {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return held[keys[0]]
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
