package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces allocation hygiene in functions annotated
// //maya:hotpath — the telemetry instruments and the per-tick engine step,
// which run every 20 ms control period and are covered by a zero-alloc
// benchmark gate. Inside a hot path the analyzer flags:
//
//   - calls into fmt (formatting allocates and reflects);
//   - string concatenation (every + on non-constant strings allocates);
//   - boxing a concrete value into an interface — as a call argument, an
//     assignment, or a return value — which allocates once the value
//     escapes.
//
// The benchmark gate catches regressions at run time on one input; this
// catches them at review time on every path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//maya:hotpath functions must not call fmt, build strings, or box into interfaces",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pkg.funcDirective(fd, DirHotpath) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	var results *types.Tuple
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, v)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(pkg.typeOf(v)) && !isConstant(pkg, v) {
				pass.Reportf(v.OpPos, "string concatenation in hot path %s allocates; precompute or use a fixed buffer", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true // multi-value form; types come from the call
			}
			for i, rhs := range v.Rhs {
				lhsType := pkg.typeOf(v.Lhs[i])
				if v.Tok == token.DEFINE {
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							lhsType = obj.Type()
						}
					}
				}
				reportBox(pass, fd, rhs, lhsType, "assignment")
			}
		case *ast.ReturnStmt:
			if results == nil || len(v.Results) != results.Len() {
				return true
			}
			for i, res := range v.Results {
				reportBox(pass, fd, res, results.At(i).Type(), "return")
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls and arguments boxed into interface
// parameters.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	pkg := pass.Pkg
	if pkgPath, name := pkg.callPkgFunc(call); pkgPath == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates and reflects; move formatting off the per-tick path", name, fd.Name.Name)
		return
	}
	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			reportBox(pass, fd, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	sig, ok := typeAsSignature(pkg.typeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		reportBox(pass, fd, arg, paramType, "argument")
	}
}

func reportBox(pass *Pass, fd *ast.FuncDecl, expr ast.Expr, target types.Type, context string) {
	pkg := pass.Pkg
	if target == nil || !types.IsInterface(target) {
		return
	}
	argType := pkg.typeOf(expr)
	if argType == nil || types.IsInterface(argType.Underlying()) {
		return
	}
	if b, ok := argType.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxes %s into %s in hot path %s; boxing allocates when the value escapes", context, argType, target, fd.Name.Name)
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}
