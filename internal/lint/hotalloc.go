package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces allocation hygiene in functions annotated
// //maya:hotpath — the telemetry instruments and the per-tick engine step,
// which run every 20 ms control period and are covered by a zero-alloc
// benchmark gate. Inside a hot path the analyzer flags:
//
//   - calls into fmt (formatting allocates and reflects);
//   - string concatenation (every + on non-constant strings allocates);
//   - boxing a concrete value into an interface — as a call argument, an
//     assignment, or a return value — which allocates once the value
//     escapes. Constants are exempt: they box to static data the compiler
//     emits at build time.
//
// Since the interprocedural engine landed, the charge is transitive: a hot
// path is also responsible for allocations anywhere in its callee cone
// (static and concrete-method edges). The diagnostic lands on the call
// edge leaving the hot function and carries the blame chain down to the
// allocation site. Callees that are themselves //maya:hotpath are audited
// on their own and skipped; //maya:coldpath marks a deliberately cold
// callee (panic formatting, error paths) that the cone walk must not
// charge.
//
// The benchmark gate catches regressions at run time on one input; this
// catches them at review time on every path.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "//maya:hotpath functions must not allocate (fmt, string building, interface boxing), transitively through their callee cone",
	Run:        runHotAlloc,
	RunProgram: runHotAllocProgram,
}

// allocKind classifies one allocation site for message rendering.
type allocKind int

const (
	allocFmt allocKind = iota
	allocConcat
	allocBox
)

// allocSite is one allocation found in a function body.
type allocSite struct {
	pos  token.Pos
	kind allocKind
	// fmt: a = function name. box: a = context ("argument", ...),
	// b = boxed type, c = interface type.
	a, b, c string
}

// direct renders the legacy intraprocedural message, reported when the
// site sits in the annotated function itself.
func (s allocSite) direct(fn string) string {
	switch s.kind {
	case allocFmt:
		return fmt.Sprintf("fmt.%s in hot path %s allocates and reflects; move formatting off the per-tick path", s.a, fn)
	case allocConcat:
		return fmt.Sprintf("string concatenation in hot path %s allocates; precompute or use a fixed buffer", fn)
	default:
		return fmt.Sprintf("%s boxes %s into %s in hot path %s; boxing allocates when the value escapes", s.a, s.b, s.c, fn)
	}
}

// short renders the site for transitive blame messages.
func (s allocSite) short() string {
	switch s.kind {
	case allocFmt:
		return "fmt." + s.a + " call"
	case allocConcat:
		return "string concatenation"
	default:
		return fmt.Sprintf("%s boxing %s into %s", s.a, s.b, s.c)
	}
}

func runHotAlloc(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pkg.funcDirective(fd, DirHotpath) {
				continue
			}
			for _, site := range collectAllocs(pkg, fd) {
				pass.Reportf(site.pos, "%s", site.direct(fd.Name.Name))
			}
		}
	}
}

// runHotAllocProgram charges each //maya:hotpath function for allocations
// in its callee cone. One diagnostic per call edge leaving the hot
// function keeps the report readable: it names the first allocation site
// (by BFS depth) with its blame chain and counts the rest.
func runHotAllocProgram(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, root := range g.Nodes {
		if !root.Pkg.funcDirective(root.Decl, DirHotpath) {
			continue
		}
		// Walk each out-edge's cone separately so blame lands on the edge.
		reported := map[token.Pos]bool{}
		for _, e := range root.Out {
			if reported[e.Pos] || !followHot(g, e) {
				continue
			}
			var first *Visit
			var firstSite allocSite
			count := 0
			// A single-edge cone: seed the walk at the callee.
			countNode := func(v *Visit) {
				for _, site := range v.Node.Facts().allocs {
					count++
					if first == nil {
						first, firstSite = v, site
					}
				}
			}
			start := &Visit{Node: e.Callee, Via: e}
			countNode(start)
			g.Cone(start, func(e2 *Edge) bool { return followHot(g, e2) }, func(v *Visit) bool {
				countNode(v)
				return true
			})
			if first == nil {
				continue
			}
			reported[e.Pos] = true
			more := ""
			if count > 1 {
				more = fmt.Sprintf(" (+%d more allocation sites in the cone)", count-1)
			}
			pass.Reportf(e.Pos, "call to %s in hot path %s reaches an allocation: %s at %s (%s)%s",
				e.Callee.Name(), root.Decl.Name.Name, firstSite.short(),
				pass.Prog.relPos(firstSite.pos), first.Chain(), more)
		}
	}
}

// followHot prunes the hot-cone walk: only static and concrete-method
// edges are followed (interface and function-value dispatch over-
// approximate too wildly to charge), and callees annotated //maya:hotpath
// (audited on their own) or //maya:coldpath (asserted cold) stop the walk.
func followHot(g *CallGraph, e *Edge) bool {
	if e.Kind != KindStatic {
		return false
	}
	callee := e.Callee
	if callee.Pkg.funcDirective(callee.Decl, DirHotpath) || callee.Pkg.funcDirective(callee.Decl, DirColdpath) {
		return false
	}
	// Test-only callees never run on the production tick.
	if callee.File.Test {
		return false
	}
	return true
}

// collectAllocs gathers the allocation sites in fd's body (closures
// included): fmt calls, non-constant string concatenation, and interface
// boxing at call arguments, assignments, conversions, and returns.
func collectAllocs(pkg *Package, fd *ast.FuncDecl) []allocSite {
	var out []allocSite
	var results *types.Tuple
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			out = append(out, allocsFromCall(pkg, v)...)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(pkg.typeOf(v)) && !isConstant(pkg, v) {
				out = append(out, allocSite{pos: v.OpPos, kind: allocConcat})
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true // multi-value form; types come from the call
			}
			for i, rhs := range v.Rhs {
				lhsType := pkg.typeOf(v.Lhs[i])
				if v.Tok == token.DEFINE {
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							lhsType = obj.Type()
						}
					}
				}
				out = appendBox(out, pkg, rhs, lhsType, "assignment")
			}
		case *ast.ReturnStmt:
			if results == nil || len(v.Results) != results.Len() {
				return true
			}
			for i, res := range v.Results {
				out = appendBox(out, pkg, res, results.At(i).Type(), "return")
			}
		}
		return true
	})
	return out
}

// allocsFromCall flags fmt calls and arguments boxed into interface
// parameters.
func allocsFromCall(pkg *Package, call *ast.CallExpr) []allocSite {
	var out []allocSite
	if pkgPath, name := pkg.callPkgFunc(call); pkgPath == "fmt" {
		return append(out, allocSite{pos: call.Pos(), kind: allocFmt, a: name})
	}
	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			out = appendBox(out, pkg, call.Args[0], tv.Type, "conversion")
		}
		return out
	}
	sig, ok := typeAsSignature(pkg.typeOf(call.Fun))
	if !ok {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		out = appendBox(out, pkg, arg, paramType, "argument")
	}
	return out
}

func appendBox(out []allocSite, pkg *Package, expr ast.Expr, target types.Type, context string) []allocSite {
	if target == nil || !types.IsInterface(target) {
		return out
	}
	argType := pkg.typeOf(expr)
	if argType == nil || types.IsInterface(argType.Underlying()) {
		return out
	}
	if b, ok := argType.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return out
	}
	// Constants convert to interface via static data the compiler emits at
	// build time — panic("literal"), sink(42) — no runtime allocation.
	if isConstant(pkg, expr) {
		return out
	}
	return append(out, allocSite{
		pos: expr.Pos(), kind: allocBox,
		a: context, b: argType.String(), c: target.String(),
	})
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}
