// Package sendloop is a golden-test fixture for the sendloop analyzer:
// unbuffered sends inside hot loops.
package sendloop

func drain(ch chan int) {
	for range ch {
	}
}

// emit is the fixture's per-tick producer.
//
//maya:hotpath
func emit(n int) {
	out := make(chan int)
	go drain(out)
	for i := 0; i < n; i++ {
		out <- i // want "send on unbuffered channel out inside a //maya:hotpath loop"
	}
	close(out)
}

// emitBuffered is clean: the consumer can lag without stalling the loop.
//
//maya:hotpath
func emitBuffered(n int) {
	out := make(chan int, 8)
	go drain(out)
	for i := 0; i < n; i++ {
		out <- i
	}
	close(out)
}

// emitZero: an explicit zero capacity is still unbuffered.
//
//maya:hotpath
func emitZero(ticks []int) {
	out := make(chan int, 0)
	go drain(out)
	for _, t := range ticks {
		out <- t // want "send on unbuffered channel out inside a //maya:hotpath loop"
	}
	close(out)
}

// fanOut is not annotated, but a range-over-channel loop is a tick
// consumer by shape.
func fanOut(ticks chan int) {
	results := make(chan int)
	go drain(results)
	for t := range ticks {
		results <- t * 2 // want "send on unbuffered channel results inside a range-over-channel loop"
	}
	close(results)
}

// fanOutSelect is clean: select makes the blocking explicit and pairs the
// send with a way out.
func fanOutSelect(ticks chan int, done chan struct{}) {
	results := make(chan int)
	go drain(results)
	for t := range ticks {
		select {
		case results <- t:
		case <-done:
			return
		}
	}
	close(results)
}

// forward is clean: a channel received as a parameter may be buffered by
// the caller, so nothing is provable.
func forward(ticks chan int, out chan int) {
	for t := range ticks {
		out <- t
	}
}
