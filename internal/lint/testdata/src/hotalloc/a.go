// Package hotalloc is a golden-test fixture for hot-path allocation
// hygiene.
package hotalloc

import "fmt"

func sink(v interface{})      { _ = v }
func sinkMany(vs ...any)      { _ = vs }
func passthrough(vs ...any)   { sinkMany(vs...) }
func typed(s string, n int64) { _, _ = s, n }

// step is the fixture's per-tick function.
//
//maya:hotpath
func step(n int, name string) interface{} {
	fmt.Println(n)  // want "fmt.Println in hot path step allocates and reflects"
	s := name + "!" // want "string concatenation in hot path step allocates"
	typed(s, 2)
	sink(n)        // want "argument boxes int into"
	sinkMany(1, s) // want "argument boxes string into"

	// Constants box to static data the compiler emits at build time — no
	// runtime allocation, no finding (the 1 above, the conversion below,
	// and panicking with a literal message).
	cv := interface{}(3.5)
	_ = cv
	if n < 0 {
		panic("step: negative tick")
	}

	// Forwarding an existing slice does not box per element.
	pre := []any{name}
	sinkMany(pre...)

	var box interface{}
	box = n // want "assignment boxes int into"
	_ = box
	f := float64(n)
	conv := interface{}(f) // want "conversion boxes float64 into"
	_ = conv

	return n // want "return boxes int into"
}

// cold is not annotated: the same constructs are legal off the hot path.
func cold(n int, name string) interface{} {
	fmt.Println(n)
	sink(name + "!")
	return n
}
