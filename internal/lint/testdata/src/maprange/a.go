// Package maprange is a golden-test fixture for order-sensitive work
// inside map ranges.
package maprange

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/maya-defense/maya/internal/telemetry"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside a map range builds a slice in randomized order"
	}
	return keys
}

// goodSorted is the canonical collect-then-sort idiom; the append is
// blessed by the sort call later in the same block.
func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "call to fmt.Println inside a map range happens in randomized order"
	}
}

func badWrites(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k)      // want "method WriteString call inside a map range"
		b, _ := json.Marshal(k) // want "json.Marshal inside a map range"
		_ = b
	}
}

func badTelemetry(m map[string]int, c *telemetry.Counter) {
	for range m {
		c.Inc() // want "telemetry Inc call inside a map range"
	}
}

// goodSum is order-insensitive and must not be flagged.
func goodSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
