// Package callgraph is a fixture for the call-graph builder: generic
// instantiation, method values, function-typed struct fields, and
// interface dispatch. It is deliberately clean under every analyzer.
package callgraph

// Ring carries a function-typed field, the runner/fleet callback shape.
type Ring struct {
	step func(int) int
}

func inc(x int) int { return x + 1 }

func dbl(x int) int { return x * 2 }

func NewRing() *Ring { return &Ring{step: inc} }

// Advance dispatches through the field: a value edge to every
// address-taken func of the same signature.
func (r *Ring) Advance(x int) int { return r.step(x) }

// Map is generic; call edges land on the origin, not the instantiation.
func Map[T any](xs []T, f func(T) T) []T {
	out := make([]T, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// UseMap instantiates Map explicitly.
func UseMap(xs []int) []int { return Map[int](xs, dbl) }

type Counter struct{ n int }

func (c *Counter) Add(d int) { c.n += d }

// Bind returns a method value: Add's address escapes.
func Bind(c *Counter) func(int) {
	return c.Add
}

// Drive invokes an arbitrary function value.
func Drive(f func(int)) { f(3) }

func Run(c *Counter) {
	Drive(Bind(c))
}

// Stepper exercises interface dispatch.
type Stepper interface{ Step(int) int }

type Unit struct{}

func (Unit) Step(x int) int { return x }

func Apply(s Stepper, x int) int { return s.Step(x) }
