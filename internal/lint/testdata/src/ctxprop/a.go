// Package ctxprop is a golden-test fixture for the ctxprop analyzer:
// dropped context propagation.
package ctxprop

import "context"

func lookup(ctx context.Context, key string) string { _ = ctx; return key }

func fresh(ctx context.Context) string {
	return lookup(context.Background(), "k") // want "context.Background.. passed to a callee while ctx is in scope"
}

func todo(ctx context.Context) string {
	return lookup(context.TODO(), "k") // want "context.TODO.. passed to a callee while ctx is in scope"
}

// propagated forwards the caller's context: clean.
func propagated(ctx context.Context) string {
	return lookup(ctx, "k")
}

func spawnBlind(ctx context.Context, ch chan int) {
	go func() { // want "goroutine blocks but ignores in-scope context ctx"
		ch <- 1
	}()
}

// spawnAware captures the context in the closure: clean.
func spawnAware(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// spawnPure never blocks: no cancellation hook needed.
func spawnPure(ctx context.Context, counters []int) {
	go func() {
		for i := range counters {
			counters[i]++
		}
	}()
}

// pump blocks on its channel until it is closed.
func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func spawnNamed(ctx context.Context, ch chan int) {
	go pump(ch) // want "goroutine .*pump blocks but receives no context"
}

func pumpCtx(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

// spawnNamedCtx threads the context through: clean.
func spawnNamedCtx(ctx context.Context, ch chan int) {
	go pumpCtx(ctx, ch)
}
