package detrand

import (
	randv2 "math/rand/v2" // want "import of math/rand/v2; use internal/rng"
)

func drawV2() int { return randv2.IntN(6) }
