// Package detrand is a golden-test fixture for the math/rand import ban.
package detrand

import (
	"math/rand" // want "import of math/rand; use internal/rng"
)

func draw() int { return rand.Intn(6) }
