// Package nolint is a golden-test fixture for the suppression machinery
// itself: used suppressions silence exactly one line, unused and unknown
// ones are reported under the unsuppressible "nolint" pseudo-analyzer.
package nolint

func suppressed(a, b float64) bool {
	return a == b //nolint:maya/floateq fixture: a used suppression produces no finding
}

func standalone(a, b float64) bool {
	//nolint:maya/floateq fixture: the standalone form covers the next line
	return a != b
}

func unused(a float64) float64 {
	a += 1 //nolint:maya/floateq nothing on this line to suppress // want "unused nolint suppression"
	return a
}

func unknown(a, b float64) bool {
	return a == b //nolint:maya/bogus no such analyzer // want "nolint names unknown analyzer maya/bogus" "float == comparison"
}

func reasonless(a, b float64) bool {
	// A bare suppression still silences the finding; the nolint report is
	// what refuses it (TestNolintReport).
	return a == b //nolint:maya/floateq
}
