package detwallclock

import "time"

// tracer mirrors the telemetry tracing hot path: span timestamps must come
// from the tracer's blessed epoch-relative clock, never an ad-hoc
// wall-clock read sprinkled into a record call.
type tracer struct {
	epoch time.Time
}

// clockUnblessed is the mistake the linter must keep out of the hot path:
// a raw monotonic read without the //maya:wallclock audit trail.
func (t *tracer) clockUnblessed() int64 {
	return time.Since(t.epoch).Nanoseconds() // want "wall-clock read time.Since outside a //maya:wallclock site"
}

// clock is the blessed form: one audited read, everything else derives
// span timestamps from it.
//
//maya:wallclock span timestamps are monotonic offsets from the tracer epoch
func (t *tracer) clock() int64 {
	return time.Since(t.epoch).Nanoseconds()
}

// recordUnblessed stamps a span with its own time.Now — the exact
// per-event wall-clock read the tracing layer centralizes away.
func (t *tracer) recordUnblessed(name string) int64 {
	start := time.Now() // want "wall-clock read time.Now outside a //maya:wallclock site"
	_ = name
	return start.UnixNano()
}

// record is the hot-path shape that needs no blessing at all: timestamps
// arrive as arguments, already derived from the blessed clock.
func (t *tracer) record(name string, startNS, durNS int64) int64 {
	_ = name
	return startNS + durNS
}
