// Package detwallclock is a golden-test fixture: every line carrying a
// want comment must produce exactly that diagnostic, and no other line
// may produce any.
package detwallclock

import "time"

func bad() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now outside a //maya:wallclock site"
	return time.Since(start) // want "wall-clock read time.Since outside a //maya:wallclock site"
}

// blessedFunc measures the host by design; the doc directive covers the
// whole function, including the closure.
//
//maya:wallclock overhead accounting, never feeds decisions
func blessedFunc() time.Duration {
	start := time.Now()
	f := func() time.Duration { return time.Since(start) }
	return f()
}

func blessedLines() time.Time {
	//maya:wallclock a standalone directive covers the next line
	t0 := time.Now()
	t1 := time.Now() //maya:wallclock a trailing directive covers its own line
	_ = t1
	return t0
}
