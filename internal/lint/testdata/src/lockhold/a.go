// Package lockhold is a golden-test fixture for the lockhold analyzer:
// blocking operations performed while a mutex is held.
package lockhold

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (g *guarded) sendHeld() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) recvHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock() // deferred unlock: held until return
	return <-g.ch       // want "channel receive while holding g.mu"
}

func (g *guarded) sleepHeld() {
	g.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding g.rw"
	g.rw.RUnlock()
}

func (g *guarded) waitHeld(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding g.mu"
	g.mu.Unlock()
}

func (g *guarded) selectHeld(done chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "select while holding g.mu"
	case <-done:
	case v := <-g.ch:
		g.n = v
	}
}

func (g *guarded) drainHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range g.ch { // want "range over channel while holding g.mu"
		g.n += v
	}
}

// release unlocks before the send: clean.
func (g *guarded) release() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.ch <- g.n
}

// condWait is exempt: a sync.Cond waits with its lock held by design.
func condWait(mu *sync.Mutex, c *sync.Cond) {
	mu.Lock()
	c.Wait()
	mu.Unlock()
}

// spawnHeld is clean: the spawned goroutine does not run under the
// caller's lock.
func (g *guarded) spawnHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.ch <- 1
	}()
}

// waitTick blocks; calling it with a lock held is the transitive case.
func waitTick(ch chan int) int {
	return <-ch
}

func (g *guarded) transitive(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = waitTick(ch) // want "call to .*waitTick blocks .channel receive"
}
