// Package cachekey is a golden-test fixture for the cachekey analyzer:
// stricter determinism rules inside //maya:cachekey functions.
package cachekey

import (
	"strconv"
	"time"
)

// deriveBad mixes nondeterministic inputs into a key. A //maya:wallclock
// blessing does not exempt a wall-clock read here, and a map range is
// banned even though its body is only a commutative-looking append into a
// hash input.
//
//maya:cachekey
func deriveBad(fields map[string]string) string {
	key := strconv.FormatInt(time.Now().UnixNano(), 10) //maya:wallclock does not apply inside cachekey // want "wall-clock read time.Now inside a cache-key derivation"
	for k, v := range fields {                          // want "map range inside a cache-key derivation"
		key += k + "=" + v
	}
	return key
}

// deriveGood hashes declared fields in a fixed order.
//
//maya:cachekey
func deriveGood(version, name string, seed uint64) string {
	return version + "/" + name + "/" + strconv.FormatUint(seed, 10)
}

// unmarked functions keep the repo-wide rules: detwallclock honours the
// blessing, and an order-insensitive map range is allowed.
func unmarked(fields map[string]string) time.Time {
	n := 0
	for range fields {
		n++
	}
	_ = n
	return time.Now() //maya:wallclock blessed as usual outside cachekey functions
}
