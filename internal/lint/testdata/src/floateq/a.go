// Package floateq is a golden-test fixture for exact float comparisons.
package floateq

func cmp(a, b float64) bool {
	if a == b { // want "float == comparison; use a tolerance"
		return true
	}
	return a != b+1 // want "float != comparison; use a tolerance"
}

func cmp32(a, b float32) bool {
	return a == b // want "float == comparison; use a tolerance"
}

// intCmp compares integers and must not be flagged.
func intCmp(a, b int) bool { return a == b }

// constCmp folds to a constant at compile time and must not be flagged.
func constCmp() bool {
	const x = 1.5
	return x == 1.5
}
