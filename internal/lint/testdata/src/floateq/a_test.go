package floateq

import "testing"

// Exact comparisons are allowed in test files: asserting bit-exact
// reproducibility is precisely what the determinism tests do.
func TestExactIsFineInTests(t *testing.T) {
	a, b := 0.5, 0.5
	if a != b {
		t.Fatal("unreachable")
	}
}
