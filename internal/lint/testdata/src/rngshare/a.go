// Package rngshare is a golden-test fixture for streams crossing
// goroutine boundaries.
package rngshare

import (
	"sync"

	"github.com/maya-defense/maya/internal/rng"
)

func worker(r *rng.Stream) float64 { return r.Float64() }

func badShare(seed uint64) {
	r := rng.New(seed)
	ch := make(chan *rng.Stream, 1)
	ch <- r // want "sent over a channel"

	var wg sync.WaitGroup
	wg.Add(2)
	go worker(r) // want "passed to a goroutine"
	go func() {
		defer wg.Done()
		_ = r.Float64() // want "goroutine closure captures"
	}()
	wg.Wait()
}

// goodChildAt captures the parent only to derive index-addressed children,
// which never advances the parent — the documented safe pattern.
func goodChildAt(seed uint64) {
	r := rng.New(seed)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			child := r.ChildAt(i)
			_ = child.NormFloat64()
		}(uint64(i))
	}
	wg.Wait()
}

// goodNewChild derives the goroutine's stream from the seed inside the
// goroutine; nothing is shared.
func goodNewChild(seed uint64) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := rng.NewChild(seed, 3)
		_ = s.Float64()
	}()
	<-done
}
