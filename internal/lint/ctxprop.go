package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxProp flags dropped context propagation. A function that receives a
// context.Context owns a cancellation scope: work it starts belongs to
// that scope. Two ways of silently leaving the scope are flagged:
//
//   - passing context.Background() or context.TODO() to a callee while a
//     Context parameter is in scope — the callee outlives the caller's
//     cancellation, so shutdown leaves it running;
//   - spawning a goroutine whose body blocks (channel ops, selects,
//     WaitGroup.Wait, sleeps) without receiving or capturing any in-scope
//     Context — nothing can ever interrupt the block, which is how the
//     runner's drain path ends up waiting on a goroutine that cannot be
//     told to stop.
//
// Goroutines that never block are exempt: a fire-and-forget computation
// that runs to completion needs no cancellation hook.
var CtxProp = &Analyzer{
	Name:       "ctxprop",
	Doc:        "context.Background()/TODO() passed, or a blocking goroutine spawned, while a context.Context is in scope",
	RunProgram: runCtxProp,
}

func runCtxProp(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, n := range g.Nodes {
		ctxParams := contextParams(n.Fn)
		if len(ctxParams) == 0 {
			continue
		}
		checkCtxFunc(pass, g, n, ctxParams)
	}
}

// contextParams returns the *types.Var parameters of fn whose type is
// context.Context (including the receiver, for methods carrying one —
// none in this module, but cheap to cover).
func contextParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			out = append(out, params.At(i))
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxFunc(pass *ProgramPass, g *CallGraph, n *Node, ctxParams []*types.Var) {
	pkg := n.Pkg
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			for _, arg := range v.Args {
				if name := freshContextCall(pkg, arg); name != "" {
					pass.Reportf(arg.Pos(), "context.%s() passed to a callee while %s is in scope; propagate the caller's context so cancellation reaches the callee", name, ctxParams[0].Name())
				}
			}
		case *ast.GoStmt:
			checkSpawn(pass, g, n, v, ctxParams)
			// Descend: nested go statements and calls inside the spawned
			// body still run under the same lexical scope.
		}
		return true
	})
}

// freshContextCall reports "Background" or "TODO" if e is a direct call to
// the corresponding context constructor.
func freshContextCall(pkg *Package, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	pkgPath, name := pkg.callPkgFunc(call)
	if pkgPath == "context" && (name == "Background" || name == "TODO") {
		return name
	}
	return ""
}

// checkSpawn flags a go statement whose goroutine blocks but neither
// receives nor captures any in-scope Context.
func checkSpawn(pass *ProgramPass, g *CallGraph, n *Node, stmt *ast.GoStmt, ctxParams []*types.Var) {
	pkg := n.Pkg
	// Receives the context as an argument?
	for _, arg := range stmt.Call.Args {
		if exprUsesContext(pkg, arg, ctxParams) {
			return
		}
	}
	switch fun := ast.Unparen(stmt.Call.Fun).(type) {
	case *ast.FuncLit:
		if exprUsesContext(pkg, fun.Body, ctxParams) {
			return
		}
		if !litBlocks(pkg, fun) {
			return
		}
		pass.Reportf(stmt.Pos(), "goroutine blocks but ignores in-scope context %s; pass it in so cancellation can interrupt the block", ctxParams[0].Name())
	default:
		// Named function or method value: consult its facts through the
		// graph. A callee that takes its own Context parameter is exempt
		// even if the caller passed a different one — that is a wiring
		// choice, not a dropped scope.
		fn := calleeFunc(pkg, stmt.Call)
		if fn == nil || len(contextParams(fn)) > 0 {
			return
		}
		callee := g.NodeOf(fn)
		if callee == nil {
			return
		}
		if !nodeBlocks(g, callee) {
			return
		}
		pass.Reportf(stmt.Pos(), "goroutine %s blocks but receives no context (in-scope: %s); thread the context through so cancellation can interrupt it", callee.Name(), ctxParams[0].Name())
	}
}

// exprUsesContext reports whether any identifier under e resolves to one
// of the in-scope Context parameters, or any expression under it has
// Context type (covers ctx fields and derived contexts).
func exprUsesContext(pkg *Package, e ast.Node, ctxParams []*types.Var) bool {
	found := false
	ast.Inspect(e, func(node ast.Node) bool {
		if found {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, p := range ctxParams {
			if obj == p {
				found = true
				return false
			}
		}
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// litBlocks reports whether a spawned function literal contains a blocking
// operation: channel send/receive, select without default, range over a
// channel, WaitGroup.Wait, or time.Sleep. Nested literals spawned by their
// own go statements are excluded — they are separate goroutines.
func litBlocks(pkg *Package, lit *ast.FuncLit) bool {
	blocks := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if blocks {
			return false
		}
		switch v := node.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				blocks = true
			}
		case *ast.RangeStmt:
			if chanUnder(pkg.typeOf(v.X)) {
				blocks = true
			}
		case *ast.CallExpr:
			if tname, mname, ok := pkg.syncMethodCall(v); ok && tname == "WaitGroup" && mname == "Wait" {
				blocks = true
			}
			if pkgPath, name := pkg.callPkgFunc(v); pkgPath == "time" && name == "Sleep" {
				blocks = true
			}
		}
		return !blocks
	})
	return blocks
}

// nodeBlocks reports whether the node or its static, same-goroutine callee
// cone contains a blocking operation.
func nodeBlocks(g *CallGraph, n *Node) bool {
	start := &Visit{Node: n}
	v, _ := findBlocking(g, start)
	return v != nil
}
