package lint

import "strconv"

// DetRand flags any import of math/rand (v1 or v2). Non-test code must
// draw from internal/rng so every stochastic component owns a named,
// seed-derived stream; tests must too, so a failing property test
// reproduces bit-for-bit from its logged seed.
// The interprocedural half (detflow.go) traces any math/rand use that
// survives under an audited //nolint suppression through the call graph
// into the trace/flight writers, where it would corrupt reproducible
// artifacts.
var DetRand = &Analyzer{
	Name:       "detrand",
	Doc:        "math/rand is banned; use internal/rng so streams are seed-derived and reproducible",
	Run:        runDetRand,
	RunProgram: runDetRandProgram,
}

func runDetRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s; use internal/rng (seed-derived, splittable streams) instead", path)
			}
		}
	}
}
