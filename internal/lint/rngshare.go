package lint

import "go/ast"

// RNGShare flags a *rng.Stream crossing a goroutine boundary: captured by a
// go-statement closure, passed as a go-call argument, or sent over a
// channel. Streams are single-owner by contract — concurrent draws race,
// and even a mutex would make the draw interleaving (and therefore every
// result derived from it) schedule-dependent. Goroutines must own a
// derived stream instead: rng.NewChild(seed, i) / parent.ChildAt(i).
//
// Capturing a parent stream only to derive per-index children inside the
// goroutine via ChildAt is the documented safe pattern and is allowed.
var RNGShare = &Analyzer{
	Name: "rngshare",
	Doc:  "a *rng.Stream crossing a goroutine boundary must be a derived child stream",
	Run:  runRNGShare,
}

func runRNGShare(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SendStmt:
				if isRNGStream(pkg.typeOf(v.Value)) {
					pass.Reportf(v.Value.Pos(), "*rng.Stream sent over a channel; the receiver cannot know the stream's draw position — send a seed or derive a child stream")
				}
			case *ast.GoStmt:
				checkGoCall(pass, v.Call)
			}
			return true
		})
	}
}

func checkGoCall(pass *Pass, call *ast.CallExpr) {
	pkg := pass.Pkg
	for _, arg := range call.Args {
		if isRNGStream(pkg.typeOf(arg)) {
			pass.Reportf(arg.Pos(), "*rng.Stream passed to a goroutine; draws would interleave with the owner — derive a child stream (rng.NewChild / ChildAt)")
		}
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// Free *rng.Stream variables of the closure: declared outside the
	// literal but used inside it.
	reported := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || reported[id.Name] {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || !isRNGStream(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure; owned by the goroutine
		}
		if onlyChildAtUses(pkg, lit, id.Name) {
			return true
		}
		reported[id.Name] = true
		pass.Reportf(id.Pos(), "goroutine closure captures *rng.Stream %q; draws would interleave with the owner — derive a child stream (rng.NewChild / ChildAt)", id.Name)
		return true
	})
}

// onlyChildAtUses reports whether every use of the captured stream inside
// the closure is a ChildAt call — the safe index-addressed derivation that
// never advances the parent.
func onlyChildAtUses(pkg *Package, lit *ast.FuncLit, name string) bool {
	safe := true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || !isRNGStream(obj.Type()) {
			return true
		}
		if !isChildAtReceiver(pkg, lit, id) {
			safe = false
		}
		return true
	})
	return safe
}

// isChildAtReceiver reports whether id appears exactly as the receiver of a
// r.ChildAt(...) call inside lit.
func isChildAtReceiver(pkg *Package, lit *ast.FuncLit, id *ast.Ident) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ChildAt" {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && base == id {
			found = true
		}
		return true
	})
	return found
}
