package lint

import (
	"go/ast"
	"go/types"
)

// RNGShare is an escape analysis for RNG streams: it flags a *rng.Stream
// crossing a goroutine boundary — captured by a go-statement closure,
// passed as a go-call argument, sent over a channel, or smuggled inside a
// struct that crosses. Streams are single-owner by contract — concurrent
// draws race, and even a mutex would make the draw interleaving (and
// therefore every result derived from it) schedule-dependent. Goroutines
// must own a derived stream instead: rng.NewChild(seed, i) /
// parent.ChildAt(i).
//
// The interprocedural half summarizes, for every function, which of its
// *rng.Stream parameters escape across a goroutine boundary inside its
// body (directly or by forwarding to another escaping parameter — a
// fixpoint over the call graph), then flags every call site that feeds a
// stream into an escaping parameter, so a leak one call deep is charged
// where the stream's owner handed it away.
//
// Capturing a parent stream only to derive per-index children inside the
// goroutine via ChildAt is the documented safe pattern and is allowed.
var RNGShare = &Analyzer{
	Name:       "rngshare",
	Doc:        "a *rng.Stream crossing a goroutine boundary (directly, via a struct, or via a callee that leaks its parameter) must be a derived child stream",
	Run:        runRNGShare,
	RunProgram: runRNGShareProgram,
}

func runRNGShare(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SendStmt:
				if isRNGStream(pkg.typeOf(v.Value)) {
					pass.Reportf(v.Value.Pos(), "*rng.Stream sent over a channel; the receiver cannot know the stream's draw position — send a seed or derive a child stream")
				}
				reportStreamFields(pass, v.Value, "sent over a channel")
			case *ast.GoStmt:
				checkGoCall(pass, v.Call)
				for _, arg := range v.Call.Args {
					reportStreamFields(pass, arg, "passed to a goroutine")
				}
			}
			return true
		})
		checkFieldStores(pass, f)
	}
}

// reportStreamFields flags composite literals carrying a *rng.Stream field
// inside an expression that crosses a goroutine boundary.
func reportStreamFields(pass *Pass, expr ast.Expr, how string) {
	pkg := pass.Pkg
	ast.Inspect(expr, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range lit.Elts {
			val := elt
			if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
				val = kv.Value
			}
			if isRNGStream(pkg.typeOf(val)) {
				pass.Reportf(val.Pos(), "struct carrying a *rng.Stream %s; the stream's draws would interleave with the owner — store a seed or a derived child stream", how)
			}
		}
		return true
	})
}

// checkFieldStores flags storing a *rng.Stream into a field of a value
// that is itself shared across a goroutine boundary in the same function:
// the classic build-struct-then-hand-to-goroutine leak.
func checkFieldStores(pass *Pass, f *File) {
	pkg := pass.Pkg
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// Roots of values that cross a goroutine boundary in this function.
		shared := map[types.Object]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				for _, arg := range v.Call.Args {
					markRoot(pkg, shared, arg)
				}
				if lit, isLit := ast.Unparen(v.Call.Fun).(*ast.FuncLit); isLit {
					markFreeIdents(pkg, shared, lit)
				}
			case *ast.SendStmt:
				markRoot(pkg, shared, v.Value)
			}
			return true
		})
		if len(shared) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !isSel || !isRNGStream(pkg.typeOf(as.Rhs[i])) {
					continue
				}
				root := rootIdent(sel.X)
				if root == nil {
					continue
				}
				if obj := pkg.Info.Uses[root]; obj != nil && shared[obj] {
					pass.Reportf(as.Rhs[i].Pos(), "*rng.Stream stored in field %s of %s, which crosses a goroutine boundary in this function; store a seed or a derived child stream", sel.Sel.Name, root.Name)
				}
			}
			return true
		})
	}
}

func markRoot(pkg *Package, shared map[types.Object]bool, expr ast.Expr) {
	if id := rootIdent(expr); id != nil {
		if obj := pkg.Info.Uses[id]; obj != nil {
			shared[obj] = true
		}
	}
}

// markFreeIdents marks every identifier captured by the closure (declared
// outside it) as goroutine-shared.
func markFreeIdents(pkg *Package, shared map[types.Object]bool, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || obj.Pos() == 0 {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure
		}
		if _, isVar := obj.(*types.Var); isVar {
			shared[obj] = true
		}
		return true
	})
}

// runRNGShareProgram computes, as a fixpoint over the call graph, which
// *rng.Stream parameters escape across a goroutine boundary inside each
// function, then flags the call sites that feed streams into them.
func runRNGShareProgram(pass *ProgramPass) {
	g := pass.Prog.Graph()
	esc := map[*Node]uint64{}
	// Seed: direct escapes inside each body.
	for _, n := range g.Nodes {
		if bits := directParamEscapes(n); bits != 0 {
			esc[n] = bits
		}
	}
	// Propagate: a parameter forwarded into an escaping parameter escapes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			add := forwardedEscapes(g, n, esc)
			if add&^esc[n] != 0 {
				esc[n] |= add
				changed = true
			}
		}
	}
	// Report call sites feeding an escaping parameter. Go-statement calls
	// are already flagged at the site by the per-package pass.
	for _, n := range g.Nodes {
		pkg := n.Pkg
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.GoStmt:
				goCalls[v.Call] = true
			case *ast.CallExpr:
				if goCalls[v] {
					return true
				}
				callee := g.NodeOf(calleeFunc(pkg, v))
				if callee == nil || esc[callee] == 0 {
					return true
				}
				for i, arg := range v.Args {
					if i >= 64 || esc[callee]&(1<<uint(i)) == 0 {
						continue
					}
					if isRNGStream(pkg.typeOf(arg)) {
						pass.Reportf(arg.Pos(), "passing *rng.Stream to %s, which leaks parameter %d across a goroutine boundary; derive a child stream (rng.NewChild / ChildAt)",
							callee.Name(), i)
					}
				}
			}
			return true
		})
	}
}

// directParamEscapes returns a bitset of n's *rng.Stream parameters that
// cross a goroutine boundary inside its body.
func directParamEscapes(n *Node) uint64 {
	pkg := n.Pkg
	params := paramObjects(n)
	if len(params) == 0 {
		return 0
	}
	var bits uint64
	mark := func(expr ast.Expr) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Uses[id]
		for i, p := range params {
			if p != nil && obj == p && i < 64 {
				bits |= 1 << uint(i)
			}
		}
	}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.SendStmt:
			mark(v.Value)
		case *ast.GoStmt:
			for _, arg := range v.Call.Args {
				mark(arg)
			}
			if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					id, isID := inner.(*ast.Ident)
					if !isID {
						return true
					}
					obj := pkg.Info.Uses[id]
					for i, p := range params {
						if p != nil && obj == p && i < 64 && !onlyChildAtUses(pkg, lit, id.Name) {
							bits |= 1 << uint(i)
						}
					}
					return true
				})
			}
		}
		return true
	})
	return bits
}

// forwardedEscapes returns the bits of n's stream parameters that are
// passed (as plain arguments, not go calls) into escaping parameters of
// callees.
func forwardedEscapes(g *CallGraph, n *Node, esc map[*Node]uint64) uint64 {
	pkg := n.Pkg
	params := paramObjects(n)
	if len(params) == 0 {
		return 0
	}
	var bits uint64
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := g.NodeOf(calleeFunc(pkg, call))
		if callee == nil || esc[callee] == 0 {
			return true
		}
		for i, arg := range call.Args {
			if i >= 64 || esc[callee]&(1<<uint(i)) == 0 {
				continue
			}
			id, isID := ast.Unparen(arg).(*ast.Ident)
			if !isID {
				continue
			}
			obj := pkg.Info.Uses[id]
			for j, p := range params {
				if p != nil && obj == p && j < 64 {
					bits |= 1 << uint(j)
				}
			}
		}
		return true
	})
	return bits
}

// paramObjects returns the *types.Var for each *rng.Stream parameter of n
// (nil entries for other parameter types), indexed by position.
func paramObjects(n *Node) []types.Object {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]types.Object, sig.Params().Len())
	any := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isRNGStream(p.Type()) {
			out[i] = p
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

func checkGoCall(pass *Pass, call *ast.CallExpr) {
	pkg := pass.Pkg
	for _, arg := range call.Args {
		if isRNGStream(pkg.typeOf(arg)) {
			pass.Reportf(arg.Pos(), "*rng.Stream passed to a goroutine; draws would interleave with the owner — derive a child stream (rng.NewChild / ChildAt)")
		}
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// Free *rng.Stream variables of the closure: declared outside the
	// literal but used inside it.
	reported := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || reported[id.Name] {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || !isRNGStream(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure; owned by the goroutine
		}
		if onlyChildAtUses(pkg, lit, id.Name) {
			return true
		}
		reported[id.Name] = true
		pass.Reportf(id.Pos(), "goroutine closure captures *rng.Stream %q; draws would interleave with the owner — derive a child stream (rng.NewChild / ChildAt)", id.Name)
		return true
	})
}

// onlyChildAtUses reports whether every use of the captured stream inside
// the closure is a ChildAt call — the safe index-addressed derivation that
// never advances the parent.
func onlyChildAtUses(pkg *Package, lit *ast.FuncLit, name string) bool {
	safe := true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || !isRNGStream(obj.Type()) {
			return true
		}
		if !isChildAtReceiver(pkg, lit, id) {
			safe = false
		}
		return true
	})
	return safe
}

// isChildAtReceiver reports whether id appears exactly as the receiver of a
// r.ChildAt(...) call inside lit.
func isChildAtReceiver(pkg *Package, lit *ast.FuncLit, id *ast.Ident) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ChildAt" {
			return true
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && base == id {
			found = true
		}
		return true
	})
	return found
}
