package lint

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// A baseline is the committed ledger of audited legacy findings: CI fails
// on any finding not in it, while the entries themselves — reviewed once,
// recorded with the full message — stay quiet until the code they describe
// changes. Fingerprints are analyzer + module-relative file + message,
// deliberately line-independent so unrelated edits above a finding do not
// churn the ledger; a Count per fingerprint keeps multiple identical
// findings in one file honest.

// Baseline is the persisted form (lint.baseline.json at the module root).
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one audited fingerprint.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, forward slashes
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

const baselineVersion = 1

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

func diagKey(d Diagnostic, root string) string {
	return d.Analyzer + "\x00" + sarifURI(d.File, root) + "\x00" + d.Message
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline,
// so a repo without one simply fails on every finding.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Filter splits diags into the findings not covered by the baseline (new,
// must fail) and reports the stale entries whose fingerprints matched
// fewer findings than their Count — dead weight that should be pruned so
// the ledger only ever shrinks.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh []Diagnostic, stale []BaselineEntry) {
	remaining := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		remaining[e.key()] += e.Count
	}
	for _, d := range diags {
		k := diagKey(d, root)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		if n := remaining[e.key()]; n > 0 {
			left := e
			left.Count = n
			stale = append(stale, left)
			remaining[e.key()] = 0
		}
	}
	return fresh, stale
}

// NewBaseline builds a baseline covering exactly the given findings,
// sorted for a stable committed artifact.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := map[string]int{}
	order := map[string]BaselineEntry{}
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: sarifURI(d.File, root), Message: d.Message}
		counts[e.key()]++
		order[e.key()] = e
	}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for k, e := range order {
		e.Count = counts[k]
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline persists b to path.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselinePath is the conventional location of the committed ledger.
func BaselinePath(modRoot string) string {
	return filepath.Join(modRoot, "lint.baseline.json")
}

// ModuleRoot resolves the enclosing module root for dir, for rebasing
// baseline fingerprints and SARIF URIs.
func ModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	if err != nil {
		return "", err
	}
	return root, nil
}

// String renders one entry for stale-baseline error output.
func (e BaselineEntry) String() string {
	return e.File + ": " + e.Analyzer + ": " + e.Message + " (x" + strconv.Itoa(e.Count) + ")"
}
