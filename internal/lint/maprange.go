package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags ranging over a map when the loop body does something
// order-sensitive: appends to a slice, writes output (fmt/log calls, Write*
// methods), encodes JSON, or records telemetry. Go randomizes map iteration
// order per run, so any of these turns a byte-identical report into a
// flaky one. Order-insensitive map loops (sums, max scans, set membership)
// are fine and not flagged.
//
// The canonical fix — collect the keys, sort, iterate the sorted slice —
// is recognized: an append inside the loop is allowed when the destination
// slice is sorted by a sort.*/slices.* call later in the same block.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "order-sensitive work inside a map range makes output depend on randomized iteration order",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var list []ast.Stmt
			switch v := n.(type) {
			case *ast.BlockStmt:
				list = v.List
			case *ast.CaseClause:
				list = v.Body
			case *ast.CommClause:
				list = v.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs := asRange(stmt)
				if rs == nil {
					continue
				}
				if !mapUnder(pkg.typeOf(rs.X)) {
					continue
				}
				checkMapRangeBody(pass, rs, list[i+1:])
			}
			return true
		})
	}
}

func asRange(stmt ast.Stmt) *ast.RangeStmt {
	for {
		switch v := stmt.(type) {
		case *ast.RangeStmt:
			return v
		case *ast.LabeledStmt:
			stmt = v.Stmt
		default:
			return nil
		}
	}
}

func mapUnder(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports order-sensitive operations in the body of a
// map-range statement; rest is the statement list following the loop in
// the same block, scanned for the sort-after-append blessing.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	pkg := pass.Pkg
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pkg.isBuiltin(call, "append"):
			if len(call.Args) == 0 {
				return true
			}
			dst := rootIdent(call.Args[0])
			if dst != nil && sortedAfter(pkg, dst.Name, rest) {
				return true
			}
			pass.Reportf(call.Pos(), "append inside a map range builds a slice in randomized order; collect keys and sort, or sort the result in the same block")
		default:
			if why := orderSensitiveCall(pkg, call); why != "" {
				pass.Reportf(call.Pos(), "%s inside a map range happens in randomized order; iterate sorted keys instead", why)
			}
		}
		return true
	})
}

// orderSensitiveCall classifies calls whose per-iteration effect is visible
// in output: printing, error/string building, direct writes, JSON encoding,
// and telemetry recording.
func orderSensitiveCall(pkg *Package, call *ast.CallExpr) string {
	if pkgPath, name := pkg.callPkgFunc(call); pkgPath != "" {
		switch pkgPath {
		case "fmt", "log":
			return "call to " + pkgPath + "." + name
		case "encoding/json":
			if name == "Marshal" || name == "MarshalIndent" {
				return "json." + name
			}
		}
	}
	if recvPath, name, ok := pkg.isMethodCall(call); ok {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return "method " + name + " call"
		case "Inc", "Add", "Set", "Observe", "Record":
			if pathHasSuffix(recvPath, "internal/telemetry") {
				return "telemetry " + name + " call"
			}
		}
	}
	return ""
}

// sortedAfter reports whether a statement after the loop both mentions the
// named slice and calls into sort or slices — the collect-then-sort idiom.
func sortedAfter(pkg *Package, name string, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		mentionsName, mentionsSort := false, false
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Ident:
				if v.Name == name {
					mentionsName = true
				}
			case *ast.CallExpr:
				if pkgPath, _ := pkg.callPkgFunc(v); pkgPath == "sort" || pkgPath == "slices" {
					mentionsSort = true
				}
			}
			return true
		})
		if mentionsName && mentionsSort {
			return true
		}
	}
	return false
}
