package lint

import "testing"

// BenchmarkLintRepo measures a full whole-program analysis of the module:
// load + type-check, call-graph construction, and all ten analyzers. It is
// in the CI benchdiff gate so a quadratic blow-up in the graph builder or
// a fact-collection regression shows up as a wall-clock diff, not as a
// mysteriously slow lint job.
func BenchmarkLintRepo(b *testing.B) {
	root, _, err := findModule(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkgs, err := Load(root, []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("repo not lint-clean during benchmark: %d findings", len(diags))
		}
	}
}
