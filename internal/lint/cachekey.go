package lint

import "go/ast"

// CacheKey audits functions marked //maya:cachekey — the experiment-cache
// key-derivation sites. A cache key must be a pure function of (code
// version, configuration, seed): if a wall-clock read or a map's randomized
// iteration order reaches the hash, identical runs stop hitting (silent
// cache churn) or — worse — different runs start colliding. Inside a
// cachekey function the audit is stricter than the repo-wide rules: a
// //maya:wallclock blessing does NOT exempt a time.Now/time.Since call, and
// ranging over a map is banned outright rather than only when the body is
// order-sensitive, because everything computed here is on its way into the
// key.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "wall-clock or map-iteration input inside //maya:cachekey key-derivation functions",
	Run:  runCacheKey,
}

func runCacheKey(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !pkg.funcDirective(fd, DirCachekey) || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					if pkgPath, name := pkg.callPkgFunc(v); pkgPath == "time" && (name == "Now" || name == "Since") {
						pass.Reportf(v.Pos(), "wall-clock read time.%s inside a cache-key derivation; keys must be pure functions of code version, config, and seed (//maya:wallclock does not apply here)", name)
					}
				case *ast.RangeStmt:
					if mapUnder(pkg.typeOf(v.X)) {
						pass.Reportf(v.Pos(), "map range inside a cache-key derivation; iteration order is randomized per run — hash fields in declaration order or sort the keys outside")
					}
				}
				return true
			})
		}
	}
}
