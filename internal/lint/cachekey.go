package lint

import "go/ast"

// CacheKey audits functions marked //maya:cachekey — the experiment-cache
// key-derivation sites. A cache key must be a pure function of (code
// version, configuration, seed): if a wall-clock read or a map's randomized
// iteration order reaches the hash, identical runs stop hitting (silent
// cache churn) or — worse — different runs start colliding. Inside a
// cachekey function the audit is stricter than the repo-wide rules: a
// //maya:wallclock blessing does NOT exempt a time.Now/time.Since call, and
// ranging over a map is banned outright rather than only when the body is
// order-sensitive, because everything computed here is on its way into the
// key.
// Since the interprocedural engine landed the audit is transitive: the
// same rules apply to everything a cachekey function can reach through the
// call graph (static, interface, and function-value edges), because a
// helper one call deep feeds the key exactly as directly-inlined code
// would. The diagnostic lands on the call edge inside the cachekey
// function and names the offending site with its blame chain.
var CacheKey = &Analyzer{
	Name:       "cachekey",
	Doc:        "wall-clock or map-iteration input inside (or reachable from) //maya:cachekey key-derivation functions",
	Run:        runCacheKey,
	RunProgram: runCacheKeyProgram,
}

// runCacheKeyProgram walks each cachekey function's callee cone and
// reports reachable wall-clock reads (blessed or not — blessings do not
// apply under a key derivation), map ranges, and math/rand uses.
func runCacheKeyProgram(pass *ProgramPass) {
	g := pass.Prog.Graph()
	for _, root := range g.Nodes {
		if !root.Pkg.funcDirective(root.Decl, DirCachekey) {
			continue
		}
		for _, e := range root.Out {
			if !followKey(e) {
				continue
			}
			start := &Visit{Node: e.Callee, Via: e}
			reportKeyTaint(pass, root, start)
			g.Cone(start, func(e2 *Edge) bool { return followKey(e2) }, func(v *Visit) bool {
				reportKeyTaint(pass, root, v)
				return true
			})
		}
	}
}

// followKey prunes the cachekey cone walk: nested cachekey functions are
// audited on their own, and test-only helpers never derive production
// keys.
func followKey(e *Edge) bool {
	callee := e.Callee
	if callee.Pkg.funcDirective(callee.Decl, DirCachekey) {
		return false
	}
	return !callee.File.Test
}

func reportKeyTaint(pass *ProgramPass, root *Node, v *Visit) {
	facts := v.Node.Facts()
	edge := v.Path()[0]
	for _, w := range facts.wall {
		pass.Reportf(edge.Pos, "cache-key derivation %s reaches a wall-clock read time.%s at %s (%s); keys must be pure functions of code version, config, and seed (//maya:wallclock does not apply here)",
			root.Decl.Name.Name, w.name, pass.Prog.relPos(w.pos), v.Chain())
	}
	for _, pos := range facts.mapRanges {
		pass.Reportf(edge.Pos, "cache-key derivation %s reaches a map range at %s (%s); iteration order is randomized per run — hash fields in declaration order or sort the keys",
			root.Decl.Name.Name, pass.Prog.relPos(pos), v.Chain())
	}
	for _, pos := range facts.mathRand {
		pass.Reportf(edge.Pos, "cache-key derivation %s reaches a math/rand use at %s (%s); keys must be seed-derived via internal/rng",
			root.Decl.Name.Name, pass.Prog.relPos(pos), v.Chain())
	}
}

func runCacheKey(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !pkg.funcDirective(fd, DirCachekey) || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					if pkgPath, name := pkg.callPkgFunc(v); pkgPath == "time" && (name == "Now" || name == "Since") {
						pass.Reportf(v.Pos(), "wall-clock read time.%s inside a cache-key derivation; keys must be pure functions of code version, config, and seed (//maya:wallclock does not apply here)", name)
					}
				case *ast.RangeStmt:
					if mapUnder(pkg.typeOf(v.X)) {
						pass.Reportf(v.Pos(), "map range inside a cache-key derivation; iteration order is randomized per run — hash fields in declaration order or sort the keys outside")
					}
				}
				return true
			})
		}
	}
}
