package lint

import (
	"fmt"
	"sort"
)

// The nolint report is the audit surface for suppressions: every
// //nolint:maya directive in the tree, with the analyzers it silences and
// the written reason beside it. A suppression without a reason is not an
// audit trail, it is a mute button — the report treats it as a problem,
// as it does one naming an analyzer that does not exist.

// Suppression is one //nolint:maya directive.
type Suppression struct {
	File      string   `json:"file"` // module-relative, forward slashes
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// NolintReport enumerates every suppression in the loaded packages,
// sorted by position, plus the problems that should fail a CI audit:
// reason-less directives and directives naming unknown analyzers. root
// rebases file paths when non-empty.
func NolintReport(pkgs []*Package, root string) (entries []Suppression, problems []string) {
	registered := map[string]bool{}
	for _, a := range Analyzers() {
		registered[a.Name] = true
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, nd := range pkg.directives().nolints {
			file := sarifURI(nd.file, root)
			// In-package and external-test units of one directory parse the
			// same files' neighbors; dedupe by position.
			key := fmt.Sprintf("%s:%d", file, nd.line)
			if seen[key] {
				continue
			}
			seen[key] = true
			entries = append(entries, Suppression{
				File: file, Line: nd.line, Analyzers: nd.names, Reason: nd.reason,
			})
			if nd.reason == "" {
				problems = append(problems, fmt.Sprintf("%s:%d: suppression of maya/%s has no reason; write why beside the directive", file, nd.line, joinNames(nd.names)))
			}
			for _, name := range nd.names {
				if !registered[name] {
					problems = append(problems, fmt.Sprintf("%s:%d: suppression names unknown analyzer maya/%s", file, nd.line, name))
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		return entries[i].Line < entries[j].Line
	})
	sort.Strings(problems)
	return entries, problems
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ",maya/"
		}
		out += n
	}
	return out
}
