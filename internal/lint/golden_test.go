package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load the fixture packages under testdata/src and check
// the analyzers' output against // want "regexp" comments: every diagnostic
// must match a want on its exact file:line, and every want must be matched
// by exactly one diagnostic. A single comment may carry several quoted
// clauses when one line produces several findings.

var wantClauseRe = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	used bool
}

// parseWants extracts the expectations from every fixture file's comments.
// The clause list may trail other comment content (the nolint fixtures put
// wants after the directive under test).
func parseWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantClauseRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, src: m[1]})
					}
				}
			}
		}
	}
	return out
}

func TestGoldenDiagnostics(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	diags := Run(pkgs, Analyzers())
	wants := parseWants(t, pkgs)

	// Group by fixture directory so each analyzer's fixture is a named
	// subtest, keeping one Load (and one shared importer) for all of them.
	byDir := func(file string) string { return filepath.Base(filepath.Dir(file)) }
	fixtures := map[string]bool{}
	for _, pkg := range pkgs {
		fixtures[filepath.Base(pkg.Dir)] = true
	}
	for name := range fixtures {
		t.Run(name, func(t *testing.T) {
			for _, d := range diags {
				if byDir(d.File) != name {
					continue
				}
				matched := false
				for _, w := range wants {
					if w.used || w.file != d.File || w.line != d.Line || !w.re.MatchString(d.Message) {
						continue
					}
					w.used = true
					matched = true
					break
				}
				if !matched {
					t.Errorf("unexpected diagnostic:\n  %s", d)
				}
			}
			for _, w := range wants {
				if !w.used && byDir(w.file) == name {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.src)
				}
			}
		})
	}
}

// TestRepoIsClean is the self-check: the tree that ships this linter must
// itself be clean under it, modulo the committed baseline of audited
// legacy findings (lint.baseline.json). This is the same gate
// scripts/lint.sh applies in CI, run as a plain test so `go test ./...`
// catches regressions too. New findings fail; a baseline entry whose
// finding was fixed fails too, so the ledger only ever shrinks.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	root, _, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(BaselinePath(root))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := baseline.Filter(Run(pkgs, Analyzers()), root)
	for _, d := range fresh {
		t.Errorf("repo not lint-clean:\n  %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding fixed; prune it from lint.baseline.json):\n  %s", e)
	}
}
