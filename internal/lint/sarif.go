package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the static-analysis interchange format CI systems
// and code hosts ingest natively. Only the slice of the spec the findings
// need is modeled: one run, one rule per analyzer, one physical location
// per result. URIs are module-root-relative with forward slashes so the
// artifact is stable across machines.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. root, when
// non-empty, rebases file paths so artifact URIs are module-relative;
// analyzers provides the rule metadata (every analyzer is listed, found
// or not, so rule IDs resolve in viewers).
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               NolintName,
		ShortDescription: sarifMessage{Text: "problems with //nolint:maya suppression directives themselves"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.File, root)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "mayalint",
				InformationURI: "https://github.com/maya-defense/maya",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI rebases file under root (when possible) and normalizes to the
// forward-slash relative form SARIF artifact locations use.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
