// Package expcache is a content-addressed on-disk cache for experiment
// results. An entry is keyed by a SHA-256 over everything that determines
// the result — code version, experiment name, scale parameters, and seed —
// so a hit is only possible when rerunning would reproduce the stored bytes
// exactly. The design follows keyed, integrity-checked build caches (garble's
// cache_pkg): every entry carries a hash of its payload, entries are written
// with an atomic rename so readers never see a partial file, and a corrupt
// entry is evicted and recomputed rather than trusted.
//
// Layout: <dir>/<kk>/<key>.json where kk is the first key byte in hex, the
// same fan-out git uses for loose objects. The file is a JSON wrapper
// {"sha256": hex, "payload": {...}} whose digest covers the exact payload
// bytes; Get re-hashes on every read.
package expcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// SchemaVersion is baked into every key; bump it when the entry payload or
// the key derivation itself changes so old cache directories turn into
// misses instead of decode errors.
const SchemaVersion = 1

// EnvDir is the environment variable naming the default cache directory.
const EnvDir = "MAYA_EXPCACHE"

// EnvVersion overrides the build-info code version in keys (CI sets it to
// the commit SHA so cold and warm runs of the same checkout agree even when
// VCS stamping is unavailable).
const EnvVersion = "MAYA_EXPCACHE_VERSION"

// DefaultDir resolves the cache directory from the environment; empty means
// no cache.
func DefaultDir() string { return os.Getenv(EnvDir) }

// Key is the content address of one experiment result.
type Key [sha256.Size]byte

// String returns the hex form used on disk and in logs.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyInput is everything that may determine a cached result. Fields are
// hashed in declaration order with length framing, so two inputs collide
// only if every field matches. There is deliberately no map, no timestamp,
// and no host identity in here: a key must be a pure function of (code,
// configuration, seed).
type KeyInput struct {
	// CodeVersion identifies the code that produced the result (VCS
	// revision + dirty flag, or an explicit override; see CodeVersion).
	CodeVersion string
	// Experiment is the suite entry name ("fig6", "ablation-masks").
	Experiment string
	// Scale is the canonical rendering of every scale parameter (see
	// experiments.SuiteEntry.CacheKey for the renderer).
	Scale string
	// Seed is the base random seed the experiment derives its streams from.
	Seed uint64
}

// DeriveKey hashes the input into a content address. Every field is framed
// by its length so ("ab","c") and ("a","bc") cannot collide.
//
//maya:cachekey
func DeriveKey(in KeyInput) Key {
	h := sha256.New()
	var scratch [10]byte
	field := func(s string) {
		n := binary.PutUvarint(scratch[:], uint64(len(s)))
		h.Write(scratch[:n])
		h.Write([]byte(s))
	}
	field("maya-expcache-v" + strconv.Itoa(SchemaVersion))
	field(in.CodeVersion)
	field(in.Experiment)
	field(in.Scale)
	binary.LittleEndian.PutUint64(scratch[:8], in.Seed)
	h.Write(scratch[:8])
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached experiment result: the rendered report section, which
// is all WriteReport needs to reproduce the entry byte-for-byte.
type Entry struct {
	// Experiment echoes the suite entry name for auditing a cache
	// directory by hand.
	Experiment string `json:"experiment"`
	// ID is the Result.ID() header ("Fig 6", "Table V").
	ID string `json:"id"`
	// Render is the Result.Render() body.
	Render string `json:"render"`
}

// Mode selects how the cache participates in a run.
type Mode int

const (
	// ModeOff disables the cache: every Get misses, every Put is dropped.
	ModeOff Mode = iota
	// ModeReadWrite consults the cache and stores fresh results.
	ModeReadWrite
	// ModeReadOnly consults the cache but never writes (CI verification
	// runs, shared read-only cache directories).
	ModeReadOnly
)

// ParseMode maps the -cache flag values off|rw|ro.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "rw":
		return ModeReadWrite, nil
	case "ro":
		return ModeReadOnly, nil
	}
	return ModeOff, fmt.Errorf("expcache: unknown mode %q (off, rw, ro)", s)
}

// String returns the flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeReadWrite:
		return "rw"
	case ModeReadOnly:
		return "ro"
	}
	return "off"
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Corrupt uint64
	Writes  uint64
}

// String renders the one-line summary cmd/experiments -cache-stats prints.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d corrupt=%d writes=%d", s.Hits, s.Misses, s.Corrupt, s.Writes)
}

// Cache is an open cache directory. The zero value and the nil pointer are
// valid disabled caches, so call sites need no guards.
type Cache struct {
	dir  string
	mode Mode

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	writes  atomic.Uint64

	m *Metrics
}

// Open prepares dir as a cache. ModeOff (or an empty dir) returns a
// disabled cache rather than an error, so callers can pass flag values
// straight through.
func Open(dir string, mode Mode) (*Cache, error) {
	if dir == "" || mode == ModeOff {
		return &Cache{mode: ModeOff}, nil
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("expcache: %w", err)
	}
	return &Cache{dir: dir, mode: mode}, nil
}

// Enabled reports whether Get can ever hit.
func (c *Cache) Enabled() bool { return c != nil && c.mode != ModeOff }

// Mode returns the open mode (ModeOff for a nil cache).
func (c *Cache) Mode() Mode {
	if c == nil {
		return ModeOff
	}
	return c.mode
}

// Dir returns the cache directory ("" when disabled).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// SetMetrics mirrors the cache counters into a telemetry registry's
// instruments (see NewMetrics).
func (c *Cache) SetMetrics(m *Metrics) {
	if c != nil {
		c.m = m
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Writes:  c.writes.Load(),
	}
}

// path returns the entry file for a key, fanned out by the first byte.
func (c *Cache) path(k Key) string {
	hexKey := k.String()
	return filepath.Join(c.dir, hexKey[:2], hexKey+".json")
}

// wrapper is the on-disk envelope: the payload bytes plus their digest.
// Payload stays a RawMessage so the digest covers the exact stored bytes,
// not a re-marshalled approximation.
type wrapper struct {
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Get looks up a key. A decode failure or digest mismatch counts as
// corruption: the entry is evicted so the caller's recompute can repopulate
// it, and the lookup reports a miss.
func (c *Cache) Get(k Key) (Entry, bool) {
	if !c.Enabled() {
		return Entry{}, false
	}
	raw, err := os.ReadFile(c.path(k))
	if err != nil {
		c.miss()
		return Entry{}, false
	}
	var w wrapper
	if err := json.Unmarshal(raw, &w); err != nil {
		c.evict(k)
		return Entry{}, false
	}
	sum := sha256.Sum256(w.Payload)
	if hex.EncodeToString(sum[:]) != w.SHA256 {
		c.evict(k)
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(w.Payload, &e); err != nil {
		c.evict(k)
		return Entry{}, false
	}
	c.hit()
	return e, true
}

// Put stores an entry under its key. Writes go to a temp file in the final
// directory and are renamed into place, so concurrent readers and writers
// only ever see complete entries; the last writer wins, which is harmless
// because all writers for a key store identical bytes. Read-only mode drops
// the write silently.
func (c *Cache) Put(k Key, e Entry) error {
	if !c.Enabled() || c.mode == ModeReadOnly {
		return nil
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	sum := sha256.Sum256(payload)
	blob, err := json.Marshal(wrapper{SHA256: hex.EncodeToString(sum[:]), Payload: payload})
	if err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	dst := c.path(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "tmp-*")
	if err != nil {
		return fmt.Errorf("expcache: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expcache: %w", err)
	}
	c.writes.Add(1)
	if c.m != nil {
		c.m.Writes.Inc()
	}
	return nil
}

// evict removes a corrupt entry and counts it (also as a miss, so
// hits+misses always equals the number of lookups).
func (c *Cache) evict(k Key) {
	os.Remove(c.path(k))
	c.corrupt.Add(1)
	c.misses.Add(1)
	if c.m != nil {
		c.m.Corrupt.Inc()
		c.m.Misses.Inc()
	}
}

func (c *Cache) hit() {
	c.hits.Add(1)
	if c.m != nil {
		c.m.Hits.Inc()
	}
}

func (c *Cache) miss() {
	c.misses.Add(1)
	if c.m != nil {
		c.m.Misses.Inc()
	}
}
