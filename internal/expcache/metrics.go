package expcache

import "github.com/maya-defense/maya/internal/telemetry"

// Metrics exposes the cache counters through a telemetry registry so the
// -telemetry report section and the /metrics endpoint show cache behaviour
// alongside the runner-pool instruments. Registration is idempotent (the
// registry guarantees it), so independent caches in one process share one
// set of counters.
type Metrics struct {
	Hits    *telemetry.Counter
	Misses  *telemetry.Counter
	Corrupt *telemetry.Counter
	Writes  *telemetry.Counter
}

// NewMetrics registers the expcache instruments.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Hits:    reg.Counter("expcache_hits_total", "experiment results served from the cache"),
		Misses:  reg.Counter("expcache_misses_total", "experiment cache lookups that found nothing usable"),
		Corrupt: reg.Counter("expcache_corrupt_total", "cache entries evicted after failing the integrity check"),
		Writes:  reg.Counter("expcache_writes_total", "experiment results stored into the cache"),
	}
}
