package expcache

import (
	"os"
	"runtime/debug"
)

// CodeVersion identifies the code producing results, for use as
// KeyInput.CodeVersion. Resolution order:
//
//  1. the MAYA_EXPCACHE_VERSION environment variable (CI pins it to the
//     commit SHA so every binary built from one checkout agrees);
//  2. the VCS stamp embedded by `go build` — revision plus a +dirty marker,
//     because a dirty tree can produce results the revision alone would
//     wrongly validate;
//  3. "unversioned" — hits are then only as trustworthy as the user's
//     promise that the code did not change, which is why cmd/experiments
//     prints the resolved version next to the cache stats.
//
// The VCS stamp is a property of the binary, not of the wall clock or the
// host, so the derived keys stay reproducible.
//
//maya:cachekey
func CodeVersion() string {
	if v := os.Getenv(EnvVersion); v != "" {
		return v
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unversioned"
	}
	revision, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision == "" {
		return "unversioned"
	}
	if dirty {
		return revision + "+dirty"
	}
	return revision
}
