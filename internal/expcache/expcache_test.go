package expcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/maya-defense/maya/internal/telemetry"
)

func testInput() KeyInput {
	return KeyInput{CodeVersion: "v1", Experiment: "fig6", Scale: "small/40/24000", Seed: 1}
}

func TestDeriveKeyStable(t *testing.T) {
	a := DeriveKey(testInput())
	b := DeriveKey(testInput())
	if a != b {
		t.Fatalf("same input produced different keys %s vs %s", a, b)
	}
	if len(a.String()) != 64 {
		t.Fatalf("key hex length %d, want 64", len(a.String()))
	}
}

func TestDeriveKeySensitivity(t *testing.T) {
	base := DeriveKey(testInput())
	mutations := map[string]KeyInput{
		"code version": {CodeVersion: "v2", Experiment: "fig6", Scale: "small/40/24000", Seed: 1},
		"experiment":   {CodeVersion: "v1", Experiment: "fig7", Scale: "small/40/24000", Seed: 1},
		"scale":        {CodeVersion: "v1", Experiment: "fig6", Scale: "small/41/24000", Seed: 1},
		"seed":         {CodeVersion: "v1", Experiment: "fig6", Scale: "small/40/24000", Seed: 2},
	}
	seen := map[Key]string{base: "base"}
	for name, in := range mutations {
		k := DeriveKey(in)
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestDeriveKeyFraming checks the length framing: shifting a boundary
// between adjacent fields must change the key.
func TestDeriveKeyFraming(t *testing.T) {
	a := DeriveKey(KeyInput{CodeVersion: "ab", Experiment: "c"})
	b := DeriveKey(KeyInput{CodeVersion: "a", Experiment: "bc"})
	if a == b {
		t.Fatal("field boundary shift did not change the key")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := DeriveKey(testInput())
	want := Entry{Experiment: "fig6", ID: "Fig 6", Render: "line1\nline2\n"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got != want {
		t.Fatalf("round trip changed the entry: %+v vs %+v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestDisabledModes(t *testing.T) {
	var nilCache *Cache
	if nilCache.Enabled() {
		t.Fatal("nil cache claims to be enabled")
	}
	if _, ok := nilCache.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	if err := nilCache.Put(Key{}, Entry{}); err != nil {
		t.Fatalf("nil cache Put: %v", err)
	}

	off, err := Open(t.TempDir(), ModeOff)
	if err != nil {
		t.Fatal(err)
	}
	k := DeriveKey(testInput())
	if err := off.Put(k, Entry{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.Get(k); ok {
		t.Fatal("off-mode cache hit")
	}
	if st := off.Stats(); st != (Stats{}) {
		t.Fatalf("off-mode cache counted something: %+v", st)
	}
}

func TestReadOnlyNeverWrites(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := DeriveKey(testInput())
	if err := rw.Put(k, Entry{ID: "Fig 6", Render: "body\n"}); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, ModeReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.Get(k); !ok {
		t.Fatal("read-only cache missed an existing entry")
	}
	k2 := DeriveKey(KeyInput{Experiment: "other"})
	if err := ro.Put(k2, Entry{ID: "X"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.Get(k2); ok {
		t.Fatal("read-only Put stored an entry")
	}
	if st := ro.Stats(); st.Writes != 0 {
		t.Fatalf("read-only cache recorded writes: %+v", st)
	}
}

// TestPoisonedEntryEvictedAndRecomputed is the cache-poisoning regression:
// a corrupted entry must fail the integrity check, be evicted, count as
// corrupt, and leave the slot writable so a recompute repopulates it.
func TestPoisonedEntryEvictedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	c.SetMetrics(m)
	k := DeriveKey(testInput())
	want := Entry{Experiment: "fig6", ID: "Fig 6", Render: "honest result\n"}
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, k.String()[:2], k.String()+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := strings.Replace(string(blob), "honest", "forged", 1)
	if poisoned == string(blob) {
		t.Fatal("test setup: payload not found in entry file")
	}
	if err := os.WriteFile(path, []byte(poisoned), 0o666); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(k); ok {
		t.Fatal("poisoned entry passed the integrity check")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("poisoned entry not evicted: %v", err)
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1 (%+v)", st.Corrupt, st)
	}
	if m.Corrupt.Value() != 1 {
		t.Fatalf("telemetry corrupt counter = %d, want 1", m.Corrupt.Value())
	}

	// Recompute path: Put again, Get must hit with the honest bytes.
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("recompute after eviction failed: ok=%v got=%+v", ok, got)
	}
}

// TestTruncatedEntryIsCorrupt covers the atomic-rename invariant from the
// reader's side: a half-written file (simulated by truncation) must never
// decode into a hit.
func TestTruncatedEntryIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, ModeReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := DeriveKey(testInput())
	if err := c.Put(k, Entry{ID: "Fig 6", Render: "body\n"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()[:2], k.String()+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("truncated entry produced a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": ModeOff, "rw": ModeReadWrite, "ro": ModeReadOnly} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Mode(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParseMode("banana"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}

func TestCodeVersionOverride(t *testing.T) {
	t.Setenv(EnvVersion, "pinned-sha")
	if v := CodeVersion(); v != "pinned-sha" {
		t.Fatalf("CodeVersion with override = %q", v)
	}
	t.Setenv(EnvVersion, "")
	if v := CodeVersion(); v == "" {
		t.Fatal("CodeVersion returned empty string")
	}
}
