package core

import (
	"github.com/maya-defense/maya/internal/sim"
)

// Gate implements the paper's first overhead-reduction proposal (§V): "One
// approach is to selectively activate Maya only in sections of the
// application where it is needed, similar to how power governors can be
// invoked in Linux." A Gate wraps the Maya engine together with a
// pass-through policy; a trigger decides per control period whether the
// defense is on. While off, the machine runs at the baseline's settings and
// pays no overhead; while on, power follows the mask.
//
// The security contract is exactly the paper's: only the gated-on window is
// obfuscated. Sections running with the gate off leak as the baseline does,
// so the trigger must enclose everything sensitive.
type Gate struct {
	engine   *Engine
	passthru sim.Policy
	trigger  func(step int) bool

	// Transitions counts off→on edges (telemetry).
	Transitions int
	lastOn      bool
}

// NewGate wraps an engine. trigger receives the control-period index and
// returns whether protection is active for that period; passthru supplies
// the inputs when protection is off (typically the baseline policy).
func NewGate(engine *Engine, passthru sim.Policy, trigger func(step int) bool) *Gate {
	if engine == nil || passthru == nil || trigger == nil {
		panic("core: NewGate needs an engine, a passthrough policy, and a trigger")
	}
	return &Gate{engine: engine, passthru: passthru, trigger: trigger}
}

// WindowTrigger returns a trigger that is active for control periods
// [from, to) — the "sensitive section" expressed in defense periods.
func WindowTrigger(from, to int) func(step int) bool {
	return func(step int) bool { return step >= from && step < to }
}

// Reset resets the wrapped engine and telemetry.
func (g *Gate) Reset(seed uint64) {
	g.engine.Reset(seed)
	g.Transitions = 0
	g.lastOn = false
}

// Decide implements sim.Policy.
func (g *Gate) Decide(step int, powerW float64) sim.Inputs {
	on := g.trigger(step)
	if on && !g.lastOn {
		g.Transitions++
		// Entering a protected section: the controller must not act on
		// state accumulated while it was not in charge of the plant.
		g.engine.ctl.Reset()
	}
	g.lastOn = on
	if on {
		return g.engine.Decide(step, powerW)
	}
	// Keep the mask stream advancing while off so the on-window's targets
	// do not repeat across gate cycles.
	g.engine.gen.Next()
	return g.passthru.Decide(step, powerW)
}

// Engine exposes the wrapped engine.
func (g *Gate) Engine() *Engine { return g.engine }
