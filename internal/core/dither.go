package core

import (
	"math"

	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/rng"
)

// hfDither generates the high-frequency portion of the mask. A feedback
// loop with a 20 ms period has a usable bandwidth of roughly 1 Hz: mask
// components above it cannot be *tracked*, and application activity above
// it (loop periodicities, browser timers, video frame cadence) cannot be
// *rejected*. Eq. 4 permits mask sinusoids up to the 25 Hz Nyquist limit;
// Maya therefore actuates those components open-loop — the dither value is
// added directly to the balloon input after the controller runs, planting
// genuine, secret-random spectral peaks in the band the attacker would
// otherwise own.
//
// Parameters are re-drawn every Nhold samples from the same secret stream
// discipline as the rest of the mask.
type hfDither struct {
	band     mask.Band
	hold     mask.HoldRange
	sampleHz float64
	maxHz    float64

	r      *rng.Stream
	left   int
	ampW   float64
	freqHz float64
	phase  float64
}

// newHFDither builds a dither source for a control loop at sampleHz whose
// injected peaks must stay below maxObservableHz (the slowest attacker
// Nyquist rate worth covering).
func newHFDither(band mask.Band, sampleHz, maxObservableHz float64, seed uint64) *hfDither {
	d := &hfDither{
		band:     band,
		hold:     mask.DefaultHold(),
		sampleHz: sampleHz,
		maxHz:    math.Min(maxObservableHz, sampleHz/2),
	}
	d.Reset(seed)
	return d
}

func (d *hfDither) Reset(seed uint64) {
	d.r = rng.NewNamed(seed, "mask/hf-dither")
	d.left = 0
	d.phase = 0
}

func (d *hfDither) redraw() {
	w := d.band.Width()
	d.ampW = d.r.Uniform(0.05, 0.16) * w
	d.freqHz = d.r.Uniform(1.2, d.maxHz)
	d.left = d.hold.Draw(d.r)
}

// Next returns the next dither value in watts (zero-mean).
//
// A broadband component was evaluated and rejected: any injected energy
// passes through the plant's application-dependent gain, so unless the
// engine's gain normalization were near-perfect, more injected energy means
// a *larger* amplitude-modulated fingerprint for a time-frequency attacker
// (see the spectrogram-attack notes in EXPERIMENTS.md).
func (d *hfDither) Next() float64 {
	if d.left <= 0 {
		d.redraw()
	}
	d.left--
	d.phase += 2 * math.Pi * d.freqHz / d.sampleHz
	if d.phase > 2*math.Pi {
		d.phase -= 2 * math.Pi
	}
	return d.ampW * math.Sin(d.phase)
}
