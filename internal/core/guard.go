package core

import (
	"math"

	"github.com/maya-defense/maya/internal/sim"
)

// Guard hardens one engine against a misbehaving plant: faulty sensors
// (dropouts, spikes, NaN/Inf readings, counter wraparound glitches) and
// long out-of-authority stretches that would otherwise wind the controller
// up. The guard only filters what the controller consumes — it never
// injects randomness — so a guarded engine on a healthy plant behaves
// bit-for-bit like an unguarded one, and fault-free flight traces stay
// byte-identical (proven by TestGuardInertOnNominalRun).
//
// A nil guard (the default) disables all of it; mayactl -faults, the
// `faults` experiment sweep, and the robustness regression harness enable
// DefaultGuard.
type Guard struct {
	// MinPlausibleW rejects readings below this (a real machine cannot
	// read ~0 W: static power alone keeps the floor above it). Sensor
	// dropouts and RAPL wraparound glitches both surface as 0 W reads.
	MinPlausibleW float64
	// MaxPlausibleW rejects readings above this (spikes past what the
	// machine can physically draw).
	MaxPlausibleW float64
	// HoldBudget bounds how many consecutive implausible-but-finite
	// readings are replaced by the last good one. Past the budget the
	// engine stops trusting its held value and accepts the reading clamped
	// into the plausible range — if the plant really moved, holding
	// forever would leak through frozen actuation. Non-finite readings are
	// always held: there is no value to accept.
	HoldBudget int
	// StateNormLimit re-initializes the controller state when its L2 norm
	// exceeds this (observer/integrator blow-up under sustained saturation
	// or fault bursts). The controller restarts at the identified
	// operating point, which is exactly the saturation-safe posture.
	StateNormLimit float64
	// IntegratorClamp is installed on the controller as an anti-windup
	// hard clamp (control.Controller.SetIntegratorClamp).
	IntegratorClamp float64
}

// DefaultGuard returns the guard tuning for a machine: plausibility bounds
// derived from the machine's physical power range, half a second of hold
// budget at the paper's 20 ms period, and windup limits far outside
// nominal operation.
func DefaultGuard(cfg sim.Config) Guard {
	return Guard{
		MinPlausibleW:   0.25,
		MaxPlausibleW:   3 * cfg.TDP,
		HoldBudget:      25,
		StateNormLimit:  1e3,
		IntegratorClamp: 40 * cfg.TDP,
	}
}

// SetGuard attaches a measurement guard (nil detaches it and removes the
// controller's integrator clamp).
func (e *Engine) SetGuard(g *Guard) {
	e.guard = g
	if g == nil {
		e.ctl.SetIntegratorClamp(0)
		return
	}
	e.ctl.SetIntegratorClamp(g.IntegratorClamp)
}

// Guard returns the attached guard, if any.
func (e *Engine) Guard() *Guard { return e.guard }

// sanitize applies the guard to a raw sensor reading and returns the value
// the controller should consume plus whether the raw reading was rejected.
// It maintains the hold state (last good reading, hold budget).
func (e *Engine) sanitize(raw, fallback float64) (float64, bool) {
	g := e.guard
	finite := !math.IsNaN(raw) && !math.IsInf(raw, 0)
	plausible := finite &&
		!(g.MinPlausibleW > 0 && raw < g.MinPlausibleW) &&
		!(g.MaxPlausibleW > 0 && raw > g.MaxPlausibleW)
	if plausible {
		e.lastGoodW = raw
		e.haveGood = true
		e.holdUsed = 0
		return raw, false
	}
	if finite && e.holdUsed >= g.HoldBudget {
		// Hold budget exhausted: believe the plant moved, but keep the
		// consumed value inside the plausible range.
		v := raw
		if g.MinPlausibleW > 0 && v < g.MinPlausibleW {
			v = g.MinPlausibleW
		}
		if g.MaxPlausibleW > 0 && v > g.MaxPlausibleW {
			v = g.MaxPlausibleW
		}
		e.lastGoodW = v
		e.haveGood = true
		e.holdUsed = 0
		if e.metrics != nil {
			e.metrics.HoldExhausted.Inc()
		}
		return v, true
	}
	// Hold the last good reading (or, before any good reading exists, the
	// fallback: the current mask target, which makes the error zero and
	// leaves the operating point untouched).
	e.holdUsed++
	if e.haveGood {
		return e.lastGoodW, true
	}
	return fallback, true
}
