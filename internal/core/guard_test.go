package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// guardedRun executes one GS run on Sys1 and returns the run result, the
// engine metrics, and the flushed flight trace.
func guardedRun(t *testing.T, guard *Guard, ticks int) (sim.RunResult, *EngineMetrics, []byte, *Engine) {
	t.Helper()
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 99)
	eng.SetGuard(guard)
	em := NewEngineMetrics(telemetry.NewRegistry())
	eng.SetMetrics(em)
	flight := telemetry.NewFlightRecorder(ticks/20 + 8)
	eng.SetFlight(flight)
	eng.Reset(99)

	m := sim.NewMachine(cfg, 7)
	w := workload.NewApp("bodytrack")
	w.Reset(3)
	res := sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: ticks})
	var buf bytes.Buffer
	if err := flight.Flush(&buf); err != nil {
		t.Fatalf("flight flush: %v", err)
	}
	return res, em, buf.Bytes(), eng
}

// TestGuardInertOnNominalRun is the determinism contract from the Guard
// docs: on a healthy plant a guarded engine behaves bit-for-bit like an
// unguarded one, down to the flight trace bytes.
func TestGuardInertOnNominalRun(t *testing.T) {
	g := DefaultGuard(sim.Sys1())
	plain, _, plainTrace, _ := guardedRun(t, nil, 24000)
	guarded, em, guardedTrace, _ := guardedRun(t, &g, 24000)

	if !bytes.Equal(plainTrace, guardedTrace) {
		t.Error("guard changed the flight trace on a nominal run")
	}
	if len(plain.DefenseSamples) != len(guarded.DefenseSamples) {
		t.Fatalf("sample counts differ: %d vs %d", len(plain.DefenseSamples), len(guarded.DefenseSamples))
	}
	for i := range plain.DefenseSamples {
		if plain.DefenseSamples[i] != guarded.DefenseSamples[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, plain.DefenseSamples[i], guarded.DefenseSamples[i])
		}
	}
	if n := em.GlitchRejects.Value() + em.HoldExhausted.Value() + em.StateReinits.Value(); n != 0 {
		t.Errorf("guard fired %d times on a nominal run", n)
	}
}

// TestGuardSurvivesSensorFaults wires the glitchiest sensor plan into a
// guarded GS run: the loop must keep tracking the mask and never consume a
// non-finite reading.
func TestGuardSurvivesSensorFaults(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	g := DefaultGuard(cfg)
	eng := NewGSEngine(d, cfg, 20, 99)
	eng.SetGuard(&g)
	em := NewEngineMetrics(telemetry.NewRegistry())
	eng.SetMetrics(em)
	flight := telemetry.NewFlightRecorder(40000/20 + 8)
	eng.SetFlight(flight)
	eng.Reset(99)

	plan, ok := fault.PlanByName("sensor-spike")
	if !ok {
		t.Fatal("canned plan sensor-spike missing")
	}
	inj := fault.MustNew(plan, 5)
	m := sim.NewMachine(cfg, 7)
	inj.Attach(m)
	w := workload.NewApp("bodytrack")
	w.Reset(3)
	res := sim.Run(m, w, inj.Policy(eng), sim.RunSpec{
		ControlPeriodTicks: 20,
		MaxTicks:           40000,
		DefenseSensor:      inj.Sensor(sim.NewRAPLSensor(m)),
	})

	if em.GlitchRejects.Value() == 0 {
		t.Error("no rejects despite injected spikes and NaNs")
	}
	rejected := 0
	for _, rec := range flight.Snapshot() {
		if !finiteF(rec.MeasuredW) || !finiteF(rec.ErrorW) || !finiteF(rec.StateNorm) {
			t.Fatalf("non-finite value reached the controller at step %d: %+v", rec.Step, rec)
		}
		if rec.Rejected {
			rejected++
			if !finiteF(rec.RawW) {
				t.Fatalf("flight RawW non-finite at step %d (JSON cannot carry it)", rec.Step)
			}
		}
	}
	if rejected == 0 {
		t.Error("no flight record carries the Rejected flag")
	}
	for _, in := range res.InputTrace {
		if !finiteF(in.FreqGHz) || !finiteF(in.Idle) || !finiteF(in.Balloon) {
			t.Fatalf("non-finite knob command: %+v", in)
		}
	}
	// The loop must still track: compare the guarded faulted run's flight
	// errors against the band (same bound family as TestEngineTracksGSMask,
	// with extra headroom for the fault transients).
	var mad float64
	recs := flight.Snapshot()
	for _, rec := range recs[50:] {
		mad += math.Abs(rec.ErrorW)
	}
	mad /= float64(len(recs) - 50)
	if mad > 0.25*d.Band.Width() {
		t.Errorf("tracking lost under sensor faults: mean|e| %.2f W vs band %.2f W", mad, d.Band.Width())
	}
}

// TestGuardStateReinit forces the blow-up recovery path with an absurdly
// tight norm limit and checks the loop survives and flags the event.
func TestGuardStateReinit(t *testing.T) {
	g := DefaultGuard(sim.Sys1())
	g.StateNormLimit = 1e-3 // every step exceeds this
	res, em, _, eng := guardedRun(t, &g, 12000)

	if em.StateReinits.Value() == 0 {
		t.Fatal("no state re-inits despite a tight norm limit")
	}
	reinits := 0
	for _, rec := range eng.flight.Snapshot() {
		if rec.StateReinit {
			reinits++
		}
	}
	if reinits == 0 {
		t.Error("no flight record carries the StateReinit flag")
	}
	cfg := sim.Sys1()
	for _, in := range res.InputTrace {
		if in.FreqGHz < cfg.FminGHz-1e-9 || in.FreqGHz > cfg.FmaxGHz+1e-9 {
			t.Fatalf("knob out of range after re-init: %+v", in)
		}
	}
}

// TestGuardSanitize unit-tests the hold/accept state machine.
func TestGuardSanitize(t *testing.T) {
	g := Guard{MinPlausibleW: 1, MaxPlausibleW: 100, HoldBudget: 3}
	e := &Engine{guard: &g}

	// Before any good reading: held readings fall back to the target.
	if v, rej := e.sanitize(math.NaN(), 42); !rej || v != 42 {
		t.Fatalf("NaN before good reading: got (%g, %v), want (42, true)", v, rej)
	}
	// A plausible reading passes and becomes the held value.
	if v, rej := e.sanitize(20, 42); rej || v != 20 {
		t.Fatalf("plausible reading: got (%g, %v)", v, rej)
	}
	// Non-finite and implausible readings are replaced by the last good one.
	for i, raw := range []float64{math.Inf(1), 0.2, 500} {
		if v, rej := e.sanitize(raw, 42); !rej || v != 20 {
			t.Fatalf("glitch %d (%g): got (%g, %v), want (20, true)", i, raw, v, rej)
		}
	}
	// The budget is now exhausted (3 holds): a finite implausible reading is
	// accepted, clamped into the plausible range.
	if v, rej := e.sanitize(500, 42); !rej || v != 100 {
		t.Fatalf("post-budget reading: got (%g, %v), want (100, true)", v, rej)
	}
	// ... and the budget refills from there.
	if v, rej := e.sanitize(0.5, 42); !rej || v != 100 {
		t.Fatalf("hold after refill: got (%g, %v), want (100, true)", v, rej)
	}
	// Non-finite readings never get accepted, budget or not.
	e.holdUsed = 99
	if v, rej := e.sanitize(math.NaN(), 42); !rej || v != 100 {
		t.Fatalf("NaN past budget: got (%g, %v), want (100, true)", v, rej)
	}
	// Recovery: a plausible reading resets everything.
	if v, rej := e.sanitize(30, 42); rej || v != 30 {
		t.Fatalf("recovery reading: got (%g, %v)", v, rej)
	}
	if e.holdUsed != 0 {
		t.Fatalf("holdUsed not reset: %d", e.holdUsed)
	}
}

// TestGuardSetAndDetach covers guard attachment plumbing: installing sets
// the controller clamp, detaching removes it.
func TestGuardSetAndDetach(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 1)
	g := DefaultGuard(cfg)
	eng.SetGuard(&g)
	if eng.Guard() != &g {
		t.Fatal("Guard() does not return the installed guard")
	}
	if got := eng.ctl.IntegratorClamp(); got != g.IntegratorClamp {
		t.Fatalf("controller clamp %g, want %g", got, g.IntegratorClamp)
	}
	eng.SetGuard(nil)
	if eng.Guard() != nil || eng.ctl.IntegratorClamp() != 0 {
		t.Fatal("detaching the guard did not clear the clamp")
	}
}

// TestGuardLeakUnderFaults reuses the phase-structure methodology under the
// kitchen-sink plan: faults must not re-expose the application.
func TestGuardLeakUnderFaults(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()

	mBase := sim.NewMachine(cfg, 11)
	wBase := workload.NewApp("blackscholes").Scale(0.4)
	wBase.Reset(5)
	base := sim.Run(mBase, wBase, sim.NewBaselinePolicy(cfg), sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 40000})

	g := DefaultGuard(cfg)
	eng := NewGSEngine(d, cfg, 20, 123)
	eng.SetGuard(&g)
	eng.Reset(123)
	plan, _ := fault.PlanByName("kitchen-sink")
	inj := fault.MustNew(plan, 9)
	mGS := sim.NewMachine(cfg, 11)
	inj.Attach(mGS)
	wGS := workload.NewApp("blackscholes").Scale(0.4)
	wGS.Reset(5)
	prot := sim.Run(mGS, wGS, inj.Policy(eng), sim.RunSpec{
		ControlPeriodTicks: 20,
		MaxTicks:           40000,
		DefenseSensor:      inj.Sensor(sim.NewRAPLSensor(mGS)),
	})

	n := len(base.DefenseSamples)
	if len(prot.DefenseSamples) < n {
		n = len(prot.DefenseSamples)
	}
	var ps, bs []float64
	for i := 0; i < n; i++ {
		if finiteF(prot.DefenseSamples[i]) && finiteF(base.DefenseSamples[i]) {
			ps = append(ps, prot.DefenseSamples[i])
			bs = append(bs, base.DefenseSamples[i])
		}
	}
	corrApp := math.Abs(signal.Pearson(ps, bs))
	if corrApp > 0.5 {
		t.Fatalf("faults re-exposed the app: |corr| = %g", corrApp)
	}
}

func finiteF(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
