package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// goldenFlightPath is the committed reference trace: 301 control periods of
// Maya GS on Sys1 protecting blackscholes, flushed as JSONL.
const goldenFlightPath = "testdata/flight_sys1_gs.jsonl"

// goldenFlightTrace produces the trace the golden file pins down. Any knob
// here (seeds, ticks, workload) is part of the file's identity — change one
// and the file must be regenerated.
func goldenFlightTrace(t *testing.T) []byte {
	t.Helper()
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 42)
	flight := telemetry.NewFlightRecorder(6000/20 + 8)
	eng.SetFlight(flight)
	eng.Reset(42)

	m := sim.NewMachine(cfg, 43)
	w := workload.NewApp("blackscholes").Scale(0.2)
	w.Reset(44)
	sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 6000})

	var buf bytes.Buffer
	if err := flight.Flush(&buf); err != nil {
		t.Fatalf("flight flush: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenFlightTrace pins the entire deterministic pipeline — mask
// generation, controller arithmetic, actuation, the simulated plant, and
// the flight recorder's JSON encoding — to a committed byte-exact trace.
// Any unintended behavioural drift (a reordered floating-point reduction, a
// changed seed derivation, a new flight field leaking into nominal runs)
// fails this test before it can silently invalidate experiment baselines.
//
// To regenerate after an INTENTIONAL change:
//
//	MAYA_UPDATE_GOLDEN=1 go test ./internal/core -run TestGoldenFlightTrace
func TestGoldenFlightTrace(t *testing.T) {
	got := goldenFlightTrace(t)
	if os.Getenv("MAYA_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFlightPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFlightPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFlightPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenFlightPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with MAYA_UPDATE_GOLDEN=1): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Find the first differing line for a useful failure message.
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("flight trace diverged from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("flight trace length changed: got %d lines, golden %d", len(gl), len(wl))
}

// TestGoldenFlightTraceParses guards the reader side: the committed trace
// must round-trip through telemetry.ReadFlight without skipped lines.
func TestGoldenFlightTraceParses(t *testing.T) {
	f, err := os.Open(goldenFlightPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with MAYA_UPDATE_GOLDEN=1): %v", err)
	}
	defer f.Close()
	recs, skipped, err := telemetry.ReadFlight(f)
	if err != nil || skipped != 0 {
		t.Fatalf("golden trace unreadable: %d skipped, err %v", skipped, err)
	}
	// Step 0 plus one record per 20-tick period over 6000 ticks.
	if len(recs) != 301 {
		t.Fatalf("golden trace has %d records, want 301", len(recs))
	}
	for i, rec := range recs {
		if rec.Step != i {
			t.Fatalf("record %d has step %d", i, rec.Step)
		}
		if rec.Rejected || rec.StateReinit {
			t.Fatalf("nominal golden trace carries fault flags at step %d: %+v", i, rec)
		}
	}
}
