package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// designOnce caches the Sys1 design: identification is the expensive step
// and every integration test needs the same artifact.
var (
	designMu   sync.Mutex
	sys1Design *Design
)

func testDesign(t *testing.T) *Design {
	t.Helper()
	designMu.Lock()
	defer designMu.Unlock()
	if sys1Design == nil {
		d, err := DesignFor(sim.Sys1(), DefaultDesignOptions())
		if err != nil {
			t.Fatalf("design failed: %v", err)
		}
		sys1Design = d
	}
	return sys1Design
}

func TestDesignPipeline(t *testing.T) {
	d := testDesign(t)
	if d.Model.Order != 4 {
		t.Fatalf("model order %d want 4 (§V-A)", d.Model.Order)
	}
	if !d.Model.Stable() {
		t.Fatal("identified model unstable")
	}
	if d.Controller.Dim() != 9 {
		t.Fatalf("controller dim %d want 9", d.Controller.Dim())
	}
	if d.Report.ClosedLoopRadius >= 1 {
		t.Fatalf("closed loop unstable: %g", d.Report.ClosedLoopRadius)
	}
	if d.Band.Max > sim.Sys1().TDP {
		t.Fatalf("band max %g above TDP", d.Band.Max)
	}
	if d.Band.Min <= 0 || d.Band.Width() < 5 {
		t.Fatalf("band too narrow for masking: %+v", d.Band)
	}
}

func TestEngineTracksGSMask(t *testing.T) {
	// The heart of Maya (§VII-D / Fig 13): measured power must stay close
	// to the mask targets even while the application's own activity varies.
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 99)
	eng.Reset(99)

	m := sim.NewMachine(cfg, 7)
	w := workload.NewApp("bodytrack") // multi-phase: hard tracking case
	w.Reset(3)
	res := sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 40000})

	n := len(res.DefenseSamples)
	if n < 1000 {
		t.Fatalf("too few samples: %d", n)
	}
	// Align: Targets[t] was issued for period t; DefenseSamples[t] is the
	// power measured over period t.
	targets := eng.Targets[:n]
	mad := signal.MeanAbsDeviation(res.DefenseSamples[50:], targets[50:])
	// The recorded targets include the open-loop HF dither, which is
	// executed through an average balloon-gain estimate; its imprecision
	// rides on top of the closed loop's ±10% tracking band.
	if mad > 0.12*d.Band.Width() {
		t.Fatalf("tracking MAD %.2f W exceeds 12%% of band width %.2f W", mad, d.Band.Width())
	}
	// Distribution check (Fig 13): quartiles of measured power close to
	// quartiles of the targets.
	bm := signal.Box(res.DefenseSamples[50:])
	bt := signal.Box(targets[50:])
	if math.Abs(bm.Median-bt.Median) > 1.5 {
		t.Fatalf("median mismatch: measured %g vs target %g", bm.Median, bt.Median)
	}
}

func TestEngineHidesPhaseStructure(t *testing.T) {
	// Under Maya GS the measured power must correlate with the mask, not
	// with the application's unprotected power profile.
	d := testDesign(t)
	cfg := sim.Sys1()

	// Unprotected run for the reference activity profile.
	mBase := sim.NewMachine(cfg, 11)
	wBase := workload.NewApp("blackscholes").Scale(0.4)
	wBase.Reset(5)
	base := sim.Run(mBase, wBase, sim.NewBaselinePolicy(cfg), sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 40000})

	// Protected run of the same workload and seed.
	eng := NewGSEngine(d, cfg, 20, 123)
	eng.Reset(123)
	mGS := sim.NewMachine(cfg, 11)
	wGS := workload.NewApp("blackscholes").Scale(0.4)
	wGS.Reset(5)
	prot := sim.Run(mGS, wGS, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 40000})

	n := len(base.DefenseSamples)
	if len(prot.DefenseSamples) < n {
		n = len(prot.DefenseSamples)
	}
	corrApp := math.Abs(signal.Pearson(prot.DefenseSamples[:n], base.DefenseSamples[:n]))
	corrMask := signal.Pearson(prot.DefenseSamples[:n], eng.Targets[:n])
	// The HF dither (the open-loop mask component) deliberately adds power
	// movement the low-frequency target trace does not contain, so the
	// correlation ceiling is below what the tracking loop alone achieves.
	if corrMask < 0.7 {
		t.Fatalf("protected power should follow the mask: corr=%g", corrMask)
	}
	// Residual app correlation exists (activity-dependent actuator gains —
	// the same imperfection that leaves the paper's MLP at 14% rather than
	// the 9% chance level), but the mask must dominate decisively.
	if corrApp > 0.5 || corrApp > 0.6*corrMask {
		t.Fatalf("protected power still correlates with app profile: app=%g mask=%g", corrApp, corrMask)
	}
}

func TestEngineStepZeroSafe(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 1)
	eng.Reset(1)
	in := eng.Decide(0, 0) // no reading yet
	if in.FreqGHz < cfg.FminGHz || in.FreqGHz > cfg.FmaxGHz {
		t.Fatalf("step-0 inputs out of range: %+v", in)
	}
}

func TestEngineTelemetry(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 2)
	eng.Reset(2)
	for i := 0; i < 100; i++ {
		eng.Decide(i, 15)
	}
	if eng.Steps != 100 || len(eng.Targets) != 100 {
		t.Fatalf("telemetry broken: steps=%d targets=%d", eng.Steps, len(eng.Targets))
	}
	// §VII-E: the mask + controller step completes within ~1 µs each; allow
	// generous slack for the host but catch pathological implementations.
	perStep := eng.DecideTime / 100
	if perStep.Microseconds() > 100 {
		t.Fatalf("Decide too slow: %v per step", perStep)
	}
}

func TestFlightAndMetricsNeverPerturbDecisions(t *testing.T) {
	// The observability contract: attaching a flight recorder and metrics
	// must leave every decision bit-for-bit identical to an uninstrumented
	// engine with the same seed.
	d := testDesign(t)
	cfg := sim.Sys1()
	r := readings(400)

	run := func(instrument bool) ([]sim.Inputs, *telemetry.FlightRecorder) {
		eng := NewGSEngine(d, cfg, 20, 42)
		var flight *telemetry.FlightRecorder
		if instrument {
			reg := telemetry.NewRegistry()
			eng.SetMetrics(NewEngineMetrics(reg))
			flight = telemetry.NewFlightRecorder(len(r))
			eng.SetFlight(flight)
		}
		eng.Reset(42)
		out := make([]sim.Inputs, len(r))
		for i, pw := range r {
			out[i] = eng.Decide(i, pw)
		}
		return out, flight
	}

	plain, _ := run(false)
	instrumented, flight := run(true)
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("step %d: instrumented decision %+v differs from plain %+v", i, instrumented[i], plain[i])
		}
	}

	// Flight sanity: one record per Decide, indices aligned, applied levels
	// matching the returned inputs.
	if int(flight.Total()) != len(r) || flight.Dropped() != 0 {
		t.Fatalf("flight total=%d dropped=%d, want %d/0", flight.Total(), flight.Dropped(), len(r))
	}
	snap := flight.Snapshot()
	for i, fr := range snap {
		if fr.Step != i {
			t.Fatalf("flight record %d has step %d", i, fr.Step)
		}
		if fr.MeasuredW != r[i] {
			t.Fatalf("record %d measured %g, fed %g", i, fr.MeasuredW, r[i])
		}
		if got := (sim.Inputs{FreqGHz: fr.Applied[0], Idle: fr.Applied[1], Balloon: fr.Applied[2]}); got != plain[i] {
			t.Fatalf("record %d applied %+v, decision was %+v", i, got, plain[i])
		}
		if fr.ErrorW != fr.TargetW-fr.MeasuredW {
			t.Fatalf("record %d error %g != target−measured %g", i, fr.ErrorW, fr.TargetW-fr.MeasuredW)
		}
	}

	// Flight traces are deterministic: a second instrumented run produces an
	// identical trace.
	_, flight2 := run(true)
	snap2 := flight2.Snapshot()
	for i := range snap {
		if snap[i] != snap2[i] {
			t.Fatalf("flight trace not reproducible at record %d", i)
		}
	}
}

func TestEngineMetricsCounts(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 8)
	reg := telemetry.NewRegistry()
	em := NewEngineMetrics(reg)
	eng.SetMetrics(em)
	eng.Reset(8)
	const steps = 200
	for i := 0; i < steps; i++ {
		eng.Decide(i, 15)
	}
	if got := em.Steps.Value(); got != steps {
		t.Fatalf("steps counter = %d, want %d", got, steps)
	}
	// Step 0 is excluded from the error histogram (no sensor reading yet).
	if got := em.AbsErrorW.Count(); got != steps-1 {
		t.Fatalf("error histogram count = %d, want %d", got, steps-1)
	}
	if n := em.StateNorm.Value(); n <= 0 || math.IsNaN(n) {
		t.Fatalf("state norm gauge %g", n)
	}
}

func TestEngineResetIndependentRuns(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 5)
	eng.Reset(5)
	run := func() []float64 {
		eng.Reset(5)
		m := sim.NewMachine(cfg, 3)
		w := workload.NewPage("google")
		w.Reset(1)
		res := sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 2000})
		out := make([]float64, len(res.DefenseSamples))
		copy(out, res.DefenseSamples)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine reset does not reproduce runs")
		}
	}
}

func TestConstantEngineHoldsLevel(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewConstantEngine(d, cfg)
	eng.Reset(1)
	m := sim.NewMachine(cfg, 13)
	w := workload.NewApp("vips").Scale(0.5)
	w.Reset(2)
	res := sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 30000})
	level := eng.Targets[0]
	// Steady tracking of the constant level, ignoring warmup.
	mad := 0.0
	n := 0
	for i := 50; i < len(res.DefenseSamples); i++ {
		mad += math.Abs(res.DefenseSamples[i] - level)
		n++
	}
	mad /= float64(n)
	if mad > 1.5 {
		t.Fatalf("constant mask MAD %g W", mad)
	}
}

func TestGSEngineDiffersAcrossSeeds(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	e1 := NewGSEngine(d, cfg, 20, 100)
	e2 := NewGSEngine(d, cfg, 20, 200)
	e1.Reset(100)
	e2.Reset(200)
	t1 := make([]float64, 500)
	t2 := make([]float64, 500)
	for i := range t1 {
		e1.Decide(i, 15)
		e2.Decide(i, 15)
		t1[i] = e1.Targets[i]
		t2[i] = e2.Targets[i]
	}
	if c := math.Abs(signal.Pearson(t1, t2)); c > 0.3 {
		t.Fatalf("mask targets correlate across seeds: %g", c)
	}
}

func TestMaskObeysBandDuringOperation(t *testing.T) {
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 77)
	eng.Reset(77)
	for i := 0; i < 5000; i++ {
		eng.Decide(i, 15)
	}
	// The closed-loop component stays inside the band; the open-loop HF
	// dither adds at most ±16% of the band width on top, and the total must
	// respect the TDP (§V-B constraint 1).
	slack := 0.16 * d.Band.Width()
	for _, tgt := range eng.Targets {
		if tgt < d.Band.Min-slack-1e-9 || tgt > d.Band.Max+slack+1e-9 {
			t.Fatalf("target %g outside dithered band %+v", tgt, d.Band)
		}
		if tgt > cfg.TDP {
			t.Fatalf("target %g above TDP %g", tgt, cfg.TDP)
		}
	}
	_ = mask.DefaultHold()
}

func TestDitherGainAdapts(t *testing.T) {
	// The adaptive estimator must learn that the balloon is far more
	// effective on an idle machine than under a compute-saturated one.
	d := testDesign(t)
	cfg := sim.Sys1()
	run := func(w workload.Workload) float64 {
		eng := NewGSEngine(d, cfg, 20, 99)
		eng.Reset(99)
		m := sim.NewMachine(cfg, 7)
		sim.Run(m, w, eng, sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 20000})
		return eng.DitherGain()
	}
	idleGain := run(workload.Idle{})
	heavy := workload.NewApp("water_nsquared")
	heavy.Reset(1)
	heavy.Advance(9)
	heavyGain := run(heavy)
	if idleGain < 1.5*heavyGain {
		t.Fatalf("gain estimate not adapting: idle %.2f vs heavy %.2f", idleGain, heavyGain)
	}
}

func TestEngineTracksOnAllMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// §VII-E: "This shows that Maya is robust across different machines."
	// The same design pipeline must yield a tracking controller on every
	// platform preset.
	for _, cfg := range []sim.Config{sim.Sys1(), sim.Sys2(), sim.Sys3()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			d, err := DesignFor(cfg, DefaultDesignOptions())
			if err != nil {
				t.Fatal(err)
			}
			eng := NewGSEngine(d, cfg, 20, 31)
			eng.Reset(31)
			m := sim.NewMachine(cfg, 5)
			w := workload.NewApp("bodytrack").Scale(0.2)
			w.Reset(3)
			res := sim.Run(m, w, eng, sim.RunSpec{
				ControlPeriodTicks: 20, MaxTicks: 24000, WarmupTicks: 2000,
			})
			n := len(res.DefenseSamples)
			targets := eng.MaskTargets()[res.FirstStep : res.FirstStep+n]
			mad := signal.MeanAbsDeviation(res.DefenseSamples, targets)
			if mad > 0.14*d.Band.Width() {
				t.Errorf("%s: tracking MAD %.2f W vs band %.1f W", cfg.Name, mad, d.Band.Width())
			}
			// Targets respect each machine's own TDP.
			for _, tgt := range targets {
				if tgt > cfg.TDP {
					t.Fatalf("%s: target %.1f above TDP %.0f", cfg.Name, tgt, cfg.TDP)
				}
			}
		})
	}
}

func TestEngineInputsAlwaysValid(t *testing.T) {
	// Property: regardless of the power readings thrown at it, the engine
	// emits inputs on the legal actuator ladders.
	d := testDesign(t)
	cfg := sim.Sys1()
	eng := NewGSEngine(d, cfg, 20, 3)
	eng.Reset(3)
	knobs := cfg.Knobs()
	r := readings(997)
	for i, pw := range r {
		in := eng.Decide(i, pw)
		if in.FreqGHz < cfg.FminGHz-1e-9 || in.FreqGHz > cfg.FmaxGHz+1e-9 {
			t.Fatalf("step %d: freq %g off ladder", i, in.FreqGHz)
		}
		if q := knobs.Idle.Quantize(in.Idle); q != in.Idle {
			t.Fatalf("step %d: idle %g not quantized", i, in.Idle)
		}
		if q := knobs.Balloon.Quantize(in.Balloon); q != in.Balloon {
			t.Fatalf("step %d: balloon %g not quantized", i, in.Balloon)
		}
	}
}

// readings produces a hostile mixed sequence: zeros, spikes, plausible
// values, and slow ramps.
func readings(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch i % 7 {
		case 0:
			out[i] = 0
		case 1:
			out[i] = 500
		case 2:
			out[i] = -3 // a broken sensor
		default:
			out[i] = 5 + float64(i%40)
		}
	}
	return out
}

func TestDesignPipelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// The §V-A pipeline (excite → fit → synthesize) must be bit-for-bit
	// reproducible for a given seed: a deployment can regenerate its
	// controller artifact and verify it matches what is in the field.
	run := func() string {
		d, err := DesignFor(sim.Sys1(), DefaultDesignOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Controller.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("design pipeline is not deterministic")
	}
}

func TestEMChannelObfuscated(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// §I: power obfuscation also covers EM emissions, which track power
	// *changes*. Two undefended runs of the same app produce near-identical
	// EM probe traces; a GS-protected run's EM trace does not follow them.
	d := testDesign(t)
	cfg := sim.Sys1()
	emTrace := func(pol sim.Policy, machineSeed uint64) []float64 {
		m := sim.NewMachine(cfg, machineSeed)
		w := workload.NewApp("streamcluster").Scale(0.15)
		w.Reset(9)
		em := &sim.Sampler{Sensor: sim.NewEMSensor(cfg, machineSeed), PeriodTicks: 20}
		sim.Run(m, w, pol, sim.RunSpec{
			ControlPeriodTicks: 20, MaxTicks: 16000, WarmupTicks: 1000,
			Samplers: []*sim.Sampler{em},
		})
		return em.Samples
	}
	base1 := emTrace(sim.NewBaselinePolicy(cfg), 4)
	base2 := emTrace(sim.NewBaselinePolicy(cfg), 5)
	eng := NewGSEngine(d, cfg, 20, 61)
	eng.Reset(61)
	prot := emTrace(eng, 4)

	n := min(len(base1), len(base2))
	self := math.Abs(signal.Pearson(base1[:n], base2[:n]))
	n = min(len(base1), len(prot))
	leak := math.Abs(signal.Pearson(prot[:n], base1[:n]))
	t.Logf("EM: undefended self-corr %.2f, GS-vs-undefended %.2f", self, leak)
	if self < 0.5 {
		t.Errorf("undefended EM fingerprint should repeat: %.2f", self)
	}
	if leak > 0.6*self {
		t.Errorf("GS should break the EM fingerprint: %.2f vs %.2f", leak, self)
	}
}
