// Package core is the paper's primary contribution assembled: the Maya
// defense engine (Fig 2). Every control period (20 ms) the engine reads the
// power sensor, asks the mask generator for the next target, runs the
// formal controller on the deviation, and actuates the DVFS, idle, and
// balloon knobs. It also provides the §V-A design pipeline that produces
// the controller for a given machine (system identification → ARX fit →
// LQG synthesis).
//
// The engine is deliberately application-transparent: it never inspects the
// workload, only the machine's power, which is what makes Maya deployable
// as privileged software on unmodified systems.
package core

import (
	"fmt"
	"math"
	"time"

	"github.com/maya-defense/maya/internal/actuator"
	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/sysid"
	"github.com/maya-defense/maya/internal/telemetry"
)

// Engine is one deployed Maya instance. It implements sim.Policy, so it
// plugs directly into the simulation runner the way the real implementation
// plugs into a privileged thread.
type Engine struct {
	ctl   *control.Controller
	gen   mask.Generator
	knobs actuator.Set

	// dither, when non-nil, is the mask's high-frequency component,
	// actuated open-loop on the balloon input (see hfDither); balloonGainW
	// converts its watt amplitude into balloon-input units.
	dither       *hfDither
	balloonGainW float64

	// qdither, when non-nil, randomizes the quantization of each input by
	// up to ±half an actuator step per period. Without it, the loop settles
	// into deterministic limit cycles between adjacent quantized levels
	// whose amplitude depends on the plant's local gain — i.e., on the
	// application — leaving a high-frequency fingerprint. Dithered
	// quantization turns that chatter into secret-random noise.
	qdither *rng.Stream

	// Adaptive dither-gain estimator. The balloon's watt-per-duty gain
	// varies several-fold with application state; injecting the HF mask
	// through a fixed gain estimate would make the *injected amplitude*
	// itself an application fingerprint (a time-frequency attacker reads
	// it from band energies). The engine knows its own injected signal, so
	// it estimates the instantaneous gain by NLMS on first-differenced
	// (above-loop-bandwidth) measurements and normalizes the injection.
	ghat           float64
	prevUd, pprevU float64
	prevY          float64
	havePrevY      bool

	// Targets records the mask value issued at each step (the paper's
	// Fig 13a analysis compares this trace against measured power).
	Targets []float64

	// Overhead telemetry (§VII-E): cumulative wall time spent inside
	// Decide and the number of steps, measured on the host running the
	// simulation.
	DecideTime time.Duration
	Steps      int

	// flight, when non-nil, records every Decide into a bounded ring; it
	// captures only simulated-domain values, so a flight trace is
	// deterministic for a fixed seed and never perturbs the decisions.
	flight *telemetry.FlightRecorder
	// metrics, when non-nil, feeds the aggregate counters.
	metrics *EngineMetrics
	// tracer, when non-nil, records each sampled tick's phase breakdown
	// (tick.mask / tick.sensor / tick.control / tick.actuate) as spans
	// parented under traceCtx. Like flight and metrics, tracing observes
	// the host clock only for timestamps and never feeds decisions.
	tracer   *telemetry.Tracer
	traceCtx telemetry.SpanContext

	// guard, when non-nil, filters implausible sensor readings before the
	// controller sees them and re-initializes blown-up state (see Guard).
	guard *Guard
	// Measurement-hold state maintained by the guard.
	lastGoodW float64
	haveGood  bool
	holdUsed  int
}

// EngineMetrics aggregates one engine's control-loop health into a
// registry. All fields are updated on the Decide hot path, so they are
// plain atomic instruments resolved once at construction.
type EngineMetrics struct {
	// Steps counts Decide calls.
	Steps *telemetry.Counter
	// Saturations counts steps on which the controller clipped an input.
	Saturations *telemetry.Counter
	// QuantClips counts knob commands clamped at the actuator's range edge.
	QuantClips *telemetry.Counter
	// AbsErrorW observes |target − measured| each step after the first.
	AbsErrorW *telemetry.Histogram
	// StateNorm tracks the controller state's L2 norm (blow-up detector).
	StateNorm *telemetry.Gauge
	// GlitchRejects counts sensor readings the guard rejected (non-finite
	// or outside the plausible power range).
	GlitchRejects *telemetry.Counter
	// HoldExhausted counts rejects that exceeded the guard's hold budget
	// and were accepted clamped instead of held.
	HoldExhausted *telemetry.Counter
	// StateReinits counts controller state re-initializations after a
	// norm blow-up.
	StateReinits *telemetry.Counter
}

// NewEngineMetrics registers the engine instruments. Multiple engines may
// share one registry; the counters then aggregate across them.
func NewEngineMetrics(reg *telemetry.Registry) *EngineMetrics {
	return &EngineMetrics{
		Steps:         reg.Counter("maya_engine_steps_total", "control-loop Decide calls"),
		Saturations:   reg.Counter("maya_engine_saturated_steps_total", "steps with a saturated controller input"),
		QuantClips:    reg.Counter("maya_engine_quant_clips_total", "knob commands clamped at the actuator range edge"),
		AbsErrorW:     reg.Histogram("maya_engine_abs_error_w", "per-step |mask target − measured power| in watts", telemetry.ExpBuckets(0.125, 2, 12)),
		StateNorm:     reg.Gauge("maya_engine_state_norm", "L2 norm of the controller state"),
		GlitchRejects: reg.Counter("maya_engine_glitch_rejects_total", "sensor readings rejected by the measurement guard"),
		HoldExhausted: reg.Counter("maya_engine_hold_exhausted_total", "rejects accepted clamped after the hold budget ran out"),
		StateReinits:  reg.Counter("maya_engine_state_reinits_total", "controller state re-initializations after a norm blow-up"),
	}
}

// SetFlight attaches a flight recorder (nil detaches). The engine resets
// the recorder on Reset so record indices align with the run's steps.
func (e *Engine) SetFlight(f *telemetry.FlightRecorder) { e.flight = f }

// Flight returns the attached flight recorder, if any.
func (e *Engine) Flight() *telemetry.FlightRecorder { return e.flight }

// SetMetrics attaches aggregate metrics (nil detaches).
func (e *Engine) SetMetrics(m *EngineMetrics) { e.metrics = m }

// SetTrace attaches a tracer (nil detaches) and the parent span to nest
// this engine's per-tick phase spans under — typically the runner job span
// carried by the collection context (telemetry.SpanFromContext). Tick
// phase spans are keyed by the step number, so their identities are
// deterministic; the tracer's tick sampling bounds the volume.
func (e *Engine) SetTrace(tr *telemetry.Tracer, parent telemetry.SpanContext) {
	e.tracer = tr
	e.traceCtx = parent
}

// NewEngine assembles an engine from a synthesized controller (the caller
// keeps ownership; pass a Clone for concurrent runs), a mask generator, and
// the machine's actuator set.
func NewEngine(ctl *control.Controller, gen mask.Generator, knobs actuator.Set) *Engine {
	return &Engine{ctl: ctl, gen: gen, knobs: knobs}
}

// Reset prepares the engine for a new run: fresh controller state, a fresh
// mask stream for the given seed, and cleared telemetry.
func (e *Engine) Reset(seed uint64) {
	e.ctl.Reset()
	e.gen.Reset(seed)
	if e.dither != nil {
		e.dither.Reset(seed + 0x9e3779b97f4a7c15)
		e.qdither = rng.NewNamed(seed, "maya/qdither")
	}
	e.ghat = e.balloonGainW
	e.prevUd, e.pprevU, e.prevY = 0, 0, 0
	e.havePrevY = false
	e.Targets = e.Targets[:0]
	e.DecideTime = 0
	e.Steps = 0
	e.lastGoodW, e.haveGood, e.holdUsed = 0, false, 0
	if e.flight != nil {
		e.flight.Reset()
	}
}

// StepPre carries the pre-controller half of one engine step from BeginStep
// to FinishStep: the mask components, the guard's verdict on the raw
// reading, and the tracking error the controller must consume. The fleet
// engine batches the controller step between the two halves; the scalar
// Decide runs them back to back.
type StepPre struct {
	// Target is the closed-loop mask component issued this step.
	Target float64
	// DitherW is the open-loop high-frequency mask component (0 when the
	// dither is off).
	DitherW float64
	// PowerW is the sanitized measurement the controller and the NLMS gain
	// estimator see.
	PowerW float64
	// RawW is the reading as the sensor produced it; Rejected marks it
	// implausible (PowerW then holds the guard's substitute).
	RawW     float64
	Rejected bool
	// DeltaY is the tracking error to feed the controller: 0 at step 0
	// (no sensor reading exists yet; hold the operating point rather than
	// reacting to a bogus zero measurement), Target−PowerW afterwards. The
	// feedback loop tracks only the low-frequency component; the dither
	// would be invisible to it anyway (above loop bandwidth).
	DeltaY float64

	traced                   bool
	tMask, tSensor, tControl int64
}

// BeginStep runs the pre-controller phases of one engine step: mask draw,
// dither draw, target bookkeeping, and the measurement guard. The caller
// must follow with exactly one controller step on pre.DeltaY and one
// FinishStep; Decide composes the three for the scalar path, the fleet
// engine interposes a batched controller step.
//
//maya:hotpath
func (e *Engine) BeginStep(step int, powerW float64) StepPre {
	var pre StepPre
	// Phase timestamps for the sampled-tick trace. All reads go through the
	// tracer's clock (blessed inside telemetry); when the tick is not
	// sampled the whole path is zero-assignments and one branch.
	pre.traced = e.tracer.TickSampled(step)
	if pre.traced {
		pre.tMask = e.tracer.Clock()
	}
	pre.Target = e.gen.Next()
	if e.dither != nil && e.balloonGainW > 0 {
		pre.DitherW = e.dither.Next()
	}
	// The recorded target is the full mask shape: the closed-loop
	// component plus the open-loop high-frequency component.
	e.Targets = append(e.Targets, pre.Target+pre.DitherW)

	if pre.traced {
		pre.tSensor = e.tracer.Clock()
	}
	// Measurement guard: reject non-finite or implausible readings before
	// anything downstream (controller, NLMS gain estimator) consumes them.
	pre.RawW = powerW
	if e.guard != nil && step > 0 {
		powerW, pre.Rejected = e.sanitize(powerW, pre.Target)
		if pre.Rejected && e.metrics != nil {
			e.metrics.GlitchRejects.Inc()
		}
	}
	pre.PowerW = powerW

	if pre.traced {
		pre.tControl = e.tracer.Clock()
	}
	if step > 0 {
		pre.DeltaY = pre.Target - powerW
	}
	return pre
}

// FinishStep runs the post-controller phases of one engine step: blow-up
// recovery, the NLMS dither-gain update, open-loop dither injection,
// quantization dither, actuation, and telemetry. u is the controller's
// output for pre.DeltaY and ctl is the state view of whichever controller
// produced it — e.ctl on the scalar path, one tenant column of a
// control.Bank on the fleet path.
//
//maya:hotpath
func (e *Engine) FinishStep(step int, pre StepPre, u []float64, ctl control.StateView) sim.Inputs {
	// Blow-up recovery: re-initialize the controller at the identified
	// operating point when its state norm diverges (sustained saturation
	// or fault bursts). The emitted u buffer survives Reset.
	reinit := false
	if e.guard != nil && e.guard.StateNormLimit > 0 && ctl.StateNorm() > e.guard.StateNormLimit {
		ctl.Reset()
		reinit = true
		if e.metrics != nil {
			e.metrics.StateReinits.Inc()
		}
	}
	var tActuate int64
	if pre.traced {
		tActuate = e.tracer.Clock()
	}
	powerW := pre.PowerW
	u2 := u[2]
	if e.dither != nil && e.balloonGainW > 0 {
		// Update the gain estimate: the dither applied for the period that
		// powerW measured was prevUd; its first difference against the
		// one before isolates the above-bandwidth response.
		if e.havePrevY && step > 1 {
			uhp := e.prevUd - e.pprevU
			yhp := powerW - e.prevY
			const mu, eps = 0.2, 1e-3
			if uhp != 0 { //nolint:maya/floateq uhp is exactly 0 when no dither was applied
				e.ghat += mu * uhp * (yhp - e.ghat*uhp) / (eps + uhp*uhp)
			}
			lo, hi := 0.25*e.balloonGainW, 4*e.balloonGainW
			if e.ghat < lo {
				e.ghat = lo
			}
			if e.ghat > hi {
				e.ghat = hi
			}
		}
		e.prevY = powerW
		e.havePrevY = true
	}
	if pre.DitherW != 0 { //nolint:maya/floateq DitherW is set to exactly 0 when dither is off
		// High-frequency mask component, actuated open-loop on the balloon,
		// normalized by the adaptive gain estimate.
		ud := pre.DitherW / e.ghat
		u2 += ud
		if u2 < 0 {
			u2 = 0
		}
		if u2 > 1 {
			u2 = 1
		}
		e.pprevU = e.prevUd
		e.prevUd = ud
	} else {
		e.pprevU = e.prevUd
		e.prevUd = 0
	}
	uq := [3]float64{u[0], u[1], u2}
	if e.qdither != nil {
		// ±half-step randomization before the knobs snap to their ladders.
		steps := [3]float64{
			e.knobs.DVFS.Step / (e.knobs.DVFS.Max - e.knobs.DVFS.Min),
			e.knobs.Idle.Step / (e.knobs.Idle.Max - e.knobs.Idle.Min),
			e.knobs.Balloon.Step / (e.knobs.Balloon.Max - e.knobs.Balloon.Min),
		}
		for j := range uq {
			uq[j] += e.qdither.Uniform(-0.5, 0.5) * steps[j]
		}
	}
	d, idle, b, clipped := e.knobs.FromNormsInfo(uq)
	if pre.traced {
		tEnd := e.tracer.Clock()
		seq := uint64(step)
		e.tracer.Complete("tick.mask", "engine", e.traceCtx, seq, pre.tMask, pre.tSensor-pre.tMask, int64(step))
		e.tracer.Complete("tick.sensor", "engine", e.traceCtx, seq, pre.tSensor, pre.tControl-pre.tSensor, int64(step))
		e.tracer.Complete("tick.control", "engine", e.traceCtx, seq, pre.tControl, tActuate-pre.tControl, int64(step))
		e.tracer.Complete("tick.actuate", "engine", e.traceCtx, seq, tActuate, tEnd-tActuate, int64(step))
	}

	if e.metrics != nil {
		e.metrics.Steps.Inc()
		if ctl.Saturated() {
			e.metrics.Saturations.Inc()
		}
		for _, c := range clipped {
			if c {
				e.metrics.QuantClips.Inc()
			}
		}
		if step > 0 {
			err := pre.Target + pre.DitherW - powerW
			if err < 0 {
				err = -err
			}
			e.metrics.AbsErrorW.Observe(err)
		}
		e.metrics.StateNorm.Set(ctl.StateNorm())
	}
	if e.flight != nil {
		rec := telemetry.FlightRecord{
			Step:      step,
			TargetW:   pre.Target + pre.DitherW,
			MeasuredW: powerW,
			ErrorW:    pre.Target + pre.DitherW - powerW,
			U:         uq,
			Applied:   [3]float64{d, idle, b},
			Saturated: ctl.Saturated(),
			Clipped:   clipped,
			StateNorm: ctl.StateNorm(),
		}
		if pre.Rejected {
			rec.Rejected = true
			// JSON cannot carry NaN/±Inf; non-finite raw readings are
			// recorded as 0 (the Rejected flag still marks them).
			if !math.IsNaN(pre.RawW) && !math.IsInf(pre.RawW, 0) {
				rec.RawW = pre.RawW
			}
		}
		rec.StateReinit = reinit
		e.flight.Record(rec)
	}

	e.Steps++
	return sim.Inputs{FreqGHz: d, Idle: idle, Balloon: b}
}

// Decide implements sim.Policy: one Maya wake-up. This is the per-tick
// engine step, on the 20 ms control period; hotalloc keeps formatting and
// boxing off it (the telemetry zero-alloc benchmark gate measures the same
// property at run time).
//
//maya:hotpath
func (e *Engine) Decide(step int, powerW float64) sim.Inputs {
	start := time.Now() //maya:wallclock overhead accounting (§VII-E); never feeds decisions
	pre := e.BeginStep(step, powerW)
	u := e.ctl.Step(pre.DeltaY)
	in := e.FinishStep(step, pre, u, e.ctl) //nolint:maya/hotalloc StateView here wraps an existing pointer, which fits the interface word without allocating
	e.DecideTime += time.Since(start)       //maya:wallclock overhead accounting (§VII-E)
	return in
}

// MaskTargets returns the targets issued so far (one per Decide call).
// Callers running through sim.Run align entry FirstStep+t with recorded
// sample t.
func (e *Engine) MaskTargets() []float64 { return e.Targets }

// Controller exposes the engine's controller (telemetry, dimension checks).
func (e *Engine) Controller() *control.Controller { return e.ctl }

// Mask exposes the engine's mask generator.
func (e *Engine) Mask() mask.Generator { return e.gen }

// Design holds everything produced by the §V-A pipeline for one machine.
type Design struct {
	Model      *sysid.Model
	Plant      *control.StateSpace
	Controller *control.Controller // prototype; Clone per run
	Report     *control.Report
	Band       mask.Band
}

// DesignOptions tune the identification and synthesis pipeline.
type DesignOptions struct {
	// Seed feeds the excitation streams.
	Seed uint64
	// Order is the ARX model order (paper: 4).
	Order int
	// PeriodTicks is the control period in simulator ticks (paper: 20 ms).
	PeriodTicks int
	// ExcitationTicks bounds each training run.
	ExcitationTicks int
	// Spec overrides the synthesis spec; nil uses the paper's defaults
	// (input weights 1, guardband 40%).
	Spec *control.Spec
}

// DefaultDesignOptions returns the paper's configuration.
func DefaultDesignOptions() DesignOptions {
	return DesignOptions{Seed: 1, Order: 4, PeriodTicks: 20, ExcitationTicks: 20000}
}

// DesignFor runs the full pipeline for a machine: collect excitation data
// on the training applications, fit the ARX model, realize it, synthesize
// the controller, and derive the mask band from the machine's idle floor
// and TDP.
func DesignFor(cfg sim.Config, opts DesignOptions) (*Design, error) {
	if opts.Order <= 0 {
		opts.Order = 4
	}
	if opts.PeriodTicks <= 0 {
		opts.PeriodTicks = 20
	}
	if opts.ExcitationTicks <= 0 {
		opts.ExcitationTicks = 20000
	}
	log := sysid.CollectExcitation(cfg, sysid.TrainingSet(), opts.Seed, opts.PeriodTicks, opts.ExcitationTicks)
	model, err := sysid.Fit(log.Y, log.U, opts.Order, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("core: identification failed: %w", err)
	}
	plant := control.FromARX(model)
	if err := plant.Verify(model, 1e-6); err != nil {
		return nil, err
	}
	spec := control.DefaultSpec(3)
	if opts.Spec != nil {
		spec = *opts.Spec
	}
	ctl, rep, err := control.Synthesize(plant, spec)
	if err != nil {
		return nil, fmt.Errorf("core: synthesis failed: %w", err)
	}
	// The band's ceiling must be reachable: the TDP caps it (§V-B), and so
	// does the machine's actual burn capability (balloon flat out at max
	// DVFS). A target above what the actuators can deliver would saturate
	// the loop and leak whichever workload happens to be running.
	ceiling := 0.8 * cfg.TDP
	if m := 0.92 * maxBurnW(cfg); m < ceiling {
		ceiling = m
	}
	floor := idleFloorW(cfg)
	band := mask.Band{Min: floor + 0.1*(ceiling-floor), Max: ceiling}
	return &Design{Model: model, Plant: plant, Controller: ctl, Report: rep, Band: band}, nil
}

// maxBurnW estimates the highest sustainable power: balloon at full duty on
// every core at maximum frequency (activity ≈ 1.1), no idle injection.
func maxBurnW(cfg sim.Config) float64 {
	v := cfg.Voltage(cfg.FmaxGHz)
	return cfg.StaticCoeff*v/cfg.VMax + cfg.CdynPerCore*v*v*cfg.FmaxGHz*1.1*float64(cfg.Cores)
}

// idleFloorW estimates the machine's lowest reachable power (minimum
// frequency, maximum idle injection, no balloon) from the config's power
// model — the bottom anchor of the mask band.
func idleFloorW(cfg sim.Config) float64 {
	v := cfg.Voltage(cfg.FminGHz)
	static := cfg.StaticCoeff * v / cfg.VMax
	base := cfg.CdynPerCore * v * v * cfg.FminGHz * 0.03 * (1 - 0.48) * float64(cfg.Cores)
	return static + base
}

// NewGSEngine builds the proposed Maya GS configuration for a design: the
// Gaussian Sinusoid mask over the machine band at the loop's sampling rate,
// with its above-bandwidth components actuated open-loop on the balloon.
func NewGSEngine(d *Design, cfg sim.Config, periodTicks int, seed uint64) *Engine {
	sampleHz := 1 / (float64(periodTicks) * cfg.TickSeconds)
	gen := mask.NewGaussianSinusoid(d.Band, mask.DefaultHold(), sampleHz, seed)
	e := NewEngine(d.Controller.Clone(), gen, cfg.Knobs())
	e.dither = newHFDither(d.Band, sampleHz, 10, seed)
	// The balloon's true gain depends on machine load: the identified model
	// gives the average over busy training runs, while on an idle machine
	// the balloon burns several times more per duty step. Converting the
	// dither with either extreme would make the injected amplitude itself
	// load-dependent by that full ratio; the geometric mean bounds the
	// modulation symmetrically.
	fitted := 0.0
	if g := d.Model.DCGain(); len(g) == 3 && g[2] > 0.5 {
		fitted = g[2]
	}
	analytic := maxBurnW(cfg) - idleFloorW(cfg) // idle-machine balloon swing
	switch {
	case fitted > 0 && analytic > 0:
		e.balloonGainW = math.Sqrt(fitted * analytic)
	case fitted > 0:
		e.balloonGainW = fitted
	}
	return e
}

// NewConstantEngine builds the Maya Constant ablation: same controller,
// fixed target pinned at 40% of the band. As in the paper (§VII-E), the
// single level is "often lower than the power at which Baseline runs", so
// high-activity phases are throttled throughout and Maya Constant pays a
// larger execution-time overhead than Maya GS, whose moving target lets
// applications run at high power part of the time.
func NewConstantEngine(d *Design, cfg sim.Config) *Engine {
	level := d.Band.Min + 0.4*d.Band.Width()
	return NewEngine(d.Controller.Clone(), mask.NewConstant(level), cfg.Knobs())
}

// DitherGain returns the engine's current adaptive estimate of the
// balloon's watt-per-duty gain (telemetry; see the estimator notes on
// Engine).
func (e *Engine) DitherGain() float64 { return e.ghat }
