package core

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

func TestGatePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGate(nil, nil, nil)
}

func TestWindowTrigger(t *testing.T) {
	tr := WindowTrigger(5, 10)
	for step, want := range map[int]bool{0: false, 4: false, 5: true, 9: true, 10: false} {
		if tr(step) != want {
			t.Fatalf("trigger(%d)=%v", step, tr(step))
		}
	}
}

func TestGateProtectsOnlyTheWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	d := testDesign(t)
	cfg := sim.Sys1()

	// Baseline reference for the same workload.
	mBase := sim.NewMachine(cfg, 31)
	wBase := workload.NewApp("streamcluster").Scale(0.4)
	wBase.Reset(9)
	base := sim.Run(mBase, wBase, sim.NewBaselinePolicy(cfg), sim.RunSpec{
		ControlPeriodTicks: 20, MaxTicks: 30000,
	})

	// Gate on for periods [500, 1000) — a 10 s sensitive section.
	eng := NewGSEngine(d, cfg, 20, 77)
	gate := NewGate(eng, sim.NewBaselinePolicy(cfg), WindowTrigger(500, 1000))
	gate.Reset(77)
	mGate := sim.NewMachine(cfg, 31)
	wGate := workload.NewApp("streamcluster").Scale(0.4)
	wGate.Reset(9)
	prot := sim.Run(mGate, wGate, gate, sim.RunSpec{
		ControlPeriodTicks: 20, MaxTicks: 30000,
	})

	n := len(prot.DefenseSamples)
	if n < 1200 {
		t.Fatalf("short run: %d", n)
	}
	// Outside the window the trace must match the app (cheap); inside it
	// must not.
	offCorr := math.Abs(signal.Pearson(prot.DefenseSamples[50:450], base.DefenseSamples[50:450]))
	onCorr := math.Abs(signal.Pearson(prot.DefenseSamples[550:950], base.DefenseSamples[550:950]))
	if offCorr < 0.5 {
		t.Errorf("gated-off section should track the app: corr=%.2f", offCorr)
	}
	if onCorr > 0.45 {
		t.Errorf("gated-on section should be obfuscated: corr=%.2f", onCorr)
	}
	if gate.Transitions != 1 {
		t.Errorf("transitions=%d want 1", gate.Transitions)
	}

	// The §V point: gating cuts the overhead. Full-protection run:
	engFull := NewGSEngine(d, cfg, 20, 77)
	engFull.Reset(77)
	mFull := sim.NewMachine(cfg, 31)
	wFull := workload.NewApp("streamcluster").Scale(0.4)
	wFull.Reset(9)
	full := sim.Run(mFull, wFull, engFull, sim.RunSpec{
		ControlPeriodTicks: 20, MaxTicks: 60000, StopOnFinish: true,
	})
	gateDone := prot.FinishedTick
	if gateDone < 0 {
		t.Fatal("gated run did not finish")
	}
	if full.FinishedTick > 0 && gateDone >= full.FinishedTick {
		t.Errorf("gating should be faster: gated %d ticks vs full %d", gateDone, full.FinishedTick)
	}
}
