package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/telemetry"
)

// drawSum consumes the job's private stream: the value depends only on the
// stream, so identical results across worker counts prove the per-job
// derivation is order-independent.
func drawSum(r *rng.Stream, n int) uint64 {
	var s uint64
	for i := 0; i < n; i++ {
		s += r.Uint64()
	}
	return s
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const jobs = 40
	run := func(workers int) []uint64 {
		values, err := MapN(context.Background(), Options{Workers: workers, Seed: 99},
			jobs, func(_ context.Context, i int, r *rng.Stream) (uint64, error) {
				// Scramble completion order so late finishers would expose
				// any order dependence.
				if i%7 == 0 {
					time.Sleep(time.Duration(i%3) * time.Millisecond)
				}
				return drawSum(r, 50+i), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return values
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, 16} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: job %d yields %d, serial yields %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestResultsInSubmissionOrder(t *testing.T) {
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("job-%d", i),
			Run: func(context.Context, *rng.Stream) (int, error) {
				time.Sleep(time.Duration((20-i)%5) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	results := Run(context.Background(), Options{Workers: 6}, jobs)
	for i, r := range results {
		if r.Name != fmt.Sprintf("job-%d", i) || r.Value != i*i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Wall <= 0 {
			t.Fatalf("job %d missing wall-clock accounting", i)
		}
	}
}

func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{
		{Name: "ok", Run: func(context.Context, *rng.Stream) (int, error) { return 1, nil }},
		{Name: "boom", Run: func(context.Context, *rng.Stream) (int, error) { panic("kaboom") }},
		{Name: "also-ok", Run: func(context.Context, *rng.Stream) (int, error) { return 3, nil }},
	}
	results := Run(context.Background(), Options{Workers: 2}, jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs infected: %v %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("want PanicError, got %v", results[1].Err)
	}
	if pe.Job != "boom" || !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestMapNReportsFirstError(t *testing.T) {
	values, err := MapN(context.Background(), Options{Workers: 4}, 10,
		func(_ context.Context, i int, _ *rng.Stream) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
	if err == nil || !strings.Contains(err.Error(), "fail-3") {
		t.Fatalf("want first error (job 3), got %v", err)
	}
	if values[4] != 4 || values[9] != 9 {
		t.Fatalf("healthy values lost: %v", values)
	}
}

func TestPerJobTimeout(t *testing.T) {
	results := Run(context.Background(), Options{Workers: 2, Timeout: 20 * time.Millisecond},
		[]Job[int]{
			{Name: "fast", Run: func(context.Context, *rng.Stream) (int, error) { return 1, nil }},
			{Name: "slow", Run: func(ctx context.Context, _ *rng.Stream) (int, error) {
				select {
				case <-time.After(5 * time.Second):
					return 2, nil
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			}},
		})
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("fast job: %+v", results[0])
	}
	if !results[1].TimedOut || !errors.Is(results[1].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job should time out: %+v", results[1])
	}
}

func TestCancellationStopsFeeding(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	jobs := make([]Job[int], 100)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(ctx context.Context, _ *rng.Stream) (int, error) {
			// The second job to start cancels the sweep; already-running
			// jobs complete, unfed jobs are marked cancelled.
			if started.Add(1) == 2 {
				cancel()
			}
			time.Sleep(2 * time.Millisecond)
			return 1, nil
		}}
	}
	results := Run(ctx, Options{Workers: 2}, jobs)
	// In-flight jobs race the cancellation (either completing or being
	// abandoned is fine); everything else must be marked cancelled, and the
	// feed must have stopped well short of the full list.
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %s: unexpected outcome %+v", r.Name, r)
		}
	}
	if n := started.Load(); n < 1 || n >= 50 {
		t.Fatalf("cancellation should stop the feed early: %d jobs started", n)
	}
}

func TestAllocAccounting(t *testing.T) {
	values, err := MapN(context.Background(), Options{Workers: 1, AllocStats: true}, 1,
		func(context.Context, int, *rng.Stream) ([]byte, error) {
			return make([]byte, 1<<20), nil
		})
	if err != nil || len(values[0]) != 1<<20 {
		t.Fatalf("job failed: %v", err)
	}
	jobs := []Job[[]byte]{{Name: "alloc", Run: func(context.Context, *rng.Stream) ([]byte, error) {
		return make([]byte, 1<<20), nil
	}}}
	results := Run(context.Background(), Options{Workers: 1, AllocStats: true}, jobs)
	if results[0].AllocBytes < 1<<20 {
		t.Fatalf("alloc accounting missed the 1 MiB allocation: %d bytes", results[0].AllocBytes)
	}
}

// TestPoolMetrics checks the pool's telemetry wiring: start/done/panic/timeout
// counters, the in-flight gauge returning to zero, and the timing histograms.
func TestPoolMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	jobs := []Job[int]{
		{Name: "ok", Run: func(context.Context, *rng.Stream) (int, error) { return 1, nil }},
		{Name: "boom", Run: func(context.Context, *rng.Stream) (int, error) { panic("kaboom") }},
		{Name: "slow", Run: func(ctx context.Context, _ *rng.Stream) (int, error) {
			select {
			case <-time.After(5 * time.Second):
				return 2, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}},
	}
	Run(context.Background(), Options{Workers: 2, Timeout: 20 * time.Millisecond, Metrics: m}, jobs)

	if got := m.JobsStarted.Value(); got != 3 {
		t.Fatalf("jobs started = %d, want 3", got)
	}
	if got := m.JobsDone.Value(); got != 3 {
		t.Fatalf("jobs done = %d, want 3", got)
	}
	if got := m.Panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	if got := m.Timeouts.Value(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge = %g after pool drained, want 0", got)
	}
	if got := m.RunTime.Count(); got != 3 {
		t.Fatalf("run-time histogram count = %d, want 3", got)
	}
	if got := m.QueueWait.Count(); got != 3 {
		t.Fatalf("queue-wait histogram count = %d, want 3", got)
	}

	// The panic counter must be visible through the registry exposition the
	// telemetry report renders.
	var found bool
	for _, metric := range reg.Snapshot() {
		if metric.Name == "runner_job_panics_total" && metric.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("runner_job_panics_total not visible in registry snapshot")
	}
}

func TestPoolMetricsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(context.Context, *rng.Stream) (int, error) { return 0, nil }}
	}
	Run(ctx, Options{Workers: 2, Metrics: m}, jobs)
	// The feed's select may still hand a few jobs to ready workers, but every
	// job must be accounted for exactly once: started or cancelled.
	started, cancelled := m.JobsStarted.Value(), m.Cancelled.Value()
	if started+cancelled != 8 {
		t.Fatalf("started=%d + cancelled=%d != 8 jobs", started, cancelled)
	}
	if started == 8 {
		t.Skip("all jobs fed despite cancelled context (legal select race); nothing to assert")
	}
	if cancelled == 0 {
		t.Fatal("cancelled counter never incremented")
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if got := Run[int](context.Background(), Options{}, nil); len(got) != 0 {
		t.Fatalf("empty job list: %v", got)
	}
	// Workers <= 0 falls back to GOMAXPROCS; must still complete.
	values, err := MapN(context.Background(), Options{Workers: -1}, 5,
		func(_ context.Context, i int, _ *rng.Stream) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if v != i {
			t.Fatalf("values scrambled: %v", values)
		}
	}
}
