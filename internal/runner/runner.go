// Package runner schedules experiment jobs across a bounded worker pool.
// It exists so the evaluation sweep — figure pipelines, ablations, attack
// training folds, per-trace collection runs — can use every core without
// giving up reproducibility:
//
//   - Each job receives its own random stream, derived from the pool's base
//     seed and the job's submission index via rng.ChildSeed. Derivation is a
//     pure function of (seed, index), so results are bit-for-bit identical
//     regardless of the worker count or the order in which jobs finish.
//   - Results are collected in submission order.
//   - A panicking job degrades to a reported error (with the captured stack)
//     instead of killing the whole sweep.
//   - Cancellation via context.Context stops feeding new jobs; an optional
//     per-job timeout abandons stragglers while the rest of the sweep
//     proceeds.
//   - Every result carries wall-clock and (optionally) allocation accounting
//     so experiment summaries can report where the sweep's time went.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/telemetry"
)

// Options configures a pool invocation.
type Options struct {
	// Workers is the number of concurrent worker goroutines. Values <= 0
	// mean GOMAXPROCS. Workers == 1 runs jobs serially in submission order.
	Workers int
	// Timeout caps each job's wall-clock time. 0 disables. A timed-out job
	// is abandoned (its goroutine is left to finish and be collected; jobs
	// that honor their context exit early) and reported with TimedOut set.
	Timeout time.Duration
	// Seed is the base seed from which every job's private stream is
	// derived (child i gets rng.NewChild(Seed, i)).
	Seed uint64
	// AllocStats enables per-job allocation deltas via runtime.ReadMemStats.
	// The read is cheap relative to experiment-sized jobs but not to
	// microsecond-sized ones, and under concurrency the delta attributes
	// other workers' allocations to the job, so it is an upper bound.
	AllocStats bool
	// Metrics, when non-nil, instruments the pool (see NewMetrics).
	// Instrumentation never changes scheduling or results.
	Metrics *Metrics
	// TraceParent explicitly parents this pool's job spans when the
	// process-wide tracer (telemetry.ActiveTrace) is installed. When zero,
	// the parent is taken from the span carried by the context passed to
	// Run, so nested pools chain automatically. Tracing, like Metrics,
	// never changes scheduling or results.
	TraceParent telemetry.SpanContext
}

// Metrics instruments a pool: job lifecycle counters, queue-wait and
// run-time distributions, and the in-flight depth. One instance may be
// shared by several Run invocations (a suite and its nested collection
// sweeps); the counters then aggregate across pools.
type Metrics struct {
	// JobsStarted / JobsDone count jobs handed to a worker and finished
	// (including failures); Cancelled counts jobs never started because the
	// sweep's context ended first.
	JobsStarted *telemetry.Counter
	JobsDone    *telemetry.Counter
	Cancelled   *telemetry.Counter
	// Panics counts jobs that panicked (captured as *PanicError); Timeouts
	// counts jobs abandoned at Options.Timeout.
	Panics   *telemetry.Counter
	Timeouts *telemetry.Counter
	// InFlight is the number of jobs currently executing.
	InFlight *telemetry.Gauge
	// QueueWait and RunTime observe, in seconds, how long each job waited
	// for a worker and how long it ran.
	QueueWait *telemetry.Histogram
	RunTime   *telemetry.Histogram
	// AllocBytes observes per-job allocation volume (needs AllocStats).
	AllocBytes *telemetry.Histogram
}

// NewMetrics registers the pool instruments in reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		JobsStarted: reg.Counter("runner_jobs_started_total", "jobs handed to a worker"),
		JobsDone:    reg.Counter("runner_jobs_done_total", "jobs finished (including failures)"),
		Cancelled:   reg.Counter("runner_jobs_cancelled_total", "jobs never started because the sweep was cancelled"),
		Panics:      reg.Counter("runner_job_panics_total", "jobs that panicked (captured by the pool)"),
		Timeouts:    reg.Counter("runner_job_timeouts_total", "jobs abandoned at the per-job timeout"),
		InFlight:    reg.Gauge("runner_jobs_in_flight", "jobs currently executing"),
		QueueWait:   reg.Histogram("runner_job_queue_wait_seconds", "wait from pool start to job start", telemetry.DurationBuckets()),
		RunTime:     reg.Histogram("runner_job_run_seconds", "job wall-clock run time", telemetry.DurationBuckets()),
		AllocBytes:  reg.Histogram("runner_job_alloc_bytes", "per-job heap allocation volume", telemetry.ExpBuckets(1024, 8, 10)),
	}
}

// Job is one named unit of work.
type Job[T any] struct {
	// Name labels the job in results and error reports.
	Name string
	// Run executes the job. The stream is the job's private deterministic
	// RNG; ctx is cancelled when the sweep is cancelled or the job's
	// timeout elapses.
	Run func(ctx context.Context, r *rng.Stream) (T, error)
}

// Result is one job's outcome, in submission order.
type Result[T any] struct {
	Name  string
	Value T
	// Err is non-nil if the job returned an error, panicked (a *PanicError),
	// timed out, or was cancelled before starting.
	Err error
	// Wall is the job's wall-clock duration (zero if never started).
	Wall time.Duration
	// AllocBytes is the job's heap-allocation delta when Options.AllocStats
	// is set; approximate under concurrency.
	AllocBytes uint64
	// TimedOut reports that the job exceeded Options.Timeout.
	TimedOut bool
}

// PanicError wraps a panic captured inside a job.
type PanicError struct {
	Job   string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %q panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Run executes jobs across the pool and returns their results in submission
// order. It never returns early: every job either ran, timed out, or is
// marked cancelled.
func Run[T any](ctx context.Context, opts Options, jobs []Job[T]) []Result[T] {
	results := make([]Result[T], len(jobs))
	for i, j := range jobs {
		results[i].Name = j.Name
	}
	if len(jobs) == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Each job becomes two trace spans under pt.parent: "job.queue_wait"
	// (pool start → worker pickup) and "job.run" (execution), both keyed by
	// the submission index so span identities are deterministic.
	pt := poolTrace{tr: telemetry.ActiveTrace(), parent: opts.TraceParent}
	if pt.parent == (telemetry.SpanContext{}) {
		pt.parent = telemetry.SpanFromContext(ctx)
	}
	pt.startNS = pt.tr.Clock()

	poolStart := time.Now() //maya:wallclock queue-wait metrics baseline; never feeds results
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(ctx, opts, poolStart, pt, i, jobs[i], &results[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Jobs never handed to a worker report the sweep's cancellation.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Wall == 0 && results[i].Err == nil {
				results[i].Err = err
				if opts.Metrics != nil {
					opts.Metrics.Cancelled.Inc()
				}
			}
		}
	}
	return results
}

// jobOutcome carries a finished job's payload from its goroutine.
type jobOutcome[T any] struct {
	value T
	err   error
	alloc uint64
	wall  time.Duration
}

// poolTrace carries one Run invocation's tracing state to its workers.
type poolTrace struct {
	tr      *telemetry.Tracer
	parent  telemetry.SpanContext
	startNS int64
}

// runJob executes one job with panic capture and the per-job timeout,
// writing into *out (each index is owned by exactly one worker).
func runJob[T any](ctx context.Context, opts Options, poolStart time.Time, pt poolTrace, i int, job Job[T], out *Result[T]) {
	if m := opts.Metrics; m != nil {
		m.JobsStarted.Inc()
		m.InFlight.Add(1)
		m.QueueWait.Observe(time.Since(poolStart).Seconds()) //maya:wallclock queue-wait metrics
		defer func() {
			m.InFlight.Add(-1)
			m.JobsDone.Inc()
			m.RunTime.Observe(out.Wall.Seconds())
			if out.TimedOut {
				m.Timeouts.Inc()
			}
			var pe *PanicError
			if errors.As(out.Err, &pe) {
				m.Panics.Inc()
			}
			if opts.AllocStats && out.Err == nil {
				m.AllocBytes.Observe(float64(out.AllocBytes))
			}
		}()
	}
	jctx := ctx
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	if pt.tr.Enabled() {
		pickupNS := pt.tr.Clock()
		pt.tr.Complete("job.queue_wait", "runner", pt.parent, uint64(i), pt.startNS, pickupNS-pt.startNS, int64(i))
		sp := pt.tr.Start("job.run", "runner", pt.parent, uint64(i))
		sp.Label = job.Name
		sp.Arg = int64(i)
		// The job's own span identity rides the context so nested pools and
		// engines parent under this job. A timed-out job's span ends at
		// abandonment, not at the straggler's eventual exit.
		jctx = telemetry.ContextWithSpan(jctx, sp.Context())
		defer sp.End()
	}
	// The job runs in its own goroutine so a timeout can abandon it; the
	// buffered channel lets an abandoned job finish and be collected. The
	// job's private stream is derived inside the goroutine that owns it —
	// derivation is a pure function of (seed, index), so where it happens
	// does not matter for determinism, but single ownership does for races.
	ch := make(chan jobOutcome[T], 1)
	start := time.Now() //maya:wallclock per-job wall accounting; never feeds results
	go func() {
		var o jobOutcome[T]
		defer func() {
			if p := recover(); p != nil {
				o.err = &PanicError{Job: job.Name, Value: p, Stack: debug.Stack()}
			}
			o.wall = time.Since(start) //maya:wallclock per-job wall accounting
			ch <- o
		}()
		var before runtime.MemStats
		if opts.AllocStats {
			runtime.ReadMemStats(&before)
		}
		o.value, o.err = job.Run(jctx, rng.NewChild(opts.Seed, uint64(i)))
		if opts.AllocStats {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			o.alloc = after.TotalAlloc - before.TotalAlloc
		}
	}()

	select {
	case o := <-ch:
		out.Value, out.Err, out.AllocBytes, out.Wall = o.value, o.err, o.alloc, o.wall
	case <-jctx.Done():
		out.Err = jctx.Err()
		out.Wall = time.Since(start) //maya:wallclock abandoned-job wall accounting
		out.TimedOut = opts.Timeout > 0 && ctx.Err() == nil
	}
}

// MapN fans an index range [0, n) across the pool and returns the values in
// index order. The first job error (in submission order) is returned; values
// of failed jobs are their zero value.
func MapN[U any](ctx context.Context, opts Options, n int, fn func(ctx context.Context, i int, r *rng.Stream) (U, error)) ([]U, error) {
	jobs := make([]Job[U], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[U]{
			Name: fmt.Sprintf("#%d", i),
			Run: func(ctx context.Context, r *rng.Stream) (U, error) {
				return fn(ctx, i, r)
			},
		}
	}
	results := Run(ctx, opts, jobs)
	values := make([]U, n)
	var firstErr error
	for i, res := range results {
		values[i] = res.Value
		if res.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("job %d: %w", i, res.Err)
		}
	}
	return values, firstErr
}

// Map applies fn to every item across the pool, preserving item order.
func Map[T, U any](ctx context.Context, opts Options, items []T, fn func(ctx context.Context, i int, item T, r *rng.Stream) (U, error)) ([]U, error) {
	return MapN(ctx, opts, len(items), func(ctx context.Context, i int, r *rng.Stream) (U, error) {
		return fn(ctx, i, items[i], r)
	})
}
