// Package dtw implements dynamic time warping, one of the signal-analysis
// techniques the paper reports attackers may use (§VII-B cites Sakoe-Chiba
// style DTW [48]); the evaluation shows DTW cannot identify the true
// information-carrying patterns under Maya GS.
package dtw

import (
	"math"
)

// Distance returns the unconstrained DTW distance between a and b with
// absolute-difference local cost. It runs in O(len(a)*len(b)) time and
// O(min(len(a),len(b))) space.
func Distance(a, b []float64) float64 {
	return WindowedDistance(a, b, -1)
}

// WindowedDistance returns the DTW distance subject to a Sakoe-Chiba band
// of half-width w (w < 0 disables the constraint). Paths are restricted to
// |i - j·len(a)/len(b)| <= w, the standard slope-normalized band.
func WindowedDistance(a, b []float64, w int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == 0 && m == 0 {
			return 0
		}
		return math.Inf(1)
	}
	// Keep b as the inner dimension; two rolling rows.
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	ratio := float64(m) / float64(n)
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		lo, hi := 1, m
		if w >= 0 {
			center := int(float64(i) * ratio)
			if lo < center-w {
				lo = center - w
			}
			if hi > center+w {
				hi = center + w
			}
			if lo < 1 {
				lo = 1
			}
			if hi > m {
				hi = m
			}
			for j := 1; j < lo; j++ {
				cur[j] = math.Inf(1)
			}
			for j := hi + 1; j <= m; j++ {
				cur[j] = math.Inf(1)
			}
		}
		for j := lo; j <= hi; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// NormalizedDistance returns the DTW distance divided by the path-length
// upper bound (len(a)+len(b)), making distances comparable across trace
// lengths.
func NormalizedDistance(a, b []float64) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	return Distance(a, b) / float64(len(a)+len(b))
}

// NearestNeighbor classifies query against labeled reference traces by
// 1-NN under normalized DTW distance, returning the label of the closest
// reference. This is the classifier used in the Fig 11 "other techniques"
// analysis. refs maps label → example traces.
func NearestNeighbor(query []float64, refs map[int][][]float64) int {
	bestLabel, bestDist := -1, math.Inf(1)
	// Iterate labels in deterministic order.
	maxLabel := -1
	for l := range refs {
		if l > maxLabel {
			maxLabel = l
		}
	}
	for l := 0; l <= maxLabel; l++ {
		for _, ref := range refs[l] {
			if d := NormalizedDistance(query, ref); d < bestDist {
				bestDist, bestLabel = d, l
			}
		}
	}
	return bestLabel
}
