package dtw

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/maya-defense/maya/internal/rng"
)

func TestIdenticalSeriesZero(t *testing.T) {
	a := []float64{1, 3, 2, 5, 4}
	if d := Distance(a, a); d != 0 {
		t.Fatalf("self distance=%g", d)
	}
}

func TestKnownSmallCase(t *testing.T) {
	a := []float64{0, 0, 1, 1}
	b := []float64{0, 1, 1}
	// Optimal alignment matches 0s and 1s exactly: cost 0.
	if d := Distance(a, b); d != 0 {
		t.Fatalf("distance=%g want 0", d)
	}
	c := []float64{0, 2}
	// a=[0], c=[0,2]: align 0-0 then 0-2 → 2.
	if d := Distance([]float64{0}, c); d != 2 {
		t.Fatalf("distance=%g want 2", d)
	}
}

func TestSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, m := 5+r.Intn(20), 5+r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := range b {
			b[i] = r.NormFloat64()
		}
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeShiftToleration(t *testing.T) {
	// DTW must rate a time-shifted copy as much closer than a different shape.
	n := 100
	base := make([]float64, n)
	shifted := make([]float64, n)
	other := make([]float64, n)
	for i := 0; i < n; i++ {
		base[i] = math.Sin(2 * math.Pi * float64(i) / 25)
		shifted[i] = math.Sin(2 * math.Pi * float64(i+4) / 25)
		other[i] = float64(i % 7) // sawtooth — different shape
	}
	ds := Distance(base, shifted)
	do := Distance(base, other)
	if ds >= do {
		t.Fatalf("shifted copy (%g) not closer than different shape (%g)", ds, do)
	}
}

func TestWindowedMatchesUnconstrainedForWideBand(t *testing.T) {
	r := rng.New(9)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	if d1, d2 := Distance(a, b), WindowedDistance(a, b, 40); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("wide band mismatch: %g vs %g", d1, d2)
	}
}

func TestWindowNarrowingIncreasesDistance(t *testing.T) {
	r := rng.New(10)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	wide := WindowedDistance(a, b, 60)
	narrow := WindowedDistance(a, b, 2)
	if narrow < wide-1e-9 {
		t.Fatalf("narrow band found better path: %g < %g", narrow, wide)
	}
}

func TestEmptyInputs(t *testing.T) {
	if d := Distance(nil, nil); d != 0 {
		t.Fatalf("empty-empty=%g", d)
	}
	if d := Distance([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Fatalf("nonempty-empty=%g want +inf", d)
	}
}

func TestNearestNeighbor(t *testing.T) {
	mkSin := func(freq float64, phase int) []float64 {
		x := make([]float64, 80)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * freq * float64(i+phase) / 80)
		}
		return x
	}
	refs := map[int][][]float64{
		0: {mkSin(2, 0), mkSin(2, 3)},
		1: {mkSin(7, 0), mkSin(7, 2)},
	}
	if got := NearestNeighbor(mkSin(2, 5), refs); got != 0 {
		t.Fatalf("classified as %d want 0", got)
	}
	if got := NearestNeighbor(mkSin(7, 1), refs); got != 1 {
		t.Fatalf("classified as %d want 1", got)
	}
}

func TestNormalizedDistanceScale(t *testing.T) {
	a := []float64{0, 1, 0, 1}
	b := []float64{1, 0, 1, 0}
	d := NormalizedDistance(a, b)
	if d < 0 || d > 1 {
		t.Fatalf("normalized distance out of expected band: %g", d)
	}
}
