// Package defense implements the five designs compared in the paper's
// evaluation (Table V) and the trace-collection harness the attacks run
// against. Each design is a factory of sim.Policy values: policies are
// stateful, so every run gets a fresh one seeded with that run's secret.
package defense

import (
	"fmt"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
)

// Kind enumerates the Table V designs.
type Kind int

const (
	// Baseline is the high-performance insecure system without added noise.
	Baseline Kind = iota
	// NoisyBaseline fixes a random DVFS/idle/balloon level per run.
	NoisyBaseline
	// RandomInputs re-draws DVFS/idle/balloon randomly at runtime.
	RandomInputs
	// MayaConstant is Maya's formal controller with a constant mask.
	MayaConstant
	// MayaGS is the proposal: formal controller + Gaussian Sinusoid mask.
	MayaGS
)

// Kinds lists all designs in Table V order.
var Kinds = []Kind{Baseline, NoisyBaseline, RandomInputs, MayaConstant, MayaGS}

// KindNames lists the short identifiers KindByName accepts, in Kinds order.
var KindNames = []string{"baseline", "noisy", "random", "constant", "gs"}

// KindByName resolves the short command-line/API identifiers used by
// mayactl's -defense flag and mayad's admission API.
func KindByName(name string) (Kind, bool) {
	switch name {
	case "baseline":
		return Baseline, true
	case "noisy":
		return NoisyBaseline, true
	case "random":
		return RandomInputs, true
	case "constant":
		return MayaConstant, true
	case "gs":
		return MayaGS, true
	}
	return 0, false
}

// IsMaya reports whether the kind runs the formal controller (and so
// supports guards, flight recording, and mask targets).
func (k Kind) IsMaya() bool { return k == MayaConstant || k == MayaGS }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case NoisyBaseline:
		return "Noisy Baseline"
	case RandomInputs:
		return "Random Inputs"
	case MayaConstant:
		return "Maya Constant"
	case MayaGS:
		return "Maya GS"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Design builds per-run policies of one kind for one machine.
type Design struct {
	kind Kind
	cfg  sim.Config
	// art is the synthesized Maya artifact; required for the Maya kinds.
	art *core.Design
	// periodTicks is the control period.
	periodTicks int
}

// NewDesign creates a design. art may be nil for the non-Maya kinds.
func NewDesign(kind Kind, cfg sim.Config, art *core.Design, periodTicks int) *Design {
	if (kind == MayaConstant || kind == MayaGS) && art == nil {
		panic("defense: Maya designs need a synthesized core.Design")
	}
	if periodTicks <= 0 {
		periodTicks = 20
	}
	return &Design{kind: kind, cfg: cfg, art: art, periodTicks: periodTicks}
}

// Kind returns the design kind.
func (d *Design) Kind() Kind { return d.kind }

// Name returns the Table V name.
func (d *Design) Name() string { return d.kind.String() }

// Policy returns a fresh policy for one run. runSeed is the run's secret:
// it seeds the design's random draws (noise levels, random input schedule,
// mask parameters). The same seed reproduces the same defense behaviour.
func (d *Design) Policy(runSeed uint64) sim.Policy {
	switch d.kind {
	case Baseline:
		return sim.NewBaselinePolicy(d.cfg)
	case NoisyBaseline:
		return newNoisyBaseline(d.cfg, runSeed)
	case RandomInputs:
		return newRandomInputs(d.cfg, runSeed)
	case MayaConstant:
		eng := core.NewConstantEngine(d.art, d.cfg)
		eng.Reset(runSeed)
		return eng
	case MayaGS:
		eng := core.NewGSEngine(d.art, d.cfg, d.periodTicks, runSeed)
		eng.Reset(runSeed)
		return eng
	default:
		panic("defense: unknown kind")
	}
}

// noisyBaseline draws one random setting per run and holds it for the whole
// execution (Table V: "Each run has a new DVFS, idle and balloon level").
type noisyBaseline struct {
	in sim.Inputs
}

func newNoisyBaseline(cfg sim.Config, seed uint64) *noisyBaseline {
	r := rng.NewNamed(seed, "defense/noisy")
	k := cfg.Knobs()
	d, i, b := k.FromNorms([3]float64{r.Float64(), r.Float64(), r.Float64()})
	return &noisyBaseline{in: sim.Inputs{FreqGHz: d, Idle: i, Balloon: b}}
}

// Decide implements sim.Policy.
func (p *noisyBaseline) Decide(int, float64) sim.Inputs { return p.in }

// randomInputs re-draws all settings at runtime, each held for a random
// duration (Table V: "DVFS, idle, and balloon levels change randomly at
// runtime"). This is the strongest non-formal defense the paper tests —
// and the MLP still identifies applications through it (Fig 6a).
type randomInputs struct {
	cfg  sim.Config
	r    *rng.Stream
	hold int
	cur  sim.Inputs
}

func newRandomInputs(cfg sim.Config, seed uint64) *randomInputs {
	return &randomInputs{cfg: cfg, r: rng.NewNamed(seed, "defense/random")}
}

// Decide implements sim.Policy.
func (p *randomInputs) Decide(int, float64) sim.Inputs {
	if p.hold <= 0 {
		k := p.cfg.Knobs()
		d, i, b := k.FromNorms([3]float64{p.r.Float64(), p.r.Float64(), p.r.Float64()})
		p.cur = sim.Inputs{FreqGHz: d, Idle: i, Balloon: b}
		// Settings persist 0.1–1 s. The frequent re-draws average out over
		// an analysis window, so the application's own level and phase
		// structure shine through the noise — which is why the MLP sees
		// through this defense (§VII-A: "randomly changing the DVFS, idle,
		// and balloon levels does not hide the application's inherent
		// activity").
		p.hold = p.r.IntRange(5, 50)
	}
	p.hold--
	return p.cur
}
