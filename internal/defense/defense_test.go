package defense

import (
	"context"
	"math"
	"sync"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/trace"
)

var (
	artMu   sync.Mutex
	artSys1 *core.Design
)

func sys1Art(t *testing.T) *core.Design {
	t.Helper()
	artMu.Lock()
	defer artMu.Unlock()
	if artSys1 == nil {
		d, err := core.DesignFor(sim.Sys1(), core.DefaultDesignOptions())
		if err != nil {
			t.Fatal(err)
		}
		artSys1 = d
	}
	return artSys1
}

func TestKindNames(t *testing.T) {
	want := []string{"Baseline", "Noisy Baseline", "Random Inputs", "Maya Constant", "Maya GS"}
	for i, k := range Kinds {
		if k.String() != want[i] {
			t.Fatalf("kind %d name %q want %q", i, k.String(), want[i])
		}
	}
}

func TestMayaDesignsRequireArtifact(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without artifact")
		}
	}()
	NewDesign(MayaGS, sim.Sys1(), nil, 20)
}

func TestNoisyBaselineFixedPerRun(t *testing.T) {
	cfg := sim.Sys1()
	d := NewDesign(NoisyBaseline, cfg, nil, 20)
	p := d.Policy(7)
	first := p.Decide(0, 10)
	for i := 1; i < 100; i++ {
		if got := p.Decide(i, 15); got != first {
			t.Fatal("noisy baseline changed inputs mid-run")
		}
	}
	// Different run seeds give different settings.
	q := d.Policy(8)
	if q.Decide(0, 10) == first {
		t.Fatal("noisy baseline identical across runs")
	}
}

func TestRandomInputsChangesAtRuntime(t *testing.T) {
	cfg := sim.Sys1()
	d := NewDesign(RandomInputs, cfg, nil, 20)
	p := d.Policy(3)
	seen := map[sim.Inputs]bool{}
	for i := 0; i < 500; i++ {
		seen[p.Decide(i, 12)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random inputs barely changed: %d distinct settings", len(seen))
	}
}

func TestCollectShapesAndDeterminism(t *testing.T) {
	cfg := sim.Sys1()
	spec := CollectSpec{
		Cfg:          cfg,
		Design:       NewDesign(Baseline, cfg, nil, 20),
		Classes:      AppClasses(0.02)[:3],
		RunsPerClass: 2,
		MaxTicks:     3000,
		Seed:         5,
	}
	ds, stats := Collect(context.Background(), spec)
	if len(ds.Traces) != 6 {
		t.Fatalf("traces=%d want 6", len(ds.Traces))
	}
	if len(stats) != 6 {
		t.Fatalf("stats=%d", len(stats))
	}
	// 3000 ticks at 20-tick sampling → 150 samples per trace.
	for _, tr := range ds.Traces {
		if len(tr.Samples) != 150 {
			t.Fatalf("trace has %d samples want 150", len(tr.Samples))
		}
		if tr.PeriodMS != 20 {
			t.Fatalf("period %g", tr.PeriodMS)
		}
	}
	// Determinism across invocations (parallel workers must not matter).
	ds2, _ := Collect(context.Background(), spec)
	for i := range ds.Traces {
		for j := range ds.Traces[i].Samples {
			if ds.Traces[i].Samples[j] != ds2.Traces[i].Samples[j] {
				t.Fatal("collection not deterministic")
			}
		}
	}
}

func TestCollectOutletSensor(t *testing.T) {
	cfg := sim.Sys3()
	spec := CollectSpec{
		Cfg:               cfg,
		Design:            NewDesign(Baseline, cfg, nil, 20),
		Classes:           PageClasses(0.3)[:2],
		RunsPerClass:      1,
		MaxTicks:          5000,
		AttackPeriodTicks: 50, // 50 ms outlet sampling
		Outlet:            true,
		Seed:              9,
	}
	ds, _ := Collect(context.Background(), spec)
	for _, tr := range ds.Traces {
		if tr.PeriodMS != 50 {
			t.Fatalf("outlet period %g want 50", tr.PeriodMS)
		}
		// Wall power includes rest-of-system: must exceed core-only levels.
		if signal.Mean(tr.Samples) < cfg.RestOfSystemW {
			t.Fatalf("outlet trace mean %g below rest-of-system %g",
				signal.Mean(tr.Samples), cfg.RestOfSystemW)
		}
	}
}

func TestDefensesSeparateInPower(t *testing.T) {
	// Sanity for Fig 14's direction: defenses lower average power and raise
	// execution time relative to Baseline.
	cfg := sim.Sys1()
	art := sys1Art(t)
	// Representative scale: the parallel phase must dominate, as in the
	// paper's native-input runs, for the energy-parity property to apply.
	classes := AppClasses(0.3)[:1]
	run := func(k Kind) RunStats {
		spec := CollectSpec{
			Cfg:          cfg,
			Design:       NewDesign(k, cfg, art, 20),
			Classes:      classes,
			RunsPerClass: 1,
			MaxTicks:     200000,
			StopOnFinish: true,
			Seed:         11,
		}
		_, stats := Collect(context.Background(), spec)
		var agg RunStats
		for _, s := range stats {
			if !s.Finished {
				t.Fatalf("%v run did not finish", k)
			}
			agg.Seconds += s.Seconds
			agg.EnergyJ += s.EnergyJ
		}
		agg.Seconds /= float64(len(stats))
		agg.EnergyJ /= float64(len(stats))
		return agg
	}
	base := run(Baseline)
	gs := run(MayaGS)
	if gs.Seconds <= base.Seconds {
		t.Fatalf("Maya GS should slow execution: %g vs %g s", gs.Seconds, base.Seconds)
	}
	// §VII-E: Maya GS total energy ≈ Baseline energy (lower power × longer
	// time); require the ratio within a generous band.
	ratio := gs.EnergyJ / base.EnergyJ
	if ratio < 0.5 || ratio > 2.2 {
		t.Fatalf("GS/Baseline energy ratio %g outside plausible band", ratio)
	}
}

func TestMayaGSTracesFollowMaskNotApp(t *testing.T) {
	// Attack-surface view: two GS-protected runs of the same app are
	// mutually uncorrelated (each has its own mask), which is the property
	// that defeats trace averaging (§VII-B).
	cfg := sim.Sys1()
	art := sys1Art(t)
	spec := CollectSpec{
		Cfg:          cfg,
		Design:       NewDesign(MayaGS, cfg, art, 20),
		Classes:      AppClasses(0.3)[:1],
		RunsPerClass: 2,
		MaxTicks:     30000,
		Seed:         13,
	}
	ds, _ := Collect(context.Background(), spec)
	a, b := ds.Traces[0].Samples, ds.Traces[1].Samples
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if c := math.Abs(signal.Pearson(a[:n], b[:n])); c > 0.3 {
		t.Fatalf("two GS runs correlate: %g", c)
	}
}

func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	art := sys1Art(t)
	collect := func(workers int) (*trace.Dataset, []RunStats) {
		return Collect(context.Background(), CollectSpec{
			Cfg:          sim.Sys1(),
			Design:       NewDesign(MayaGS, sim.Sys1(), art, 20),
			Classes:      AppClasses(0.12)[:3],
			RunsPerClass: 3,
			MaxTicks:     3000,
			WarmupTicks:  500,
			Seed:         77,
			Workers:      workers,
		})
	}
	ds1, st1 := collect(1)
	for _, workers := range []int{4, 9} {
		dsN, stN := collect(workers)
		if len(dsN.Traces) != len(ds1.Traces) {
			t.Fatalf("workers=%d: %d traces vs %d serial", workers, len(dsN.Traces), len(ds1.Traces))
		}
		for i := range ds1.Traces {
			a, b := ds1.Traces[i], dsN.Traces[i]
			if a.Label != b.Label || len(a.Samples) != len(b.Samples) {
				t.Fatalf("workers=%d: trace %d shape mismatch", workers, i)
			}
			for j := range a.Samples {
				if a.Samples[j] != b.Samples[j] {
					t.Fatalf("workers=%d: trace %d sample %d differs: %v vs %v",
						workers, i, j, a.Samples[j], b.Samples[j])
				}
			}
		}
		for i := range st1 {
			if st1[i] != stN[i] {
				t.Fatalf("workers=%d: run stats %d differ: %+v vs %+v", workers, i, st1[i], stN[i])
			}
		}
	}
}
