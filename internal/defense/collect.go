package defense

import (
	"context"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/trace"
	"github.com/maya-defense/maya/internal/workload"
)

// Class is one label in an attack experiment: a name and a workload
// factory producing a fresh instance per run.
type Class struct {
	Name string
	New  func() workload.Workload
}

// AppClasses builds the 11-application class set (attack 1), scaled.
func AppClasses(scale float64) []Class {
	out := make([]Class, len(workload.AppNames))
	for i, n := range workload.AppNames {
		name := n
		out[i] = Class{Name: name, New: func() workload.Workload {
			return workload.NewApp(name).Scale(scale)
		}}
	}
	return out
}

// VideoClasses builds the 4-video class set (attack 2), scaled.
func VideoClasses(scale float64) []Class {
	out := make([]Class, len(workload.VideoNames))
	for i, n := range workload.VideoNames {
		name := n
		out[i] = Class{Name: name, New: func() workload.Workload {
			return workload.NewVideo(name).Scale(scale)
		}}
	}
	return out
}

// PageClasses builds the 7-webpage class set (attack 3), scaled.
func PageClasses(scale float64) []Class {
	out := make([]Class, len(workload.PageNames))
	for i, n := range workload.PageNames {
		name := n
		out[i] = Class{Name: name, New: func() workload.Workload {
			return workload.NewPage(name).Scale(scale)
		}}
	}
	return out
}

// InstrClasses builds the 3-instruction class set (PLATYPUS, Fig 15).
func InstrClasses(work float64) []Class {
	out := make([]Class, len(workload.InstrNames))
	for i, n := range workload.InstrNames {
		name := n
		out[i] = Class{Name: name, New: func() workload.Workload {
			return workload.NewInstrLoop(name, work)
		}}
	}
	return out
}

// RunStats summarizes one run for the overhead analysis (Fig 14).
type RunStats struct {
	Label     int
	Seconds   float64 // execution time until completion (or the cap)
	EnergyJ   float64
	AvgPowerW float64
	Finished  bool
}

// CollectSpec configures attacker-visible trace collection under a defense.
type CollectSpec struct {
	Cfg    sim.Config
	Design *Design
	// Classes are the labels the attacker wants to distinguish.
	Classes []Class
	// RunsPerClass is the number of recorded executions per label (the
	// paper records 1,000 traces per application; tests use fewer).
	RunsPerClass int
	// MaxTicks bounds each run.
	MaxTicks int
	// StopOnFinish ends runs at workload completion (used for overhead
	// accounting); attack traces usually record a fixed window.
	StopOnFinish bool
	// AttackPeriodTicks is the attacker's sampling interval in ticks
	// (20 = 20 ms RAPL; 50 = 50 ms outlet).
	AttackPeriodTicks int
	// Outlet selects the AC-outlet sensor instead of RAPL counters.
	Outlet bool
	// Seed derives all per-run secrets.
	Seed uint64
	// ControlPeriodTicks is the defense period (default 20).
	ControlPeriodTicks int
	// WarmupTicks runs the defense on the idle machine before the workload
	// starts and before recording begins. Maya is deployed as an always-on
	// privileged service, so an attacker never observes the controller's
	// cold start — only the app starting under an already-settled defense.
	WarmupTicks int
	// Workers bounds the collection's parallelism (<= 0: GOMAXPROCS).
	// Results are identical for every worker count: each run's seeds are a
	// pure function of (Seed, label, run).
	Workers int
	// Metrics, when non-nil, receives a per-run summary of every recorded
	// execution. The summaries are recorded in submission order after the
	// parallel fan-out completes, so their content is deterministic for a
	// fixed spec (everything observed is simulated-domain data).
	Metrics *CollectMetrics
	// SensorMetrics, when non-nil, instruments every run's attacker-side
	// sensor (the runs share the instance; counters aggregate).
	SensorMetrics *sim.SensorMetrics
	// PoolMetrics, when non-nil, instruments the collection's worker pool.
	PoolMetrics *runner.Metrics
}

// CollectMetrics aggregates per-run summaries of a collection sweep.
type CollectMetrics struct {
	// Runs counts recorded executions; Finished those that completed their
	// workload within the recording window.
	Runs     *telemetry.Counter
	Finished *telemetry.Counter
	// RunSeconds, EnergyJ, and AvgPowerW observe each run's simulated
	// duration, energy, and mean true power.
	RunSeconds *telemetry.Histogram
	EnergyJ    *telemetry.Histogram
	AvgPowerW  *telemetry.Histogram
}

// NewCollectMetrics registers the collection instruments in reg.
func NewCollectMetrics(reg *telemetry.Registry) *CollectMetrics {
	return &CollectMetrics{
		Runs:       reg.Counter("collect_runs_total", "recorded executions"),
		Finished:   reg.Counter("collect_runs_finished_total", "runs whose workload completed in the window"),
		RunSeconds: reg.Histogram("collect_run_seconds", "simulated seconds per run", telemetry.ExpBuckets(0.25, 2, 12)),
		EnergyJ:    reg.Histogram("collect_run_energy_j", "true core energy per run", telemetry.ExpBuckets(1, 2, 14)),
		AvgPowerW:  reg.Histogram("collect_run_avg_power_w", "mean true core power per run", telemetry.LinearBuckets(5, 5, 40)),
	}
}

// Collect runs the experiment and returns the attacker's dataset along with
// per-run stats. Runs execute in parallel across CPUs; results are
// deterministic for a given spec because every run derives its own seeds.
// ctx bounds the sweep (cancellation abandons unstarted runs) and carries
// the parent span when the process-wide tracer is active.
func Collect(ctx context.Context, spec CollectSpec) (*trace.Dataset, []RunStats) {
	if spec.AttackPeriodTicks <= 0 {
		spec.AttackPeriodTicks = 20
	}
	if spec.ControlPeriodTicks <= 0 {
		spec.ControlPeriodTicks = 20
	}
	if spec.RunsPerClass <= 0 {
		spec.RunsPerClass = 1
	}
	if spec.MaxTicks <= 0 {
		spec.MaxTicks = 60000
	}

	names := make([]string, len(spec.Classes))
	for i, c := range spec.Classes {
		names[i] = c.Name
	}
	ds := &trace.Dataset{ClassNames: names}

	// Fan the (label, run) grid across the pool. Each run derives its own
	// seeds from (Seed, label, run) below, so the runner's stream is unused
	// and results are byte-identical at any worker count.
	n := len(spec.Classes) * spec.RunsPerClass
	results, _ := runner.MapN(ctx, runner.Options{Workers: spec.Workers, Metrics: spec.PoolMetrics}, n,
		func(jctx context.Context, i int, _ *rng.Stream) (oneResult, error) {
			return runOne(jctx, spec, i/spec.RunsPerClass, i%spec.RunsPerClass), nil
		})

	periodMS := float64(spec.AttackPeriodTicks) * spec.Cfg.TickSeconds * 1000
	stats := make([]RunStats, 0, len(results))
	for i, r := range results {
		ds.Add(i/spec.RunsPerClass, periodMS, r.samples)
		stats = append(stats, r.stats)
		if m := spec.Metrics; m != nil {
			m.Runs.Inc()
			if r.stats.Finished {
				m.Finished.Inc()
			}
			m.RunSeconds.Observe(r.stats.Seconds)
			m.EnergyJ.Observe(r.stats.EnergyJ)
			m.AvgPowerW.Observe(r.stats.AvgPowerW)
		}
	}
	return ds, stats
}

type oneResult struct {
	samples []float64
	stats   RunStats
}

// runOne executes a single labeled run under the defense.
func runOne(ctx context.Context, spec CollectSpec, label, run int) oneResult {
	// Per-run seeds: distinct streams for machine noise, workload jitter,
	// and the defense's secret draws.
	base := spec.Seed + uint64(label)*1_000_003 + uint64(run)*7_919
	m := sim.NewMachine(spec.Cfg, base+1)
	w := spec.Classes[label].New()
	w.Reset(base + 2)
	pol := spec.Design.Policy(base + 3)
	// When the process-wide tracer is on, nest this run's per-tick phase
	// spans under the runner job span riding the context. Tracing observes
	// only; the engine's decisions and the recorded samples are unchanged.
	if tr := telemetry.ActiveTrace(); tr.Enabled() {
		if eng, ok := pol.(*core.Engine); ok {
			eng.SetTrace(tr, telemetry.SpanFromContext(ctx))
		}
	}

	var sensor sim.PowerSensor
	if spec.Outlet {
		s := sim.NewOutletSensor(spec.Cfg, base+4)
		s.Metrics = spec.SensorMetrics
		sensor = s
	} else {
		s := sim.NewRAPLSensor(m)
		s.Metrics = spec.SensorMetrics
		sensor = s
	}
	att := &sim.Sampler{Sensor: sensor, PeriodTicks: spec.AttackPeriodTicks}
	res := sim.Run(m, w, pol, sim.RunSpec{
		ControlPeriodTicks: spec.ControlPeriodTicks,
		MaxTicks:           spec.MaxTicks,
		StopOnFinish:       spec.StopOnFinish,
		Samplers:           []*sim.Sampler{att},
		WarmupTicks:        spec.WarmupTicks,
	})
	seconds := res.Seconds
	if res.FinishedTick >= 0 {
		seconds = float64(res.FinishedTick) * spec.Cfg.TickSeconds
	}
	return oneResult{
		samples: att.Samples,
		stats: RunStats{
			Label:     label,
			Seconds:   seconds,
			EnergyJ:   res.EnergyJ,
			AvgPowerW: signal.Mean(res.TickPowerW),
			Finished:  res.FinishedTick >= 0,
		},
	}
}
