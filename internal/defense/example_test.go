package defense_test

import (
	"context"
	"fmt"

	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/sim"
)

// Example collects a small attacker-visible dataset under the (insecure)
// baseline — the front half of every attack experiment.
func Example() {
	cfg := sim.Sys1()
	classes := defense.AppClasses(0.05)[:2] // blackscholes, bodytrack — tiny
	ds, stats := defense.Collect(context.Background(), defense.CollectSpec{
		Cfg:          cfg,
		Design:       defense.NewDesign(defense.Baseline, cfg, nil, 20),
		Classes:      classes,
		RunsPerClass: 3,
		MaxTicks:     2000,
		Seed:         1,
	})
	fmt.Println("traces:", len(ds.Traces))
	fmt.Println("runs accounted:", len(stats))
	fmt.Println("samples per trace:", len(ds.Traces[0].Samples))
	// Output:
	// traces: 6
	// runs accounted: 6
	// samples per trace: 100
}
