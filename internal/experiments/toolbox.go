package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/maya-defense/maya/internal/attack"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/trace"
)

// ToolboxResult runs the full §III attacker toolbox — "machine learning,
// signal processing, and statistics" — against one weak defense and against
// Maya GS, on the same captured datasets. It generalizes the paper's
// MLP-only evaluation and surfaces which analysis styles the defense does
// and does not silence.
type ToolboxResult struct {
	Chance    float64
	Attackers []string
	// WeakAcc / GSAcc hold per-attacker accuracies against Random Inputs
	// and Maya GS respectively.
	WeakAcc []float64
	GSAcc   []float64
}

// ID implements Result.
func (r *ToolboxResult) ID() string { return "Attacker toolbox (§III)" }

// Toolbox runs MLP, template, kNN, and spectrogram attackers on shared
// Sys1 datasets (5 diverse app classes).
func Toolbox(ctx context.Context, sc Scale, seed uint64) (*ToolboxResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	all := defense.AppClasses(sc.WorkloadScale)
	classes := []defense.Class{all[0], all[2], all[5], all[6], all[9]}

	collect := func(kind defense.Kind, off uint64) *trace.Dataset {
		ds, _ := defense.Collect(ctx, defense.CollectSpec{
			Cfg:          cfg,
			Design:       defense.NewDesign(kind, cfg, art, 20),
			Classes:      classes,
			RunsPerClass: sc.RunsPerClass,
			MaxTicks:     sc.TraceTicks,
			WarmupTicks:  sc.WarmupTicks,
			Seed:         seed + off,
		})
		return ds
	}
	weak := collect(defense.RandomInputs, 11)
	gs := collect(defense.MayaGS, 22)

	winSpec := attack.DefaultSpec()
	winSpec.WindowLen = sc.TraceTicks / 20 / 5
	winSpec.Train.Epochs = sc.Epochs
	sgSpec := attack.SpectrogramSpec()
	sgSpec.WindowLen = sc.TraceTicks / 20
	sgSpec.Train.Epochs = sc.Epochs

	type attacker struct {
		name string
		run  func(ds *trace.Dataset) (float64, error)
	}
	attackers := []attacker{
		{"MLP (windows)", func(ds *trace.Dataset) (float64, error) {
			r, err := attack.Run(ds, winSpec)
			if err != nil {
				return 0, err
			}
			return r.AverageAccuracy, nil
		}},
		{"templates", func(ds *trace.Dataset) (float64, error) {
			return attack.RunTemplate(ds, winSpec)
		}},
		{"kNN (k=5)", func(ds *trace.Dataset) (float64, error) {
			return attack.RunKNN(ds, winSpec, 5)
		}},
		{"MLP (spectrogram)", func(ds *trace.Dataset) (float64, error) {
			r, err := attack.Run(ds, sgSpec)
			if err != nil {
				return 0, err
			}
			return r.AverageAccuracy, nil
		}},
	}
	res := &ToolboxResult{Chance: 1 / float64(len(classes))}
	for _, a := range attackers {
		wa, err := a.run(weak)
		if err != nil {
			return nil, fmt.Errorf("toolbox %s vs random inputs: %w", a.name, err)
		}
		ga, err := a.run(gs)
		if err != nil {
			return nil, fmt.Errorf("toolbox %s vs GS: %w", a.name, err)
		}
		res.Attackers = append(res.Attackers, a.name)
		res.WeakAcc = append(res.WeakAcc, wa)
		res.GSAcc = append(res.GSAcc, ga)
	}
	return res, nil
}

// Render implements Result.
func (r *ToolboxResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-attacker accuracy, 5 app classes (chance %.0f%%)\n", r.ID(), 100*r.Chance)
	fmt.Fprintf(&b, "%-20s %15s %10s\n", "attacker", "random inputs", "Maya GS")
	for i, a := range r.Attackers {
		fmt.Fprintf(&b, "%-20s %14.0f%% %9.0f%%\n", a, 100*r.WeakAcc[i], 100*r.GSAcc[i])
	}
	b.WriteString("expected: every attacker beats chance against the weak defense; against\n")
	b.WriteString("Maya GS the amplitude-domain attackers (windows, templates, kNN) sit at\n")
	b.WriteString("the chance floor, while the spectrogram attacker retains the documented\n")
	b.WriteString("actuation-granularity residual (see EXPERIMENTS.md).\n")
	return b.String()
}
