package experiments

import (
	"context"
	"fmt"
	"io"
	"regexp"
	"strings"
	"time"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
)

// SuiteEntry is one experiment of the full evaluation sweep.
type SuiteEntry struct {
	// Name selects the entry from the CLI (-run regexp).
	Name string
	// Run executes the experiment at the given scale and base seed. ctx is
	// the suite job's context: cancellation and the per-entry timeout
	// propagate through it into the entry's nested collection sweeps, and
	// it carries the entry's span identity when tracing is active. Results
	// are a function of (sc, seed) only.
	Run func(ctx context.Context, sc Scale, seed uint64) (Result, error)
}

// Suite returns every experiment of the paper's evaluation in report order:
// figure pipelines, the extension analyses, and the ablations. The list is
// shared by cmd/experiments, the benchmarks, and the determinism tests.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{"fig3", func(ctx context.Context, sc Scale, seed uint64) (Result, error) {
			return Fig3(sim.Sys1(), sc, seed)
		}},
		{"fig4", func(ctx context.Context, sc Scale, seed uint64) (Result, error) {
			d, err := DesignFor(sim.Sys1())
			if err != nil {
				return nil, err
			}
			return Fig4(d.Band, 50, 6000, seed), nil
		}},
		{"table1", func(ctx context.Context, sc Scale, seed uint64) (Result, error) {
			return TableI(ctx, sc, seed)
		}},
		{"fig6", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig6(ctx, sc, seed) }},
		{"fig7", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig7(ctx, sc, seed) }},
		{"fig8", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig8(ctx, sc, seed) }},
		{"fig9", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig9(ctx, sc, seed) }},
		{"fig10", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig10(ctx, sc, seed) }},
		{"fig11", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig11(ctx, sc, seed) }},
		{"fig12", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig12(ctx, sc, seed) }},
		{"fig13", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig13(ctx, sc, seed) }},
		{"fig14", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig14(ctx, sc, seed) }},
		{"fig15", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Fig15(ctx, sc, seed) }},
		{"dtw", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return DTWAnalysis(ctx, sc, seed) }},
		{"covert", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return CovertChannel(sc, seed) }},
		{"thermal", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Thermal(sc, seed) }},
		{"toolbox", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return Toolbox(ctx, sc, seed) }},
		{"faults", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return FaultSweep(sc, seed) }},
		{"ablation-masks", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return AblationMasks(ctx, sc, seed) }},
		{"ablation-guardband", func(ctx context.Context, sc Scale, seed uint64) (Result, error) {
			return AblationGuardband(ctx, sc, seed)
		}},
		{"ablation-nhold", func(ctx context.Context, sc Scale, seed uint64) (Result, error) { return AblationNhold(ctx, sc, seed) }},
		{"ablation-actuators", func(ctx context.Context, sc Scale, seed uint64) (Result, error) {
			return AblationActuators(ctx, sc, seed)
		}},
	}
}

// FilterSuite keeps entries whose names match the regexp (nil keeps all).
func FilterSuite(entries []SuiteEntry, filter *regexp.Regexp) []SuiteEntry {
	if filter == nil {
		return entries
	}
	var out []SuiteEntry
	for _, e := range entries {
		if filter.MatchString(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

// SuiteOutcome couples one entry's result with the runner's accounting.
type SuiteOutcome struct {
	Name string
	Res  Result
	Err  error
	// Wall is the experiment's wall-clock duration.
	Wall time.Duration
	// AllocBytes is the experiment's approximate heap-allocation volume
	// (upper bound when jobs overlap; see runner.Options.AllocStats).
	AllocBytes uint64
	// TimedOut marks entries that exceeded the per-job timeout.
	TimedOut bool
	// Cached marks results replayed from the experiment cache instead of
	// executed (RunSuiteCached); Wall and AllocBytes are zero for them.
	Cached bool
}

// RunSuite executes the entries across opts.Workers workers and returns
// outcomes in suite order. Every entry receives the same (sc, seed) it
// would receive when run serially, so the rendered results are identical
// for any worker count; only the accounting fields vary run to run.
func RunSuite(ctx context.Context, entries []SuiteEntry, sc Scale, seed uint64, opts runner.Options) []SuiteOutcome {
	opts.Seed = seed
	opts.AllocStats = true
	jobs := make([]runner.Job[Result], len(entries))
	for i, e := range entries {
		e := e
		jobs[i] = runner.Job[Result]{
			Name: e.Name,
			// The runner-provided stream is deliberately unused: entries
			// derive their randomness from the base seed so that serial and
			// parallel sweeps are bit-for-bit identical. The job's ctx IS
			// used: it carries cancellation, the per-entry timeout, and the
			// job's span identity into the entry's nested sweeps.
			Run: func(ctx context.Context, _ *rng.Stream) (Result, error) {
				return e.Run(ctx, sc, seed)
			},
		}
	}
	results := runner.Run(ctx, opts, jobs)
	outs := make([]SuiteOutcome, len(results))
	for i, r := range results {
		outs[i] = SuiteOutcome{
			Name: r.Name, Res: r.Value, Err: r.Err,
			Wall: r.Wall, AllocBytes: r.AllocBytes, TimedOut: r.TimedOut,
		}
	}
	return outs
}

// ReportOptions selects the opt-in report sections appended after the
// deterministic experiment body.
type ReportOptions struct {
	// Timing appends the per-job wall-clock/allocation accounting section
	// (nondeterministic run to run).
	Timing bool
	// Telemetry, when non-nil, appends the registry's instruments as a
	// section (Prometheus text exposition; nondeterministic where the
	// instruments record wall-clock quantities).
	Telemetry *telemetry.Registry
	// AnnotateCached appends " [cached]" to the section header of entries
	// replayed from the experiment cache. Off by default so cached and
	// fresh reports stay byte-identical — the property the CI
	// figure-regeneration gate diffs for.
	AnnotateCached bool
}

// WriteReport renders outcomes as the EXPERIMENTS.md-style report. The body
// is deterministic — no timestamps or wall-clock values — so a sweep's
// output is byte-identical for any worker count and can be diffed across
// runs. With timing set, a (nondeterministic) accounting section listing
// per-job wall-clock and allocation volume is appended.
func WriteReport(w io.Writer, sc Scale, seed uint64, outs []SuiteOutcome, timing bool) error {
	return WriteReportOpts(w, sc, seed, outs, ReportOptions{Timing: timing})
}

// WriteReportOpts is WriteReport with the full section selection.
func WriteReportOpts(w io.Writer, sc Scale, seed uint64, outs []SuiteOutcome, opts ReportOptions) error {
	if _, err := fmt.Fprintf(w, "# Maya experiments (scale=%s, seed=%d)\n\nGenerated by cmd/experiments.\n\n", sc.Name, seed); err != nil {
		return err
	}
	for _, o := range outs {
		if o.Err != nil {
			if _, err := fmt.Fprintf(w, "## %s\n\nERROR: %v\n\n", o.Name, o.Err); err != nil {
				return err
			}
			continue
		}
		cached := ""
		if opts.AnnotateCached && o.Cached {
			cached = " [cached]"
		}
		if _, err := fmt.Fprintf(w, "## %s (%s)%s\n\n```\n%s```\n\n", o.Res.ID(), o.Name, cached, o.Res.Render()); err != nil {
			return err
		}
	}
	if opts.Timing {
		if _, err := fmt.Fprintf(w, "## Timing\n\n```\n%s```\n", TimingSummary(outs)); err != nil {
			return err
		}
	}
	if opts.Telemetry != nil {
		if _, err := fmt.Fprintf(w, "## Telemetry\n\n```\n%s```\n", TelemetryReport(opts.Telemetry)); err != nil {
			return err
		}
	}
	return nil
}

// TelemetryReport renders the registry for the report's telemetry section:
// the Prometheus text exposition of every registered instrument.
func TelemetryReport(reg *telemetry.Registry) string {
	var b strings.Builder
	// The registry writes to a strings.Builder, which cannot fail.
	_ = reg.WriteProm(&b)
	return b.String()
}

// TimingSummary renders the per-job accounting table (wall-clock and
// allocation volume per experiment, plus totals).
func TimingSummary(outs []SuiteOutcome) string {
	var total time.Duration
	var totalAlloc uint64
	s := fmt.Sprintf("%-20s %10s %12s\n", "experiment", "wall", "alloc")
	for _, o := range outs {
		status := ""
		if o.TimedOut {
			status = "  (timed out)"
		} else if o.Err != nil {
			status = "  (failed)"
		} else if o.Cached {
			status = "  (cached)"
		}
		s += fmt.Sprintf("%-20s %10s %12s%s\n", o.Name, o.Wall.Round(time.Millisecond), fmtBytes(o.AllocBytes), status)
		total += o.Wall
		totalAlloc += o.AllocBytes
	}
	s += fmt.Sprintf("%-20s %10s %12s  (sum of per-job wall clocks)\n", "total", total.Round(time.Millisecond), fmtBytes(totalAlloc))
	return s
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
