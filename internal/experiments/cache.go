package experiments

// Content-addressed caching for suite runs. An experiment's report section
// is a pure function of (code version, experiment name, scale, seed) — the
// determinism the runner tests already enforce — so the rendered Result can
// be cached by a hash of exactly those inputs and replayed byte-for-byte.
// The report body never changes between a cold and a warm run; only the
// opt-in accounting sections (and the explicit AnnotateCached mode) reveal
// where a section came from.

import (
	"context"
	"strconv"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/runner"
)

// canonScale renders every Scale field in declaration order. Adding a field
// to Scale without extending this renderer would let two different
// configurations share a key, so the renderer fails closed: it consumes the
// struct by value and the cache key test pins the rendering.
//
//maya:cachekey
func canonScale(sc Scale) string {
	return sc.Name +
		"/runs=" + strconv.Itoa(sc.RunsPerClass) +
		"/ticks=" + strconv.Itoa(sc.TraceTicks) +
		"/warmup=" + strconv.Itoa(sc.WarmupTicks) +
		"/wscale=" + strconv.FormatFloat(sc.WorkloadScale, 'g', -1, 64) +
		"/epochs=" + strconv.Itoa(sc.Epochs) +
		"/avg=" + strconv.Itoa(sc.AvgRuns)
}

// CanonicalScale renders every Scale field in cache-key canonical form —
// the string the entry digests hash and the run manifest records, so two
// manifests with equal Scale ran equal configurations.
func CanonicalScale(sc Scale) string { return canonScale(sc) }

// CacheKey derives the entry's content address for a run configuration.
// version comes from expcache.CodeVersion (or a CI override); everything
// else that can change the result — experiment name, every scale
// parameter, the base seed — is folded in by DeriveKey.
//
//maya:cachekey
func (e SuiteEntry) CacheKey(version string, sc Scale, seed uint64) expcache.Key {
	return expcache.DeriveKey(expcache.KeyInput{
		CodeVersion: version,
		Experiment:  e.Name,
		Scale:       canonScale(sc),
		Seed:        seed,
	})
}

// cachedResult replays a cache entry through the Result interface, so
// WriteReport renders hits and fresh runs identically.
type cachedResult struct {
	id     string
	render string
}

func (c cachedResult) ID() string     { return c.id }
func (c cachedResult) Render() string { return c.render }

// CacheConfig couples an open cache with the code version used in keys.
type CacheConfig struct {
	Cache *expcache.Cache
	// Version is folded into every key; leave empty to use
	// expcache.CodeVersion().
	Version string
}

// RunSuiteCached is RunSuite with a consult-then-populate cache in front of
// it. Hits skip execution entirely and carry the stored rendering; misses
// run through the normal worker pool (preserving RunSuite's any-worker-count
// determinism) and, in read-write mode, populate the cache on success.
// Outcomes come back in suite order regardless of the hit/miss split. A nil
// or disabled cache degrades to plain RunSuite.
func RunSuiteCached(ctx context.Context, entries []SuiteEntry, sc Scale, seed uint64, opts runner.Options, cc CacheConfig) []SuiteOutcome {
	if !cc.Cache.Enabled() {
		return RunSuite(ctx, entries, sc, seed, opts)
	}
	version := cc.Version
	if version == "" {
		version = expcache.CodeVersion()
	}

	keys := make([]expcache.Key, len(entries))
	outs := make([]SuiteOutcome, len(entries))
	var missed []SuiteEntry
	var missedIdx []int
	for i, e := range entries {
		keys[i] = e.CacheKey(version, sc, seed)
		if ent, ok := cc.Cache.Get(keys[i]); ok {
			outs[i] = SuiteOutcome{
				Name:   e.Name,
				Res:    cachedResult{id: ent.ID, render: ent.Render},
				Cached: true,
			}
			continue
		}
		missed = append(missed, e)
		missedIdx = append(missedIdx, i)
	}
	if len(missed) == 0 {
		return outs
	}
	for j, out := range RunSuite(ctx, missed, sc, seed, opts) {
		i := missedIdx[j]
		outs[i] = out
		if out.Err != nil || out.TimedOut || out.Res == nil {
			continue
		}
		// Put errors (read-only directory, disk full) degrade the cache to
		// a miss next run; they must not fail the experiment that already
		// succeeded.
		_ = cc.Cache.Put(keys[i], expcache.Entry{
			Experiment: out.Name,
			ID:         out.Res.ID(),
			Render:     out.Res.Render(),
		})
	}
	return outs
}
