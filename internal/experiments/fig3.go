package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

// Fig3Result reproduces Fig 3 / §IV-B: a naive reactive scheduler versus the
// formal controller holding a constant power target while the application's
// own power changes underneath. The paper's point: the naive scheme always
// misses and the resulting trace retains application features.
type Fig3Result struct {
	Target float64
	// RMSE of measured power vs the target for each scheme.
	NaiveRMSE, FormalRMSE float64
	// LeakCorr is |Pearson| between the defended trace and the same
	// workload's undefended trace — the application features surviving in
	// the output.
	NaiveLeakCorr, FormalLeakCorr float64
	// Traces for plotting.
	BaselineTrace, NaiveTrace, FormalTrace []float64
}

// ID implements Result.
func (r *Fig3Result) ID() string { return "Fig 3" }

// Fig3 runs the comparison on the given machine with a multi-phase
// application.
func Fig3(cfg sim.Config, sc Scale, seed uint64) (*Fig3Result, error) {
	d, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	target := d.Band.Mid()
	newWorkload := func() workload.Workload {
		return workload.NewApp("bodytrack").Scale(sc.WorkloadScale)
	}
	spec := sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks, WarmupTicks: sc.WarmupTicks}

	// Undefended reference.
	mBase := sim.NewMachine(cfg, seed)
	wb := newWorkload()
	wb.Reset(seed)
	base := sim.Run(mBase, wb, sim.NewBaselinePolicy(cfg), spec)

	// Naive positional-proportional scheduler (§IV-B's P − pᵢ scheme).
	naive := control.NewNaive(3, 0.05, []float64{1, -1, 1}, []float64{0.8, 0.1, 0.2})
	knobs := cfg.Knobs()
	naivePolicy := sim.PolicyFunc(func(step int, powerW float64) sim.Inputs {
		e := 0.0
		if step > 0 {
			e = target - powerW
		}
		u := naive.Step(e)
		dv, idle, bal := knobs.FromNorms([3]float64{u[0], u[1], u[2]})
		return sim.Inputs{FreqGHz: dv, Idle: idle, Balloon: bal}
	})
	mNaive := sim.NewMachine(cfg, seed)
	wn := newWorkload()
	wn.Reset(seed)
	naiveRes := sim.Run(mNaive, wn, naivePolicy, spec)

	// Formal controller with the same constant target.
	eng := core.NewEngine(d.Controller.Clone(), mask.NewConstant(target), cfg.Knobs())
	eng.Reset(seed)
	mFormal := sim.NewMachine(cfg, seed)
	wf := newWorkload()
	wf.Reset(seed)
	formalRes := sim.Run(mFormal, wf, eng, spec)

	n := min3(len(base.DefenseSamples), len(naiveRes.DefenseSamples), len(formalRes.DefenseSamples))
	tgt := make([]float64, n)
	for i := range tgt {
		tgt[i] = target
	}
	skip := 25 // settle-in
	r := &Fig3Result{
		Target:         target,
		NaiveRMSE:      signal.RMSE(naiveRes.DefenseSamples[skip:n], tgt[skip:]),
		FormalRMSE:     signal.RMSE(formalRes.DefenseSamples[skip:n], tgt[skip:]),
		NaiveLeakCorr:  math.Abs(signal.Pearson(naiveRes.DefenseSamples[:n], base.DefenseSamples[:n])),
		FormalLeakCorr: math.Abs(signal.Pearson(formalRes.DefenseSamples[:n], base.DefenseSamples[:n])),
		BaselineTrace:  base.DefenseSamples[:n],
		NaiveTrace:     naiveRes.DefenseSamples[:n],
		FormalTrace:    formalRes.DefenseSamples[:n],
	}
	return r, nil
}

// Render implements Result.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — reactive vs formal control at constant target %.1f W\n", r.ID(), r.Target)
	fmt.Fprintf(&b, "%-10s %12s %22s\n", "scheme", "RMSE (W)", "|corr| with baseline")
	fmt.Fprintf(&b, "%-10s %12.2f %22.3f\n", "naive", r.NaiveRMSE, r.NaiveLeakCorr)
	fmt.Fprintf(&b, "%-10s %12.2f %22.3f\n", "formal", r.FormalRMSE, r.FormalLeakCorr)
	b.WriteString("expected: the formal controller tracks far tighter and retains fewer\n")
	b.WriteString("application features (paper §IV-B: the naive scheme \"will always miss\").\n")
	return b.String()
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
