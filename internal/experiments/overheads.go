package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/sim"
)

// AppOverhead is one application's normalized power and time under a
// defense (one bar of Fig 14).
type AppOverhead struct {
	App             string
	NormalizedPower float64
	NormalizedTime  float64
}

// DefenseOverhead aggregates Fig 14 for one defense.
type DefenseOverhead struct {
	Defense   string
	Apps      []AppOverhead
	AvgPower  float64
	AvgTime   float64
	AvgEnergy float64 // normalized energy (power × time)
}

// Fig14Result reproduces the power/execution-time overheads, normalized to
// the insecure Baseline.
type Fig14Result struct {
	Machine  string
	Defenses []DefenseOverhead
	// Paper values for the Avg columns (§VII-E): power −30/−31/−11/−29 %,
	// time +100/+127/+124/+47 % for NoisyBaseline/RandomInputs/
	// MayaConstant/MayaGS.
	PaperAvgPower []float64
	PaperAvgTime  []float64
}

// ID implements Result.
func (r *Fig14Result) ID() string { return "Fig 14" }

// fig14Kinds is Fig 14's defense order.
var fig14Kinds = []defense.Kind{defense.NoisyBaseline, defense.RandomInputs, defense.MayaConstant, defense.MayaGS}

// Fig14 measures power and execution time of all applications under every
// defense on Sys1, normalized to Baseline, running each app to completion.
func Fig14(ctx context.Context, sc Scale, seed uint64) (*Fig14Result, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	// Larger scale than the attack experiments: the parallel sections must
	// dominate, as with the paper's native inputs.
	wlScale := sc.WorkloadScale * 2
	classes := defense.AppClasses(wlScale)
	runs := max(sc.AvgRuns/20, 2)

	measure := func(kind defense.Kind) []defense.RunStats {
		_, stats := defense.Collect(ctx, defense.CollectSpec{
			Cfg:          cfg,
			Design:       defense.NewDesign(kind, cfg, art, 20),
			Classes:      classes,
			RunsPerClass: runs,
			MaxTicks:     sc.TraceTicks * 40, // generous completion bound
			StopOnFinish: true,
			WarmupTicks:  sc.WarmupTicks,
			Seed:         seed + uint64(kind)*7919,
		})
		return stats
	}

	type agg struct{ power, seconds float64 }
	aggregate := func(stats []defense.RunStats) []agg {
		out := make([]agg, len(classes))
		counts := make([]int, len(classes))
		for _, s := range stats {
			out[s.Label].power += s.AvgPowerW
			out[s.Label].seconds += s.Seconds
			counts[s.Label]++
		}
		for i := range out {
			if counts[i] > 0 {
				out[i].power /= float64(counts[i])
				out[i].seconds /= float64(counts[i])
			}
		}
		return out
	}

	base := aggregate(measure(defense.Baseline))
	res := &Fig14Result{
		Machine:       cfg.Name,
		PaperAvgPower: []float64{0.70, 0.69, 0.89, 0.71},
		PaperAvgTime:  []float64{2.00, 2.27, 2.24, 1.47},
	}
	for _, kind := range fig14Kinds {
		d := DefenseOverhead{Defense: kind.String()}
		got := aggregate(measure(kind))
		var sp, st, se float64
		for i, c := range classes {
			np := got[i].power / base[i].power
			nt := got[i].seconds / base[i].seconds
			d.Apps = append(d.Apps, AppOverhead{App: c.Name, NormalizedPower: np, NormalizedTime: nt})
			sp += np
			st += nt
			se += np * nt
		}
		n := float64(len(classes))
		d.AvgPower, d.AvgTime, d.AvgEnergy = sp/n, st/n, se/n
		res.Defenses = append(res.Defenses, d)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — power and execution time vs Baseline (%s)\n", r.ID(), r.Machine)
	fmt.Fprintf(&b, "%-15s %12s %12s %12s %14s\n", "defense", "power", "time", "energy", "paper (P/T)")
	for i, d := range r.Defenses {
		fmt.Fprintf(&b, "%-15s %11.2fx %11.2fx %11.2fx %7.2f/%.2f\n",
			d.Defense, d.AvgPower, d.AvgTime, d.AvgEnergy,
			r.PaperAvgPower[i], r.PaperAvgTime[i])
	}
	b.WriteString("expected shape: every defense draws less average power than Baseline;\n")
	b.WriteString("Maya GS has the lowest execution-time overhead of the defenses and\n")
	b.WriteString("roughly Baseline-level total energy (§VII-E).\n")
	return b.String()
}

// TableIResult captures the §V-A / §VII-E controller budget and the Table I
// InScope response-time requirement: a matrix-based controller step in
// privileged software must fit comfortably inside 5–10 µs.
type TableIResult struct {
	ControllerDim  int
	OpsPerStep     int
	StorageBytes   int
	MaskStepNanos  int64
	CtlStepNanos   int64
	TotalStepNanos int64
}

// ID implements Result.
func (r *TableIResult) ID() string { return "Table I / §VII-E" }

// TableI measures the controller and mask-generator step costs on the host.
func TableI(ctx context.Context, sc Scale, seed uint64) (*TableIResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	ctl := art.Controller.Clone()
	gen := defense.NewDesign(defense.MayaGS, cfg, art, 20).Policy(seed)

	// Time in batches and keep the fastest batch: the suite may be running
	// other experiments concurrently, and the minimum over many short
	// batches recovers the uncontended per-step cost.
	const batches, perBatch = 20, 1000
	minBatch := func(step func(i int)) int64 {
		best := int64(math.MaxInt64)
		for b := 0; b < batches; b++ {
			start := time.Now() //maya:wallclock Table I step-cost measurement of the host
			for i := 0; i < perBatch; i++ {
				step(b*perBatch + i)
			}
			if ns := time.Since(start).Nanoseconds() / perBatch; ns < best { //maya:wallclock Table I step-cost measurement
				best = ns
			}
		}
		return best
	}
	// Controller-only timing.
	ctlNs := minBatch(func(int) { ctl.Step(0.5) })
	// Full Decide (mask + controller + actuation mapping).
	totalNs := minBatch(func(i int) { gen.Decide(i+1, 15.0) })

	return &TableIResult{
		ControllerDim:  ctl.Dim(),
		OpsPerStep:     ctl.Ops(),
		StorageBytes:   ctl.StorageBytes(),
		CtlStepNanos:   ctlNs,
		MaskStepNanos:  totalNs - ctlNs,
		TotalStepNanos: totalNs,
	}, nil
}

// Render implements Result.
func (r *TableIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — controller budget\n", r.ID())
	fmt.Fprintf(&b, "  dimension:        %d states (paper: 11 with µ-synthesis weights)\n", r.ControllerDim)
	fmt.Fprintf(&b, "  ops/step:         ≈%d multiply-accumulates (paper: ≈200)\n", r.OpsPerStep)
	fmt.Fprintf(&b, "  storage:          %d bytes (paper: <1 KB)\n", r.StorageBytes)
	// The measured latencies are rendered as budget buckets, not raw
	// nanoseconds: the report body must be byte-identical across reruns
	// (exact values stay in the struct for tests and benchmarks).
	fmt.Fprintf(&b, "  controller step:  %s measured (paper: <1 µs)\n", fmtBudget(r.CtlStepNanos))
	fmt.Fprintf(&b, "  full Maya step:   %s measured (Table I budget: 5–10 µs)\n", fmtBudget(r.TotalStepNanos))
	return b.String()
}

// fmtBudget buckets a step latency against the Table I budget tiers.
func fmtBudget(ns int64) string {
	switch {
	case ns < 1_000:
		return "<1 µs"
	case ns < 5_000:
		return "1–5 µs"
	case ns <= 10_000:
		return "5–10 µs"
	}
	return ">10 µs (over budget)"
}
