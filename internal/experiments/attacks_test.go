package experiments

import (
	"context"
	"strings"
	"testing"
)

// attackTiny shrinks the classification experiments enough for CI while
// keeping the chance-floor claims decidable.
func attackTiny() Scale {
	sc := tiny()
	sc.RunsPerClass = 20
	sc.TraceTicks = 24000
	return sc
}

// requireShape asserts the universal Figs 6/8/9 invariant: the non-formal
// and constant-mask defenses leak well above chance; Maya GS does not.
func requireShape(t *testing.T, r *AttackResult) {
	t.Helper()
	t.Log(r.Render())
	if len(r.Outcomes) != 3 {
		t.Fatalf("want 3 defenses, got %d", len(r.Outcomes))
	}
	random, constant, gs := r.Outcomes[0], r.Outcomes[1], r.Outcomes[2]
	if random.Accuracy < r.Chance+0.07 {
		t.Errorf("%s: random inputs should leak: %.2f (chance %.2f)", r.Artifact, random.Accuracy, r.Chance)
	}
	if constant.Accuracy < r.Chance+0.15 {
		t.Errorf("%s: constant mask should leak: %.2f (chance %.2f)", r.Artifact, constant.Accuracy, r.Chance)
	}
	if gs.Accuracy > r.Chance+0.16 {
		t.Errorf("%s: Maya GS leaked: %.2f (chance %.2f)", r.Artifact, gs.Accuracy, r.Chance)
	}
	if gs.Accuracy >= random.Accuracy || gs.Accuracy >= constant.Accuracy {
		t.Errorf("%s: GS (%.2f) must be the least classifiable (random %.2f, constant %.2f)",
			r.Artifact, gs.Accuracy, random.Accuracy, constant.Accuracy)
	}
}

func TestFig6AppDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := attackTiny()
	// Eleven classes need more traces than the four- and seven-way attacks
	// for the Random Inputs leak to rise clearly above chance (the paper
	// trains on 600 traces per class; accuracy grows with data volume).
	sc.RunsPerClass = 80
	r, err := Fig6(context.Background(), sc, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 11 {
		t.Fatalf("Fig 6 needs 11 applications, got %d", len(r.Classes))
	}
	requireShape(t, r)
}

func TestFig8VideoDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Fig8(context.Background(), attackTiny(), 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 4 {
		t.Fatalf("Fig 8 needs 4 videos, got %d", len(r.Classes))
	}
	if r.Machine != "sys2" {
		t.Fatalf("Fig 8 runs on sys2, got %s", r.Machine)
	}
	requireShape(t, r)
}

func TestFig9WebpageDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := attackTiny()
	sc.RunsPerClass = 40
	r, err := Fig9(context.Background(), sc, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 7 {
		t.Fatalf("Fig 9 needs 7 pages, got %d", len(r.Classes))
	}
	if r.Machine != "sys3" {
		t.Fatalf("Fig 9 runs on sys3, got %s", r.Machine)
	}
	t.Log(r.Render())
	random, constant, gs := r.Outcomes[0], r.Outcomes[1], r.Outcomes[2]
	if random.Accuracy < r.Chance+0.07 {
		t.Errorf("random inputs should leak: %.2f (chance %.2f)", random.Accuracy, r.Chance)
	}
	if constant.Accuracy < r.Chance+0.2 {
		t.Errorf("constant mask should leak strongly: %.2f", constant.Accuracy)
	}
	// Maya GS retains a residual ~1.5–2× chance on this attack (vs the
	// paper's at-chance result): the pages' wall-clock cadences are
	// disturbances above the loop bandwidth, and the actuators' local gains
	// modulate the defense's own injected signals by application state —
	// see EXPERIMENTS.md. GS must still sit far below the other defenses'
	// strong leaks and under 2.2× chance.
	if gs.Accuracy > 2.2*r.Chance {
		t.Errorf("Maya GS residual too large: %.2f (chance %.2f)", gs.Accuracy, r.Chance)
	}
	if gs.Accuracy >= constant.Accuracy {
		t.Errorf("GS (%.2f) must undercut the constant mask (%.2f)", gs.Accuracy, constant.Accuracy)
	}
}

func TestFig12SamplingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := attackTiny()
	sc.RunsPerClass = 12
	r, err := Fig12(context.Background(), sc, 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IntervalMS) != 4 {
		t.Fatalf("want 4 sampling intervals, got %v", r.IntervalMS)
	}
	for i, acc := range r.Accuracy {
		if acc > r.Chance+0.16 {
			t.Errorf("GS leaked at %d ms sampling: %.2f (chance %.2f)",
				r.IntervalMS[i], acc, r.Chance)
		}
	}
	if !strings.Contains(r.Render(), "2 ms") {
		t.Fatal("render missing rows")
	}
}

func TestAblationMasks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := attackTiny()
	r, err := AblationMasks(context.Background(), sc, 39)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Families) != 5 {
		t.Fatalf("families=%v", r.Families)
	}
	byName := map[string]float64{}
	for i, f := range r.Families {
		byName[f] = r.Accuracy[i]
	}
	if byName["gaussian-sinusoid"] > r.Chance+0.16 {
		t.Errorf("GS mask leaked: %.2f", byName["gaussian-sinusoid"])
	}
	if byName["constant"] < r.Chance+0.2 {
		t.Errorf("constant mask should leak: %.2f", byName["constant"])
	}
	t.Log(r.Render())
}

func TestFig14Overheads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := tiny()
	sc.AvgRuns = 20 // → 1 run per class via AvgRuns/20
	r, err := Fig14(context.Background(), sc, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Defenses) != 4 {
		t.Fatalf("defenses=%d", len(r.Defenses))
	}
	for _, d := range r.Defenses {
		if d.AvgPower >= 1.0 {
			t.Errorf("%s should draw less power than Baseline: %.2fx", d.Defense, d.AvgPower)
		}
		if d.AvgTime <= 1.0 {
			t.Errorf("%s should run slower than Baseline: %.2fx", d.Defense, d.AvgTime)
		}
	}
	// Maya GS (index 3) must be cheaper in time than the non-formal
	// defenses (paper: 1.47x vs 2.0x/2.27x).
	gs := r.Defenses[3]
	if gs.AvgTime >= r.Defenses[0].AvgTime || gs.AvgTime >= r.Defenses[1].AvgTime {
		t.Errorf("GS time %.2fx not below noisy %.2fx / random %.2fx",
			gs.AvgTime, r.Defenses[0].AvgTime, r.Defenses[1].AvgTime)
	}
	// Energy parity with Baseline within a generous band (§VII-E).
	if gs.AvgEnergy < 0.6 || gs.AvgEnergy > 1.8 {
		t.Errorf("GS energy %.2fx outside parity band", gs.AvgEnergy)
	}
	t.Log(r.Render())
}
