package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestCovertChannelExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := CovertChannel(tiny(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineBER > 0.05 {
		t.Errorf("undefended channel should work: BER %.3f", r.BaselineBER)
	}
	if r.MayaBER < 0.25 {
		t.Errorf("Maya should destroy the channel: BER %.3f", r.MayaBER)
	}
	if !strings.Contains(r.Render(), "coin flip") {
		t.Fatal("render incomplete")
	}
}

func TestThermalExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Thermal(tiny(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Undefended thermal traces repeat run to run; Maya's do not follow the
	// app's trace.
	if r.BaselineSelfCorr < 0.6 {
		t.Errorf("undefended thermal fingerprint should be repeatable: %.2f", r.BaselineSelfCorr)
	}
	if r.MayaCorr > 0.7*r.BaselineSelfCorr {
		t.Errorf("Maya thermal trace still follows the app: %.2f vs %.2f",
			r.MayaCorr, r.BaselineSelfCorr)
	}
	// Per-app temperature spread collapses.
	if r.MayaSpread > 0.6*r.BaselineSpread {
		t.Errorf("thermal fingerprint spread not collapsed: %.2f vs %.2f °C",
			r.MayaSpread, r.BaselineSpread)
	}
	t.Log(r.Render())
}

func TestToolbox(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := attackTiny()
	sc.RunsPerClass = 60
	sc.Epochs = 40
	r, err := Toolbox(context.Background(), sc, 51)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r.Render())
	if len(r.Attackers) != 4 {
		t.Fatalf("attackers=%v", r.Attackers)
	}
	// The amplitude-domain attackers must beat chance against the weak
	// defense. The spectrogram attacker is exempt: Random Inputs *is*
	// broadband high-frequency modulation, which floods exactly the band
	// energies that attacker reads — its strength is against defenses that
	// are quiet in that band (like Maya GS).
	for i := 0; i < 3; i++ {
		if r.WeakAcc[i] < r.Chance+0.05 {
			t.Errorf("%s should beat chance against random inputs: %.2f", r.Attackers[i], r.WeakAcc[i])
		}
	}
	if r.WeakAcc[1] < r.Chance+0.12 {
		t.Errorf("templates should leak clearly against random inputs: %.2f", r.WeakAcc[1])
	}
	// Amplitude-domain attackers near chance against GS.
	for i := 0; i < 3; i++ {
		if r.GSAcc[i] > r.Chance+0.15 {
			t.Errorf("%s leaked against GS: %.2f", r.Attackers[i], r.GSAcc[i])
		}
	}
	// The spectrogram residual stays within its documented range.
	if sg := r.GSAcc[3]; sg < r.Chance || sg > 0.75 {
		t.Errorf("spectrogram residual out of documented range: %.2f", sg)
	}
}
