package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/sim"
)

// tiny returns the smallest scale at which the shape claims are still
// visible; the full claims are asserted by the bench harness at Small()+.
func tiny() Scale {
	return Scale{
		Name:          "tiny",
		RunsPerClass:  12,
		TraceTicks:    12000,
		WarmupTicks:   1000,
		WorkloadScale: 0.12,
		Epochs:        30,
		AvgRuns:       16,
	}
}

func TestDesignForCaches(t *testing.T) {
	a, err := DesignFor(sim.Sys1())
	if err != nil {
		t.Fatal(err)
	}
	b, err := DesignFor(sim.Sys1())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("design not cached")
	}
}

func TestFig4(t *testing.T) {
	r := Fig4(mask.Band{Min: 8, Max: 25}, 50, 4000, 1)
	if len(r.Profiles) != 5 {
		t.Fatalf("profiles=%d", len(r.Profiles))
	}
	byName := map[string]MaskProfile{}
	for _, p := range r.Profiles {
		byName[p.Name] = p
	}
	c := byName["constant"]
	gs := byName["gaussian-sinusoid"]
	if c.MeanChange != 0 || c.VarChange != 0 {
		t.Fatal("constant mask should not change")
	}
	if gs.MeanChange <= 0.5 || gs.VarChange <= 0.1 {
		t.Fatalf("GS time-domain properties weak: %+v", gs)
	}
	if gs.SpectralPeaks < 0.5 {
		t.Fatalf("GS lacks spectral peaks: %+v", gs)
	}
	if byName["gaussian"].SpectralFlat <= byName["sinusoid"].SpectralFlat {
		t.Fatal("gaussian should be spectrally flatter than sinusoid")
	}
	if !strings.Contains(r.Render(), "gaussian-sinusoid") {
		t.Fatal("render missing rows")
	}
}

func TestFig3ShapeNaiveVsFormal(t *testing.T) {
	r, err := Fig3(sim.Sys1(), tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.FormalRMSE >= r.NaiveRMSE {
		t.Fatalf("formal RMSE %.2f should beat naive %.2f", r.FormalRMSE, r.NaiveRMSE)
	}
	if r.FormalLeakCorr >= r.NaiveLeakCorr && r.NaiveLeakCorr > 0.1 {
		t.Fatalf("formal leak %.2f should undercut naive %.2f", r.FormalLeakCorr, r.NaiveLeakCorr)
	}
	if !strings.Contains(r.Render(), "RMSE") {
		t.Fatal("render incomplete")
	}
}

func TestFig11ChangePoints(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Fig11(context.Background(), tiny(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.TruePhases < 2 {
		t.Fatalf("blackscholes should have >=2 transitions, got %d", r.TruePhases)
	}
	// Index 3 is Maya GS; earlier designs must recover phases better.
	gsScore := r.MatchScore[3]
	for i := 0; i < 3; i++ {
		if r.MatchScore[i] < 0.5 {
			t.Errorf("%s should recover phases: score %.2f", r.Defenses[i], r.MatchScore[i])
		}
	}
	if gsScore > 0.55 {
		t.Errorf("Maya GS should hide phases: score %.2f", gsScore)
	}
	if r.EndVisible[3] && !r.EndVisible[0] {
		t.Error("GS reveals the endpoint while noisy baseline hides it?")
	}
	t.Log(r.Render())
}

func TestFig13Tracking(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := tiny()
	r, err := Fig13(context.Background(), sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 11 {
		t.Fatalf("classes=%d", len(r.Classes))
	}
	art, _ := DesignFor(sim.Sys1())
	for i, c := range r.Classes {
		if r.TrackingMAD[i] > 0.15*art.Band.Width() {
			t.Errorf("%s tracking MAD %.2f W too large", c, r.TrackingMAD[i])
		}
	}
	if r.MedianAbsDelta > 2.0 {
		t.Errorf("target/measured median gap %.2f W", r.MedianAbsDelta)
	}
}

func TestFig15Platypus(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := Fig15(context.Background(), tiny(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineSeparation < 3 {
		t.Errorf("instructions should separate on baseline: %.2f", r.BaselineSeparation)
	}
	if r.MayaSeparation > r.BaselineSeparation/3 {
		t.Errorf("Maya GS should collapse separation: %.2f vs %.2f",
			r.MayaSeparation, r.BaselineSeparation)
	}
	// The activity ordering imul > mov > xor must show on the baseline.
	if !(r.BaselineMeans[0] > r.BaselineMeans[1] && r.BaselineMeans[1] > r.BaselineMeans[2]) {
		t.Errorf("baseline instruction power ordering broken: %v", r.BaselineMeans)
	}
	t.Log(r.Render())
}

func TestTableIBudget(t *testing.T) {
	r, err := TableI(context.Background(), tiny(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.ControllerDim != 9 {
		t.Errorf("controller dim %d", r.ControllerDim)
	}
	if r.StorageBytes >= 1024 {
		t.Errorf("storage %dB >= 1KB", r.StorageBytes)
	}
	// Table I InScope budget: 5–10 µs. Host timing is noisy; require well
	// under 10 µs.
	if r.TotalStepNanos > 10_000 {
		t.Errorf("Maya step %d ns exceeds the 10 µs InScope budget", r.TotalStepNanos)
	}
	t.Log(r.Render())
}

func TestFig7Spread(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := tiny()
	sc.AvgRuns = 12
	r, err := Fig7(context.Background(), sc, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Maya GS (index 3) must collapse the cross-app median spread far below
	// the non-formal defenses. (Maya Constant also pins medians — its leak
	// is in the residual texture, which Fig 6 exposes — so it is excluded
	// from this particular comparison, as in the paper, where Fig 7c's
	// medians are close but "the distribution is sufficiently different".)
	gs := r.MedianSpread[3]
	for i := 0; i < 2; i++ {
		if gs > 0.6*r.MedianSpread[i] {
			t.Errorf("GS spread %.2f not well below %s spread %.2f", gs, r.Defenses[i], r.MedianSpread[i])
		}
	}
	if gs > 1.5 {
		t.Errorf("GS median spread %.2f W too large for obfuscation", gs)
	}
	t.Log(r.Render())
}

func TestFig10AveragedTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	sc := tiny()
	// Averaging needs volume to flatten the GS mask residual (the paper
	// averages 1,000 runs); 48 is enough for the ordering to be stable.
	sc.AvgRuns = 48
	r, err := Fig10(context.Background(), sc, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The level fingerprint (spread of averaged-trace means) survives
	// averaging for the non-formal defenses and must collapse under GS.
	gsSpread := r.MeanSpread[3]
	if gsSpread > 0.5*r.MeanSpread[0] || gsSpread > 0.5*r.MeanSpread[1] {
		t.Errorf("GS mean spread %.2f not well below noisy %.2f / random %.2f",
			gsSpread, r.MeanSpread[0], r.MeanSpread[1])
	}
	// Trace-shape distinctness must also not exceed the leakiest defense's.
	if r.Distinctness[3] > 0.7*r.Distinctness[1] {
		t.Errorf("GS distinctness %.2f vs random inputs %.2f",
			r.Distinctness[3], r.Distinctness[1])
	}
	t.Log(r.Render())
}

func TestAblationGuardbandMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := AblationGuardband(context.Background(), tiny(), 17)
	if err != nil {
		t.Fatal(err)
	}
	// Settle time must not decrease as the guardband grows.
	for i := 1; i < len(r.Guardbands); i++ {
		if r.SettleSteps[i] < r.SettleSteps[i-1]-2 {
			t.Errorf("settle steps dropped with larger guardband: %v", r.SettleSteps)
		}
	}
}

func TestAblationActuators(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := AblationActuators(context.Background(), tiny(), 19)
	if err != nil {
		t.Fatal(err)
	}
	full := r.TrackingMAD[len(r.TrackingMAD)-1]
	dvfsOnly := r.TrackingMAD[0]
	if full >= dvfsOnly {
		t.Errorf("full actuator set (%.2f) should track better than DVFS-only (%.2f)", full, dvfsOnly)
	}
	t.Log(r.Render())
}

func TestDTWAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := DTWAnalysis(context.Background(), tiny(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineAccuracy < 0.7 {
		t.Errorf("DTW should classify baseline traces: %.2f", r.BaselineAccuracy)
	}
	if r.MayaGSAccuracy > r.Chance+0.25 {
		t.Errorf("DTW should fail under GS: %.2f (chance %.2f)", r.MayaGSAccuracy, r.Chance)
	}
	t.Log(r.Render())
}

func TestAblationNhold(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	r, err := AblationNhold(context.Background(), tiny(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranges) != 3 {
		t.Fatalf("ranges=%v", r.Ranges)
	}
	// Peaks per analysis window fall as holds lengthen (short holds spawn
	// many short-lived tones; long holds sustain one).
	if !(r.Peaks[0] > r.Peaks[1] && r.Peaks[1] > r.Peaks[2]) {
		t.Errorf("peak density should fall with hold length: %v", r.Peaks)
	}
	// The paper's [6,120] tracks best: rapid redraws outrun the loop, and
	// very long holds spend more time at hard-to-reach extremes.
	if r.TrackingMAD[1] >= r.TrackingMAD[0] || r.TrackingMAD[1] >= r.TrackingMAD[2] {
		t.Errorf("paper range should track best: %v", r.TrackingMAD)
	}
	t.Log(r.Render())
}
