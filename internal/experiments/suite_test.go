package experiments

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"

	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/telemetry"
)

func TestSuiteCoversAllEntriesOnce(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Suite() {
		if e.Name == "" || e.Run == nil {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate suite entry %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig3", "fig13", "ablation-actuators", "toolbox"} {
		if !seen[want] {
			t.Fatalf("suite missing %q", want)
		}
	}
}

func TestFilterSuite(t *testing.T) {
	all := Suite()
	if got := FilterSuite(all, nil); len(got) != len(all) {
		t.Fatalf("nil filter should keep all entries")
	}
	got := FilterSuite(all, regexp.MustCompile(`^fig1[0-5]$`))
	if len(got) != 6 {
		t.Fatalf("fig1x filter kept %d entries, want 6", len(got))
	}
}

// TestReportIdenticalAcrossWorkerCounts is the tentpole guarantee: the
// rendered report is byte-for-byte identical whether the suite runs on one
// worker or many.
func TestReportIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := tiny()
	entries := FilterSuite(Suite(), regexp.MustCompile(`^(fig3|fig4|table1)$`))
	if len(entries) != 3 {
		t.Fatalf("filter kept %d entries, want 3", len(entries))
	}
	render := func(workers int) []byte {
		outs := RunSuite(context.Background(), entries, sc, 7, runner.Options{Workers: workers})
		var buf bytes.Buffer
		if err := WriteReport(&buf, sc, 7, outs, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	if !strings.Contains(string(serial), "## ") {
		t.Fatalf("report has no sections:\n%s", serial)
	}
	for _, workers := range []int{4, 8} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Fatalf("report differs between 1 and %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, par)
		}
	}
}

// TestReportIdenticalWithTelemetryAttached is the PR's acceptance bar: for a
// fixed seed, pool instrumentation must not change a single byte of the
// report body.
func TestReportIdenticalWithTelemetryAttached(t *testing.T) {
	sc := tiny()
	entries := FilterSuite(Suite(), regexp.MustCompile(`^(fig3|fig4|table1)$`))
	render := func(reg *telemetry.Registry) []byte {
		opts := runner.Options{Workers: 4}
		if reg != nil {
			opts.Metrics = runner.NewMetrics(reg)
		}
		outs := RunSuite(context.Background(), entries, sc, 7, opts)
		var buf bytes.Buffer
		if err := WriteReport(&buf, sc, 7, outs, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := render(nil)
	reg := telemetry.NewRegistry()
	instrumented := render(reg)
	if !bytes.Equal(plain, instrumented) {
		t.Fatalf("report differs with telemetry attached:\n--- plain ---\n%s\n--- instrumented ---\n%s", plain, instrumented)
	}
	// The registry did record the sweep.
	var started float64
	for _, m := range reg.Snapshot() {
		if m.Name == "runner_jobs_started_total" {
			started = m.Value
		}
	}
	if started != 3 {
		t.Fatalf("runner_jobs_started_total = %g, want 3", started)
	}
}

// TestReportIdenticalWithTracingEnabled is this PR's acceptance bar: the
// structured tracer observes the sweep — runner job spans and per-tick engine
// phase spans — without changing a single byte of the rendered report.
func TestReportIdenticalWithTracingEnabled(t *testing.T) {
	sc := tiny()
	// fig7 reaches defense.Collect, so the ambient tracer is picked up all
	// the way down to the engine's per-tick phase spans.
	entries := FilterSuite(Suite(), regexp.MustCompile(`^(fig3|fig7)$`))
	render := func() []byte {
		outs := RunSuite(context.Background(), entries, sc, 7, runner.Options{Workers: 4})
		var buf bytes.Buffer
		if err := WriteReport(&buf, sc, 7, outs, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := render()
	tr := telemetry.NewTracer(1 << 14)
	telemetry.SetActiveTrace(tr)
	t.Cleanup(func() { telemetry.SetActiveTrace(nil) })
	traced := render()
	telemetry.SetActiveTrace(nil)
	if !bytes.Equal(plain, traced) {
		t.Fatalf("report differs with tracing enabled:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}
	// The tracer did observe the sweep: runner job lifecycle spans and the
	// engine's per-tick phases must both be present.
	names := map[string]bool{}
	for _, ev := range tr.Snapshot() {
		names[ev.Name] = true
	}
	for _, want := range []string{"job.queue_wait", "job.run", "tick.mask", "tick.sensor", "tick.control", "tick.actuate"} {
		if !names[want] {
			t.Fatalf("trace missing span %q (got %v)", want, names)
		}
	}
}

func TestWriteReportOptsTelemetrySection(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("demo_total", "demo").Add(5)
	outs := []SuiteOutcome{{Name: "broken", Err: context.DeadlineExceeded}}
	var buf bytes.Buffer
	if err := WriteReportOpts(&buf, tiny(), 1, outs, ReportOptions{Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"## Telemetry", "demo_total 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestWriteReportRendersErrorsAndTiming(t *testing.T) {
	outs := []SuiteOutcome{
		{Name: "broken", Err: context.DeadlineExceeded, TimedOut: true},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, tiny(), 1, outs, true); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"## broken", "ERROR:", "## Timing", "timed out"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
