package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/runner"
)

// fakeResult is a cheap deterministic Result for cache-behaviour tests —
// the real experiments cost seconds each and add nothing here.
type fakeResult struct{ id, body string }

func (r fakeResult) ID() string     { return r.id }
func (r fakeResult) Render() string { return r.body }

// fakeSuite returns n entries that count their executions.
func fakeSuite(n int, executions *atomic.Int64) []SuiteEntry {
	entries := make([]SuiteEntry, n)
	for i := range entries {
		name := fmt.Sprintf("exp%d", i)
		entries[i] = SuiteEntry{Name: name, Run: func(_ context.Context, sc Scale, seed uint64) (Result, error) {
			executions.Add(1)
			return fakeResult{
				id:   "Fake " + name,
				body: fmt.Sprintf("%s at %s seed %d\n", name, sc.Name, seed),
			}, nil
		}}
	}
	return entries
}

func openCache(t *testing.T, dir string, mode expcache.Mode) *expcache.Cache {
	t.Helper()
	c, err := expcache.Open(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func report(t *testing.T, outs []SuiteOutcome, opts ReportOptions) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteReportOpts(&buf, Small(), 1, outs, opts); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunSuiteCachedColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	entries := fakeSuite(5, &executions)
	cc := CacheConfig{Cache: openCache(t, dir, expcache.ModeReadWrite), Version: "test-v1"}

	cold := RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{}, cc)
	if got := executions.Load(); got != 5 {
		t.Fatalf("cold run executed %d of 5", got)
	}
	for _, o := range cold {
		if o.Cached {
			t.Fatalf("%s reported cached on a cold run", o.Name)
		}
	}
	st := cc.Cache.Stats()
	if st.Misses != 5 || st.Writes != 5 || st.Hits != 0 {
		t.Fatalf("cold stats %+v", st)
	}

	warm := RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{}, CacheConfig{
		Cache: openCache(t, dir, expcache.ModeReadWrite), Version: "test-v1"})
	if got := executions.Load(); got != 5 {
		t.Fatalf("warm run re-executed: %d total executions", got)
	}
	for _, o := range warm {
		if !o.Cached {
			t.Fatalf("%s missed on a warm run", o.Name)
		}
	}

	coldReport := report(t, cold, ReportOptions{})
	warmReport := report(t, warm, ReportOptions{})
	if coldReport != warmReport {
		t.Fatalf("cold and warm reports differ:\n--- cold ---\n%s--- warm ---\n%s", coldReport, warmReport)
	}

	annotated := report(t, warm, ReportOptions{AnnotateCached: true})
	if strings.Count(annotated, " [cached]") != 5 {
		t.Fatalf("AnnotateCached marked %d of 5 entries:\n%s", strings.Count(annotated, " [cached]"), annotated)
	}
	if strings.Contains(coldReport, "[cached]") {
		t.Fatal("unannotated report leaks cache state")
	}
}

// TestRunSuiteCachedKeySensitivity: a different seed, scale, or code
// version must miss rather than replay the wrong result.
func TestRunSuiteCachedKeySensitivity(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	entries := fakeSuite(2, &executions)
	run := func(sc Scale, seed uint64, version string) {
		RunSuiteCached(context.Background(), entries, sc, seed, runner.Options{},
			CacheConfig{Cache: openCache(t, dir, expcache.ModeReadWrite), Version: version})
	}
	run(Small(), 1, "v1")
	if executions.Load() != 2 {
		t.Fatalf("cold run executed %d", executions.Load())
	}
	run(Small(), 2, "v1") // new seed
	if executions.Load() != 4 {
		t.Fatalf("seed change did not re-execute (%d)", executions.Load())
	}
	run(Paper(), 1, "v1") // new scale
	if executions.Load() != 6 {
		t.Fatalf("scale change did not re-execute (%d)", executions.Load())
	}
	run(Small(), 1, "v2") // new code version
	if executions.Load() != 8 {
		t.Fatalf("version change did not re-execute (%d)", executions.Load())
	}
	run(Small(), 1, "v1") // back to the original tuple: all hits
	if executions.Load() != 8 {
		t.Fatalf("repeat run re-executed (%d)", executions.Load())
	}
}

// TestRunSuiteCachedPoisoning corrupts one entry on disk between runs: the
// warm run must detect it, evict, recompute that one experiment, and
// repopulate — the report stays byte-identical throughout.
func TestRunSuiteCachedPoisoning(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	entries := fakeSuite(3, &executions)
	version := "test-v1"

	cold := RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{},
		CacheConfig{Cache: openCache(t, dir, expcache.ModeReadWrite), Version: version})

	// Corrupt exp1's entry in place.
	key := entries[1].CacheKey(version, Small(), 1)
	path := filepath.Join(dir, key.String()[:2], key.String()+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := bytes.Replace(blob, []byte("exp1"), []byte("evil"), 1)
	if bytes.Equal(poisoned, blob) {
		t.Fatal("test setup: payload marker not found")
	}
	if err := os.WriteFile(path, poisoned, 0o666); err != nil {
		t.Fatal(err)
	}

	cache := openCache(t, dir, expcache.ModeReadWrite)
	warm := RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{},
		CacheConfig{Cache: cache, Version: version})
	if got := executions.Load(); got != 4 {
		t.Fatalf("expected exactly the poisoned entry to re-execute (3 cold + 1): %d", got)
	}
	st := cache.Stats()
	if st.Corrupt != 1 || st.Hits != 2 || st.Writes != 1 {
		t.Fatalf("poisoned-run stats %+v", st)
	}
	if warm[1].Cached || !warm[0].Cached || !warm[2].Cached {
		t.Fatalf("unexpected cached flags: %v %v %v", warm[0].Cached, warm[1].Cached, warm[2].Cached)
	}
	if report(t, cold, ReportOptions{}) != report(t, warm, ReportOptions{}) {
		t.Fatal("report changed across poisoning recovery")
	}

	// Third run: fully warm again, recomputed entry is back in the cache.
	executions.Store(0)
	RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{},
		CacheConfig{Cache: openCache(t, dir, expcache.ModeReadWrite), Version: version})
	if executions.Load() != 0 {
		t.Fatalf("cache not repopulated after eviction (%d executions)", executions.Load())
	}
}

func TestRunSuiteCachedReadOnly(t *testing.T) {
	dir := t.TempDir()
	var executions atomic.Int64
	entries := fakeSuite(2, &executions)
	ro := openCache(t, dir, expcache.ModeReadOnly)
	RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{},
		CacheConfig{Cache: ro, Version: "v1"})
	if executions.Load() != 2 {
		t.Fatalf("read-only cold run executed %d", executions.Load())
	}
	if st := ro.Stats(); st.Writes != 0 {
		t.Fatalf("read-only mode wrote entries: %+v", st)
	}
	// Nothing was stored, so a second read-only run recomputes.
	RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{},
		CacheConfig{Cache: openCache(t, dir, expcache.ModeReadOnly), Version: "v1"})
	if executions.Load() != 4 {
		t.Fatalf("read-only warm run found phantom entries (%d executions)", executions.Load())
	}
}

// TestRunSuiteCachedErrorsNotCached: failed experiments must not populate
// the cache.
func TestRunSuiteCachedErrorsNotCached(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	entries := []SuiteEntry{{Name: "flaky", Run: func(_ context.Context, sc Scale, seed uint64) (Result, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return fakeResult{id: "Fake flaky", body: "ok\n"}, nil
	}}}
	cc := func() CacheConfig {
		return CacheConfig{Cache: openCache(t, dir, expcache.ModeReadWrite), Version: "v1"}
	}
	outs := RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{}, cc())
	if outs[0].Err == nil {
		t.Fatal("expected the first run to fail")
	}
	outs = RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{}, cc())
	if outs[0].Err != nil || outs[0].Cached {
		t.Fatalf("second run: err=%v cached=%v (the failure must not have been cached)", outs[0].Err, outs[0].Cached)
	}
	outs = RunSuiteCached(context.Background(), entries, Small(), 1, runner.Options{}, cc())
	if !outs[0].Cached {
		t.Fatal("success was not cached")
	}
}

// TestRealEntryCacheKeyCoversScale pins canonScale against silently dropped
// fields: every Scale field change must change the key.
func TestRealEntryCacheKeyCoversScale(t *testing.T) {
	e := Suite()[0]
	base := Small()
	keys := map[expcache.Key]string{e.CacheKey("v", base, 1): "base"}
	mutate := []struct {
		name string
		f    func(*Scale)
	}{
		{"Name", func(s *Scale) { s.Name = "other" }},
		{"RunsPerClass", func(s *Scale) { s.RunsPerClass++ }},
		{"TraceTicks", func(s *Scale) { s.TraceTicks++ }},
		{"WarmupTicks", func(s *Scale) { s.WarmupTicks++ }},
		{"WorkloadScale", func(s *Scale) { s.WorkloadScale += 0.01 }},
		{"Epochs", func(s *Scale) { s.Epochs++ }},
		{"AvgRuns", func(s *Scale) { s.AvgRuns++ }},
	}
	for _, m := range mutate {
		sc := base
		m.f(&sc)
		k := e.CacheKey("v", sc, 1)
		if prev, dup := keys[k]; dup {
			t.Errorf("changing %s collides with %s", m.name, prev)
		}
		keys[k] = m.name
	}
}
