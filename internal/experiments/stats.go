package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/maya-defense/maya/internal/changepoint"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/trace"
	"github.com/maya-defense/maya/internal/workload"
)

// collectForStats captures RunsPerClass traces per app under one defense.
func collectForStats(ctx context.Context, cfg sim.Config, kind defense.Kind, classes []defense.Class, sc Scale, seed uint64) (*trace.Dataset, error) {
	d, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	ds, _ := defense.Collect(ctx, defense.CollectSpec{
		Cfg:          cfg,
		Design:       defense.NewDesign(kind, cfg, d, 20),
		Classes:      classes,
		RunsPerClass: sc.AvgRuns,
		MaxTicks:     sc.TraceTicks,
		WarmupTicks:  sc.WarmupTicks,
		Seed:         seed,
	})
	return ds, nil
}

// averagedByClass averages all traces of each label (the paper's 1,000-run
// averages of Figs 7 and 10).
func averagedByClass(ds *trace.Dataset) [][]float64 {
	out := make([][]float64, ds.NumClasses())
	byl := ds.ByLabel()
	for l := 0; l < ds.NumClasses(); l++ {
		var traces [][]float64
		for _, i := range byl[l] {
			traces = append(traces, ds.Traces[i].Samples)
		}
		out[l] = signal.AverageTraces(traces)
	}
	return out
}

// Fig7Result reproduces the summary-statistics box plots: the distribution
// of power values in the averaged per-app signals, per defense.
type Fig7Result struct {
	Defenses []string
	Classes  []string
	// Boxes[d][c] is the box plot of defense d / class c.
	Boxes [][]signal.BoxStats
	// MedianSpread[d] is max−min of class medians under defense d — the
	// "fingerprint separation" the attacker exploits; Maya GS should
	// collapse it toward zero.
	MedianSpread []float64
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "Fig 7" }

// fig7Kinds is the defense order of Fig 7.
var fig7Kinds = []defense.Kind{defense.NoisyBaseline, defense.RandomInputs, defense.MayaConstant, defense.MayaGS}

// Fig7 computes the averaged-signal statistics for the app classes on Sys1.
func Fig7(ctx context.Context, sc Scale, seed uint64) (*Fig7Result, error) {
	cfg := sim.Sys1()
	classes := defense.AppClasses(sc.WorkloadScale)
	res := &Fig7Result{}
	for _, c := range classes {
		res.Classes = append(res.Classes, c.Name)
	}
	for i, kind := range fig7Kinds {
		ds, err := collectForStats(ctx, cfg, kind, classes, sc, seed+uint64(i+1)*97)
		if err != nil {
			return nil, err
		}
		avgs := averagedByClass(ds)
		var boxes []signal.BoxStats
		lo, hi := 0.0, 0.0
		for c, avg := range avgs {
			b := signal.Box(avg)
			boxes = append(boxes, b)
			if c == 0 {
				lo, hi = b.Median, b.Median
			}
			if b.Median < lo {
				lo = b.Median
			}
			if b.Median > hi {
				hi = b.Median
			}
		}
		res.Defenses = append(res.Defenses, kind.String())
		res.Boxes = append(res.Boxes, boxes)
		res.MedianSpread = append(res.MedianSpread, hi-lo)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — box stats of per-class averaged signals\n", r.ID())
	for d, name := range r.Defenses {
		fmt.Fprintf(&b, "%s: median spread across apps = %.2f W\n", name, r.MedianSpread[d])
		for c, box := range r.Boxes[d] {
			fmt.Fprintf(&b, "  %-15s med=%6.2f IQR=%5.2f [%6.2f, %6.2f]\n",
				r.Classes[c], box.Median, box.IQR(), box.Min, box.Max)
		}
	}
	b.WriteString("expected: the spread shrinks from Noisy Baseline through Maya Constant\n")
	b.WriteString("and nearly vanishes for Maya GS (near-identical distributions).\n")
	return b.String()
}

// Fig10Result reproduces the averaged traces of blackscholes, bodytrack,
// and water_nsquared under each defense.
type Fig10Result struct {
	Defenses []string
	Apps     []string
	// Distinctness[d] is the mean pairwise RMS difference between the
	// class-averaged traces under defense d — how recognizably different
	// the apps' averages are (the quantity visible in Fig 10's panels).
	Distinctness []float64
	// MeanSpread[d] is max−min of the averaged traces' means.
	MeanSpread []float64
	Traces     [][][]float64
}

// ID implements Result.
func (r *Fig10Result) ID() string { return "Fig 10" }

// Fig10 computes averaged traces for three apps under the Fig 7 defenses.
func Fig10(ctx context.Context, sc Scale, seed uint64) (*Fig10Result, error) {
	cfg := sim.Sys1()
	apps := []string{"blackscholes", "bodytrack", "water_nsquared"}
	var classes []defense.Class
	for _, n := range apps {
		name := n
		classes = append(classes, defense.Class{Name: name, New: func() workload.Workload {
			return workload.NewApp(name).Scale(sc.WorkloadScale)
		}})
	}
	res := &Fig10Result{Apps: apps}
	for i, kind := range fig7Kinds {
		ds, err := collectForStats(ctx, cfg, kind, classes, sc, seed+uint64(i+11)*31)
		if err != nil {
			return nil, err
		}
		avgs := averagedByClass(ds)
		lo, hi := 0.0, 0.0
		for c, avg := range avgs {
			m := signal.Mean(avg)
			if c == 0 {
				lo, hi = m, m
			}
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		var dist float64
		pairs := 0
		for a := 0; a < len(avgs); a++ {
			for b := a + 1; b < len(avgs); b++ {
				n := len(avgs[a])
				if len(avgs[b]) < n {
					n = len(avgs[b])
				}
				dist += signal.RMSE(avgs[a][:n], avgs[b][:n])
				pairs++
			}
		}
		if pairs > 0 {
			dist /= float64(pairs)
		}
		res.Defenses = append(res.Defenses, kind.String())
		res.Distinctness = append(res.Distinctness, dist)
		res.MeanSpread = append(res.MeanSpread, hi-lo)
		res.Traces = append(res.Traces, avgs)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — averaged traces of %v\n", r.ID(), r.Apps)
	for d, name := range r.Defenses {
		fmt.Fprintf(&b, "%-15s mean spread=%.2f W, pairwise distinctness=%.2f W\n",
			name, r.MeanSpread[d], r.Distinctness[d])
	}
	b.WriteString("expected: only Maya GS makes the averaged traces indistinguishable\n")
	b.WriteString("(distinctness near the noise floor).\n")
	return b.String()
}

// Fig11Result reproduces the change-point analysis of blackscholes under
// each design: the detected change points should match the application's
// true phase transitions for every design except Maya GS.
type Fig11Result struct {
	Defenses []string
	// TruePhases is the number of ground-truth transitions (including
	// completion).
	TruePhases int
	// MatchScore[d] is the fraction of true transitions detected within
	// tolerance under defense d.
	MatchScore []float64
	// Detected[d] is the number of change points found.
	Detected []int
	// EndVisible[d] reports whether a change point lands near the true
	// completion time (Fig 11d: with Maya GS "it is impossible to infer
	// when the application completed").
	EndVisible []bool
}

// ID implements Result.
func (r *Fig11Result) ID() string { return "Fig 11" }

// fig11Kinds matches Fig 11's panels.
var fig11Kinds = []defense.Kind{defense.NoisyBaseline, defense.RandomInputs, defense.MayaConstant, defense.MayaGS}

// Fig11 runs blackscholes under each design and applies change-point
// detection to the defended power trace.
func Fig11(ctx context.Context, sc Scale, seed uint64) (*Fig11Result, error) {
	cfg := sim.Sys1()
	d, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for i, kind := range fig11Kinds {
		samples, truth, endSample := instrumentedRun(cfg, kind, d, sc, seed+uint64(i)*7)
		// The analyst smooths the trace first (random-input modulation is
		// fast; application phases are slow — Fig 11b's phases are visible
		// through the noise), then runs budgeted detection as with
		// findchangepts(MaxNumChanges). An unbudgeted detector under Maya
		// GS returns dozens of artificial change points, which would
		// trivially "match" everything.
		smoothed := signal.MovingAverage(samples, 15)
		budget := len(truth) + 2
		cps := changepoint.BinarySegmentation(smoothed, changepoint.CostMean, budget, 1, 8)
		tol := 15 // 0.3 s (smoothing blurs edges slightly)
		score := changepoint.MatchScore(truth, cps, tol)
		endVis := false
		if endSample > 0 {
			for _, cp := range cps {
				if abs(cp-endSample) <= tol {
					endVis = true
					break
				}
			}
		}
		res.Defenses = append(res.Defenses, kind.String())
		res.TruePhases = len(truth)
		res.MatchScore = append(res.MatchScore, score)
		res.Detected = append(res.Detected, len(cps))
		res.EndVisible = append(res.EndVisible, endVis)
	}
	return res, nil
}

// instrumentedRun executes blackscholes under the given defense while
// recording both the defended power samples and the ground-truth sample
// indices of phase transitions (including completion): the paper's Fig 11
// overlays detected change points on the known phase structure.
func instrumentedRun(cfg sim.Config, kind defense.Kind, art *core.Design, sc Scale, seed uint64) (samples []float64, transitions []int, endSample int) {
	m := sim.NewMachine(cfg, seed)
	w := workload.NewApp("blackscholes").Scale(sc.WorkloadScale)
	w.Reset(seed + 1)
	pol := defense.NewDesign(kind, cfg, art, 20).Policy(seed + 2)

	var idle workload.Idle
	m.SetInputs(pol.Decide(0, 0))
	sensor := sim.NewRAPLSensor(m)
	step := 0
	for t := 0; t < sc.WarmupTicks; t++ {
		m.Step(idle)
		if (t+1)%20 == 0 {
			step++
			m.SetInputs(pol.Decide(step, sensor.ReadW()))
		}
	}
	lastPhase := w.PhaseIndex()
	endSample = -1
	for t := 0; t < sc.TraceTicks; t++ {
		r := m.Step(w)
		if r.Finished && endSample < 0 {
			endSample = t / 20
		}
		if (t+1)%20 == 0 {
			if p := w.PhaseIndex(); p != lastPhase {
				transitions = append(transitions, len(samples)+1)
				lastPhase = p
			}
			samples = append(samples, sensor.ReadW())
			step++
			m.SetInputs(pol.Decide(step, samples[len(samples)-1]))
		}
	}
	return samples, transitions, endSample
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Render implements Result.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — change-point detection on blackscholes (%d true transitions)\n", r.ID(), r.TruePhases)
	fmt.Fprintf(&b, "%-15s %12s %10s %12s\n", "defense", "match score", "detected", "end visible")
	for i, name := range r.Defenses {
		fmt.Fprintf(&b, "%-15s %12.2f %10d %12v\n", name, r.MatchScore[i], r.Detected[i], r.EndVisible[i])
	}
	b.WriteString("expected: phases recoverable under every design except Maya GS, whose\n")
	b.WriteString("detected change points are artificial and hide the completion time.\n")
	return b.String()
}

// Fig13Result compares the distribution of mask targets with the measured
// power under Maya GS (controller tracking quality, §VII-D).
type Fig13Result struct {
	Classes        []string
	TargetBoxes    []signal.BoxStats
	MeasuredBoxes  []signal.BoxStats
	MedianAbsDelta float64
	TrackingMAD    []float64
}

// ID implements Result.
func (r *Fig13Result) ID() string { return "Fig 13" }

// Fig13 runs Maya GS over the app classes, recording both the generated
// targets and the measured power.
func Fig13(ctx context.Context, sc Scale, seed uint64) (*Fig13Result, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	classes := defense.AppClasses(sc.WorkloadScale)
	res := &Fig13Result{}
	worstDelta := 0.0
	// One pool job per class; per-run seeds are a pure function of
	// (seed, class, run), so the fan-out is deterministic.
	type classStats struct {
		target, measured signal.BoxStats
		mad              float64
	}
	perClass, err := runner.MapN(ctx, runner.Options{}, len(classes),
		func(_ context.Context, ci int, _ *rng.Stream) (classStats, error) {
			cl := classes[ci]
			var tgts, meas []float64
			var mads []float64
			for run := 0; run < max(sc.AvgRuns/4, 4); run++ {
				s := seed + uint64(ci)*101 + uint64(run)*13
				m := sim.NewMachine(cfg, s)
				w := cl.New()
				w.Reset(s + 1)
				eng := defense.NewDesign(defense.MayaGS, cfg, art, 20).Policy(s + 2)
				run := sim.Run(m, w, eng, sim.RunSpec{
					ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks, WarmupTicks: sc.WarmupTicks,
				})
				// The engine records every issued target; align with samples.
				if e, ok := eng.(interface{ MaskTargets() []float64 }); ok {
					t := e.MaskTargets()
					first := run.FirstStep
					n := len(run.DefenseSamples)
					if first+n <= len(t) {
						tgts = append(tgts, t[first:first+n]...)
						meas = append(meas, run.DefenseSamples...)
						mads = append(mads, signal.MeanAbsDeviation(run.DefenseSamples, t[first:first+n]))
					}
				}
			}
			return classStats{target: signal.Box(tgts), measured: signal.Box(meas), mad: signal.Mean(mads)}, nil
		})
	if err != nil {
		return nil, err
	}
	for ci, cs := range perClass {
		res.Classes = append(res.Classes, classes[ci].Name)
		res.TargetBoxes = append(res.TargetBoxes, cs.target)
		res.MeasuredBoxes = append(res.MeasuredBoxes, cs.measured)
		res.TrackingMAD = append(res.TrackingMAD, cs.mad)
		if d := absF(cs.target.Median - cs.measured.Median); d > worstDelta {
			worstDelta = d
		}
	}
	res.MedianAbsDelta = worstDelta
	return res, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render implements Result.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mask targets vs measured power under Maya GS\n", r.ID())
	fmt.Fprintf(&b, "%-15s %18s %18s %10s\n", "app", "target med (IQR)", "measured med (IQR)", "MAD (W)")
	for i, c := range r.Classes {
		fmt.Fprintf(&b, "%-15s %10.2f (%4.2f) %11.2f (%4.2f) %10.2f\n",
			c, r.TargetBoxes[i].Median, r.TargetBoxes[i].IQR(),
			r.MeasuredBoxes[i].Median, r.MeasuredBoxes[i].IQR(), r.TrackingMAD[i])
	}
	fmt.Fprintf(&b, "worst median gap: %.2f W — the formal controller makes measured power\n", r.MedianAbsDelta)
	b.WriteString("track the generated mask (paper: \"accurate tracking is what makes Maya\n")
	b.WriteString("effectively re-shape the system's power\").\n")
	return b.String()
}
