// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI–§VII) on the simulated machines. Each experiment is a
// function returning a structured result plus a textual rendering, so the
// same code drives `go test -bench`, cmd/experiments, and the
// EXPERIMENTS.md report.
//
// Every experiment accepts a Scale: Small() runs in seconds for tests and
// benchmarks; Paper() approaches the paper's data volumes (fewer traces
// than the paper's 1,000/class, but enough for stable statistics).
package experiments

import (
	"fmt"
	"sync"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/sim"
)

// Scale sets experiment sizes.
type Scale struct {
	Name string
	// RunsPerClass is the number of traces captured per label.
	RunsPerClass int
	// TraceTicks is the recorded duration of each run in 1 ms ticks.
	TraceTicks int
	// WarmupTicks precedes each recording (defense always on).
	WarmupTicks int
	// WorkloadScale shrinks the synthetic programs.
	WorkloadScale float64
	// Epochs bounds MLP training.
	Epochs int
	// AvgRuns is the number of traces averaged for the signal-statistics
	// figures (the paper averages 1,000).
	AvgRuns int
}

// Small returns the test/bench scale (seconds per experiment).
func Small() Scale {
	return Scale{
		Name:          "small",
		RunsPerClass:  40,
		TraceTicks:    24000,
		WarmupTicks:   2000,
		WorkloadScale: 0.15,
		Epochs:        40,
		AvgRuns:       40,
	}
}

// Paper returns the full scale used for the EXPERIMENTS.md report.
func Paper() Scale {
	return Scale{
		Name:          "paper",
		RunsPerClass:  150,
		TraceTicks:    24000,
		WarmupTicks:   2000,
		WorkloadScale: 0.15,
		Epochs:        60,
		AvgRuns:       200,
	}
}

// designCache shares the expensive identification + synthesis artifact per
// machine across experiments.
var (
	designMu    sync.Mutex
	designCache = map[string]*core.Design{}
)

// DesignFor returns the cached Maya design for a machine configuration.
func DesignFor(cfg sim.Config) (*core.Design, error) {
	designMu.Lock()
	defer designMu.Unlock()
	if d, ok := designCache[cfg.Name]; ok {
		return d, nil
	}
	d, err := core.DesignFor(cfg, core.DefaultDesignOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: design for %s: %w", cfg.Name, err)
	}
	designCache[cfg.Name] = d
	return d, nil
}

// Result is implemented by all experiment outputs.
type Result interface {
	// ID returns the paper artifact this reproduces ("Fig 6", "Table II").
	ID() string
	// Render returns the human-readable report section.
	Render() string
}
