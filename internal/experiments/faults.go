package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/workload"
)

// FaultRow is one fault plan's outcome in the robustness sweep.
type FaultRow struct {
	// Plan is the canned plan name ("none" for the fault-free control row).
	Plan string
	// MeanAbsErrW is the mean |target − consumed measurement| over the
	// engine's flight records (warmup excluded).
	MeanAbsErrW float64
	// Injected is what the injector actually fired.
	Injected fault.Stats
	// Rejects / HoldExhausted / Reinits are the engine guard's reactions.
	Rejects, HoldExhausted, Reinits uint64
	// AppCorr is |Pearson| between the defended power trace and the same
	// workload's undefended profile — the leak proxy.
	AppCorr float64
	// Finite reports that every emitted sample, target, and knob command
	// was finite (no NaN/Inf escaped the loop).
	Finite bool
}

// FaultSweepResult reproduces the robustness claim behind §V/§VI: the
// closed loop keeps the measured power locked to the mask — and keeps
// hiding the application — when the plant misbehaves, which open-loop
// defenses cannot do.
type FaultSweepResult struct {
	Machine string
	Rows    []FaultRow
}

// ID implements Result.
func (r *FaultSweepResult) ID() string { return "Robustness fault sweep" }

// FaultSweep runs Maya GS on Sys1 under every canned fault plan (plus a
// fault-free control row) with the measurement guard enabled. Machine and
// workload seeds are shared across rows so that only the injected faults
// (and the engine secret) differ.
func FaultSweep(sc Scale, seed uint64) (*FaultSweepResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	machineSeed := rng.ChildSeed(seed, 1)
	wlSeed := rng.ChildSeed(seed, 2)

	newWorkload := func() workload.Workload {
		w := workload.NewApp("blackscholes").Scale(sc.WorkloadScale)
		w.Reset(wlSeed)
		return w
	}

	// Undefended reference profile for the leak proxy.
	base := sim.Run(sim.NewMachine(cfg, machineSeed), newWorkload(),
		sim.NewBaselinePolicy(cfg),
		sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks})

	plans := append([]fault.Plan{{Name: "none"}}, fault.Plans()...)
	res := &FaultSweepResult{Machine: cfg.Name}
	for i, plan := range plans {
		engSeed := rng.ChildSeed(seed, 100+uint64(i))
		eng := core.NewGSEngine(art, cfg, 20, engSeed)
		guard := core.DefaultGuard(cfg)
		eng.SetGuard(&guard)
		reg := telemetry.NewRegistry()
		em := core.NewEngineMetrics(reg)
		eng.SetMetrics(em)
		flight := telemetry.NewFlightRecorder(sc.WarmupTicks/20 + sc.TraceTicks/20 + 8)
		eng.SetFlight(flight)
		eng.Reset(engSeed)

		inj := fault.MustNew(plan, engSeed)
		m := sim.NewMachine(cfg, machineSeed)
		inj.Attach(m)
		run := sim.Run(m, newWorkload(), inj.Policy(eng), sim.RunSpec{
			ControlPeriodTicks: 20,
			MaxTicks:           sc.TraceTicks,
			WarmupTicks:        sc.WarmupTicks,
			DefenseSensor:      inj.Sensor(sim.NewRAPLSensor(m)),
		})

		row := FaultRow{
			Plan:          plan.Name,
			Injected:      inj.Stats(),
			Rejects:       em.GlitchRejects.Value(),
			HoldExhausted: em.HoldExhausted.Value(),
			Reinits:       em.StateReinits.Value(),
			Finite:        true,
		}
		var absErr float64
		n := 0
		for _, rec := range flight.Snapshot() {
			if rec.Step < run.FirstStep {
				continue
			}
			if !finite(rec.MeasuredW) || !finite(rec.TargetW) || !finite(rec.ErrorW) {
				row.Finite = false
			}
			absErr += math.Abs(rec.ErrorW)
			n++
		}
		if n > 0 {
			row.MeanAbsErrW = absErr / float64(n)
		}
		for _, v := range run.DefenseSamples {
			// Raw samples may carry injected NaN spikes before the guard —
			// the engine's *outputs* must stay finite.
			_ = v
		}
		for _, in := range run.InputTrace {
			if !finite(in.FreqGHz) || !finite(in.Idle) || !finite(in.Balloon) {
				row.Finite = false
			}
		}
		nn := len(run.DefenseSamples)
		if len(base.DefenseSamples) < nn {
			nn = len(base.DefenseSamples)
		}
		prot := make([]float64, 0, nn)
		ref := make([]float64, 0, nn)
		for t := 0; t < nn; t++ {
			// The leak proxy must tolerate non-finite raw sensor readings
			// (they occur under the non-finite sensor plans).
			if finite(run.DefenseSamples[t]) && finite(base.DefenseSamples[t]) {
				prot = append(prot, run.DefenseSamples[t])
				ref = append(ref, base.DefenseSamples[t])
			}
		}
		if len(prot) > 1 {
			row.AppCorr = math.Abs(signal.Pearson(prot, ref))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Render implements Result.
func (r *FaultSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — Maya GS on %s under injected substrate faults (guard on)\n\n", r.ID(), r.Machine)
	fmt.Fprintf(&b, "%-16s %10s %9s %9s %8s %8s %8s %7s\n",
		"plan", "mean|e| W", "injected", "rejects", "holdout", "reinits", "appcorr", "finite")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.2f %9d %9d %8d %8d %8.2f %7v\n",
			row.Plan, row.MeanAbsErrW, row.Injected.Total(), row.Rejects,
			row.HoldExhausted, row.Reinits, row.AppCorr, row.Finite)
	}
	b.WriteString("\nexpected: every row finite; faulted rows track within a few watts of the\n")
	b.WriteString("fault-free row; app correlation stays low (the mask, not the workload,\n")
	b.WriteString("dominates the trace) — closed-loop rejection is what open-loop noise\n")
	b.WriteString("injection cannot provide\n")
	return b.String()
}
