package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
)

// Fig15Result reproduces the PLATYPUS-style experiment (§VII-F): tight
// loops of imul/mov/xor are distinguishable through average power on the
// Baseline but indistinguishable under Maya GS.
type Fig15Result struct {
	Instr []string
	// Mean power of each instruction's averaged trace, per design.
	BaselineMeans []float64
	MayaMeans     []float64
	// Separation = (max−min of class means) / pooled within-class std of
	// the averaged traces; > 1 means clearly distinguishable.
	BaselineSeparation float64
	MayaSeparation     float64
}

// ID implements Result.
func (r *Fig15Result) ID() string { return "Fig 15" }

// Fig15 runs the instruction loops under Baseline and Maya GS, averaging
// many runs as the paper does (200 repetitions).
func Fig15(ctx context.Context, sc Scale, seed uint64) (*Fig15Result, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	classes := defense.InstrClasses(1000) // effectively endless tight loops
	res := &Fig15Result{}
	for _, c := range classes {
		res.Instr = append(res.Instr, c.Name)
	}

	measure := func(kind defense.Kind, seedOff uint64) ([]float64, float64) {
		ds, _ := defense.Collect(ctx, defense.CollectSpec{
			Cfg:          cfg,
			Design:       defense.NewDesign(kind, cfg, art, 20),
			Classes:      classes,
			RunsPerClass: sc.AvgRuns,
			MaxTicks:     2000, // 50 samples of 20 ms, plus headroom
			WarmupTicks:  sc.WarmupTicks,
			Seed:         seed + seedOff,
		})
		byl := ds.ByLabel()
		means := make([]float64, len(classes))
		pooledVar := 0.0
		for l := range classes {
			var traces [][]float64
			for _, i := range byl[l] {
				traces = append(traces, ds.Traces[i].Samples)
			}
			avg := signal.AverageTraces(traces)
			means[l] = signal.Mean(avg)
			pooledVar += signal.Variance(avg)
		}
		pooledStd := math.Sqrt(pooledVar / float64(len(classes)))
		lo, hi := means[0], means[0]
		for _, m := range means {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if pooledStd < 1e-9 {
			pooledStd = 1e-9
		}
		return means, (hi - lo) / pooledStd
	}

	res.BaselineMeans, res.BaselineSeparation = measure(defense.Baseline, 11)
	res.MayaMeans, res.MayaSeparation = measure(defense.MayaGS, 22)
	return res, nil
}

// Render implements Result.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — PLATYPUS-style instruction distinguishing (multi-run averages)\n", r.ID())
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "instr", "baseline (W)", "Maya GS (W)")
	for i, n := range r.Instr {
		fmt.Fprintf(&b, "%-10s %14.2f %14.2f\n", n, r.BaselineMeans[i], r.MayaMeans[i])
	}
	fmt.Fprintf(&b, "separation (spread/std): baseline %.2f vs Maya GS %.2f\n",
		r.BaselineSeparation, r.MayaSeparation)
	b.WriteString("expected: instructions clearly separated on Baseline, practically\n")
	b.WriteString("indistinguishable under Maya GS (paper Fig 15).\n")
	return b.String()
}
