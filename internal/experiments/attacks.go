package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/maya-defense/maya/internal/attack"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/sim"
)

// AttackOutcome is one defense's confusion-matrix result.
type AttackOutcome struct {
	Defense  string
	Accuracy float64
	Matrix   [][]float64
}

// AttackResult covers Figs 6, 8, and 9: one classification attack evaluated
// against the defended systems.
type AttackResult struct {
	Artifact string // "Fig 6", "Fig 8", "Fig 9"
	Goal     string
	Machine  string
	Classes  []string
	Chance   float64
	Outcomes []AttackOutcome
	// PaperAccuracies records the paper's reported numbers for comparison
	// in the rendered report (same defense order as Outcomes).
	PaperAccuracies []float64
}

// ID implements Result.
func (r *AttackResult) ID() string { return r.Artifact }

// attackKinds is the defense order of Figs 6/8/9.
var attackKinds = []defense.Kind{defense.RandomInputs, defense.MayaConstant, defense.MayaGS}

// runAttack collects per-defense datasets and runs the classifier.
func runAttack(ctx context.Context, artifact, goal string, cfg sim.Config, classes []defense.Class,
	spec attack.Spec, sc Scale, outlet bool, attackPeriod int, paper []float64, seed uint64) (*AttackResult, error) {

	d, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.Name
	}
	res := &AttackResult{
		Artifact: artifact, Goal: goal, Machine: cfg.Name,
		Classes: names, Chance: 1 / float64(len(classes)),
		PaperAccuracies: paper,
	}
	spec.Train.Epochs = sc.Epochs
	for i, kind := range attackKinds {
		ds, _ := defense.Collect(ctx, defense.CollectSpec{
			Cfg:               cfg,
			Design:            defense.NewDesign(kind, cfg, d, 20),
			Classes:           classes,
			RunsPerClass:      sc.RunsPerClass,
			MaxTicks:          sc.TraceTicks,
			WarmupTicks:       sc.WarmupTicks,
			AttackPeriodTicks: attackPeriod,
			Outlet:            outlet,
			Seed:              seed + uint64(i+1)*1_000_000_007,
		})
		ar, err := attack.Run(ds, spec)
		if err != nil {
			return nil, fmt.Errorf("%s vs %v: %w", artifact, kind, err)
		}
		res.Outcomes = append(res.Outcomes, AttackOutcome{
			Defense:  kind.String(),
			Accuracy: ar.AverageAccuracy,
			Matrix:   ar.Confusion.Matrix,
		})
	}
	return res, nil
}

// Fig6 runs the running-application detection attack (11 PARSEC/SPLASH
// classes on Sys1, RAPL counters).
func Fig6(ctx context.Context, sc Scale, seed uint64) (*AttackResult, error) {
	spec := attack.DefaultSpec()
	spec.WindowLen = sc.TraceTicks / 20 / 5 // one full-trace window
	return runAttack(ctx, "Fig 6", "detect the running application", sim.Sys1(),
		defense.AppClasses(sc.WorkloadScale), spec, sc, false, 20,
		[]float64{0.94, 0.62, 0.14}, seed)
}

// Fig8 runs the video-identification attack (4 encodes on Sys2).
func Fig8(ctx context.Context, sc Scale, seed uint64) (*AttackResult, error) {
	spec := attack.DefaultSpec()
	spec.WindowLen = sc.TraceTicks / 20 / 5
	// Sys2's encoder runs a larger machine; scale videos up slightly so the
	// encode spans the window.
	return runAttack(ctx, "Fig 8", "identify the video being encoded", sim.Sys2(),
		defense.VideoClasses(sc.WorkloadScale*2), spec, sc, false, 20,
		[]float64{0.72, 0.90, 0.24}, seed)
}

// Fig9 runs the webpage-identification attack (7 pages on Sys3, AC outlet
// tap at 50 ms, FFT features — §VI-A attack 3).
func Fig9(ctx context.Context, sc Scale, seed uint64) (*AttackResult, error) {
	spec := attack.FFTSpec()
	// 50 ms samples; one whole-trace window — the visit's envelope (fetch,
	// layout, steady-state) lives in the low-frequency bins, and its level
	// in the mean feature.
	spec.WindowLen = sc.TraceTicks / 50
	return runAttack(ctx, "Fig 9", "identify the webpage visited", sim.Sys3(),
		defense.PageClasses(sc.WorkloadScale*8), spec, sc, true, 50,
		[]float64{0.51, 0.40, 0.10}, seed)
}

// Render implements Result.
func (r *AttackResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s), %d classes, chance %.0f%%\n",
		r.Artifact, r.Goal, r.Machine, len(r.Classes), 100*r.Chance)
	fmt.Fprintf(&b, "%-15s %10s %12s\n", "defense", "measured", "paper")
	for i, o := range r.Outcomes {
		paper := "-"
		if i < len(r.PaperAccuracies) {
			paper = fmt.Sprintf("%.0f%%", 100*r.PaperAccuracies[i])
		}
		fmt.Fprintf(&b, "%-15s %9.0f%% %12s\n", o.Defense, 100*o.Accuracy, paper)
	}
	// Confusion matrix of the proposed defense (last outcome).
	if n := len(r.Outcomes); n > 0 {
		b.WriteString("Maya GS confusion matrix (rows = true class):\n")
		for _, row := range r.Outcomes[n-1].Matrix {
			for _, v := range row {
				fmt.Fprintf(&b, " %5.2f", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig12Result reproduces the attacker sampling-interval sweep against
// Maya GS (defense fixed at 20 ms).
type Fig12Result struct {
	Chance     float64
	IntervalMS []int
	Accuracy   []float64
}

// ID implements Result.
func (r *Fig12Result) ID() string { return "Fig 12" }

// Fig12 repeats the application-detection attack on Maya GS with attacker
// sampling intervals of 2, 5, 10, and 20 ms.
func Fig12(ctx context.Context, sc Scale, seed uint64) (*Fig12Result, error) {
	cfg := sim.Sys1()
	d, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	classes := defense.AppClasses(sc.WorkloadScale)
	res := &Fig12Result{Chance: 1 / float64(len(classes))}
	for _, ms := range []int{2, 5, 10, 20} {
		ds, _ := defense.Collect(ctx, defense.CollectSpec{
			Cfg:               cfg,
			Design:            defense.NewDesign(defense.MayaGS, cfg, d, 20),
			Classes:           classes,
			RunsPerClass:      sc.RunsPerClass,
			MaxTicks:          sc.TraceTicks,
			WarmupTicks:       sc.WarmupTicks,
			AttackPeriodTicks: ms,
			Seed:              seed + uint64(ms)*13,
		})
		spec := attack.DefaultSpec()
		// Keep the MLP input size constant across rates: average more
		// aggressively at faster sampling (the paper's 5-sample averaging
		// at 20 ms becomes 50 samples at 2 ms).
		spec.AvgBlock = 5 * 20 / ms
		spec.WindowLen = sc.TraceTicks / 20 / 5
		spec.Train.Epochs = sc.Epochs
		ar, err := attack.Run(ds, spec)
		if err != nil {
			return nil, err
		}
		res.IntervalMS = append(res.IntervalMS, ms)
		res.Accuracy = append(res.Accuracy, ar.AverageAccuracy)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — attacker sampling sweep vs Maya GS (chance %.0f%%)\n", r.ID(), 100*r.Chance)
	for i := range r.IntervalMS {
		fmt.Fprintf(&b, "  %2d ms: %5.1f%%\n", r.IntervalMS[i], 100*r.Accuracy[i])
	}
	b.WriteString("expected: accuracy stays near chance at every sampling interval\n")
	b.WriteString("(paper: faster sampling does not improve detection).\n")
	return b.String()
}
