package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/maya-defense/maya/internal/attack"
	"github.com/maya-defense/maya/internal/control"
	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/dtw"
	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
	"github.com/maya-defense/maya/internal/trace"
	"github.com/maya-defense/maya/internal/workload"
)

// maskDesign adapts an arbitrary mask generator into a defense design for
// the ablation experiments.
type maskDesign struct {
	art *core.Design
	cfg sim.Config
	mk  func(seed uint64) mask.Generator
}

func (m *maskDesign) Policy(seed uint64) sim.Policy {
	eng := core.NewEngine(m.art.Controller.Clone(), m.mk(seed), m.cfg.Knobs())
	eng.Reset(seed)
	return eng
}

// collectWithPolicy mirrors defense.Collect for custom policy factories,
// fanning the (label, run) grid across the worker pool. Per-run seeds are a
// pure function of (seed, label, run), so results are identical at any
// worker count.
func collectWithPolicy(ctx context.Context, cfg sim.Config, factory interface {
	Policy(seed uint64) sim.Policy
}, classes []defense.Class, sc Scale, seed uint64, maxTicks int) *trace.Dataset {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.Name
	}
	ds := &trace.Dataset{ClassNames: names}
	n := len(classes) * sc.RunsPerClass
	samples, _ := runner.MapN(ctx, runner.Options{}, n,
		func(jctx context.Context, i int, _ *rng.Stream) ([]float64, error) {
			label, run := i/sc.RunsPerClass, i%sc.RunsPerClass
			base := seed + uint64(label)*1_000_003 + uint64(run)*7_919
			m := sim.NewMachine(cfg, base+1)
			w := classes[label].New()
			w.Reset(base + 2)
			att := &sim.Sampler{Sensor: sim.NewRAPLSensor(m), PeriodTicks: 20}
			pol := factory.Policy(base + 3)
			if tr := telemetry.ActiveTrace(); tr.Enabled() {
				if eng, ok := pol.(*core.Engine); ok {
					eng.SetTrace(tr, telemetry.SpanFromContext(jctx))
				}
			}
			sim.Run(m, w, pol, sim.RunSpec{
				ControlPeriodTicks: 20,
				MaxTicks:           maxTicks,
				WarmupTicks:        sc.WarmupTicks,
				Samplers:           []*sim.Sampler{att},
			})
			return att.Samples, nil
		})
	for i, s := range samples {
		ds.Add(i/sc.RunsPerClass, 20, s)
	}
	return ds
}

// MaskAblationResult evaluates every mask family under the same formal
// controller against the application-detection attack — the Table II
// argument made quantitative.
type MaskAblationResult struct {
	Chance   float64
	Families []string
	Accuracy []float64
}

// ID implements Result.
func (r *MaskAblationResult) ID() string { return "Ablation: mask family" }

// AblationMasks attacks each mask family with the window classifier.
func AblationMasks(ctx context.Context, sc Scale, seed uint64) (*MaskAblationResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	band := art.Band
	hold := mask.DefaultHold()
	sampleHz := 50.0
	families := []struct {
		name string
		mk   func(seed uint64) mask.Generator
	}{
		{"constant", func(uint64) mask.Generator { return mask.NewConstant(band.Min + 0.4*band.Width()) }},
		{"uniform", func(s uint64) mask.Generator { return mask.NewUniformRandom(band, hold, s) }},
		{"gaussian", func(s uint64) mask.Generator { return mask.NewGaussian(band, hold, s) }},
		{"sinusoid", func(s uint64) mask.Generator { return mask.NewSinusoid(band, hold, sampleHz, s) }},
		{"gaussian-sinusoid", func(s uint64) mask.Generator { return mask.NewGaussianSinusoid(band, hold, sampleHz, s) }},
	}
	// A small diverse class subset keeps the ablation tractable.
	all := defense.AppClasses(sc.WorkloadScale)
	classes := []defense.Class{all[0], all[2], all[5], all[6], all[9]}

	res := &MaskAblationResult{Chance: 1 / float64(len(classes))}
	spec := attack.DefaultSpec()
	spec.WindowLen = sc.TraceTicks / 20 / 5
	spec.Train.Epochs = sc.Epochs
	for i, f := range families {
		md := &maskDesign{art: art, cfg: cfg, mk: f.mk}
		ds := collectWithPolicy(ctx, cfg, md, classes, sc, seed+uint64(i+1)*65537, sc.TraceTicks)
		ar, err := attack.Run(ds, spec)
		if err != nil {
			return nil, err
		}
		res.Families = append(res.Families, f.name)
		res.Accuracy = append(res.Accuracy, ar.AverageAccuracy)
	}
	return res, nil
}

// Render implements Result.
func (r *MaskAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — attack accuracy per mask family (chance %.0f%%)\n", r.ID(), 100*r.Chance)
	for i, f := range r.Families {
		fmt.Fprintf(&b, "  %-18s %5.1f%%\n", f, 100*r.Accuracy[i])
	}
	b.WriteString("expected: the gaussian sinusoid is at or near the chance floor; the\n")
	b.WriteString("degenerate masks (constant especially) leak (§IV-C / Table II).\n")
	return b.String()
}

// GuardbandAblationResult sweeps the uncertainty guardband (§V-A: the
// designer evaluates several choices; the paper picks 40%).
type GuardbandAblationResult struct {
	Guardbands  []float64
	TrackingMAD []float64
	SettleSteps []int
}

// ID implements Result.
func (r *GuardbandAblationResult) ID() string { return "Ablation: guardband" }

// AblationGuardband synthesizes controllers at several guardbands and
// measures GS-mask tracking error on the real (simulated) machine.
func AblationGuardband(ctx context.Context, sc Scale, seed uint64) (*GuardbandAblationResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	res := &GuardbandAblationResult{}
	for _, gb := range []float64{0.0, 0.2, 0.4, 0.8, 1.6} {
		spec := control.DefaultSpec(3)
		spec.Guardband = gb
		ctl, rep, err := control.Synthesize(art.Plant, spec)
		if err != nil {
			return nil, fmt.Errorf("guardband %.1f: %w", gb, err)
		}
		gen := mask.NewGaussianSinusoid(art.Band, mask.DefaultHold(), 50, seed)
		eng := core.NewEngine(ctl, gen, cfg.Knobs())
		eng.Reset(seed)
		m := sim.NewMachine(cfg, seed)
		w := workload.NewApp("bodytrack").Scale(sc.WorkloadScale)
		w.Reset(seed)
		run := sim.Run(m, w, eng, sim.RunSpec{
			ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks, WarmupTicks: sc.WarmupTicks,
		})
		n := len(run.DefenseSamples)
		t := eng.MaskTargets()[run.FirstStep : run.FirstStep+n]
		res.Guardbands = append(res.Guardbands, gb)
		res.TrackingMAD = append(res.TrackingMAD, signal.MeanAbsDeviation(run.DefenseSamples, t))
		res.SettleSteps = append(res.SettleSteps, rep.SettleSteps)
	}
	return res, nil
}

// Render implements Result.
func (r *GuardbandAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — tracking quality vs uncertainty guardband\n", r.ID())
	for i := range r.Guardbands {
		fmt.Fprintf(&b, "  guardband %4.0f%%: MAD %.2f W, predicted settle %d periods\n",
			100*r.Guardbands[i], r.TrackingMAD[i], r.SettleSteps[i])
	}
	b.WriteString("expected: larger guardbands detune the loop (slower settling); the\n")
	b.WriteString("paper's 40%% sits in the flat region of the tradeoff.\n")
	return b.String()
}

// ActuatorAblationResult removes actuators one at a time (§V lists DVFS,
// idle injection, and the balloon as the three knobs; all are needed for
// full band coverage).
type ActuatorAblationResult struct {
	Configs     []string
	TrackingMAD []float64
}

// ID implements Result.
func (r *ActuatorAblationResult) ID() string { return "Ablation: actuators" }

// lockInputs wraps an engine and pins selected actuators at their rest
// values.
type lockInputs struct {
	inner       sim.Policy
	cfg         sim.Config
	useIdle     bool
	useBalloon  bool
	useDVFSOnly bool
}

func (l *lockInputs) Decide(step int, powerW float64) sim.Inputs {
	in := l.inner.Decide(step, powerW)
	if !l.useIdle {
		in.Idle = 0
	}
	if !l.useBalloon {
		in.Balloon = 0
	}
	return in
}

// AblationActuators measures GS tracking with actuator subsets.
func AblationActuators(ctx context.Context, sc Scale, seed uint64) (*ActuatorAblationResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name          string
		idle, balloon bool
	}{
		{"dvfs only", false, false},
		{"dvfs+idle", true, false},
		{"dvfs+balloon", false, true},
		{"all three", true, true},
	}
	res := &ActuatorAblationResult{}
	for _, c := range cases {
		eng := core.NewGSEngine(art, cfg, 20, seed)
		eng.Reset(seed)
		pol := &lockInputs{inner: eng, cfg: cfg, useIdle: c.idle, useBalloon: c.balloon}
		m := sim.NewMachine(cfg, seed)
		w := workload.NewApp("bodytrack").Scale(sc.WorkloadScale)
		w.Reset(seed)
		run := sim.Run(m, w, pol, sim.RunSpec{
			ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks, WarmupTicks: sc.WarmupTicks,
		})
		n := len(run.DefenseSamples)
		t := eng.MaskTargets()[run.FirstStep : run.FirstStep+n]
		res.Configs = append(res.Configs, c.name)
		res.TrackingMAD = append(res.TrackingMAD, signal.MeanAbsDeviation(run.DefenseSamples, t))
	}
	return res, nil
}

// Render implements Result.
func (r *ActuatorAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — GS tracking error by actuator subset\n", r.ID())
	for i, c := range r.Configs {
		fmt.Fprintf(&b, "  %-14s MAD %.2f W\n", c, r.TrackingMAD[i])
	}
	b.WriteString("expected: all three inputs track best; DVFS alone cannot cover the\n")
	b.WriteString("mask band (§IV-B: \"the controller has the ability to change multiple\n")
	b.WriteString("inputs at a time, which increases control accuracy\").\n")
	return b.String()
}

// NholdAblationResult sweeps the paper's Nhold parameter (how long mask
// parameters persist, §V-B: 6–120 samples): short holds spread the spectrum
// but destroy the peaks (everything smears); long holds give clean peaks
// but fewer distinct phases per trace and slower time-domain variation.
type NholdAblationResult struct {
	Ranges      []string
	MeanChange  []float64 // std of per-window means (time-domain phases)
	Peaks       []float64 // mean prominent peaks per analysis window
	Flatness    []float64 // mean spectral flatness per window
	TrackingMAD []float64 // GS tracking error on the machine
}

// ID implements Result.
func (r *NholdAblationResult) ID() string { return "Ablation: Nhold" }

// AblationNhold evaluates hold ranges around the paper's 6–120 choice.
func AblationNhold(ctx context.Context, sc Scale, seed uint64) (*NholdAblationResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	res := &NholdAblationResult{}
	for _, h := range []mask.HoldRange{
		{Lo: 2, Hi: 8},
		{Lo: 6, Hi: 120}, // the paper's range
		{Lo: 60, Hi: 600},
	} {
		gen := mask.NewGaussianSinusoid(art.Band, h, 50, seed)
		x := mask.Generate(gen, 6000)
		var means []float64
		for _, w := range signal.Windows(x, 50) {
			means = append(means, signal.Mean(w))
		}
		var flat, peaks float64
		ws := signal.Windows(x, 250)
		for _, w := range ws {
			_, mags := signal.Spectrum(w, 50)
			flat += signal.SpectralFlatness(mags)
			peaks += float64(signal.SpectralPeaks(mags))
		}
		if len(ws) > 0 {
			flat /= float64(len(ws))
			peaks /= float64(len(ws))
		}

		// Tracking with this hold range.
		gen2 := mask.NewGaussianSinusoid(art.Band, h, 50, seed)
		eng := core.NewEngine(art.Controller.Clone(), gen2, cfg.Knobs())
		eng.Reset(seed)
		m := sim.NewMachine(cfg, seed)
		w := workload.NewApp("bodytrack").Scale(sc.WorkloadScale)
		w.Reset(seed)
		run := sim.Run(m, w, eng, sim.RunSpec{
			ControlPeriodTicks: 20, MaxTicks: sc.TraceTicks, WarmupTicks: sc.WarmupTicks,
		})
		n := len(run.DefenseSamples)
		t := eng.MaskTargets()[run.FirstStep : run.FirstStep+n]

		res.Ranges = append(res.Ranges, fmt.Sprintf("[%d,%d]", h.Lo, h.Hi))
		res.MeanChange = append(res.MeanChange, signal.StdDev(means))
		res.Peaks = append(res.Peaks, peaks)
		res.Flatness = append(res.Flatness, flat)
		res.TrackingMAD = append(res.TrackingMAD, signal.MeanAbsDeviation(run.DefenseSamples, t))
	}
	return res, nil
}

// Render implements Result.
func (r *NholdAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mask properties and tracking vs parameter hold range\n", r.ID())
	fmt.Fprintf(&b, "%-12s %12s %8s %10s %10s\n", "Nhold", "mean-change", "peaks", "flatness", "MAD (W)")
	for i := range r.Ranges {
		fmt.Fprintf(&b, "%-12s %12.2f %8.2f %10.4f %10.2f\n",
			r.Ranges[i], r.MeanChange[i], r.Peaks[i], r.Flatness[i], r.TrackingMAD[i])
	}
	b.WriteString("expected: the paper's [6,120] balances time-domain phase variety\n")
	b.WriteString("(mean-change), spectral peaks, and trackability; very short holds lose\n")
	b.WriteString("peaks, very long holds lose phase variety.\n")
	return b.String()
}

// DTWResult reproduces the §VII-B claim that dynamic time warping also
// fails to identify applications under Maya GS.
type DTWResult struct {
	Chance           float64
	BaselineAccuracy float64
	MayaGSAccuracy   float64
}

// ID implements Result.
func (r *DTWResult) ID() string { return "§VII-B (DTW)" }

// DTWAnalysis runs 1-NN DTW classification on baseline and GS traces.
func DTWAnalysis(ctx context.Context, sc Scale, seed uint64) (*DTWResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	all := defense.AppClasses(sc.WorkloadScale)
	classes := []defense.Class{all[0], all[2], all[9]}
	runs := max(sc.RunsPerClass/5, 6)

	eval := func(kind defense.Kind, off uint64) float64 {
		ds, _ := defense.Collect(ctx, defense.CollectSpec{
			Cfg:          cfg,
			Design:       defense.NewDesign(kind, cfg, art, 20),
			Classes:      classes,
			RunsPerClass: runs,
			MaxTicks:     sc.TraceTicks,
			WarmupTicks:  sc.WarmupTicks,
			Seed:         seed + off,
		})
		// Leave-one-out 1-NN with downsampled traces (DTW is quadratic).
		down := func(x []float64) []float64 { return signal.AverageBlocks(x, 10) }
		correct, total := 0, 0
		for i, tr := range ds.Traces {
			refs := map[int][][]float64{}
			for j, other := range ds.Traces {
				if j == i {
					continue
				}
				refs[other.Label] = append(refs[other.Label], down(other.Samples))
			}
			if dtw.NearestNeighbor(down(tr.Samples), refs) == tr.Label {
				correct++
			}
			total++
		}
		return float64(correct) / float64(total)
	}

	return &DTWResult{
		Chance:           1 / float64(len(classes)),
		BaselineAccuracy: eval(defense.Baseline, 1),
		MayaGSAccuracy:   eval(defense.MayaGS, 2),
	}, nil
}

// Render implements Result.
func (r *DTWResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — 1-NN DTW classification (chance %.0f%%)\n", r.ID(), 100*r.Chance)
	fmt.Fprintf(&b, "  baseline: %5.1f%%\n", 100*r.BaselineAccuracy)
	fmt.Fprintf(&b, "  Maya GS:  %5.1f%%\n", 100*r.MayaGSAccuracy)
	b.WriteString("expected: DTW identifies apps on the baseline but not under Maya GS\n")
	b.WriteString("(paper: \"none of these methods was able to identify the true\n")
	b.WriteString("information carrying patterns with Maya GS\").\n")
	return b.String()
}
