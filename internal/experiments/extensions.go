package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/covert"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

// CovertResult reproduces the §I headline: the remote power covert channel
// (Shao et al. [63]) works across the power delivery network on an
// undefended machine and is destroyed when Maya runs.
type CovertResult struct {
	Bits        int
	BitMS       float64
	BaselineBER float64
	MayaBER     float64
}

// ID implements Result.
func (r *CovertResult) ID() string { return "§I covert channel (Shao et al.)" }

// CovertChannel runs the OOK power channel against the outlet receiver.
func CovertChannel(sc Scale, seed uint64) (*CovertResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	nbits := 64
	if sc.RunsPerClass >= 100 {
		nbits = 256
	}
	bits := covert.RandomBits(nbits, seed)
	const bitTicks = 480

	base := covert.Run(cfg, sim.NewBaselinePolicy(cfg), bits, bitTicks, 10, 500, seed)
	eng := core.NewGSEngine(art, cfg, 20, seed+99)
	eng.Reset(seed + 99)
	defended := covert.Run(cfg, eng, bits, bitTicks, 10, sc.WarmupTicks, seed)

	return &CovertResult{
		Bits:        nbits,
		BitMS:       float64(bitTicks),
		BaselineBER: base.BER,
		MayaBER:     defended.BER,
	}, nil
}

// Render implements Result.
func (r *CovertResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — OOK power covert channel, %d bits at %.0f ms/bit\n", r.ID(), r.Bits, r.BitMS)
	fmt.Fprintf(&b, "  bit error rate, undefended: %.3f\n", r.BaselineBER)
	fmt.Fprintf(&b, "  bit error rate, Maya GS:    %.3f (0.5 = coin flip)\n", r.MayaBER)
	b.WriteString("expected: near-zero BER without the defense; near-chance with it\n")
	b.WriteString("(§I: \"Maya has already thwarted a newly-developed remote power attack\";\n")
	b.WriteString("the original channel signalled through unfiltered PSU switching noise at\n")
	b.WriteString("33 ms/bit — our outlet model passes only PSU-smoothed power, so the\n")
	b.WriteString("demonstration channel signals slower).\n")
	return b.String()
}

// ThermalResult demonstrates the §I/§II-A claim that obfuscating power also
// obfuscates the temperature side channel, since temperature is
// power-derived.
type ThermalResult struct {
	// Corr is |Pearson| between the defended run's temperature trace and
	// the undefended run's, per design.
	BaselineSelfCorr float64 // undefended run vs a second undefended run
	MayaCorr         float64 // Maya GS run vs the undefended run
	// Spread is max−min of per-app mean temperatures (°C): the thermal
	// fingerprint across applications.
	BaselineSpread float64
	MayaSpread     float64
}

// ID implements Result.
func (r *ThermalResult) ID() string { return "§II-A thermal side channel" }

// Thermal runs three apps defended and undefended, recording temperature.
func Thermal(sc Scale, seed uint64) (*ThermalResult, error) {
	cfg := sim.Sys1()
	art, err := DesignFor(cfg)
	if err != nil {
		return nil, err
	}
	apps := []string{"blackscholes", "canneal", "water_nsquared"}

	tempTrace := func(app string, pol sim.Policy, machineSeed uint64) []float64 {
		m := sim.NewMachine(cfg, machineSeed)
		w := workload.NewApp(app).Scale(sc.WorkloadScale)
		w.Reset(seed)
		var temps []float64
		// Manual loop to sample temperature each control period.
		var idle workload.Idle
		m.SetInputs(pol.Decide(0, 0))
		sensor := sim.NewRAPLSensor(m)
		step := 0
		for t := 0; t < sc.WarmupTicks; t++ {
			m.Step(idle)
			if (t+1)%20 == 0 {
				step++
				m.SetInputs(pol.Decide(step, sensor.ReadW()))
			}
		}
		for t := 0; t < sc.TraceTicks; t++ {
			r := m.Step(w)
			if (t+1)%20 == 0 {
				temps = append(temps, r.TempC)
				step++
				m.SetInputs(pol.Decide(step, sensor.ReadW()))
			}
		}
		return temps
	}

	res := &ThermalResult{}
	var baseMeans, mayaMeans []float64
	for i, app := range apps {
		s := seed + uint64(i)*17
		base1 := tempTrace(app, sim.NewBaselinePolicy(cfg), s)
		base2 := tempTrace(app, sim.NewBaselinePolicy(cfg), s+1)
		eng := core.NewGSEngine(art, cfg, 20, s+2)
		eng.Reset(s + 2)
		maya := tempTrace(app, eng, s)

		if i == 0 {
			n := min(len(base1), len(base2))
			res.BaselineSelfCorr = math.Abs(signal.Pearson(base1[:n], base2[:n]))
			n = min(len(base1), len(maya))
			res.MayaCorr = math.Abs(signal.Pearson(maya[:n], base1[:n]))
		}
		baseMeans = append(baseMeans, signal.Mean(base1))
		mayaMeans = append(mayaMeans, signal.Mean(maya))
	}
	res.BaselineSpread = spread(baseMeans)
	res.MayaSpread = spread(mayaMeans)
	return res, nil
}

func spread(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Render implements Result.
func (r *ThermalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — temperature is power-derived, so Maya covers it too\n", r.ID())
	fmt.Fprintf(&b, "  |corr| of two undefended runs' temperature traces: %.2f\n", r.BaselineSelfCorr)
	fmt.Fprintf(&b, "  |corr| of a Maya GS run with the undefended trace:  %.2f\n", r.MayaCorr)
	fmt.Fprintf(&b, "  per-app mean temperature spread: %.2f °C undefended vs %.2f °C under Maya\n",
		r.BaselineSpread, r.MayaSpread)
	b.WriteString("expected: the thermal fingerprint (repeatable traces, distinct per-app\n")
	b.WriteString("temperatures) collapses under Maya GS (§I: obfuscation \"removes leakage\n")
	b.WriteString("through power and, in addition, through temperature and EM signals\").\n")
	return b.String()
}
