package experiments

import (
	"fmt"
	"strings"

	"github.com/maya-defense/maya/internal/mask"
	"github.com/maya-defense/maya/internal/signal"
)

// MaskProfile characterizes one mask family in both domains (a row of
// Table II, a column of Fig 4).
type MaskProfile struct {
	Name string
	// Time-domain samples (for plotting) and property measurements.
	Samples       []float64
	MeanChange    float64 // std of per-window means
	VarChange     float64 // std of per-window variances
	SpectralFlat  float64 // mean per-window spectral flatness ("Spread")
	SpectralPeaks float64 // mean per-window prominent peak count ("Peaks")
}

// Fig4Result reproduces Fig 4 and Table II: the five standard signals and
// their time/frequency properties.
type Fig4Result struct {
	SampleHz float64
	Profiles []MaskProfile
}

// ID implements Result.
func (r *Fig4Result) ID() string { return "Fig 4 / Table II" }

// Fig4 generates each mask family over the given band and measures the
// Table II properties.
func Fig4(band mask.Band, sampleHz float64, samples int, seed uint64) *Fig4Result {
	if samples <= 0 {
		samples = 6000
	}
	hold := mask.DefaultHold()
	gens := []mask.Generator{
		mask.NewConstant(band.Mid()),
		mask.NewUniformRandom(band, hold, seed),
		mask.NewGaussian(band, hold, seed),
		mask.NewSinusoid(band, hold, sampleHz, seed),
		mask.NewGaussianSinusoid(band, hold, sampleHz, seed),
	}
	res := &Fig4Result{SampleHz: sampleHz}
	for _, g := range gens {
		x := mask.Generate(g, samples)
		p := MaskProfile{Name: g.Name(), Samples: x}
		var means, vars []float64
		for _, w := range signal.Windows(x, 50) {
			means = append(means, signal.Mean(w))
			vars = append(vars, signal.Variance(w))
		}
		p.MeanChange = signal.StdDev(means)
		p.VarChange = signal.StdDev(vars)
		ws := signal.Windows(x, 250)
		for _, w := range ws {
			_, mags := signal.Spectrum(w, sampleHz)
			p.SpectralFlat += signal.SpectralFlatness(mags)
			p.SpectralPeaks += float64(signal.SpectralPeaks(mags))
		}
		if len(ws) > 0 {
			p.SpectralFlat /= float64(len(ws))
			p.SpectralPeaks /= float64(len(ws))
		}
		res.Profiles = append(res.Profiles, p)
	}
	return res
}

// Render implements Result.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — mask families at %.0f Hz\n", r.ID(), r.SampleHz)
	fmt.Fprintf(&b, "%-20s %12s %12s %10s %8s\n", "signal", "mean-change", "var-change", "flatness", "peaks")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%-20s %12.3f %12.3f %10.4f %8.2f\n",
			p.Name, p.MeanChange, p.VarChange, p.SpectralFlat, p.SpectralPeaks)
	}
	b.WriteString("expected (Table II): constant changes nothing; uniform changes mean only;\n")
	b.WriteString("gaussian adds variance change and spread; sinusoid adds peaks; the\n")
	b.WriteString("gaussian sinusoid (proposed) has all four properties.\n")
	return b.String()
}
