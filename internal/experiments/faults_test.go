package experiments

import (
	"bytes"
	"context"
	"reflect"
	"regexp"
	"testing"

	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/runner"
)

// TestFaultSweepRobustness is the regression harness for graceful
// degradation: for every canned fault plan the guarded GS loop must stay
// finite, keep tracking the mask within a per-plan error budget, and keep
// the application hidden. Bounds were calibrated at Small()/seed 1 (see the
// fault-free row's ~2.3 W) with headroom for compiler/libm variation, so a
// regression that costs watts of tracking or re-exposes the workload fails
// loudly rather than silently shifting a mean.
func TestFaultSweepRobustness(t *testing.T) {
	res, err := FaultSweep(Small(), 1)
	if err != nil {
		t.Fatal(err)
	}

	maxErrW := map[string]float64{
		"none":           3.5,
		"sensor-dropout": 3.5,
		"sensor-spike":   7.0, // held values during ±60 W spike bursts cost the most
		"rapl-wrap":      3.5,
		"actuator-stuck": 4.5,
		"deadline-miss":  3.5,
		"kitchen-sink":   5.0,
	}
	if len(res.Rows) != len(maxErrW) {
		t.Fatalf("sweep has %d rows, want %d", len(res.Rows), len(maxErrW))
	}
	rows := map[string]FaultRow{}
	for _, row := range res.Rows {
		rows[row.Plan] = row
		bound, ok := maxErrW[row.Plan]
		if !ok {
			t.Errorf("unexpected plan %q in sweep", row.Plan)
			continue
		}
		if !row.Finite {
			t.Errorf("%s: non-finite value escaped the control loop", row.Plan)
		}
		if row.MeanAbsErrW > bound {
			t.Errorf("%s: mean|e| %.2f W exceeds budget %.2f W", row.Plan, row.MeanAbsErrW, bound)
		}
		if row.AppCorr > 0.5 {
			t.Errorf("%s: app correlation %.2f — faults re-exposed the workload", row.Plan, row.AppCorr)
		}
	}

	// The control row proves the harness itself injects nothing.
	if none := rows["none"]; none.Injected.Total() != 0 || none.Rejects != 0 {
		t.Errorf("fault-free row fired: %+v", none)
	}
	// Plans that glitch the measurement path must make the guard react …
	for _, name := range []string{"sensor-dropout", "sensor-spike", "rapl-wrap", "kitchen-sink"} {
		if rows[name].Rejects == 0 {
			t.Errorf("%s: guard never rejected a reading", name)
		}
	}
	// … and every canned plan except the counter one must demonstrably fire
	// (the wrap happens inside the machine, invisible to injector stats).
	for _, name := range fault.PlanNames() {
		if name == "rapl-wrap" {
			continue
		}
		if rows[name].Injected.Total() == 0 {
			t.Errorf("%s: plan injected nothing — sweep is vacuous for it", name)
		}
	}
}

// TestFaultSweepDeterministic: the sweep is pure in (scale, seed), including
// every injected fault and guard reaction.
func TestFaultSweepDeterministic(t *testing.T) {
	sc := tiny()
	a, err := FaultSweep(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical (scale, seed) produced different sweeps:\n%+v\n%+v", a, b)
	}
}

// TestFaultSweepWorkerCountInvariant extends the parallel-runner guarantee
// to the fault sweep: its rendered report is byte-identical on 1 and 4
// workers.
func TestFaultSweepWorkerCountInvariant(t *testing.T) {
	sc := tiny()
	entries := FilterSuite(Suite(), regexp.MustCompile(`^faults$`))
	if len(entries) != 1 {
		t.Fatalf("filter kept %d entries, want 1", len(entries))
	}
	render := func(workers int) []byte {
		outs := RunSuite(context.Background(), entries, sc, 7, runner.Options{Workers: workers})
		var buf bytes.Buffer
		if err := WriteReport(&buf, sc, 7, outs, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if serial, parallel := render(1), render(4); !bytes.Equal(serial, parallel) {
		t.Fatal("fault-sweep report differs across worker counts")
	}
}
