package workload

// This file defines the eleven PARSEC 3.0 / SPLASH-2x stand-ins used by the
// running-application detection attack (§VI-A attack 1). Work units are
// giga-operations; the simulated machines execute roughly 1 Gop/s per core
// at maximum frequency for compute-bound code, so a 120-Gop parallel phase
// lasts about 20 s on a six-core machine at full speed.
//
// Each program's phase structure gives it the kind of distinguishable
// power fingerprint (mean level, variance, loop periodicity, phase
// transitions) that the paper's MLP attack keys on. The specific shapes
// are synthetic but follow the qualitative behaviour of the real codes:
// e.g. blackscholes is a sequential read, one long uniform parallel
// section, and a sequential write-out — the structure visible in Fig 11a.

// AppNames lists the application labels in the order used by the paper's
// confusion matrices (labels 0..10).
var AppNames = []string{
	"blackscholes",   // 0
	"bodytrack",      // 1
	"canneal",        // 2
	"freqmine",       // 3
	"raytrace",       // 4
	"streamcluster",  // 5
	"vips",           // 6
	"radiosity",      // 7
	"volrend",        // 8
	"water_nsquared", // 9
	"water_spatial",  // 10
}

// NewApp returns the synthetic program for one of the eleven applications.
// It panics on an unknown name.
func NewApp(name string) *Program {
	switch name {
	case "blackscholes":
		return NewProgram(name, []Phase{
			{Name: "read", Work: 8, Threads: 1, Activity: 0.45, MemFrac: 0.55, JitterFrac: 0.05},
			{Name: "price", Work: 170, Threads: 6, Activity: 0.95, MemFrac: 0.08, JitterFrac: 0.03},
			{Name: "write", Work: 7, Threads: 1, Activity: 0.40, MemFrac: 0.60, JitterFrac: 0.05},
		})
	case "bodytrack":
		// Frame-structured tracker: alternating particle-filter bursts and
		// sequential model updates; strong medium-period oscillation.
		return NewProgram(name, []Phase{
			{Name: "init", Work: 10, Threads: 1, Activity: 0.50, MemFrac: 0.40, JitterFrac: 0.05},
			{Name: "track1", Work: 60, Threads: 6, Activity: 0.80, MemFrac: 0.22,
				Osc: &Oscillation{Amp: 0.18, PeriodWork: 12}, JitterFrac: 0.04},
			{Name: "resample", Work: 14, Threads: 2, Activity: 0.55, MemFrac: 0.35, JitterFrac: 0.05},
			{Name: "track2", Work: 60, Threads: 6, Activity: 0.82, MemFrac: 0.22,
				Osc: &Oscillation{Amp: 0.18, PeriodWork: 12}, JitterFrac: 0.04},
			{Name: "finish", Work: 8, Threads: 1, Activity: 0.45, MemFrac: 0.40, JitterFrac: 0.05},
		})
	case "canneal":
		// Simulated annealing: memory-bound throughout, activity decaying
		// across the temperature schedule (approximated by stepped phases).
		return NewProgram(name, []Phase{
			{Name: "load", Work: 12, Threads: 1, Activity: 0.40, MemFrac: 0.65, JitterFrac: 0.05},
			{Name: "hot", Work: 55, Threads: 6, Activity: 0.62, MemFrac: 0.62, JitterFrac: 0.04},
			{Name: "warm", Work: 55, Threads: 6, Activity: 0.55, MemFrac: 0.66, JitterFrac: 0.04},
			{Name: "cold", Work: 55, Threads: 6, Activity: 0.48, MemFrac: 0.70, JitterFrac: 0.04},
		})
	case "freqmine":
		// FP-growth mining: ramping parallel phases with growing trees.
		return NewProgram(name, []Phase{
			{Name: "scan", Work: 15, Threads: 2, Activity: 0.50, MemFrac: 0.50, JitterFrac: 0.05},
			{Name: "build", Work: 45, Threads: 6, Activity: 0.68, MemFrac: 0.42, JitterFrac: 0.04},
			{Name: "mine1", Work: 55, Threads: 6, Activity: 0.78, MemFrac: 0.32, JitterFrac: 0.04},
			{Name: "mine2", Work: 65, Threads: 6, Activity: 0.88, MemFrac: 0.25, JitterFrac: 0.04},
		})
	case "raytrace":
		// Steady high compute with slight per-frame shimmer.
		return NewProgram(name, []Phase{
			{Name: "setup", Work: 9, Threads: 1, Activity: 0.50, MemFrac: 0.35, JitterFrac: 0.05},
			{Name: "render", Work: 185, Threads: 6, Activity: 0.90, MemFrac: 0.15,
				Osc: &Oscillation{Amp: 0.07, PeriodWork: 30}, JitterFrac: 0.03},
		})
	case "streamcluster":
		// Streaming clustering: pronounced periodic memory-bound bursts —
		// the strongest natural FFT peaks in the suite.
		return NewProgram(name, []Phase{
			{Name: "stream", Work: 190, Threads: 6, Activity: 0.66, MemFrac: 0.55,
				Osc: &Oscillation{Amp: 0.30, PeriodWork: 9}, JitterFrac: 0.03},
		})
	case "vips":
		// Image pipeline: moderate activity, mid-rate oscillation from the
		// tile pipeline, bounded by a sequential save.
		return NewProgram(name, []Phase{
			{Name: "decode", Work: 12, Threads: 2, Activity: 0.55, MemFrac: 0.45, JitterFrac: 0.05},
			{Name: "pipeline", Work: 140, Threads: 6, Activity: 0.74, MemFrac: 0.30,
				Osc: &Oscillation{Amp: 0.12, PeriodWork: 18}, JitterFrac: 0.04},
			{Name: "encode", Work: 16, Threads: 2, Activity: 0.60, MemFrac: 0.40, JitterFrac: 0.05},
		})
	case "radiosity":
		// Hierarchical radiosity: irregular task-parallel phases.
		return NewProgram(name, []Phase{
			{Name: "bsp", Work: 14, Threads: 1, Activity: 0.55, MemFrac: 0.40, JitterFrac: 0.06},
			{Name: "iter1", Work: 70, Threads: 6, Activity: 0.85, MemFrac: 0.25, JitterFrac: 0.08},
			{Name: "iter2", Work: 45, Threads: 5, Activity: 0.80, MemFrac: 0.28, JitterFrac: 0.08},
			{Name: "iter3", Work: 30, Threads: 4, Activity: 0.74, MemFrac: 0.30, JitterFrac: 0.08},
			{Name: "gather", Work: 12, Threads: 1, Activity: 0.50, MemFrac: 0.45, JitterFrac: 0.06},
		})
	case "volrend":
		// Volume rendering: per-frame periodic compute on shared volume.
		return NewProgram(name, []Phase{
			{Name: "load", Work: 10, Threads: 1, Activity: 0.45, MemFrac: 0.55, JitterFrac: 0.05},
			{Name: "frames", Work: 150, Threads: 6, Activity: 0.70, MemFrac: 0.35,
				Osc: &Oscillation{Amp: 0.20, PeriodWork: 24}, JitterFrac: 0.04},
		})
	case "water_nsquared":
		// O(n²) MD: long steady compute phases with periodic force spikes.
		return NewProgram(name, []Phase{
			{Name: "setup", Work: 8, Threads: 1, Activity: 0.50, MemFrac: 0.30, JitterFrac: 0.05},
			{Name: "steps", Work: 210, Threads: 6, Activity: 1.00, MemFrac: 0.10,
				Osc: &Oscillation{Amp: 0.10, PeriodWork: 42}, JitterFrac: 0.03},
		})
	case "water_spatial":
		// Spatial-decomposition MD: lighter per-step work, faster cadence.
		return NewProgram(name, []Phase{
			{Name: "setup", Work: 8, Threads: 1, Activity: 0.50, MemFrac: 0.30, JitterFrac: 0.05},
			{Name: "steps", Work: 160, Threads: 6, Activity: 0.92, MemFrac: 0.18,
				Osc: &Oscillation{Amp: 0.14, PeriodWork: 21}, JitterFrac: 0.03},
		})
	default:
		panic("workload: unknown application " + name)
	}
}

// Apps returns fresh instances of all eleven applications in label order.
func Apps() []*Program {
	out := make([]*Program, len(AppNames))
	for i, n := range AppNames {
		out[i] = NewApp(n)
	}
	return out
}
