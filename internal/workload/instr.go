package workload

// Instruction microbenchmarks for the PLATYPUS-style experiment (§VII-F,
// Fig 15). The paper runs tight loops of single instructions — imul, mov,
// xor — and shows their average power profiles are distinguishable on the
// baseline machine but indistinguishable under Maya GS. Execution-unit
// switching activity differs per instruction: the integer multiplier
// toggles far more capacitance per cycle than a register move or xor,
// which is exactly the per-instruction power difference PLATYPUS measures
// through RAPL.

// InstrNames lists the microbenchmark labels (order: imul, mov, xor).
var InstrNames = []string{"imul", "mov", "xor"}

// instrActivity is the per-instruction switching-activity factor. The
// ordering imul > mov > xor follows published instruction-level energy
// characterizations (wide multiplier array vs bypass network traffic vs
// simple ALU op).
var instrActivity = map[string]float64{
	"imul": 0.92,
	"mov":  0.64,
	"xor":  0.55,
}

// NewInstrLoop returns a tight single-instruction loop pinned on every
// core, running for the given work amount (giga-operations). It panics on
// an unknown instruction name.
func NewInstrLoop(name string, work float64) *Program {
	act, ok := instrActivity[name]
	if !ok {
		panic("workload: unknown instruction " + name)
	}
	return NewProgram("instr/"+name, []Phase{
		{Name: "loop", Work: work, Threads: 6, Activity: act, MemFrac: 0.02, JitterFrac: 0.01},
	})
}

// InstrLoops returns fresh instances of all three instruction loops with
// the given per-loop work.
func InstrLoops(work float64) []*Program {
	out := make([]*Program, len(InstrNames))
	for i, n := range InstrNames {
		out[i] = NewInstrLoop(n, work)
	}
	return out
}
