package workload

// Video-encoding workloads for the video-identification attack (§VI-A
// attack 2). The paper transcodes four raw test sequences from Derf's
// collection with FFmpeg x264 on Sys2. Each synthetic encoder below models
// the x264 encode loop: a GOP-periodic sequence (expensive I-frames every
// GOPLen frames, cheaper P/B frames) whose per-frame cost profile follows
// the character of the source content:
//
//   - tractor:   high, fairly uniform motion — heavy throughout
//   - riverbed:  chaotic water texture — the heaviest, high variance
//   - wind:      moderate motion with gusty bursts
//   - sunflower: nearly static — light with occasional refresh spikes
//
// The distinct mean levels, GOP periods, and burst structures are what an
// MLP classifier keys on, mirroring the real attack.

// VideoNames lists the video labels in the order used by the paper
// (labels 0..3: tractor, riverbed, wind, sunflower).
var VideoNames = []string{"tractor", "riverbed", "wind", "sunflower"}

type videoSpec struct {
	frames     int
	gopLen     int
	iFrameWork float64 // Gops per I-frame
	pFrameWork float64 // Gops per P/B frame
	activity   float64
	memFrac    float64
	burstAmp   float64 // content-driven activity modulation
	burstWork  float64 // work units per content cycle
}

var videoSpecs = map[string]videoSpec{
	"tractor":   {frames: 140, gopLen: 24, iFrameWork: 3.6, pFrameWork: 1.30, activity: 0.88, memFrac: 0.22, burstAmp: 0.08, burstWork: 35},
	"riverbed":  {frames: 120, gopLen: 18, iFrameWork: 4.4, pFrameWork: 1.80, activity: 0.97, memFrac: 0.18, burstAmp: 0.16, burstWork: 22},
	"wind":      {frames: 150, gopLen: 30, iFrameWork: 3.0, pFrameWork: 0.95, activity: 0.78, memFrac: 0.28, burstAmp: 0.12, burstWork: 50},
	"sunflower": {frames: 170, gopLen: 48, iFrameWork: 2.6, pFrameWork: 0.55, activity: 0.66, memFrac: 0.34, burstAmp: 0.05, burstWork: 70},
}

// NewVideo returns the synthetic encode of the named test sequence.
// It panics on an unknown name.
func NewVideo(name string) *Program {
	spec, ok := videoSpecs[name]
	if !ok {
		panic("workload: unknown video " + name)
	}
	phases := make([]Phase, 0, spec.frames/spec.gopLen*2+2)
	phases = append(phases, Phase{
		Name: "probe", Work: 4, Threads: 1, Activity: 0.45, MemFrac: 0.5, JitterFrac: 0.05,
	})
	for f := 0; f < spec.frames; f += spec.gopLen {
		gopFrames := spec.gopLen
		if f+gopFrames > spec.frames {
			gopFrames = spec.frames - f
		}
		// I-frame burst: short, intense, low memory stall (intra transforms).
		phases = append(phases, Phase{
			Name: "iframe", Work: spec.iFrameWork, Threads: 16,
			Activity: spec.activity + 0.12, MemFrac: spec.memFrac * 0.7,
			JitterFrac: 0.06,
		})
		// Inter frames: the bulk of the GOP, with content-driven modulation.
		phases = append(phases, Phase{
			Name: "inter", Work: spec.pFrameWork * float64(gopFrames-1), Threads: 16,
			Activity: spec.activity, MemFrac: spec.memFrac,
			Osc:        &Oscillation{Amp: spec.burstAmp, PeriodWork: spec.burstWork},
			JitterFrac: 0.05,
		})
	}
	phases = append(phases, Phase{
		Name: "mux", Work: 5, Threads: 1, Activity: 0.40, MemFrac: 0.55, JitterFrac: 0.05,
	})
	return NewProgram("video/"+name, phases)
}

// Videos returns fresh instances of all four video encodes in label order.
func Videos() []*Program {
	out := make([]*Program, len(VideoNames))
	for i, n := range VideoNames {
		out[i] = NewVideo(n)
	}
	return out
}
