package workload

import (
	"fmt"
	"strings"
)

// New resolves a workload by the name grammar shared across the tools
// (mayactl's -workload flag, mayad's admission API): a PARSEC/SPLASH app
// label, "video/<name>", "web/<name>", "instr/<name>", or "idle". Scale
// multiplies phase work for app, video, and web programs; instruction
// loops and idle ignore it (they have no work budget to stretch).
func New(name string, scale float64) (Workload, error) {
	switch {
	case strings.HasPrefix(name, "video/"):
		v := strings.TrimPrefix(name, "video/")
		if _, ok := videoSpecs[v]; !ok {
			return nil, fmt.Errorf("unknown video %q (%s)", v, strings.Join(VideoNames, ", "))
		}
		return NewVideo(v).Scale(scale), nil
	case strings.HasPrefix(name, "web/"):
		p := strings.TrimPrefix(name, "web/")
		if _, ok := pageSpecs[p]; !ok {
			return nil, fmt.Errorf("unknown page %q (%s)", p, strings.Join(PageNames, ", "))
		}
		return NewPage(p).Scale(scale), nil
	case strings.HasPrefix(name, "instr/"):
		in := strings.TrimPrefix(name, "instr/")
		if _, ok := instrActivity[in]; !ok {
			return nil, fmt.Errorf("unknown instruction %q (%s)", in, strings.Join(InstrNames, ", "))
		}
		return NewInstrLoop(in, 1000), nil
	case name == "idle":
		return Idle{}, nil
	default:
		for _, n := range AppNames {
			if n == name {
				return NewApp(name).Scale(scale), nil
			}
		}
	}
	return nil, fmt.Errorf("unknown workload %q (try %s, video/<name>, web/<name>, instr/<name>, idle)",
		name, strings.Join(AppNames, ", "))
}

// CatalogEntry describes one built-in workload for tooling and help output.
type CatalogEntry struct {
	// Name is the identifier the tools accept (e.g. "blackscholes",
	// "video/tractor", "web/google", "instr/imul").
	Name string
	// Suite groups the entry ("parsec/splash", "video", "web", "instr").
	Suite string
	// Description summarizes the synthetic program's character.
	Description string
	// BaselineSeconds estimates the unscaled runtime on Sys1 at full speed
	// (work / (cores × Gops-per-core-GHz × Fmax), ignoring phase effects).
	BaselineSeconds float64
}

// Catalog lists every built-in workload.
func Catalog() []CatalogEntry {
	const sys1Rate = 6 * 0.5 * 2.0 // cores × Gops/core/GHz × Fmax
	var out []CatalogEntry
	appDesc := map[string]string{
		"blackscholes":   "sequential read, one long uniform parallel pricing section, sequential write",
		"bodytrack":      "frame-structured tracker alternating parallel bursts and sequential updates",
		"canneal":        "memory-bound simulated annealing with a cooling activity schedule",
		"freqmine":       "FP-growth mining with ramping parallel phases",
		"raytrace":       "steady high-activity render with slight per-frame shimmer",
		"streamcluster":  "periodic memory-bound bursts — the strongest natural FFT peaks",
		"vips":           "image pipeline with mid-rate tile oscillation",
		"radiosity":      "irregular task-parallel iterations",
		"volrend":        "per-frame periodic volume rendering",
		"water_nsquared": "compute-heavy O(n²) MD with periodic force spikes",
		"water_spatial":  "lighter spatial-decomposition MD at a faster cadence",
	}
	for _, n := range AppNames {
		p := NewApp(n)
		out = append(out, CatalogEntry{
			Name: n, Suite: "parsec/splash",
			Description:     appDesc[n],
			BaselineSeconds: p.TotalWork() / sys1Rate,
		})
	}
	vidDesc := map[string]string{
		"tractor":   "high uniform motion — heavy throughout",
		"riverbed":  "chaotic water texture — the heaviest, high variance",
		"wind":      "moderate motion with gusty bursts",
		"sunflower": "nearly static — light with refresh spikes",
	}
	for _, n := range VideoNames {
		p := NewVideo(n)
		out = append(out, CatalogEntry{
			Name: "video/" + n, Suite: "video",
			Description:     "x264-style encode: " + vidDesc[n],
			BaselineSeconds: p.TotalWork() / sys1Rate,
		})
	}
	pageDesc := map[string]string{
		"google":  "light landing page, near-idle steady state",
		"ted":     "hero video autoplay with frame cadence",
		"youtube": "heavy video decode, fast segment cadence",
		"chase":   "scripted banking dashboard with widget timers",
		"ieee":    "document-heavy page, quiet after the parse",
		"amazon":  "image-heavy storefront with carousel animation",
		"paypal":  "moderate page with periodic keepalives",
	}
	for _, n := range PageNames {
		p := NewPage(n)
		out = append(out, CatalogEntry{
			Name: "web/" + n, Suite: "web",
			Description:     "browser visit: " + pageDesc[n],
			BaselineSeconds: p.TotalWork() / sys1Rate,
		})
	}
	for _, n := range InstrNames {
		out = append(out, CatalogEntry{
			Name: "instr/" + n, Suite: "instr",
			Description:     fmt.Sprintf("tight %s loop on every core (PLATYPUS microbenchmark)", n),
			BaselineSeconds: 0, // runs until cut off
		})
	}
	return out
}
