package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProgramPhaseAdvance(t *testing.T) {
	p := NewProgram("test", []Phase{
		{Name: "a", Work: 10, Threads: 1, Activity: 0.5, MemFrac: 0.1},
		{Name: "b", Work: 5, Threads: 4, Activity: 0.9, MemFrac: 0.2},
	})
	if p.Done() {
		t.Fatal("fresh program done")
	}
	if d := p.Demand(); d.Threads != 1 || d.Activity != 0.5 {
		t.Fatalf("phase a demand: %+v", d)
	}
	if p.Advance(10) {
		t.Fatal("done too early")
	}
	if d := p.Demand(); d.Threads != 4 {
		t.Fatalf("should be in phase b: %+v", d)
	}
	if !p.Advance(5) {
		t.Fatal("should be done")
	}
	if !p.Done() {
		t.Fatal("Done() false after completion")
	}
	if d := p.Demand(); d.Threads != 0 || d.Activity != 0 {
		t.Fatalf("done program should demand nothing: %+v", d)
	}
}

func TestAdvanceSpansPhases(t *testing.T) {
	p := NewProgram("test", []Phase{
		{Name: "a", Work: 3, Threads: 1, Activity: 0.5},
		{Name: "b", Work: 3, Threads: 2, Activity: 0.5},
		{Name: "c", Work: 3, Threads: 3, Activity: 0.5},
	})
	p.Advance(7) // lands 1 unit into phase c
	if p.PhaseIndex() != 2 {
		t.Fatalf("phase index %d want 2", p.PhaseIndex())
	}
	if math.Abs(p.Progress()-7.0/9.0) > 1e-12 {
		t.Fatalf("progress=%g", p.Progress())
	}
}

func TestResetRestores(t *testing.T) {
	p := NewApp("blackscholes")
	p.Advance(p.TotalWork())
	if !p.Done() {
		t.Fatal("not done after total work")
	}
	p.Reset(1)
	if p.Done() || p.Progress() != 0 {
		t.Fatal("reset did not restart")
	}
}

func TestJitterVariesAcrossSeedsOnly(t *testing.T) {
	a := NewApp("radiosity")
	a.Reset(1)
	w1 := a.TotalWork()
	a.Reset(2)
	w2 := a.TotalWork()
	a.Reset(1)
	w3 := a.TotalWork()
	if w1 == w2 {
		t.Fatal("different seeds produced identical jitter")
	}
	if w1 != w3 {
		t.Fatal("same seed not reproducible")
	}
}

func TestOscillationModulatesDemand(t *testing.T) {
	p := NewProgram("osc", []Phase{{
		Name: "x", Work: 100, Threads: 2, Activity: 0.5,
		Osc: &Oscillation{Amp: 0.2, PeriodWork: 10},
	}})
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		d := p.Demand()
		if d.Activity > 0.6 {
			seen["high"] = true
		}
		if d.Activity < 0.4 {
			seen["low"] = true
		}
		p.Advance(2.5)
	}
	if !seen["high"] || !seen["low"] {
		t.Fatalf("oscillation not visible: %v", seen)
	}
}

func TestDemandActivityNonNegative(t *testing.T) {
	p := NewProgram("neg", []Phase{{
		Name: "x", Work: 100, Threads: 1, Activity: 0.1,
		Osc: &Oscillation{Amp: 0.5, PeriodWork: 8},
	}})
	for i := 0; i < 200; i++ {
		if d := p.Demand(); d.Activity < 0 {
			t.Fatalf("negative activity %g", d.Activity)
		}
		p.Advance(0.5)
	}
}

func TestScale(t *testing.T) {
	p := NewApp("vips")
	half := p.Scale(0.5)
	// Jitter differs per instance; compare against unjittered sums loosely.
	if half.TotalWork() > 0.6*p.TotalWork() || half.TotalWork() < 0.4*p.TotalWork() {
		t.Fatalf("scale 0.5: %g vs %g", half.TotalWork(), p.TotalWork())
	}
	if half.Name() != p.Name() {
		t.Fatal("scale changed name")
	}
}

func TestAllAppsConstructible(t *testing.T) {
	apps := Apps()
	if len(apps) != 11 {
		t.Fatalf("want 11 apps, got %d", len(apps))
	}
	names := map[string]bool{}
	for i, a := range apps {
		if a.Name() != AppNames[i] {
			t.Fatalf("order mismatch at %d", i)
		}
		if names[a.Name()] {
			t.Fatalf("duplicate app %s", a.Name())
		}
		names[a.Name()] = true
		if a.TotalWork() <= 0 {
			t.Fatalf("%s has no work", a.Name())
		}
	}
}

func TestVideosAndPagesAndInstrs(t *testing.T) {
	if len(Videos()) != 4 {
		t.Fatal("want 4 videos")
	}
	if len(Pages()) != 7 {
		t.Fatal("want 7 pages")
	}
	loops := InstrLoops(50)
	if len(loops) != 3 {
		t.Fatal("want 3 instruction loops")
	}
	// PLATYPUS premise: activity ordering imul > mov > xor.
	if !(loops[0].Demand().Activity > loops[1].Demand().Activity &&
		loops[1].Demand().Activity > loops[2].Demand().Activity) {
		t.Fatal("instruction activity ordering broken")
	}
}

func TestAppSignaturesDistinct(t *testing.T) {
	// Apps must differ in at least one of (dominant activity, mem fraction,
	// total work) so that baseline traces are distinguishable.
	type sig struct{ act, mem, work float64 }
	sigs := map[string]sig{}
	for _, a := range Apps() {
		d := a.Demand()
		// advance into the dominant (largest) phase: just advance 30%
		a.Advance(0.3 * a.TotalWork())
		d2 := a.Demand()
		sigs[a.Name()] = sig{act: d.Activity + d2.Activity, mem: d.MemFrac + d2.MemFrac, work: a.TotalWork()}
	}
	for n1, s1 := range sigs {
		for n2, s2 := range sigs {
			if n1 >= n2 {
				continue
			}
			if math.Abs(s1.act-s2.act) < 1e-9 && math.Abs(s1.mem-s2.mem) < 1e-9 && math.Abs(s1.work-s2.work) < 1e-9 {
				t.Fatalf("apps %s and %s have identical signatures", n1, n2)
			}
		}
	}
}

func TestProgressMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewApp("bodytrack")
		p.Reset(seed)
		last := 0.0
		for i := 0; i < 100 && !p.Done(); i++ {
			p.Advance(2)
			pr := p.Progress()
			if pr < last-1e-12 || pr > 1+1e-12 {
				return false
			}
			last = pr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleWorkload(t *testing.T) {
	var idle Idle
	if idle.Done() || idle.Advance(100) {
		t.Fatal("idle should never finish")
	}
	if d := idle.Demand(); d.Threads != 0 {
		t.Fatal("idle demands threads")
	}
}

func TestUnknownNamesPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewApp("nope") },
		func() { NewVideo("nope") },
		func() { NewPage("nope") },
		func() { NewInstrLoop("nope", 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for unknown name")
				}
			}()
			f()
		}()
	}
}

func TestCatalogCoversEverything(t *testing.T) {
	entries := Catalog()
	want := len(AppNames) + len(VideoNames) + len(PageNames) + len(InstrNames)
	if len(entries) != want {
		t.Fatalf("catalog has %d entries, want %d", len(entries), want)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Suite == "" || e.Description == "" {
			t.Fatalf("incomplete entry: %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate %s", e.Name)
		}
		seen[e.Name] = true
		if e.Suite != "instr" && e.BaselineSeconds <= 0 {
			t.Fatalf("%s has no runtime estimate", e.Name)
		}
	}
}
