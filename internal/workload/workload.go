// Package workload provides the synthetic applications that run on the
// simulated machine. The paper evaluates on PARSEC 3.0 / SPLASH-2x
// applications, FFmpeg video transcoding, Chrome webpage visits, and
// instruction microbenchmarks (PLATYPUS); those binaries and datasets are
// not available here, so each is replaced by a phase-structured synthetic
// program whose compute/memory/parallelism signature produces the same kind
// of distinguishable power trace the attacks exploit.
//
// Phases are defined in units of *work*, not wall time: when a defense slows
// the machine down (low DVFS, idle injection, balloon contention), the
// application takes proportionally longer, which is what produces the
// execution-time overheads of Fig 14 and hides the true completion point
// under Maya GS (Fig 11).
package workload

import (
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/rng"
)

// Demand describes the load an application offers to the machine during the
// next simulator tick.
type Demand struct {
	// Threads is the number of runnable software threads.
	Threads int
	// Activity is the switching-activity factor in [0, 1.2]: the fraction of
	// a core's dynamic-power capacitance toggled per cycle. Heavy FP/SIMD
	// code exceeds 1 relative to the "typical" workload used to calibrate
	// the machine's per-core dynamic power.
	Activity float64
	// MemFrac is the fraction of execution time stalled on memory at the
	// machine's reference (max) frequency; it controls how progress scales
	// with DVFS (memory-bound work speeds up sublinearly).
	MemFrac float64
}

// Workload is a restartable synthetic application.
type Workload interface {
	// Name identifies the application (e.g., "blackscholes").
	Name() string
	// Demand returns the currently offered load. It is only meaningful
	// before Done.
	Demand() Demand
	// Advance consumes work completed by the machine this tick (in
	// giga-operations) and reports whether the application has finished.
	Advance(work float64) bool
	// Done reports whether all phases have completed.
	Done() bool
	// TotalWork returns the total work in the program (giga-operations).
	TotalWork() float64
	// Reset restarts the program with a fresh jitter stream derived from
	// seed, so repeated runs differ slightly (as real executions do).
	Reset(seed uint64)
}

// Oscillation modulates a phase's activity periodically as a function of
// work progress, producing loop-induced peaks in the power FFT (the natural
// peaks that §IV-C says masks must overwrite).
type Oscillation struct {
	Amp        float64 // activity modulation amplitude (additive)
	PeriodWork float64 // work units per full cycle
}

// TimeOscillation modulates a phase's activity periodically in *wall-clock*
// time (one tick = 1 ms of simulated time): browser timers, video frame
// cadence, and network keepalives fire on the clock regardless of how fast
// the CPU makes progress, which is why their FFT peaks survive defenses
// that merely slow the machine down.
type TimeOscillation struct {
	Amp       float64 // activity modulation amplitude (additive)
	PeriodSec float64 // seconds per full cycle
	// JitterFrac is the relative cadence wobble: real timers drift with
	// network latency, scheduling, and frame complexity, smearing their
	// spectral line over a band instead of a laboratory-pure tone.
	JitterFrac float64
}

// Phase is one stage of a synthetic program.
type Phase struct {
	Name     string
	Work     float64 // giga-operations in this phase
	Threads  int
	Activity float64
	MemFrac  float64
	Osc      *Oscillation
	TimeOsc  *TimeOscillation
	// JitterFrac randomizes this phase's work by ±frac on each Reset,
	// modeling run-to-run variation.
	JitterFrac float64
}

// Program is a Workload built from a fixed phase list.
type Program struct {
	name    string
	phases  []Phase
	jphases []Phase // jittered copy for the current run
	idx     int
	done    float64 // work consumed within the current phase
	total   float64
	ticks   int64 // wall-clock ticks elapsed (Demand calls)
	// Wall-clock oscillator state: phase accumulates with a slowly varying
	// rate so jittered cadences stay continuous.
	tphase float64
	tjit   float64
	r      *rng.Stream
}

// NewProgram builds a Program; it starts in the reset state with seed 0.
func NewProgram(name string, phases []Phase) *Program {
	if len(phases) == 0 {
		panic("workload: program needs at least one phase")
	}
	p := &Program{name: name, phases: phases}
	p.Reset(0)
	return p
}

// Name implements Workload.
func (p *Program) Name() string { return p.name }

// Reset implements Workload.
func (p *Program) Reset(seed uint64) {
	p.r = rng.NewNamed(seed, "workload/"+p.name)
	p.jphases = make([]Phase, len(p.phases))
	copy(p.jphases, p.phases)
	p.total = 0
	for i := range p.jphases {
		if j := p.jphases[i].JitterFrac; j > 0 {
			p.jphases[i].Work *= 1 + p.r.Uniform(-j, j)
		}
		p.total += p.jphases[i].Work
	}
	p.idx = 0
	p.done = 0
	p.ticks = 0
	p.tphase = 0
	p.tjit = 0
}

// Done implements Workload.
func (p *Program) Done() bool { return p.idx >= len(p.jphases) }

// TotalWork implements Workload.
func (p *Program) TotalWork() float64 { return p.total }

// Demand implements Workload. Each call represents one 1 ms tick of wall
// time for the purpose of clock-driven oscillations.
func (p *Program) Demand() Demand {
	p.ticks++
	if p.Done() {
		return Demand{}
	}
	ph := p.jphases[p.idx]
	act := ph.Activity
	if ph.Osc != nil && ph.Osc.PeriodWork > 0 {
		act += ph.Osc.Amp * math.Sin(2*math.Pi*p.done/ph.Osc.PeriodWork)
	}
	if ph.TimeOsc != nil && ph.TimeOsc.PeriodSec > 0 {
		// Ornstein-Uhlenbeck cadence wobble: the instantaneous rate drifts
		// around the nominal period by ±JitterFrac.
		if ph.TimeOsc.JitterFrac > 0 {
			p.tjit += 0.01 * (p.r.NormFloat64()*ph.TimeOsc.JitterFrac*3 - p.tjit)
		}
		p.tphase += 2 * math.Pi * 1e-3 / ph.TimeOsc.PeriodSec * (1 + p.tjit)
		act += ph.TimeOsc.Amp * math.Sin(p.tphase)
	}
	if act < 0 {
		act = 0
	}
	return Demand{Threads: ph.Threads, Activity: act, MemFrac: ph.MemFrac}
}

// Advance implements Workload.
func (p *Program) Advance(work float64) bool {
	for work > 0 && !p.Done() {
		ph := &p.jphases[p.idx]
		remain := ph.Work - p.done
		if work < remain {
			p.done += work
			return false
		}
		work -= remain
		p.idx++
		p.done = 0
	}
	return p.Done()
}

// PhaseIndex returns the index of the currently executing phase (== number
// of phases when done). Exposed for ground-truth change-point checks.
func (p *Program) PhaseIndex() int { return p.idx }

// Progress returns completed work / total work in [0, 1].
func (p *Program) Progress() float64 {
	if p.total == 0 { //nolint:maya/floateq total==0 is the no-work sentinel, set exactly
		return 1
	}
	completed := p.done
	for i := 0; i < p.idx && i < len(p.jphases); i++ {
		completed += p.jphases[i].Work
	}
	return completed / p.total
}

// Clone returns an independent copy of the program in its reset state.
// The immutable base phase table is shared; per-run state is not.
func (p *Program) Clone() *Program { return NewProgram(p.name, p.phases) }

// Scale returns a copy of the program with all phase work multiplied by s,
// so tests can run miniature versions of the paper-scale workloads.
func (p *Program) Scale(s float64) *Program {
	if s <= 0 {
		panic(fmt.Sprintf("workload: non-positive scale %g", s))
	}
	phases := make([]Phase, len(p.phases))
	copy(phases, p.phases)
	for i := range phases {
		phases[i].Work *= s
		if phases[i].Osc != nil {
			o := *phases[i].Osc
			// Keep oscillation period fixed in absolute work so the power
			// spectrum's loop peaks stay at the same frequencies; only the
			// program length shrinks.
			phases[i].Osc = &o
		}
	}
	return NewProgram(p.name, phases)
}

// Idle is a workload that offers no load forever; it models the machine
// sitting idle after an application completes.
type Idle struct{}

// Name implements Workload.
func (Idle) Name() string { return "idle" }

// Demand implements Workload.
func (Idle) Demand() Demand { return Demand{} }

// Advance implements Workload.
func (Idle) Advance(float64) bool { return false }

// Done implements Workload.
func (Idle) Done() bool { return false }

// TotalWork implements Workload.
func (Idle) TotalWork() float64 { return 0 }

// Reset implements Workload.
func (Idle) Reset(uint64) {}
