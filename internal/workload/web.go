package workload

// Webpage-visit workloads for the webpage-identification attack (§VI-A
// attack 3). The paper records ~15 s Chrome visits to seven sites on Sys3
// while tapping the victim's AC outlet. Each synthetic visit models the
// browser pipeline: network-bound fetch, parse/layout burst, paint, then a
// steady state whose character differs per site (video playback for
// youtube/ted, scripted widgets for chase/amazon/paypal, near-idle reading
// for google/ieee). Because the attack classifies FFT features, each page
// gets a distinctive steady-state periodicity (timers, video frame cadence).

// PageNames lists the webpage labels in the order used by the paper
// (labels 0..6).
var PageNames = []string{
	"google",  // 0
	"ted",     // 1
	"youtube", // 2
	"chase",   // 3
	"ieee",    // 4
	"amazon",  // 5
	"paypal",  // 6
}

type pageSpec struct {
	fetchWork  float64 // network+parse, low power, memory-bound
	layoutWork float64 // layout/JS burst, high power
	steadyWork float64 // remaining visit
	steadyAct  float64
	steadyMem  float64
	timerAmp   float64 // periodic steady-state component
	timerSec   float64 // wall-clock seconds per timer cycle
	threads    int
}

// Steady-state cadences are wall-clock (setInterval timers, animation and
// video frame pacing): they keep their spectral position regardless of how
// fast the CPU runs, which is exactly why the paper's webpage attack
// classifies FFT features and why DVFS-style defenses cannot move the
// peaks. Periods are chosen between 0.4 s and 1.7 s (0.6–2.5 Hz) — well
// inside the outlet sensor's 10 Hz Nyquist band.
var pageSpecs = map[string]pageSpec{
	// Light landing page: tiny fetch, brief layout, near-idle steady state.
	"google": {fetchWork: 1.5, layoutWork: 3, steadyWork: 14, steadyAct: 0.10, steadyMem: 0.5, timerAmp: 0.04, timerSec: 1.30, threads: 1},
	// ted: hero video autoplays — sustained decode with frame cadence.
	"ted": {fetchWork: 4, layoutWork: 9, steadyWork: 52, steadyAct: 0.58, steadyMem: 0.30, timerAmp: 0.16, timerSec: 0.52, threads: 4},
	// youtube: heavier video decode, faster segment cadence.
	"youtube": {fetchWork: 5, layoutWork: 11, steadyWork: 70, steadyAct: 0.74, steadyMem: 0.26, timerAmp: 0.20, timerSec: 0.41, threads: 4},
	// chase: scripted banking dashboard, mid-rate widget timers.
	"chase": {fetchWork: 3.5, layoutWork: 13, steadyWork: 30, steadyAct: 0.36, steadyMem: 0.40, timerAmp: 0.10, timerSec: 0.90, threads: 3},
	// ieee xplore: document-heavy, long parse, quiet afterwards.
	"ieee": {fetchWork: 5, layoutWork: 7, steadyWork: 16, steadyAct: 0.14, steadyMem: 0.48, timerAmp: 0.04, timerSec: 1.65, threads: 1},
	// amazon: image-heavy storefront with carousel animation.
	"amazon": {fetchWork: 6, layoutWork: 15, steadyWork: 40, steadyAct: 0.48, steadyMem: 0.36, timerAmp: 0.13, timerSec: 0.66, threads: 4},
	// paypal: moderate page with periodic session keepalives.
	"paypal": {fetchWork: 2.5, layoutWork: 8, steadyWork: 24, steadyAct: 0.24, steadyMem: 0.44, timerAmp: 0.08, timerSec: 1.08, threads: 2},
}

// NewPage returns the synthetic browser visit to the named site.
// It panics on an unknown name.
func NewPage(name string) *Program {
	s, ok := pageSpecs[name]
	if !ok {
		panic("workload: unknown page " + name)
	}
	return NewProgram("web/"+name, []Phase{
		{Name: "fetch", Work: s.fetchWork, Threads: 2, Activity: 0.22, MemFrac: 0.70, JitterFrac: 0.15},
		{Name: "layout", Work: s.layoutWork, Threads: s.threads, Activity: 0.80, MemFrac: 0.30, JitterFrac: 0.10},
		{Name: "paint", Work: 2, Threads: 2, Activity: 0.55, MemFrac: 0.40, JitterFrac: 0.10},
		{Name: "steady", Work: s.steadyWork, Threads: s.threads, Activity: s.steadyAct, MemFrac: s.steadyMem,
			TimeOsc: &TimeOscillation{Amp: s.timerAmp, PeriodSec: s.timerSec, JitterFrac: 0.12}, JitterFrac: 0.08},
	})
}

// Pages returns fresh instances of all seven webpage visits in label order.
func Pages() []*Program {
	out := make([]*Program, len(PageNames))
	for i, n := range PageNames {
		out[i] = NewPage(n)
	}
	return out
}
