package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Replay is a Workload driven by a recorded per-tick demand trace rather
// than a phase program: users who have profiled a real application (e.g.
// per-millisecond utilization and memory-boundedness from perf counters)
// can replay it against the simulated machine and the defense. The trace
// is wall-clock indexed; progress accounting still flows through Advance so
// slowdown statistics work, with one trace entry consumed per tick.
type Replay struct {
	name    string
	demands []Demand
	tick    int64
	loop    bool
}

// NewReplay wraps a demand trace. If loop is true the trace repeats
// forever; otherwise the workload finishes when the trace is exhausted.
func NewReplay(name string, demands []Demand, loop bool) *Replay {
	if len(demands) == 0 {
		panic("workload: empty replay trace")
	}
	return &Replay{name: name, demands: demands, loop: loop}
}

// Name implements Workload.
func (r *Replay) Name() string { return "replay/" + r.name }

// Demand implements Workload.
func (r *Replay) Demand() Demand {
	if r.Done() {
		return Demand{}
	}
	i := r.tick
	if r.loop {
		i %= int64(len(r.demands))
	}
	r.tick++
	return r.demands[i]
}

// Advance implements Workload: the replay is time-driven, so completed work
// is informational; completion is determined by trace exhaustion.
func (r *Replay) Advance(float64) bool { return r.Done() }

// Done implements Workload.
func (r *Replay) Done() bool {
	return !r.loop && r.tick >= int64(len(r.demands))
}

// TotalWork implements Workload (a replay has no work metric).
func (r *Replay) TotalWork() float64 { return 0 }

// Reset implements Workload.
func (r *Replay) Reset(uint64) { r.tick = 0 }

// Len returns the trace length in ticks.
func (r *Replay) Len() int { return len(r.demands) }

// WriteDemandsCSV emits a demand trace as threads,activity,memfrac rows.
func WriteDemandsCSV(w io.Writer, demands []Demand) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, d := range demands {
		err := cw.Write([]string{
			strconv.Itoa(d.Threads),
			strconv.FormatFloat(d.Activity, 'g', 6, 64),
			strconv.FormatFloat(d.MemFrac, 'g', 6, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDemandsCSV parses a demand trace written by WriteDemandsCSV.
func ReadDemandsCSV(r io.Reader) ([]Demand, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var out []Demand
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		threads, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d threads: %w", line, err)
		}
		act, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d activity: %w", line, err)
		}
		mem, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d memfrac: %w", line, err)
		}
		if threads < 0 || act < 0 || act > 2 || mem < 0 || mem > 1 {
			return nil, fmt.Errorf("workload: line %d values out of range", line)
		}
		out = append(out, Demand{Threads: threads, Activity: act, MemFrac: mem})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty demand trace")
	}
	return out, nil
}

// Record captures a program's demand trace for n ticks (useful to convert a
// phase program into a replayable trace, or for golden tests).
func Record(w Workload, n int) []Demand {
	out := make([]Demand, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, w.Demand())
	}
	return out
}
