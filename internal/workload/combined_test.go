package workload

import (
	"math"
	"testing"
)

func TestCombinedDemandAggregates(t *testing.T) {
	a := NewProgram("a", []Phase{{Name: "x", Work: 100, Threads: 2, Activity: 1.0, MemFrac: 0.0}})
	b := NewProgram("b", []Phase{{Name: "y", Work: 100, Threads: 2, Activity: 0.5, MemFrac: 0.4}})
	c := NewCombined("ab", a, b)
	d := c.Demand()
	if d.Threads != 4 {
		t.Fatalf("threads=%d", d.Threads)
	}
	if math.Abs(d.Activity-0.75) > 1e-12 {
		t.Fatalf("activity=%g want 0.75", d.Activity)
	}
	if math.Abs(d.MemFrac-0.2) > 1e-12 {
		t.Fatalf("memfrac=%g want 0.2", d.MemFrac)
	}
}

func TestCombinedWorkSplit(t *testing.T) {
	a := NewProgram("a", []Phase{{Name: "x", Work: 10, Threads: 3, Activity: 0.5}})
	b := NewProgram("b", []Phase{{Name: "y", Work: 10, Threads: 1, Activity: 0.5}})
	c := NewCombined("ab", a, b)
	c.Demand()
	c.Advance(4) // a gets 3, b gets 1
	if math.Abs(a.Progress()-0.3) > 1e-9 {
		t.Fatalf("a progress %g want 0.3", a.Progress())
	}
	if math.Abs(b.Progress()-0.1) > 1e-9 {
		t.Fatalf("b progress %g want 0.1", b.Progress())
	}
}

func TestCombinedFinishesWhenAllDo(t *testing.T) {
	a := NewProgram("a", []Phase{{Name: "x", Work: 2, Threads: 1, Activity: 0.5}})
	b := NewProgram("b", []Phase{{Name: "y", Work: 10, Threads: 1, Activity: 0.5}})
	c := NewCombined("ab", a, b)
	for i := 0; i < 6; i++ {
		c.Demand()
		if c.Advance(2) {
			break
		}
	}
	if !a.Done() || !b.Done() || !c.Done() {
		t.Fatalf("completion: a=%v b=%v c=%v", a.Done(), b.Done(), c.Done())
	}
	// After one member finishes, the survivor receives all the work.
	if c.TotalWork() != a.TotalWork()+b.TotalWork() {
		t.Fatal("total work mismatch")
	}
}

func TestCombinedResetIndependentSeeds(t *testing.T) {
	a := NewApp("radiosity")
	b := NewApp("vips")
	c := NewCombined("mix", a, b)
	c.Reset(5)
	w1 := a.TotalWork()
	c.Reset(6)
	w2 := a.TotalWork()
	if w1 == w2 {
		t.Fatal("reset seeds not propagated with jitter")
	}
}

func TestCombinedEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCombined("none")
}
