package workload

// Combined runs several workloads concurrently on one machine, as in the
// paper's Fig 2 ("App 1, App 2" above the OS): thread demands add (the
// machine caps at its core count), activity and memory-boundedness are
// thread-weighted averages, and completed work is split proportionally to
// each member's offered threads. Maya is application-transparent, so it
// must mask the *mix*, not any single program.
type Combined struct {
	name    string
	members []Workload
	// lastShare[i] is member i's thread share of the most recent Demand,
	// used to split Advance's completed work.
	lastShare []float64
}

// NewCombined composes workloads. The combined workload finishes when every
// member has finished.
func NewCombined(name string, members ...Workload) *Combined {
	if len(members) == 0 {
		panic("workload: empty combination")
	}
	return &Combined{name: name, members: members, lastShare: make([]float64, len(members))}
}

// Name implements Workload.
func (c *Combined) Name() string { return "combined/" + c.name }

// Demand implements Workload.
func (c *Combined) Demand() Demand {
	var threads int
	var act, mem, wsum float64
	for i, m := range c.members {
		d := m.Demand()
		c.lastShare[i] = float64(d.Threads)
		threads += d.Threads
		act += float64(d.Threads) * d.Activity
		mem += float64(d.Threads) * d.MemFrac
		wsum += float64(d.Threads)
	}
	if wsum == 0 { //nolint:maya/floateq all-idle guard; weights sum to exactly 0 only when all are 0
		for i := range c.lastShare {
			c.lastShare[i] = 0
		}
		return Demand{}
	}
	for i := range c.lastShare {
		c.lastShare[i] /= wsum
	}
	return Demand{Threads: threads, Activity: act / wsum, MemFrac: mem / wsum}
}

// Advance implements Workload: completed work is divided by thread share.
func (c *Combined) Advance(work float64) bool {
	done := true
	for i, m := range c.members {
		if m.Done() {
			continue
		}
		if !m.Advance(work * c.lastShare[i]) {
			done = false
		}
	}
	return done
}

// Done implements Workload.
func (c *Combined) Done() bool {
	for _, m := range c.members {
		if !m.Done() {
			return false
		}
	}
	return true
}

// TotalWork implements Workload.
func (c *Combined) TotalWork() float64 {
	var t float64
	for _, m := range c.members {
		t += m.TotalWork()
	}
	return t
}

// Reset implements Workload.
func (c *Combined) Reset(seed uint64) {
	for i, m := range c.members {
		m.Reset(seed + uint64(i)*1_000_003)
	}
}
