package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestReplayPlaysTrace(t *testing.T) {
	demands := []Demand{
		{Threads: 1, Activity: 0.5, MemFrac: 0.1},
		{Threads: 4, Activity: 0.9, MemFrac: 0.2},
	}
	r := NewReplay("test", demands, false)
	if r.Name() != "replay/test" || r.Len() != 2 {
		t.Fatalf("meta wrong: %s len %d", r.Name(), r.Len())
	}
	if d := r.Demand(); d.Threads != 1 {
		t.Fatalf("tick 0: %+v", d)
	}
	if d := r.Demand(); d.Threads != 4 {
		t.Fatalf("tick 1: %+v", d)
	}
	if !r.Done() {
		t.Fatal("trace exhausted but not done")
	}
	if d := r.Demand(); d.Threads != 0 {
		t.Fatalf("done replay should idle: %+v", d)
	}
	r.Reset(0)
	if r.Done() {
		t.Fatal("reset did not rewind")
	}
}

func TestReplayLoop(t *testing.T) {
	r := NewReplay("loop", []Demand{{Threads: 2, Activity: 0.3}}, true)
	for i := 0; i < 100; i++ {
		if d := r.Demand(); d.Threads != 2 {
			t.Fatalf("loop broke at %d: %+v", i, d)
		}
	}
	if r.Done() {
		t.Fatal("looping replay should never finish")
	}
}

func TestDemandsCSVRoundTrip(t *testing.T) {
	orig := []Demand{
		{Threads: 1, Activity: 0.25, MemFrac: 0.5},
		{Threads: 6, Activity: 1.1, MemFrac: 0},
	}
	var buf bytes.Buffer
	if err := WriteDemandsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDemandsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadDemandsCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"x,0.5,0.1\n",
		"1,zz,0.1\n",
		"1,0.5,zz\n",
		"-1,0.5,0.1\n",
		"1,3.5,0.1\n",
		"1,0.5,1.5\n",
	}
	for i, c := range cases {
		if _, err := ReadDemandsCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestRecordThenReplayMatchesProgram(t *testing.T) {
	// Recording a phase program and replaying it must produce the same
	// demand sequence (programs are deterministic given a seed).
	p := NewApp("streamcluster")
	p.Reset(4)
	rec := Record(p, 500)
	rp := NewReplay("streamcluster", rec, false)
	p2 := NewApp("streamcluster")
	p2.Reset(4)
	for i := 0; i < 500; i++ {
		want := p2.Demand()
		got := rp.Demand()
		if got != want {
			t.Fatalf("tick %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestNewReplayPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplay("x", nil, false)
}
