package provenance

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
)

// Profiles is an in-flight profile capture. Start it before the measured
// work and Stop it after; Stop reports the files it wrote so the caller can
// record them in the manifest.
type Profiles struct {
	dir  string
	cpu  *os.File
	heap bool
}

// profileKinds are the capture selectors StartProfiles accepts.
const profileKinds = "cpu, heap"

// StartProfiles begins capturing the requested profiles into dir. kinds is
// a comma-separated subset of {cpu, heap}; "cpu" starts the CPU profiler
// immediately, "heap" defers a heap snapshot to Stop. An empty kinds
// returns a no-op capture, so callers need no guards.
func StartProfiles(dir, kinds string) (*Profiles, error) {
	p := &Profiles{dir: dir}
	if strings.TrimSpace(kinds) == "" {
		return p, nil
	}
	for _, kind := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(kind) {
		case "cpu":
			f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
			if err != nil {
				return nil, fmt.Errorf("provenance: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("provenance: cpu profile: %w", err)
			}
			p.cpu = f
		case "heap":
			p.heap = true
		case "":
		default:
			return nil, fmt.Errorf("provenance: unknown profile kind %q (have %s)", kind, profileKinds)
		}
	}
	return p, nil
}

// Stop finalizes the capture: it stops the CPU profiler and snapshots the
// heap, both into the directory given to StartProfiles. It returns the
// file names written (relative to that directory), sorted.
func (p *Profiles) Stop() ([]string, error) {
	var files []string
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return files, fmt.Errorf("provenance: close cpu profile: %w", err)
		}
		p.cpu = nil
		files = append(files, "cpu.pprof")
	}
	if p.heap {
		p.heap = false
		f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
		if err != nil {
			return files, fmt.Errorf("provenance: %w", err)
		}
		// An up-to-date GC cycle makes the snapshot reflect live objects,
		// not whatever garbage the run happened to leave behind.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return files, fmt.Errorf("provenance: heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return files, fmt.Errorf("provenance: close heap profile: %w", err)
		}
		files = append(files, "heap.pprof")
	}
	sort.Strings(files)
	return files, nil
}
