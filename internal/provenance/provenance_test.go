package provenance

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/telemetry"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := New("v-test")
	m.Scale = "tiny/runs=2"
	m.Seed = 7
	m.Workers = 4
	m.Entries = []Entry{
		{Name: "fig3", Digest: "abc123", WallMS: 12, AllocBytes: 4096},
		{Name: "fig6", Digest: "def456", Cached: true},
		{Name: "fig7", Digest: "0789ab", Error: "context deadline exceeded", TimedOut: true},
	}
	m.SetCache("rw", expcache.Stats{Hits: 2, Misses: 1, Writes: 1})
	events := []telemetry.TraceEvent{
		{Name: "tick.mask", StartNS: 0, DurNS: 100},
		{Name: "tick.mask", StartNS: 200, DurNS: 300},
		{Name: "job.run", StartNS: 0, DurNS: 1000},
	}
	m.SetTrace("trace.json", events, 5, 10)
	m.Profiles = []string{"cpu.pprof"}

	path := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.CodeVersion != "v-test" {
		t.Fatalf("identity fields wrong: %+v", got)
	}
	if got.GoVersion != runtime.Version() || got.GOOS != runtime.GOOS || got.GOARCH != runtime.GOARCH {
		t.Fatalf("toolchain fields wrong: %+v", got)
	}
	if len(got.Entries) != 3 || got.Entries[1].Cached != true || got.Entries[2].Error == "" {
		t.Fatalf("entries wrong: %+v", got.Entries)
	}
	if got.Cache == nil || got.Cache.Hits != 2 || got.Cache.Mode != "rw" {
		t.Fatalf("cache record wrong: %+v", got.Cache)
	}
	if got.Trace == nil || got.Trace.Events != 3 || got.Trace.Dropped != 5 || got.Trace.TickSample != 10 {
		t.Fatalf("trace record wrong: %+v", got.Trace)
	}
	// Phases aggregate by span name, total-descending.
	if len(got.Phases) != 2 || got.Phases[0].Name != "job.run" || got.Phases[1].Count != 2 {
		t.Fatalf("phase rollup wrong: %+v", got.Phases)
	}
}

func TestManifestRejectsUnknownFieldsAndNewerSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":1,"bogus":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	newer := filepath.Join(dir, "newer.json")
	if err := os.WriteFile(newer, []byte(`{"schema":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(newer); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("newer schema not rejected: %v", err)
	}
}

func TestProfilesCapture(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiles(dir, "cpu, heap")
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_00; i++ {
		sink += i * i
	}
	_ = sink
	files, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "cpu.pprof" || files[1] != "heap.pprof" {
		t.Fatalf("files = %v, want [cpu.pprof heap.pprof]", files)
	}
	for _, f := range files {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
	// Stop is idempotent: a second call writes nothing.
	files, err = p.Stop()
	if err != nil || len(files) != 0 {
		t.Fatalf("second Stop = (%v, %v), want (empty, nil)", files, err)
	}
}

func TestProfilesNoopAndErrors(t *testing.T) {
	p, err := StartProfiles(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if files, err := p.Stop(); err != nil || len(files) != 0 {
		t.Fatalf("no-op capture = (%v, %v)", files, err)
	}
	if _, err := StartProfiles(t.TempDir(), "cpu,flamegraph"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
