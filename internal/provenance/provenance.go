// Package provenance assembles run-provenance manifests: a machine-readable
// record of exactly which code, configuration, seeds, and cache state
// produced a report, plus where the run spent its time and which profiles
// were captured alongside it.
//
// A manifest is deliberately NOT deterministic — it records wall-clock
// attribution and host identity, the two things the report body must never
// contain. The report answers "what did the experiments conclude"; the
// manifest answers "where did this report come from and what did producing
// it cost". The two are written to separate files so the byte-identity
// gates on the report stay intact.
//
// The manifest's identity fields reuse the experiment cache's content
// addressing: CodeVersion is expcache.CodeVersion, and each entry carries
// the hex content address that keyed (or would key) its cached section, so
// a manifest pins its report to cache entries exactly.
package provenance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/telemetry"
)

// SchemaVersion identifies the manifest layout. Bump on any breaking field
// change so downstream tooling can reject manifests it does not understand.
const SchemaVersion = 1

// Manifest is the run-provenance record emitted next to a report.
type Manifest struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// CodeVersion identifies the producing code (expcache.CodeVersion:
	// VCS revision + dirty flag, or the CI override).
	CodeVersion string `json:"code_version"`
	// GoVersion/GOOS/GOARCH pin the toolchain and host class.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Scale is the canonical rendering of every scale parameter — the same
	// string the cache keys hash, so two manifests with equal Scale ran
	// equal configurations.
	Scale string `json:"scale"`
	// Seed is the base random seed of the sweep.
	Seed uint64 `json:"seed"`
	// Workers is the requested worker count (0 = GOMAXPROCS).
	Workers int `json:"workers"`

	// Entries records each experiment of the run in suite order.
	Entries []Entry `json:"entries"`
	// Cache summarizes the experiment cache's participation, when one was
	// open.
	Cache *CacheRecord `json:"cache,omitempty"`
	// Phases is the per-phase timing rollup aggregated from the run's
	// trace (empty when tracing was off).
	Phases []telemetry.PhaseStat `json:"phases,omitempty"`
	// Trace describes the exported trace file, when tracing was on.
	Trace *TraceRecord `json:"trace,omitempty"`
	// Profiles lists the pprof files captured into the artifact dir.
	Profiles []string `json:"profiles,omitempty"`
}

// Entry is one experiment's provenance row.
type Entry struct {
	// Name is the suite entry name ("fig6", "ablation-masks").
	Name string `json:"name"`
	// Digest is the expcache content address of the entry's report section
	// for this (code, scale, seed) — the key a cache hit replayed or a
	// cache write stored.
	Digest string `json:"digest"`
	// Cached marks sections replayed from the cache instead of computed.
	Cached bool `json:"cached,omitempty"`
	// TimedOut / Error record failures verbatim.
	TimedOut bool   `json:"timed_out,omitempty"`
	Error    string `json:"error,omitempty"`
	// WallMS and AllocBytes are the runner's accounting (zero for cached
	// replays).
	WallMS     int64  `json:"wall_ms"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// CacheRecord summarizes the experiment cache's participation in the run.
type CacheRecord struct {
	// Mode is the cache mode string ("off", "rw", "ro").
	Mode string `json:"mode"`
	// Hits/Misses/Corrupt/Writes are the run's counter totals.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
	Writes  uint64 `json:"writes"`
}

// TraceRecord describes the trace export the manifest's Phases rollup was
// computed from.
type TraceRecord struct {
	// File is the trace file name (relative to the manifest's directory).
	File string `json:"file"`
	// Events and Dropped are the ring's retained/overwritten counts.
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
	// TickSample is the per-tick sampling stride (1 = every tick).
	TickSample int `json:"tick_sample,omitempty"`
}

// New returns a manifest stamped with the schema, code version, and
// toolchain identity. Callers fill the run fields and call WriteFile.
func New(codeVersion string) *Manifest {
	return &Manifest{
		Schema:      SchemaVersion,
		CodeVersion: codeVersion,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
}

// SetCache records the cache's mode and counter totals.
func (m *Manifest) SetCache(mode string, st expcache.Stats) {
	m.Cache = &CacheRecord{
		Mode: mode, Hits: st.Hits, Misses: st.Misses,
		Corrupt: st.Corrupt, Writes: st.Writes,
	}
}

// SetTrace records the trace export and aggregates its per-phase rollup.
func (m *Manifest) SetTrace(file string, events []telemetry.TraceEvent, dropped uint64, tickSample int) {
	m.Trace = &TraceRecord{File: file, Events: len(events), Dropped: dropped, TickSample: tickSample}
	m.Phases = telemetry.Summarize(events)
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644, truncating).
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("provenance: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("provenance: close %s: %w", path, err)
	}
	return nil
}

// ReadFile parses a manifest written by WriteFile. Unknown fields are
// rejected: a manifest is our own format, so unknown fields mean a schema
// skew the caller must see.
func ReadFile(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("provenance: parse %s: %w", path, err)
	}
	if m.Schema > SchemaVersion {
		return nil, fmt.Errorf("provenance: %s has schema %d, newer than supported %d", path, m.Schema, SchemaVersion)
	}
	return &m, nil
}
