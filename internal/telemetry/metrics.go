// Package telemetry is the measurement layer of the defense stack: a
// low-overhead metrics registry (counters, gauges, fixed-bucket histograms
// with Prometheus-style text exposition and JSONL export, plus constant
// info gauges for build identity), a per-tick flight recorder for the
// control loop, span-style timing into histograms, and the hierarchical
// structured tracer ([Tracer]) that attributes a whole pipeline run —
// suite, runner jobs, engine ticks — span by span.
//
// The package serves two masters with different constraints:
//
//   - The control loop runs every 20 ms simulated (and far faster in
//     wall-clock during sweeps), so recording on the hot path must be
//     allocation-free and cheap. All instruments are fixed-size structures
//     updated with atomic operations; callers resolve them once at setup
//     and hold direct pointers. The tracer extends the same discipline:
//     every method no-ops on a nil receiver with zero allocation, so
//     instrumentation points run unconditionally whether tracing is on or
//     off (CI gates this with the TelemetryHotPath zero-alloc benchmarks).
//   - Experiment reports must stay byte-identical for a fixed seed.
//     Instruments therefore never feed back into the simulation, and
//     everything recorded by the flight recorder is simulated-domain data
//     (no wall-clock timestamps), so flight traces are deterministic too.
//     Trace spans do carry wall-clock durations — attribution is their
//     whole point — but their IDs derive from job/tenant identity, never
//     from the clock, and nothing they observe reaches a decision. Only
//     the opt-in timing/telemetry report sections and trace exports carry
//     wall-clock values.
//
// Trace exports are Chrome trace-event JSON ([WriteChromeTrace],
// Perfetto-loadable) or JSONL ([WriteTraceJSONL]); [ParseTraceEvents]
// reads either back losslessly and [Summarize]/[WriteSummaryTable] fold a
// trace into a per-phase attribution table.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//maya:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
//
//maya:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a value that can go up and down (pool depth, last reading).
// All methods are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//maya:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (compare-and-swap loop).
//
//maya:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram counts observations into fixed buckets. Bucket i counts values
// v <= Bounds[i] (and greater than Bounds[i-1]); one implicit overflow
// bucket catches everything above the last bound, matching Prometheus'
// cumulative `le` semantics on exposition. Observe is safe for concurrent
// use and allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//maya:hotpath
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; small bucket lists make this
	// a handful of comparisons with no calls out.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("telemetry: ExpBuckets needs start > 0 and factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets returns the default span-timing bounds in seconds:
// 1 µs … ~100 s in decade-and-a-half steps.
func DurationBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30, 60, 120}
}
