package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFlightRead checks that the JSONL flight-record reader never panics on
// arbitrary input and that anything it accepts survives a write→read round
// trip unchanged.
func FuzzFlightRead(f *testing.F) {
	f.Add(`{"step":0,"target_w":20,"measured_w":19,"error_w":1,"u":[0.1,0.2,0.3],"applied":[1.6,0.2,0.5],"state_norm":0.5}`)
	f.Add("{\"step\":1}\ngarbage\n{\"step\":2,\"saturated\":true,\"clipped\":[true,false,true]}")
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"step":-1,"target_w":1e308}`)
	f.Add(`{"u":[1,2,3,4]}`)
	f.Add(strings.Repeat("x", 5000))
	f.Fuzz(func(t *testing.T, input string) {
		recs, _, err := ReadFlight(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round trip: re-emit the accepted records through the recorder's
		// spill path and read them back.
		fr := NewFlightRecorder(len(recs) + 1)
		for _, r := range recs {
			fr.Record(r)
		}
		var buf bytes.Buffer
		if err := fr.Flush(&buf); err != nil {
			t.Fatalf("accepted records failed to serialize: %v", err)
		}
		again, skipped, err := ReadFlight(&buf)
		if err != nil || skipped != 0 {
			t.Fatalf("round trip rejected: err=%v skipped=%d", err, skipped)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range again {
			if again[i] != recs[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
