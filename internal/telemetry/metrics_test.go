package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

// TestCounterConcurrent drives one counter from many goroutines; run under
// -race this also proves the increment path is data-race free.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 10000
	reg := NewRegistry()
	c := reg.Counter("t_total", "test")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %g, want 0", got)
	}
}

// TestHistogramBucketBoundaries pins the `le` semantics: a value equal to a
// bound lands in that bound's bucket, a value just above it in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 3, 1, 2} // (-inf,1], (1,2], (2,4], (4,+inf)
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); sum != 0.5+1+1.0001+2+2+4+4.0001+100 {
		t.Fatalf("sum = %g", sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds should panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
	db := DurationBuckets()
	for i := 1; i < len(db); i++ {
		if db[i] <= db[i-1] {
			t.Fatalf("DurationBuckets not increasing at %d: %v", i, db)
		}
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help")
	b := reg.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	h1 := reg.Histogram("h", "", []float64{1, 2})
	h2 := reg.Histogram("h", "", []float64{9, 99}) // first bounds win
	if h1 != h2 {
		t.Fatal("re-registration must return the same histogram")
	}
	if h2.Bounds()[0] != 1 {
		t.Fatalf("first registration's bounds must win, got %v", h2.Bounds())
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("kind mismatch should panic")
		}
		// The panicking path is a thin wrapper over the Try* variant; the
		// payload must be the same structured error.
		if _, ok := p.(*KindMismatchError); !ok {
			t.Fatalf("panic payload = %T, want *KindMismatchError", p)
		}
	}()
	reg.Gauge("x_total", "")
}

func TestRegistryTryVariants(t *testing.T) {
	reg := NewRegistry()
	c, err := reg.TryCounter("x_total", "help")
	if err != nil || c == nil {
		t.Fatalf("TryCounter: %v", err)
	}
	if c2, err := reg.TryCounter("x_total", ""); err != nil || c2 != c {
		t.Fatalf("TryCounter re-registration: c2=%p err=%v", c2, err)
	}
	if g, err := reg.TryGauge("g", ""); err != nil || g == nil {
		t.Fatalf("TryGauge: %v", err)
	}
	if h, err := reg.TryHistogram("h", "", []float64{1, 2}); err != nil || h == nil {
		t.Fatalf("TryHistogram: %v", err)
	}

	_, err = reg.TryGauge("x_total", "")
	var mismatch *KindMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("TryGauge on a counter name: err = %v, want *KindMismatchError", err)
	}
	if mismatch.Name != "x_total" || mismatch.Existing != "counter" || mismatch.Requested != "gauge" {
		t.Fatalf("mismatch fields = %+v", mismatch)
	}
	if _, err := reg.TryCounter("h", ""); err == nil {
		t.Fatal("TryCounter on a histogram name must fail")
	}
	if _, err := reg.TryHistogram("g", "", []float64{1}); err == nil {
		t.Fatal("TryHistogram on a gauge name must fail")
	}
	// Errors must not leave a broken half-registration behind.
	if c3, err := reg.TryCounter("x_total", ""); err != nil || c3 != c {
		t.Fatalf("registry state after mismatch: c3=%p err=%v", c3, err)
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "").Add(3)
	reg.Gauge("a_gauge", "").Set(1.5)
	reg.Histogram("c_hist", "", []float64{1}).Observe(0.5)

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	// Sorted by name.
	if snap[0].Name != "a_gauge" || snap[1].Name != "b_total" || snap[2].Name != "c_hist" {
		t.Fatalf("snapshot order: %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[1].Value != 3 || snap[0].Value != 1.5 || snap[2].Count != 1 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}

	reg.Reset()
	for _, m := range reg.Snapshot() {
		if m.Value != 0 || m.Count != 0 || m.Sum != 0 {
			t.Fatalf("reset left %+v", m)
		}
	}
}

// TestWritePromGolden pins the exposition format byte for byte.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("maya_steps_total", "control-loop steps").Add(7)
	reg.Gauge("pool_depth", "jobs in flight").Set(2.5)
	h := reg.Histogram("err_w", "tracking error", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP err_w tracking error`,
		`# TYPE err_w histogram`,
		`err_w_bucket{le="0.5"} 1`,
		`err_w_bucket{le="1"} 2`,
		`err_w_bucket{le="+Inf"} 3`,
		`err_w_sum 4`,
		`err_w_count 3`,
		`# HELP maya_steps_total control-loop steps`,
		`# TYPE maya_steps_total counter`,
		`maya_steps_total 7`,
		`# HELP pool_depth jobs in flight`,
		`# TYPE pool_depth gauge`,
		`pool_depth 2.5`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestInfoMetric(t *testing.T) {
	reg := NewRegistry()
	reg.Info("maya_build_info", "build identity", map[string]string{
		"version":   `v1.2-"dirty"\x`,
		"goarch":    "amd64",
		"multiline": "a\nb",
	})
	// Idempotent; first labels win.
	reg.Info("maya_build_info", "build identity", map[string]string{"version": "other"})
	// Kind clash with an existing gauge is reported, not silently merged.
	reg.Gauge("some_gauge", "")
	if err := reg.TryInfo("some_gauge", "", nil); err == nil {
		t.Fatal("info over gauge must be a kind mismatch")
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP maya_build_info build identity` + "\n" +
		`# TYPE maya_build_info gauge` + "\n" +
		`maya_build_info{goarch="amd64",multiline="a\nb",version="v1.2-\"dirty\"\\x"} 1` + "\n"
	if got := buf.String(); !strings.Contains(got, want) {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want fragment ---\n%s", got, want)
	}

	snap := reg.Snapshot()
	var info *Metric
	for i := range snap {
		if snap[i].Name == "maya_build_info" {
			info = &snap[i]
		}
	}
	if info == nil {
		t.Fatal("info metric missing from snapshot")
	}
	if info.Type != "info" || info.Value != 1 || info.Labels["goarch"] != "amd64" {
		t.Fatalf("snapshot info = %+v", info)
	}
	if info.Labels["version"] != `v1.2-"dirty"\x` {
		t.Fatalf("snapshot labels must be unescaped: %q", info.Labels["version"])
	}

	// Reset leaves the constant metric untouched.
	reg.Reset()
	var buf2 bytes.Buffer
	if err := reg.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `maya_build_info{`) {
		t.Fatal("reset dropped the info metric")
	}
}

func TestWriteJSONL(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(2)
	reg.Histogram("h", "", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"a_total"`) || !strings.Contains(lines[1], `"buckets"`) {
		t.Fatalf("unexpected JSONL:\n%s", buf.String())
	}
}

// TestHotPathZeroAlloc is the in-suite version of the CI benchmark gate:
// none of the hot-path record operations may allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", DurationBuckets())
	f := NewFlightRecorder(64)
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc() }},
		{"gauge", func() { g.Set(1.5) }},
		{"histogram", func() { h.Observe(0.01) }},
		{"flight", func() { f.Record(FlightRecord{Step: 1, TargetW: 20}) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s: %g allocs/op, want 0", tc.name, n)
		}
	}
}
