package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FlightRecord is one control-loop tick as the flight recorder stores it:
// what the mask asked for, what the sensor measured, what the controller
// commanded, and what the actuators actually applied. Every field is
// simulated-domain data, so a flight trace is deterministic for a fixed
// seed and can be diffed across runs.
type FlightRecord struct {
	// Step is the control-period index (counting warmup; see
	// sim.RunResult.FirstStep for alignment with recorded samples).
	Step int `json:"step"`
	// TargetW is the full mask target for the period (closed-loop component
	// plus any open-loop high-frequency component).
	TargetW float64 `json:"target_w"`
	// MeasuredW is the defense sensor's reading the controller consumed
	// (zero on the very first step, before any reading exists).
	MeasuredW float64 `json:"measured_w"`
	// ErrorW is the tracking error TargetW − MeasuredW.
	ErrorW float64 `json:"error_w"`
	// U is the commanded normalized input vector [dvfs, idle, balloon]
	// after dither injection, before quantization.
	U [3]float64 `json:"u"`
	// Applied holds the applied physical knob settings [GHz, idle fraction,
	// balloon duty] after quantization.
	Applied [3]float64 `json:"applied"`
	// Saturated reports that the controller clipped at least one raw input
	// to [0,1] this step (actuator authority limit).
	Saturated bool `json:"saturated,omitempty"`
	// Clipped flags, per knob, that the commanded normalized value lay
	// outside [0,1] when quantized (quantization-clip event).
	Clipped [3]bool `json:"clipped,omitempty"`
	// StateNorm is the L2 norm of the controller's internal state.
	StateNorm float64 `json:"state_norm"`
	// Rejected marks a step whose raw sensor reading failed the engine's
	// measurement guard (non-finite or implausible) and was replaced by a
	// held value; MeasuredW then holds the substituted reading the
	// controller actually consumed. Absent on nominal traces, so enabling
	// the guard leaves fault-free traces byte-identical.
	Rejected bool `json:"rejected,omitempty"`
	// RawW is the rejected raw reading when it was finite (0 when the raw
	// reading was NaN/±Inf, which JSON cannot carry). Only set alongside
	// Rejected.
	RawW float64 `json:"raw_w,omitempty"`
	// StateReinit marks a step on which the guard re-initialized the
	// controller state (saturation-aware blow-up recovery).
	StateReinit bool `json:"state_reinit,omitempty"`
}

// FlightRecorder keeps the last capacity control-loop records in a ring
// buffer. Record is allocation-free; Flush spills everything not yet
// written to an io.Writer as JSONL, so a caller that flushes often enough
// gets the full trace while an unattended recorder stays bounded.
//
// A recorder belongs to one control loop: Record and Flush must not be
// called concurrently (each engine owns its recorder, like its controller).
type FlightRecorder struct {
	ring []FlightRecord
	// total is the number of records ever appended; the ring holds records
	// [total-len(ring), total).
	total uint64
	// flushed is the count of records already spilled by Flush.
	flushed uint64
	// dropped counts records overwritten before any Flush saw them.
	dropped uint64
}

// DefaultFlightCapacity bounds an unattended recorder: ~82 s of control
// history at the paper's 20 ms period.
const DefaultFlightCapacity = 4096

// NewFlightRecorder returns a recorder holding the last capacity records
// (capacity <= 0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]FlightRecord, capacity)}
}

// Record appends one tick. It never allocates.
//
//maya:hotpath
func (f *FlightRecorder) Record(r FlightRecord) {
	f.ring[f.total%uint64(len(f.ring))] = r
	f.total++
	if f.total-f.flushed > uint64(len(f.ring)) {
		// The oldest unflushed record was just overwritten.
		f.flushed++
		f.dropped++
	}
}

// Len returns how many records are currently held (≤ capacity).
func (f *FlightRecorder) Len() int {
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Total returns how many records were ever appended.
func (f *FlightRecorder) Total() uint64 { return f.total }

// Dropped returns how many records were overwritten before being flushed.
func (f *FlightRecorder) Dropped() uint64 { return f.dropped }

// Reset clears the recorder for a new run (spill accounting included).
func (f *FlightRecorder) Reset() {
	f.total, f.flushed, f.dropped = 0, 0, 0
}

// Snapshot returns the held records in chronological order.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	n := f.Len()
	out := make([]FlightRecord, 0, n)
	for i := f.total - uint64(n); i < f.total; i++ {
		out = append(out, f.ring[i%uint64(len(f.ring))])
	}
	return out
}

// Flush writes every record not yet spilled to w as JSONL and marks it
// spilled. Call it between runs (or periodically during long ones) to
// capture the full trace beyond the ring's capacity.
func (f *FlightRecorder) Flush(w io.Writer) error {
	enc := json.NewEncoder(w)
	for ; f.flushed < f.total; f.flushed++ {
		if err := enc.Encode(f.ring[f.flushed%uint64(len(f.ring))]); err != nil {
			return err
		}
	}
	return nil
}

// maxFlightLine bounds one JSONL line when reading a flight trace back.
const maxFlightLine = 1 << 20

// ReadFlight parses a JSONL flight trace written by Flush. Malformed lines
// are tolerated (a recorder crash mid-write truncates the last line):
// they are skipped and counted, never fatal. The error is non-nil only for
// I/O-level failures.
func ReadFlight(r io.Reader) (recs []FlightRecord, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxFlightLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec FlightRecord
		if json.Unmarshal(line, &rec) != nil {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, skipped, fmt.Errorf("telemetry: reading flight trace: %w", err)
	}
	return recs, skipped, nil
}
