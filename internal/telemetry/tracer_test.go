package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanIDDeterministicAndDistinct(t *testing.T) {
	a := SpanID(0, "suite", 7)
	if a != SpanID(0, "suite", 7) {
		t.Fatal("SpanID is not deterministic")
	}
	if a == 0 {
		t.Fatal("SpanID returned the reserved zero value")
	}
	seen := map[uint64]string{a: "base"}
	for name, variant := range map[string]uint64{
		"other-name": SpanID(0, "job", 7),
		"other-seq":  SpanID(0, "suite", 8),
		"other-par":  SpanID(1, "suite", 7),
	} {
		if prev, dup := seen[variant]; dup {
			t.Fatalf("collision between %s and %s", name, prev)
		}
		seen[variant] = name
	}
}

func TestNewRootContextStable(t *testing.T) {
	a := NewRootContext("suite", 42)
	b := NewRootContext("suite", 42)
	if a != b {
		t.Fatalf("root context not stable: %+v vs %+v", a, b)
	}
	if a.ID == 0 || a.Lane == 0 {
		t.Fatalf("root context has zero identity: %+v", a)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.TickSampled(0) {
		t.Fatal("nil tracer samples ticks")
	}
	tr.Record(TraceEvent{Name: "x"})
	tr.Complete("x", "c", SpanContext{}, 0, 0, 1, 0)
	sp := tr.Start("x", "c", SpanContext{}, 0)
	sp.End()
	if sp.Context() != (SpanContext{}) {
		t.Fatal("inert span has a non-zero context")
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer reports state")
	}
	if tr.Clock() != 0 {
		t.Fatal("nil tracer clock is non-zero")
	}
}

func TestTracerRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("root", "test", SpanContext{}, 0)
	for i := 0; i < 3; i++ {
		tr.Complete("tick", "test", root.Context(), uint64(i), int64(i*10), 5, int64(i))
	}
	root.End()
	events := tr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// Ticks recorded first (oldest-first), root last.
	for i := 0; i < 3; i++ {
		ev := events[i]
		if ev.Name != "tick" || ev.Arg != int64(i) || ev.StartNS != int64(i*10) || ev.DurNS != 5 {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Parent != root.Context().ID {
			t.Fatalf("event %d parent = %d, want %d", i, ev.Parent, root.Context().ID)
		}
		if ev.Lane != root.Context().Lane {
			t.Fatalf("event %d lane = %d, want inherited %d", i, ev.Lane, root.Context().Lane)
		}
		if ev.ID != SpanID(root.Context().ID, "tick", uint64(i)) {
			t.Fatalf("event %d has non-deterministic ID", i)
		}
	}
	last := events[3]
	if last.Name != "root" || last.Parent != 0 || last.DurNS < 0 {
		t.Fatalf("root event = %+v", last)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Name: "e", Arg: int64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Snapshot()
	for i, ev := range events {
		if want := int64(6 + i); ev.Arg != want {
			t.Fatalf("event %d arg = %d, want %d (newest-4 window, oldest first)", i, ev.Arg, want)
		}
	}
}

func TestTracerCapacityRounding(t *testing.T) {
	if n := len(NewTracer(5).ring); n != 8 {
		t.Fatalf("capacity 5 rounded to %d, want 8", n)
	}
	if n := len(NewTracer(0).ring); n != DefaultTraceCapacity {
		t.Fatalf("capacity 0 gave %d, want default %d", n, DefaultTraceCapacity)
	}
}

func TestTickSampling(t *testing.T) {
	tr := NewTracer(8)
	tr.SetTickSample(4)
	var sampled []int
	for step := 0; step < 10; step++ {
		if tr.TickSampled(step) {
			sampled = append(sampled, step)
		}
	}
	want := []int{0, 4, 8}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	tr.SetTickSample(0) // clamps to 1
	if !tr.TickSampled(3) {
		t.Fatal("SetTickSample(0) should sample every tick")
	}
	if tr.TickSampled(-1) {
		t.Fatal("negative steps must not sample")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	const goroutines, per = 8, 1000
	tr := NewTracer(goroutines * per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			parent := NewRootContext("worker", uint64(g))
			for i := 0; i < per; i++ {
				tr.Complete("op", "test", parent, uint64(i), int64(i), 1, int64(g))
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != goroutines*per {
		t.Fatalf("Total = %d, want %d", tr.Total(), goroutines*per)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
	counts := make([]int, goroutines)
	for _, ev := range tr.Snapshot() {
		counts[ev.Arg]++
	}
	for g, n := range counts {
		if n != per {
			t.Fatalf("goroutine %d recorded %d events, want %d", g, n, per)
		}
	}
}

func TestActiveTraceAmbient(t *testing.T) {
	if ActiveTrace() != nil {
		t.Fatal("active tracer should start nil")
	}
	tr := NewTracer(8)
	SetActiveTrace(tr)
	defer SetActiveTrace(nil)
	if ActiveTrace() != tr {
		t.Fatal("ActiveTrace did not return the installed tracer")
	}
	SetActiveTrace(nil)
	if ActiveTrace() != nil {
		t.Fatal("SetActiveTrace(nil) did not clear")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != (SpanContext{}) {
		t.Fatal("empty context carries a span")
	}
	if SpanFromContext(nil) != (SpanContext{}) { //nolint:staticcheck // nil-safety contract
		t.Fatal("nil context carries a span")
	}
	sc := NewRootContext("suite", 1)
	ctx = ContextWithSpan(ctx, sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("got %+v, want %+v", got, sc)
	}
}

func TestSummarize(t *testing.T) {
	events := []TraceEvent{
		{Name: "b", DurNS: 10},
		{Name: "a", DurNS: 100},
		{Name: "b", DurNS: 30},
		{Name: "c", DurNS: 140},
	}
	stats := Summarize(events)
	if len(stats) != 3 {
		t.Fatalf("got %d phases, want 3", len(stats))
	}
	// Sorted by total desc: c(140), a(100), b(40).
	if stats[0].Name != "c" || stats[1].Name != "a" || stats[2].Name != "b" {
		t.Fatalf("order = %s,%s,%s", stats[0].Name, stats[1].Name, stats[2].Name)
	}
	b := stats[2]
	if b.Count != 2 || b.TotalNS != 40 || b.MinNS != 10 || b.MaxNS != 30 {
		t.Fatalf("phase b = %+v", b)
	}
	if b.Mean() != 20 {
		t.Fatalf("phase b mean = %v", b.Mean())
	}
	if (PhaseStat{}).Mean() != 0 {
		t.Fatal("empty phase mean should be 0")
	}
}

func TestSummarizeTieBreakByName(t *testing.T) {
	stats := Summarize([]TraceEvent{
		{Name: "z", DurNS: 50},
		{Name: "a", DurNS: 50},
	})
	if stats[0].Name != "a" || stats[1].Name != "z" {
		t.Fatalf("equal totals must sort by name: got %s,%s", stats[0].Name, stats[1].Name)
	}
}

func TestTraceWall(t *testing.T) {
	if TraceWall(nil) != 0 {
		t.Fatal("empty trace has non-zero wall")
	}
	events := []TraceEvent{
		{StartNS: 100, DurNS: 50},
		{StartNS: 20, DurNS: 10},
		{StartNS: 120, DurNS: 100},
	}
	if got := TraceWall(events); got.Nanoseconds() != 200 {
		t.Fatalf("wall = %v, want 200ns (220-20)", got)
	}
}

func TestWriteSummaryTable(t *testing.T) {
	events := []TraceEvent{
		{Name: "tick.control", StartNS: 0, DurNS: 3000},
		{Name: "tick.mask", StartNS: 3000, DurNS: 1000},
	}
	var buf bytes.Buffer
	if err := WriteSummaryTable(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "tick.control", "tick.mask", "wall%", "75.0%", "25.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// control (3000ns total) must render above mask (1000ns).
	if strings.Index(out, "tick.control") > strings.Index(out, "tick.mask") {
		t.Fatalf("phases not sorted by total desc:\n%s", out)
	}
}

func sampleEvents() []TraceEvent {
	root := NewRootContext("suite", 9)
	job := SpanID(root.ID, "job.run", 2)
	return []TraceEvent{
		{Name: "suite", Cat: "suite", ID: root.ID, Lane: root.Lane, StartNS: 0, DurNS: 5_000_000},
		{Name: "job.run", Cat: "runner", Label: "fig7", ID: job, Parent: root.ID, Lane: root.Lane, StartNS: 1_000, DurNS: 4_000_000, Arg: 2},
		{Name: "tick.mask", Cat: "engine", ID: SpanID(job, "tick.mask", 0), Parent: job, Lane: root.Lane, StartNS: 2_000, DurNS: 750},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	// The output must be valid Chrome trace-event JSON.
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) != len(events) {
		t.Fatalf("exported %d events, want %d", len(ct.TraceEvents), len(events))
	}
	if ph := ct.TraceEvents[0]["ph"]; ph != "X" {
		t.Fatalf(`ph = %v, want "X"`, ph)
	}

	got, err := ParseTraceEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d did not round-trip:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLTraceRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(events) {
		t.Fatalf("got %d lines, want %d", lines, len(events))
	}
	got, err := ParseTraceEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d did not round-trip:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestParseTraceBareArray(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	// Unwrap {"traceEvents": [...]} to the bare array form some tools emit.
	var ct map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceEvents(bytes.NewReader(ct["traceEvents"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || got[0] != events[0] {
		t.Fatalf("bare array parse mismatch: %+v", got)
	}
}

func TestParseTraceForeignChromeEvents(t *testing.T) {
	// Events without our args payload (from another emitter) fall back to
	// the microsecond floats; metadata (ph "M") events are skipped.
	input := `{"traceEvents":[
	 {"name":"meta","ph":"M","pid":1,"tid":1,"args":{}},
	 {"name":"work","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":3,"args":{}}
	]}`
	got, err := ParseTraceEvents(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1 (metadata skipped)", len(got))
	}
	ev := got[0]
	if ev.Name != "work" || ev.StartNS != 1500 || ev.DurNS != 2500 || ev.Lane != 3 {
		t.Fatalf("foreign event = %+v", ev)
	}
}

func TestParseTraceErrors(t *testing.T) {
	if _, err := ParseTraceEvents(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input must error")
	}
	if _, err := ParseTraceEvents(strings.NewReader(`{"bogus": true}`)); err == nil {
		t.Fatal("object without traceEvents and invalid as JSONL must error")
	}
	if _, err := ParseTraceEvents(strings.NewReader("[{]")); err == nil {
		t.Fatal("malformed array must error")
	}
	got, err := ParseTraceEvents(strings.NewReader("  \n\t"))
	if err != nil || got != nil {
		t.Fatalf("blank input: got %v, %v; want nil, nil", got, err)
	}
}

func TestParseTraceJSONLSkipsBlankLines(t *testing.T) {
	input := `{"name":"a","id":1,"lane":1,"start_ns":0,"dur_ns":5}

{"name":"b","id":2,"lane":1,"start_ns":5,"dur_ns":5}
`
	got, err := ParseTraceEvents(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("got %+v", got)
	}
}
