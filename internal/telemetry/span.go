package telemetry

import "time"

// Span measures one timed region into a Histogram of seconds. It is a
// value type, so starting and ending a span allocates nothing:
//
//	sp := telemetry.StartSpan(jobTime)
//	... work ...
//	sp.End()
//
// A Span with a nil histogram is a no-op, so instrumentation points can run
// unconditionally whether or not telemetry is attached.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h (h may be nil). Spans measure the host's
// wall clock by design; they feed only the opt-in timing sections of
// reports, never simulated-domain data.
//
//maya:wallclock span timing measures the host by design
//maya:hotpath
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed seconds. Calling End on a zero Span is a no-op.
//
//maya:wallclock span timing measures the host by design
//maya:hotpath
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// ObserveDuration records d into h in seconds (nil-safe).
func ObserveDuration(h *Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}
