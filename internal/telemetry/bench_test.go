package telemetry

import "testing"

// The TelemetryHotPath benchmarks guard the subsystem's core contract: CI
// runs them with -benchmem and fails the build if any record operation on
// the hot path allocates (scripts/bench.sh -z TelemetryHotPath).

func BenchmarkTelemetryHotPathCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryHotPathGauge(b *testing.B) {
	reg := NewRegistry()
	g := reg.Gauge("bench_gauge", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkTelemetryHotPathHistogram(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_hist", "", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-4)
	}
}

func BenchmarkTelemetryHotPathFlightAppend(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightCapacity)
	r := FlightRecord{
		TargetW:   20,
		MeasuredW: 19.5,
		ErrorW:    0.5,
		U:         [3]float64{0.25, 0.5, 0.75},
		Applied:   [3]float64{1.6, 0.24, 0.8},
		StateNorm: 1.2,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step = i
		f.Record(r)
	}
}
