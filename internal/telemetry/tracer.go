package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Structured tracing: hierarchical spans over the whole pipeline
// (experiments suite → runner job lifecycle → engine run → per-tick phase
// breakdown), recorded into a lock-free ring and exported as Chrome
// trace-event JSON (Perfetto-loadable) or JSONL.
//
// Two properties separate this from ordinary tracing libraries:
//
//   - Span identities are DETERMINISTIC: an ID is a pure function of
//     (parent ID, span name, sequence number) — job index, tenant identity,
//     tick step — never of the wall clock or allocation order. Two runs of
//     the same configuration produce the same span tree, so traces can be
//     diffed structurally even though their timestamps differ.
//   - The disabled path is free: every record operation on a nil *Tracer is
//     a no-op that performs no allocation and no atomic work, so
//     instrumentation points run unconditionally on the per-tick hot path
//     (the TelemetryHotPathTrace* benchmarks gate this in CI).
//
// Timestamps are host wall-clock durations since the tracer's epoch. They
// feed only trace exports and timing attribution, never decisions — the
// experiment reports are byte-identical with tracing on or off (test-
// enforced, like the flight recorder and metrics before it).

// SpanContext is the identity a span hands to its children: the
// deterministic span ID and the display lane (exported as the Chrome trace
// "tid") the subtree renders on.
type SpanContext struct {
	ID   uint64
	Lane uint32
}

// TraceEvent is one completed span as the ring stores it. All fields are
// value types (string headers copy without allocating), so recording is
// allocation-free.
type TraceEvent struct {
	// Name is the span's phase name ("tick.mask", "job.run", ...); the
	// per-phase attribution summary aggregates by it.
	Name string `json:"name"`
	// Cat is a coarse category ("suite", "runner", "engine", ...).
	Cat string `json:"cat,omitempty"`
	// Label optionally carries a human identity (the runner job's name).
	Label string `json:"label,omitempty"`
	// ID is the span's deterministic identity (see SpanID); Parent is the
	// enclosing span's ID (0 for roots).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Lane groups the span's subtree for display (Chrome trace "tid").
	Lane uint32 `json:"lane"`
	// StartNS/DurNS locate the span on the tracer's clock (nanoseconds
	// since the tracer epoch).
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Arg is one numeric payload (tick step, job index, ...).
	Arg int64 `json:"arg,omitempty"`
}

// SpanID derives a span's deterministic identity from its parent's ID, its
// name, and a caller-chosen sequence number (job index, tick step, run
// index). Derivation is a pure function of those inputs — never the wall
// clock — so the same configuration yields the same span tree on every run.
func SpanID(parent uint64, name string, seq uint64) uint64 {
	h := parent ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	h ^= seq
	// SplitMix64 finalizer: break any remaining linear structure.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// laneOf derives a root span's display lane from its ID.
func laneOf(id uint64) uint32 {
	l := uint32(id ^ id>>32)
	if l == 0 {
		l = 1
	}
	return l
}

// NewRootContext builds a parentless SpanContext for a deterministic
// identity, for callers that want to group spans under a common root
// without emitting a root event.
func NewRootContext(name string, key uint64) SpanContext {
	id := SpanID(0, name, key)
	return SpanContext{ID: id, Lane: laneOf(id)}
}

// Tracer records completed spans into a fixed-capacity lock-free ring.
// Record claims a slot with one atomic add and writes in place, so any
// number of goroutines may record concurrently without locks; when the ring
// wraps, the oldest events are overwritten (counted by Dropped). Size the
// ring for the run, or sample (SetTickSample) to bound the volume.
//
// A nil *Tracer is valid everywhere and disables tracing at zero cost.
type Tracer struct {
	ring []TraceEvent
	mask uint64
	// cursor is the total number of events ever recorded; event i lives in
	// ring[i&mask] until overwritten.
	cursor atomic.Uint64
	epoch  time.Time
	// tickEvery samples the per-tick engine phases: step s is traced when
	// s%tickEvery == 0. Coarser levels (jobs, runs) are always recorded.
	tickEvery uint64
}

// DefaultTraceCapacity holds ~4 MiB of events: enough for a small-scale
// suite run at full tick sampling, and a bounded window of the newest
// events for anything larger.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer holding the last capacity events (rounded up
// to a power of two; capacity <= 0 selects DefaultTraceCapacity). The
// tracer's clock epoch is fixed at creation.
//
//maya:wallclock the tracer epoch anchors host-time span timestamps by design
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{ring: make([]TraceEvent, n), mask: uint64(n - 1), epoch: time.Now(), tickEvery: 1}
}

// Enabled reports whether recording does anything (nil-safe).
func (t *Tracer) Enabled() bool { return t != nil }

// SetTickSample records only every n-th control tick's phase breakdown
// (n <= 1 records every tick). Call before the run; not synchronized with
// concurrent recording.
func (t *Tracer) SetTickSample(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.tickEvery = uint64(n)
}

// TickSampled reports whether the per-tick phases of step should be traced.
//
//maya:hotpath
func (t *Tracer) TickSampled(step int) bool {
	return t != nil && step >= 0 && uint64(step)%t.tickEvery == 0
}

// Clock returns the tracer's current time: nanoseconds since its epoch.
// Span timestamps measure the host by design and never feed decisions.
//
//maya:wallclock trace timestamps measure the host by design
//maya:hotpath
func (t *Tracer) Clock() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Record appends one completed event. Lock-free and allocation-free: one
// atomic add claims a slot, the struct is copied in place. Concurrent
// recorders only conflict on a slot if one laps the other by a full ring —
// size the capacity so that cannot happen within a snapshot window.
//
//maya:hotpath
func (t *Tracer) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	i := t.cursor.Add(1) - 1
	t.ring[i&t.mask] = ev
}

// Complete records a span that is already over: the caller measured
// [startNS, startNS+durNS) itself (engine tick phases, queue waits). The
// span's ID is derived from (parent, name, seq); its lane is inherited.
//
//maya:hotpath
func (t *Tracer) Complete(name, cat string, parent SpanContext, seq uint64, startNS, durNS, arg int64) {
	if t == nil {
		return
	}
	lane := parent.Lane
	id := SpanID(parent.ID, name, seq)
	if lane == 0 {
		lane = laneOf(id)
	}
	t.Record(TraceEvent{
		Name: name, Cat: cat,
		ID: id, Parent: parent.ID, Lane: lane,
		StartNS: startNS, DurNS: durNS, Arg: arg,
	})
}

// TraceSpan is an in-progress span. It is a value type: Start and End
// allocate nothing. Set Label/Arg between Start and End to attach the
// payload.
type TraceSpan struct {
	tracer  *Tracer
	name    string
	cat     string
	id      uint64
	parent  uint64
	lane    uint32
	startNS int64

	// Label optionally names the work (runner job name); Arg is one numeric
	// payload. Both are recorded at End.
	Label string
	Arg   int64
}

// Start begins a span under parent with the given deterministic sequence
// number. A zero parent starts a new root (fresh lane). Safe on a nil
// tracer: the returned span is inert.
func (t *Tracer) Start(name, cat string, parent SpanContext, seq uint64) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	id := SpanID(parent.ID, name, seq)
	lane := parent.Lane
	if lane == 0 {
		lane = laneOf(id)
	}
	return TraceSpan{
		tracer: t, name: name, cat: cat,
		id: id, parent: parent.ID, lane: lane,
		startNS: t.Clock(),
	}
}

// End records the span. Calling End on an inert span is a no-op.
func (s *TraceSpan) End() {
	t := s.tracer
	if t == nil {
		return
	}
	t.Record(TraceEvent{
		Name: s.name, Cat: s.cat, Label: s.Label,
		ID: s.id, Parent: s.parent, Lane: s.lane,
		StartNS: s.startNS, DurNS: t.Clock() - s.startNS, Arg: s.Arg,
	})
}

// Context returns the span's identity for its children (zero for inert
// spans).
func (s *TraceSpan) Context() SpanContext {
	if s.tracer == nil {
		return SpanContext{}
	}
	return SpanContext{ID: s.id, Lane: s.lane}
}

// Len returns how many events are currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	total := t.cursor.Load()
	if total < uint64(len(t.ring)) {
		return int(total)
	}
	return len(t.ring)
}

// Total returns how many events were ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	total := t.cursor.Load()
	if total <= uint64(len(t.ring)) {
		return 0
	}
	return total - uint64(len(t.ring))
}

// Snapshot returns the held events oldest-first. Take it after concurrent
// recording has quiesced (end of run): a recorder racing the snapshot can
// leave a partially updated slot in the copy.
func (t *Tracer) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	total := t.cursor.Load()
	n := uint64(t.Len())
	out := make([]TraceEvent, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, t.ring[i&t.mask])
	}
	return out
}

// Ambient tracer: the pipeline's layers (runner pools, trace collection,
// engines constructed deep inside figure pipelines) attach to one
// process-wide tracer instead of threading a handle through every
// signature. Parent identity still flows explicitly (ContextWithSpan), so
// the hierarchy stays exact. Nil means tracing is off everywhere.
var activeTrace atomic.Pointer[Tracer]

// SetActiveTrace installs (or, with nil, removes) the process-wide tracer.
// Call it at startup, before the instrumented pipelines run.
func SetActiveTrace(t *Tracer) {
	activeTrace.Store(t)
}

// ActiveTrace returns the process-wide tracer (nil when tracing is off).
//
//maya:hotpath
func ActiveTrace() *Tracer {
	return activeTrace.Load()
}

// spanCtxKey keys SpanContext values in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span identity, so nested
// worker pools parent their spans under the job that spawned them.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span identity carried by ctx (zero if none).
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// PhaseStat aggregates every event sharing one span name: the per-phase
// attribution row behind `mayactl -trace-summary` and the run manifest.
type PhaseStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// Mean returns the mean span duration.
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return time.Duration(p.TotalNS / int64(p.Count))
}

// Summarize aggregates events by span name, sorted by total time
// descending (name ascending on ties, so the table is deterministic).
func Summarize(events []TraceEvent) []PhaseStat {
	byName := make(map[string]*PhaseStat)
	order := make([]string, 0, 16)
	for _, ev := range events {
		p := byName[ev.Name]
		if p == nil {
			p = &PhaseStat{Name: ev.Name, MinNS: ev.DurNS, MaxNS: ev.DurNS}
			byName[ev.Name] = p
			order = append(order, ev.Name)
		}
		p.Count++
		p.TotalNS += ev.DurNS
		if ev.DurNS < p.MinNS {
			p.MinNS = ev.DurNS
		}
		if ev.DurNS > p.MaxNS {
			p.MaxNS = ev.DurNS
		}
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TraceWall returns the wall-clock interval the events cover (max end −
// min start), the denominator of the summary's share column.
func TraceWall(events []TraceEvent) time.Duration {
	if len(events) == 0 {
		return 0
	}
	minStart, maxEnd := events[0].StartNS, events[0].StartNS+events[0].DurNS
	for _, ev := range events[1:] {
		if ev.StartNS < minStart {
			minStart = ev.StartNS
		}
		if end := ev.StartNS + ev.DurNS; end > maxEnd {
			maxEnd = end
		}
	}
	return time.Duration(maxEnd - minStart)
}

// WriteSummaryTable renders the per-phase attribution table for a set of
// events. The wall% column is each phase's total time as a share of the
// trace's wall-clock window; because spans nest (a job span contains its
// ticks) and lanes run concurrently, the column can exceed 100% in total —
// it attributes, it does not partition.
func WriteSummaryTable(w io.Writer, events []TraceEvent) error {
	stats := Summarize(events)
	wall := TraceWall(events)
	if _, err := fmt.Fprintf(w, "%-24s %8s %12s %12s %12s %12s %7s\n",
		"phase", "count", "total", "mean", "min", "max", "wall%"); err != nil {
		return err
	}
	for _, p := range stats {
		share := 0.0
		if wall > 0 {
			share = 100 * float64(p.TotalNS) / float64(wall)
		}
		if _, err := fmt.Fprintf(w, "%-24s %8d %12s %12s %12s %12s %6.1f%%\n",
			p.Name, p.Count,
			time.Duration(p.TotalNS).Round(time.Microsecond),
			p.Mean().Round(time.Nanosecond),
			time.Duration(p.MinNS).Round(time.Nanosecond),
			time.Duration(p.MaxNS).Round(time.Nanosecond),
			share); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-24s %8d %12s  (trace wall window)\n",
		"events", len(events), wall.Round(time.Microsecond))
	return err
}
