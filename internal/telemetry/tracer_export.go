package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Trace export: two interchangeable encodings of the same []TraceEvent.
//
//   - Chrome trace-event JSON ({"traceEvents":[...]}): loadable directly in
//     Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
//     microsecond floats as the format requires; the exact nanosecond values
//     ride along in each event's args so a parse round-trips bit-exactly.
//   - JSONL: one TraceEvent per line, for jq/grep pipelines and appends.
//
// ParseTraceEvents auto-detects either encoding, so `mayactl -trace-summary`
// accepts whatever the run emitted.

// chromeEvent is one Chrome trace-event "complete" (ph "X") record.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`  // microseconds since trace start
	Dur  float64         `json:"dur"` // microseconds
	PID  int             `json:"pid"`
	TID  uint32          `json:"tid"`
	Args chromeEventArgs `json:"args"`
}

// chromeEventArgs carries the lossless payload: Perfetto shows it in the
// span's detail pane, and ParseTraceEvents prefers the exact nanosecond
// values here over the float microseconds above.
type chromeEventArgs struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Arg     int64  `json:"arg,omitempty"`
	Label   string `json:"label,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes events as Chrome trace-event JSON. Load the file
// in Perfetto (ui.perfetto.dev → Open trace file) or chrome://tracing; the
// span hierarchy renders as nested slices grouped by lane (tid).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.StartNS) / 1e3,
			Dur:  float64(ev.DurNS) / 1e3,
			PID:  1,
			TID:  ev.Lane,
			Args: chromeEventArgs{
				ID:      ev.ID,
				Parent:  ev.Parent,
				StartNS: ev.StartNS,
				DurNS:   ev.DurNS,
				Arg:     ev.Arg,
				Label:   ev.Label,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// WriteTraceJSONL writes events one JSON object per line.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxTraceParse bounds how much of a trace file ParseTraceEvents will
// buffer, so a corrupt or hostile input cannot exhaust memory.
const maxTraceParse = 1 << 28 // 256 MiB

// ParseTraceEvents reads a trace in either export encoding — Chrome
// trace-event JSON (the {"traceEvents": [...]} object or a bare event
// array) or JSONL — auto-detected from the first non-space byte. Chrome
// events round-trip exactly: the nanosecond values in args are preferred
// over the lossy microsecond floats.
func ParseTraceEvents(r io.Reader) ([]TraceEvent, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxTraceParse+1))
	if err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	if len(data) > maxTraceParse {
		return nil, fmt.Errorf("trace exceeds %d bytes", maxTraceParse)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, nil
	}
	switch trimmed[0] {
	case '[':
		var ces []chromeEvent
		if err := json.Unmarshal(trimmed, &ces); err != nil {
			return nil, fmt.Errorf("parse chrome trace array: %w", err)
		}
		return fromChromeEvents(ces), nil
	case '{':
		// Either the Chrome {"traceEvents": ...} wrapper or the first line
		// of a JSONL stream. The wrapper's encoding spans multiple lines and
		// has the traceEvents key; a JSONL line is a complete object.
		var ct chromeTrace
		if err := json.Unmarshal(trimmed, &ct); err == nil && ct.TraceEvents != nil {
			return fromChromeEvents(ct.TraceEvents), nil
		}
		return parseTraceJSONL(trimmed)
	default:
		return nil, fmt.Errorf("unrecognized trace format (starts with %q)", trimmed[0])
	}
}

func fromChromeEvents(ces []chromeEvent) []TraceEvent {
	events := make([]TraceEvent, 0, len(ces))
	for _, ce := range ces {
		if ce.Ph != "" && ce.Ph != "X" {
			continue // metadata or non-complete events from other tools
		}
		ev := TraceEvent{
			Name:    ce.Name,
			Cat:     ce.Cat,
			Label:   ce.Args.Label,
			ID:      ce.Args.ID,
			Parent:  ce.Args.Parent,
			Lane:    ce.TID,
			StartNS: ce.Args.StartNS,
			DurNS:   ce.Args.DurNS,
			Arg:     ce.Args.Arg,
		}
		// Traces from other emitters may lack our args payload; fall back
		// to the microsecond floats.
		if ev.StartNS == 0 && ev.DurNS == 0 && (ce.TS != 0 || ce.Dur != 0) { //nolint:maya/floateq exact zero test: absent JSON fields decode to exactly 0
			ev.StartNS = int64(ce.TS * 1e3)
			ev.DurNS = int64(ce.Dur * 1e3)
		}
		events = append(events, ev)
	}
	return events
}

func parseTraceJSONL(data []byte) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		// Strict decode: JSONL is our own export format, so an unknown
		// field means the input is not a trace (e.g. an arbitrary JSON
		// object that fell through Chrome-wrapper detection).
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace jsonl line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan trace jsonl: %w", err)
	}
	return events, nil
}
