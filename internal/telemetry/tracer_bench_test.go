package telemetry

import "testing"

// The TelemetryHotPathTrace* benchmarks extend the zero-alloc CI gate
// (scripts/bench.sh -z TelemetryHotPath) to the tracer: recording on an
// enabled tracer and every operation on a disabled (nil) tracer must
// allocate 0 B/op, so tracing instrumentation can sit on the per-tick hot
// path unconditionally.

func BenchmarkTelemetryHotPathTraceRecord(b *testing.B) {
	tr := NewTracer(1 << 12)
	parent := NewRootContext("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Complete("tick.control", "engine", parent, uint64(i), int64(i), 100, int64(i))
	}
}

func BenchmarkTelemetryHotPathTraceSpan(b *testing.B) {
	tr := NewTracer(1 << 12)
	parent := NewRootContext("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("job.run", "runner", parent, uint64(i))
		sp.Arg = int64(i)
		sp.End()
	}
}

func BenchmarkTelemetryHotPathTraceDisabled(b *testing.B) {
	var tr *Tracer
	parent := NewRootContext("bench", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.TickSampled(i) {
			tr.Complete("tick.control", "engine", parent, uint64(i), int64(i), 100, int64(i))
		}
		sp := tr.Start("job.run", "runner", parent, uint64(i))
		sp.End()
	}
}

func BenchmarkTelemetryHotPathTraceAmbientLookup(b *testing.B) {
	SetActiveTrace(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := ActiveTrace(); tr.Enabled() {
			b.Fatal("tracer unexpectedly enabled")
		}
	}
}
