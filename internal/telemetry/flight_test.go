package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func rec(step int) FlightRecord {
	return FlightRecord{
		Step:      step,
		TargetW:   20 + float64(step),
		MeasuredW: 19.5 + float64(step),
		ErrorW:    0.5,
		U:         [3]float64{0.25, 0.5, 0.75},
		Applied:   [3]float64{1.6, 0.24, 0.8},
		Saturated: step%2 == 0,
		Clipped:   [3]bool{false, step%3 == 0, false},
		StateNorm: float64(step) / 10,
	}
}

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(rec(i))
	}
	if f.Total() != 10 {
		t.Fatalf("total = %d, want 10", f.Total())
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records", len(snap))
	}
	for i, r := range snap {
		if want := 6 + i; r.Step != want {
			t.Fatalf("snapshot[%d].Step = %d, want %d", i, r.Step, want)
		}
	}
}

func TestFlightBelowCapacity(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(rec(0))
	f.Record(rec(1))
	if f.Len() != 2 || f.Total() != 2 || f.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", f.Len(), f.Total(), f.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Step != 0 || snap[1].Step != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestFlightFlushAndDropAccounting(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(rec(i))
	}
	if f.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6 (ring 4, 10 records, no flush)", f.Dropped())
	}
	var buf bytes.Buffer
	if err := f.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := ReadFlight(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("read back: err=%v skipped=%d", err, skipped)
	}
	if len(recs) != 4 || recs[0].Step != 6 || recs[3].Step != 9 {
		t.Fatalf("flushed records %+v", recs)
	}
	// A second flush with nothing new writes nothing.
	buf.Reset()
	if err := f.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("second flush wrote %q", buf.String())
	}
}

// TestFlightPeriodicFlushCapturesFullTrace is the spill-to-disk contract: a
// caller that flushes at least once per ring-full of records loses nothing.
func TestFlightPeriodicFlushCapturesFullTrace(t *testing.T) {
	f := NewFlightRecorder(4)
	var buf bytes.Buffer
	for i := 0; i < 21; i++ {
		f.Record(rec(i))
		if (i+1)%3 == 0 {
			if err := f.Flush(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	if f.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0 with periodic flushes", f.Dropped())
	}
	recs, skipped, err := ReadFlight(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("read back: err=%v skipped=%d", err, skipped)
	}
	if len(recs) != 21 {
		t.Fatalf("got %d records, want 21", len(recs))
	}
	for i, r := range recs {
		if r.Step != i {
			t.Fatalf("recs[%d].Step = %d", i, r.Step)
		}
	}
}

func TestFlightRoundTrip(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		f.Record(rec(i))
	}
	var buf bytes.Buffer
	if err := f.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := ReadFlight(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	want := f.Snapshot()
	if len(recs) != len(want) {
		t.Fatalf("count %d != %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, recs[i], want[i])
		}
	}
}

func TestReadFlightToleratesMalformedLines(t *testing.T) {
	input := strings.Join([]string{
		`{"step":0,"target_w":20,"measured_w":19,"error_w":1,"u":[0,0,0],"applied":[0,0,0],"state_norm":0}`,
		`this is not JSON`,
		``,
		`{"step":1,"target_w":21,"measured_w":20.5,"error_w":0.5,"u":[0,0,0],"applied":[0,0,0],"state_norm":0.1}`,
		`{"step": 2, "truncated...`,
	}, "\n")
	recs, skipped, err := ReadFlight(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 2 {
		t.Fatalf("recs=%d skipped=%d, want 2/2", len(recs), skipped)
	}
	if recs[0].Step != 0 || recs[1].Step != 1 {
		t.Fatalf("records %+v", recs)
	}
}

func TestFlightReset(t *testing.T) {
	f := NewFlightRecorder(2)
	for i := 0; i < 5; i++ {
		f.Record(rec(i))
	}
	f.Reset()
	if f.Total() != 0 || f.Len() != 0 || f.Dropped() != 0 {
		t.Fatalf("reset left total=%d len=%d dropped=%d", f.Total(), f.Len(), f.Dropped())
	}
	f.Record(rec(7))
	if snap := f.Snapshot(); len(snap) != 1 || snap[0].Step != 7 {
		t.Fatalf("post-reset snapshot %+v", snap)
	}
}

func TestDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	if f.Len() != 0 || len(f.ring) != DefaultFlightCapacity {
		t.Fatalf("default capacity = %d", len(f.ring))
	}
}
