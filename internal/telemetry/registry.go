package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindInfo
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindInfo:
		return "info"
	}
	return "unknown"
}

// promType maps a kind to its Prometheus exposition TYPE. Info metrics are
// constant-1 gauges by Prometheus convention (go_build_info, ...): the
// payload rides in labels.
func (k metricKind) promType() string {
	if k == kindInfo {
		return "gauge"
	}
	return k.String()
}

type entry struct {
	name   string
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	labels map[string]string // kindInfo only
}

// Registry names and owns a set of instruments. Registration is idempotent:
// asking twice for the same name (with the same kind) returns the same
// instrument, so independent components can share metrics without
// coordinating. Registration takes a lock and allocates; do it at setup and
// keep the returned pointer for the hot path.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// KindMismatchError reports a name registered twice with different
// instrument kinds — almost always two components accidentally sharing a
// metric name. It is returned by the Try* variants and carried by the
// panic of the plain registration methods.
type KindMismatchError struct {
	Name      string
	Existing  string // kind of the first registration
	Requested string // kind of the conflicting request
}

// Error implements error.
func (e *KindMismatchError) Error() string {
	return fmt.Sprintf("telemetry: %q registered as %s, requested as %s", e.Name, e.Existing, e.Requested)
}

func (r *Registry) lookup(name, help string, kind metricKind) (*entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			return nil, &KindMismatchError{Name: name, Existing: e.kind.String(), Requested: kind.String()}
		}
		return e, nil
	}
	e := &entry{name: name, help: help, kind: kind}
	r.entries[name] = e
	return e, nil
}

// TryCounter registers (or fetches) a counter, reporting a
// *KindMismatchError instead of panicking when the name is already taken
// by another kind.
func (r *Registry) TryCounter(name, help string) (*Counter, error) {
	e, err := r.lookup(name, help, kindCounter)
	if err != nil {
		return nil, err
	}
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c, nil
}

// Counter registers (or fetches) a counter, panicking on a kind mismatch;
// registration happens at setup, where a clash is a programming error.
func (r *Registry) Counter(name, help string) *Counter {
	c, err := r.TryCounter(name, help)
	if err != nil {
		panic(err)
	}
	return c
}

// TryGauge registers (or fetches) a gauge; see TryCounter.
func (r *Registry) TryGauge(name, help string) (*Gauge, error) {
	e, err := r.lookup(name, help, kindGauge)
	if err != nil {
		return nil, err
	}
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g, nil
}

// Gauge registers (or fetches) a gauge, panicking on a kind mismatch.
func (r *Registry) Gauge(name, help string) *Gauge {
	g, err := r.TryGauge(name, help)
	if err != nil {
		panic(err)
	}
	return g
}

// TryHistogram registers (or fetches) a histogram with the given bucket
// upper bounds (strictly increasing; an overflow bucket is implicit). The
// bounds of the first registration win. Kind mismatches are returned as a
// *KindMismatchError; see TryCounter.
func (r *Registry) TryHistogram(name, help string, bounds []float64) (*Histogram, error) {
	e, err := r.lookup(name, help, kindHistogram)
	if err != nil {
		return nil, err
	}
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h, nil
}

// Histogram registers (or fetches) a histogram, panicking on a kind
// mismatch; see TryHistogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h, err := r.TryHistogram(name, help, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// TryInfo registers an info metric: a constant value of 1 whose payload is
// a fixed label set (the Prometheus build-info convention — the value never
// changes, the labels identify the build/run). The labels of the first
// registration win, like histogram bounds. Kind mismatches are returned as
// a *KindMismatchError; see TryCounter.
func (r *Registry) TryInfo(name, help string, labels map[string]string) error {
	e, err := r.lookup(name, help, kindInfo)
	if err != nil {
		return err
	}
	if e.labels == nil {
		copied := make(map[string]string, len(labels))
		for k, v := range labels {
			copied[k] = v
		}
		e.labels = copied
	}
	return nil
}

// Info registers an info metric, panicking on a kind mismatch; see TryInfo.
func (r *Registry) Info(name, help string, labels map[string]string) {
	if err := r.TryInfo(name, help, labels); err != nil {
		panic(err)
	}
}

// Reset zeroes every registered instrument (snapshot-and-reset cycles
// between experiment phases). Instruments stay registered.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		switch e.kind {
		case kindCounter:
			e.c.reset()
		case kindGauge:
			e.g.reset()
		case kindHistogram:
			e.h.reset()
		}
	}
}

// sorted returns the entries in name order (stable exposition).
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Metric is one instrument's state in a Snapshot.
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Value holds the counter count, gauge level, or constant 1 for info.
	Value float64 `json:"value,omitempty"`
	// Labels holds an info metric's payload.
	Labels map[string]string `json:"labels,omitempty"`
	// Histogram-only fields.
	Sum     float64   `json:"sum,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current state, sorted by name.
func (r *Registry) Snapshot() []Metric {
	var out []Metric
	for _, e := range r.sorted() {
		m := Metric{Name: e.name, Type: e.kind.String(), Help: e.help}
		switch e.kind {
		case kindCounter:
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Value = e.g.Value()
		case kindHistogram:
			m.Sum = e.h.Sum()
			m.Count = e.h.Count()
			m.Bounds = e.h.Bounds()
			m.Buckets = e.h.BucketCounts()
		case kindInfo:
			m.Value = 1
			labels := make(map[string]string, len(e.labels))
			for k, v := range e.labels {
				labels[k] = v
			}
			m.Labels = labels
		}
		out = append(out, m)
	}
	return out
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE lines, cumulative `le` histogram buckets.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, e := range r.sorted() {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind.promType()); err != nil {
			return err
		}
		switch e.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			cum := uint64(0)
			counts := e.h.BucketCounts()
			for i, b := range e.h.Bounds() {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += counts[len(counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", e.name, formatFloat(e.h.Sum()), e.name, e.h.Count()); err != nil {
				return err
			}
		case kindInfo:
			if _, err := fmt.Fprintf(w, "%s%s 1\n", e.name, formatLabels(e.labels)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLabels renders a label set as {k="v",...} with keys sorted (stable
// exposition) and values escaped per the Prometheus text format (backslash,
// double quote, newline).
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteJSONL renders the registry as one JSON object per line (the same
// shape as Snapshot's Metric), for machine-readable export next to the
// flight recorder's trace files.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
