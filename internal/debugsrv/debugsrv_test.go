package debugsrv

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/maya-defense/maya/internal/telemetry"
)

func startServer(t *testing.T) (*Server, context.CancelFunc, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("debugsrv_test_total", "test counter").Add(7)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := Serve(ctx, "127.0.0.1:0", reg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); s.Wait() })
	return s, cancel, reg
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMetricsEndpoint(t *testing.T) {
	s, _, _ := startServer(t)
	resp := get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE debugsrv_test_total counter",
		"debugsrv_test_total 7",
		"# TYPE maya_build_info gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	// The build-info line must be a constant-1 gauge with its labels sorted.
	var infoLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "maya_build_info{") {
			infoLine = line
		}
	}
	if infoLine == "" {
		t.Fatalf("no maya_build_info sample line:\n%s", out)
	}
	if !strings.HasSuffix(infoLine, "} 1") {
		t.Fatalf("build info value is not 1: %q", infoLine)
	}
	labelOrder := []string{"goarch=", "goos=", "goversion=", "version="}
	last := -1
	for _, l := range labelOrder {
		i := strings.Index(infoLine, l)
		if i < 0 {
			t.Fatalf("build info missing label %q: %q", l, infoLine)
		}
		if i < last {
			t.Fatalf("labels not sorted: %q", infoLine)
		}
		last = i
	}
}

// TestMetricsParserShape round-trips the /metrics body through the
// Prometheus text-format grammar: every non-comment line must be
// `name[{labels}] value`, every sample preceded by its TYPE, histogram
// buckets cumulative.
func TestMetricsParserShape(t *testing.T) {
	s, _, reg := startServer(t)
	reg.Histogram("debugsrv_test_seconds", "test histogram", telemetry.DurationBuckets()).Observe(0.001)
	resp := get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	typed := map[string]string{}
	var lastCum uint64
	var lastHist string
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP
		}
		// Sample line: name, optional {labels}, space, value.
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.Contains(name, "} ") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			if base != lastHist {
				lastHist, lastCum = base, 0
			}
			var cum uint64
			if _, err := fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%d", &cum); err != nil {
				t.Fatalf("line %d: bad bucket value: %q", ln+1, line)
			}
			if cum < lastCum {
				t.Fatalf("line %d: histogram buckets not cumulative: %q", ln+1, line)
			}
			lastCum = cum
		}
	}
	if typed["maya_build_info"] != "gauge" {
		t.Fatalf("maya_build_info TYPE = %q, want gauge", typed["maya_build_info"])
	}
}

func TestPprofReachable(t *testing.T) {
	s, _, _ := startServer(t)
	resp := get(t, fmt.Sprintf("http://%s/debug/pprof/", s.Addr()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "heap") {
		t.Fatalf("pprof index does not list profiles:\n%.300s", body)
	}
	heap := get(t, fmt.Sprintf("http://%s/debug/pprof/heap?debug=1", s.Addr()))
	if heap.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/heap status = %d", heap.StatusCode)
	}
}

func TestShutdownOnContextCancel(t *testing.T) {
	s, cancel, _ := startServer(t)
	addr := s.Addr()
	cancel()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down after context cancel")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

func TestCloseIsIdempotentWithCancel(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := Serve(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cancel() // must not panic or hang after an explicit Close
	s.Wait()
}

func TestServeBadAddr(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := Serve(context.Background(), "256.0.0.1:bogus", reg); err == nil {
		t.Fatal("bad address must error")
	}
}

// TestCloseReturnsNilOnCleanShutdown pins the Close error contract: a
// normal shutdown must not surface http.ErrServerClosed (or any other
// sentinel of the expected path) to the caller.
func TestCloseReturnsNilOnCleanShutdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Serve(context.Background(), "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after clean serve: %v", err)
	}
	// Close after the context path already shut the server down must also
	// be clean.
	ctx, cancel := context.WithCancel(context.Background())
	s2, err := Serve(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	s2.Wait()
	if err := s2.Close(); err != nil {
		t.Fatalf("Close after context cancel: %v", err)
	}
}

// TestGracefulShutdownDrainsInflightScrape is the regression test for the
// old behavior where context cancel called srv.Close and cut in-flight
// /metrics responses mid-body. A slow scrape — headers and half the body
// sent, the rest gated on a channel — must complete intact even though the
// context is cancelled while it is in flight.
func TestGracefulShutdownDrainsInflightScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow-scrape", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, "# TYPE slow_scrape_total counter\n")
		w.(http.Flusher).Flush()
		close(inHandler)
		<-release
		fmt.Fprint(w, "slow_scrape_total 1\n")
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeHandler(ctx, "127.0.0.1:0", reg, mux)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/slow-scrape", s.Addr()))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()

	<-inHandler
	cancel() // shutdown begins with the scrape mid-body

	// The serve loop must keep draining (not exit) while the response is
	// still being written.
	waited := make(chan struct{})
	go func() { s.Wait(); close(waited) }()
	select {
	case <-waited:
		t.Fatal("server exited with a response still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight scrape cut by shutdown: %v", r.err)
		}
		want := "# TYPE slow_scrape_total counter\nslow_scrape_total 1\n"
		if r.body != want {
			t.Fatalf("scrape body truncated: %q", r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after the drain finished")
	}
}

// TestDrainDeadlineForcesClose proves the graceful drain is bounded: a
// handler that never finishes cannot hold shutdown hostage past the drain
// timeout.
func TestDrainDeadlineForcesClose(t *testing.T) {
	reg := telemetry.NewRegistry()
	inHandler := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, _ *http.Request) {
		w.(http.Flusher).Flush()
		close(inHandler)
		<-hang
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := ServeHandler(ctx, "127.0.0.1:0", reg, mux)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDrainTimeout(50 * time.Millisecond)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/hang", s.Addr()))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-inHandler
	cancel()
	waited := make(chan struct{})
	go func() { s.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("drain deadline did not force the server closed")
	}
}

// TestServeHandlerRouting checks the mount split: debug endpoints answer
// from the debug mux, everything else from the app handler.
func TestServeHandlerRouting(t *testing.T) {
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/ping", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	})
	ctx, cancel := context.WithCancel(context.Background())
	s, err := ServeHandler(ctx, "127.0.0.1:0", reg, mux)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); s.Wait() })

	resp := get(t, fmt.Sprintf("http://%s/api/ping", s.Addr()))
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "pong" {
		t.Fatalf("app handler not mounted: %q", body)
	}
	resp = get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	body, _ = io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "maya_build_info") {
		t.Fatalf("/metrics not served from debug mux:\n%.200s", body)
	}
	if resp := get(t, fmt.Sprintf("http://%s/debug/pprof/", s.Addr())); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

// TestServerTimeoutsConfigured pins the Slowloris hardening: every server
// this package builds must bound header reads, whole-request reads, and
// idle keep-alive lifetimes.
func TestServerTimeoutsConfigured(t *testing.T) {
	s, _, _ := startServer(t)
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a stalled header pins the connection forever")
	}
	if s.srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: a dribbled body pins the connection forever")
	}
	if s.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections are never reclaimed")
	}
}
