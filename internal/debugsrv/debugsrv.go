// Package debugsrv is the shared hardened HTTP server behind every
// binary's -debug-addr flag (and the whole front door of cmd/mayad):
// net/http/pprof endpoints plus the telemetry registry as a Prometheus
// /metrics page, on a private mux (nothing leaks onto
// http.DefaultServeMux). Serving is opt-in and observational only — the
// pipeline's behavior and report bytes are identical with the server on or
// off.
//
// The server is hardened against stalled clients: conservative
// ReadHeaderTimeout/ReadTimeout/IdleTimeout mean one Slowloris connection
// cannot pin a goroutine forever, and shutdown — by context cancel or an
// explicit Close — is graceful: in-flight responses (a /metrics scrape
// mid-body, a pprof profile mid-stream) finish within a bounded drain
// deadline before connections are forced closed.
//
// Starting the server also registers the maya_build_info metric: a
// constant-1 info gauge whose version label carries expcache.CodeVersion(),
// so a scrape identifies exactly which code produced the numbers next to
// it (the same version string that keys the experiment cache and the run
// manifest).
package debugsrv

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/telemetry"
)

// Hardening knobs for every server this package builds. The read-side
// timeouts bound how long a client may dribble a request (Slowloris);
// WriteTimeout stays unset because the pprof profile/trace endpoints
// legitimately stream for a caller-chosen number of seconds.
const (
	// readHeaderTimeout bounds reading one request's header block.
	readHeaderTimeout = 10 * time.Second
	// readTimeout bounds reading one whole request (header + body).
	readTimeout = time.Minute
	// idleTimeout reclaims keep-alive connections with no next request.
	idleTimeout = 2 * time.Minute
	// DefaultDrainTimeout bounds the graceful-shutdown drain: in-flight
	// responses get this long to finish before connections are closed.
	DefaultDrainTimeout = 5 * time.Second
)

// Server is a running debug server. Close it explicitly or cancel the
// context passed to Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
	// done closes when the server is fully stopped: the serve loop has
	// exited AND, on the graceful path, the drain has completed. (Serve
	// returns the moment Shutdown begins, so serve-loop exit alone does
	// not mean in-flight responses are finished.)
	done chan struct{}
	// drained closes when shutdown()'s graceful drain returns.
	drained chan struct{}

	drainTimeout time.Duration
	shutOnce     sync.Once
	shutErr      error
}

// RegisterBuildInfo registers the maya_build_info metric on reg: constant
// value 1, with the build identity (code version, Go runtime, OS, arch) in
// labels. Idempotent, like all registry registration.
func RegisterBuildInfo(reg *telemetry.Registry) {
	reg.Info("maya_build_info",
		"build identity of this binary; value is constant 1",
		map[string]string{
			"version":   expcache.CodeVersion(),
			"goversion": runtime.Version(),
			"goos":      runtime.GOOS,
			"goarch":    runtime.GOARCH,
		})
}

// Handler returns the debug mux: /metrics (Prometheus text exposition
// 0.0.4) and the /debug/pprof/ family. Exposed for tests; most callers
// want Serve.
func Handler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the debug mux until ctx is cancelled (or
// Close is called). It registers maya_build_info on reg before serving.
// addr may use port 0; the bound address is available from Addr.
func Serve(ctx context.Context, addr string, reg *telemetry.Registry) (*Server, error) {
	return ServeHandler(ctx, addr, reg, nil)
}

// ServeHandler is Serve with an application handler mounted in front of
// the debug mux: requests for /metrics and /debug/pprof/* go to the debug
// endpoints, everything else to app (404 when app is nil). This is how a
// long-running service (cmd/mayad) reuses the hardened server — one
// listener carries the API and its own observability.
func ServeHandler(ctx context.Context, addr string, reg *telemetry.Registry, app http.Handler) (*Server, error) {
	RegisterBuildInfo(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := Handler(reg)
	if app != nil {
		mux := http.NewServeMux()
		mux.Handle("/metrics", h)
		mux.Handle("/debug/pprof/", h)
		mux.Handle("/", app)
		h = mux
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: readHeaderTimeout,
			ReadTimeout:       readTimeout,
			IdleTimeout:       idleTimeout,
		},
		done:         make(chan struct{}),
		drained:      make(chan struct{}),
		drainTimeout: DefaultDrainTimeout,
	}
	// Serve returns http.ErrServerClosed the moment a graceful shutdown
	// begins; in-flight responses are still draining then, so done
	// additionally waits for the drain. The wait needs no ctx arm: ctx
	// cancellation is what triggers shutdown, whose deadline guarantees
	// drained closes.
	//nolint:maya/ctxprop drained is closed by the ctx-triggered shutdown itself
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); errors.Is(err, http.ErrServerClosed) {
			<-s.drained
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
			s.shutdown()
		case <-s.done:
		}
	}()
	return s, nil
}

// SetDrainTimeout overrides the graceful-shutdown drain deadline (the
// default is DefaultDrainTimeout). Call it before shutting down.
func (s *Server) SetDrainTimeout(d time.Duration) { s.drainTimeout = d }

// shutdown drains the server gracefully: the listener closes immediately
// (no new connections), in-flight responses get drainTimeout to finish,
// then remaining connections are force-closed. Idempotent; concurrent
// callers share one drain.
func (s *Server) shutdown() error {
	s.shutOnce.Do(func() {
		defer close(s.drained)
		ctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// The drain deadline passed with responses still in flight:
			// force-close them rather than hang the owner forever.
			_ = s.srv.Close()
		}
		s.shutErr = err
	})
	return s.shutErr
}

// Addr returns the server's bound address ("127.0.0.1:43210").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully stops the server and waits for the serve loop to exit.
// In-flight responses get the drain deadline to complete. The expected
// shutdown sentinel (http.ErrServerClosed) is not an error.
func (s *Server) Close() error {
	err := s.shutdown()
	<-s.done
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) {
		err = nil
	}
	return err
}

// Wait blocks until the serve loop exits (context cancel or Close).
func (s *Server) Wait() { <-s.done }
