// Package debugsrv is the shared debug HTTP server behind every binary's
// -debug-addr flag: net/http/pprof endpoints plus the telemetry registry as
// a Prometheus /metrics page, on a private mux (nothing leaks onto
// http.DefaultServeMux). Serving is opt-in and observational only — the
// pipeline's behavior and report bytes are identical with the server on or
// off.
//
// Starting the server also registers the maya_build_info metric: a
// constant-1 info gauge whose version label carries expcache.CodeVersion(),
// so a scrape identifies exactly which code produced the numbers next to
// it (the same version string that keys the experiment cache and the run
// manifest).
package debugsrv

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"

	"github.com/maya-defense/maya/internal/expcache"
	"github.com/maya-defense/maya/internal/telemetry"
)

// Server is a running debug server. Close it explicitly or cancel the
// context passed to Serve.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// RegisterBuildInfo registers the maya_build_info metric on reg: constant
// value 1, with the build identity (code version, Go runtime, OS, arch) in
// labels. Idempotent, like all registry registration.
func RegisterBuildInfo(reg *telemetry.Registry) {
	reg.Info("maya_build_info",
		"build identity of this binary; value is constant 1",
		map[string]string{
			"version":   expcache.CodeVersion(),
			"goversion": runtime.Version(),
			"goos":      runtime.GOOS,
			"goarch":    runtime.GOARCH,
		})
}

// Handler returns the debug mux: /metrics (Prometheus text exposition
// 0.0.4) and the /debug/pprof/ family. Exposed for tests; most callers
// want Serve.
func Handler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the debug mux until ctx is cancelled (or
// Close is called). It registers maya_build_info on reg before serving.
// addr may use port 0; the bound address is available from Addr.
func Serve(ctx context.Context, addr string, reg *telemetry.Registry) (*Server, error) {
	RegisterBuildInfo(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(reg)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// Serve returns http.ErrServerClosed on shutdown; any other error
		// means the listener died, which the owner observes via Wait/Close.
		_ = s.srv.Serve(ln)
	}()
	go func() {
		select {
		case <-ctx.Done():
			_ = s.srv.Close()
		case <-s.done:
		}
	}()
	return s, nil
}

// Addr returns the server's bound address ("127.0.0.1:43210").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Wait blocks until the serve loop exits (context cancel or Close).
func (s *Server) Wait() { <-s.done }
