package rng

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(7, "mask")
	b := NewNamed(7, "sensor")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named streams should differ")
	}
	// Same name + seed must reproduce.
	c := NewNamed(7, "mask")
	a2 := NewNamed(7, "mask")
	for i := 0; i < 100; i++ {
		if c.Uint64() != a2.Uint64() {
			t.Fatal("named stream not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	lo, hi := 6, 120 // the paper's Nhold range
	seenLo, seenHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == lo {
			seenLo = true
		}
		if v == hi {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange endpoints never drawn (inclusive bounds broken?)")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean=%g want 5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("var=%g want 4", variance)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(99)
	b := a.Split()
	// The split stream must not mirror the parent.
	diverged := false
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split stream mirrors parent")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %g", p)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	v := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	for _, x := range v {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", v)
	}
}

func TestChildSeedOrderIndependent(t *testing.T) {
	// Deriving children in any order must yield identical streams: the
	// parallel runner's determinism guarantee rests on this.
	forward := make([]uint64, 32)
	for i := range forward {
		forward[i] = ChildSeed(7, uint64(i))
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if ChildSeed(7, uint64(i)) != forward[i] {
			t.Fatalf("child %d differs when derived in reverse order", i)
		}
	}
	// Distinct indices and distinct seeds give distinct children.
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		for i := uint64(0); i < 64; i++ {
			s := ChildSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d index=%d", seed, i)
			}
			seen[s] = true
		}
	}
}

func TestChildStreamsIndependent(t *testing.T) {
	a, b := NewChild(5, 0), NewChild(5, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from sibling children", same)
	}
	// A child must not mirror a directly-seeded stream of the same base.
	c, d := NewChild(5, 0), New(5)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			return
		}
	}
	t.Fatal("child 0 mirrors New(seed)")
}

func TestChildAtConcurrent(t *testing.T) {
	// Children derived from different goroutines, in different orders, must
	// yield identical sequences to serial derivation.
	parent := New(1234)
	parent.Uint64() // advance to a non-trivial state
	want := make([][]uint64, 64)
	for i := range want {
		c := parent.ChildAt(uint64(i))
		seq := make([]uint64, 20)
		for j := range seq {
			seq[j] = c.Uint64()
		}
		want[i] = seq
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the indices in a different order.
			for k := 0; k < 64; k++ {
				i := (k*13 + g*29) % 64
				c := parent.ChildAt(uint64(i))
				for j := 0; j < 20; j++ {
					if got := c.Uint64(); got != want[i][j] {
						errs <- fmt.Errorf("goroutine %d: child %d draw %d = %d, want %d", g, i, j, got, want[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChildSeedDerivation(t *testing.T) {
	// ChildSeed from many goroutines simultaneously: pure function, no
	// shared state, so every goroutine must see identical values.
	const goroutines, children = 8, 256
	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]uint64, children)
			for i := range vals {
				vals[i] = ChildSeed(42, uint64(i))
			}
			got[g] = vals
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d child %d differs", g, i)
			}
		}
	}
}
