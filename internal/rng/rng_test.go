package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(7, "mask")
	b := NewNamed(7, "sensor")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named streams should differ")
	}
	// Same name + seed must reproduce.
	c := NewNamed(7, "mask")
	a2 := NewNamed(7, "mask")
	for i := 0; i < 100; i++ {
		if c.Uint64() != a2.Uint64() {
			t.Fatal("named stream not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	lo, hi := 6, 120 // the paper's Nhold range
	seenLo, seenHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == lo {
			seenLo = true
		}
		if v == hi {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange endpoints never drawn (inclusive bounds broken?)")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean=%g want 5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("var=%g want 4", variance)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(99)
	b := a.Split()
	// The split stream must not mirror the parent.
	diverged := false
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split stream mirrors parent")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %g", p)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	v := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	for _, x := range v {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", v)
	}
}
