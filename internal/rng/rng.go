// Package rng provides deterministic, splittable pseudo-random number
// streams. Every stochastic component in this repository (mask generators,
// workload phase jitter, sensor noise, attacker data splits) draws from its
// own named stream so that experiments are reproducible run-to-run while
// streams remain statistically independent of each other.
//
// The paper's security argument (§IV, "Why Maya works") requires that an
// attacker cannot reproduce the defender's random numbers; a per-deployment
// seed plays the role of that secret. The generator is xoshiro256**, seeded
// through SplitMix64 as its authors recommend.
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic random number stream. It is NOT safe for
// concurrent use; split independent streams per goroutine instead.
type Stream struct {
	s [4]uint64
	// Cached second normal variate from the Box-Muller transform.
	haveGauss bool
	gauss     float64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro misbehaves on the all-zero state; SplitMix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return st
}

// NewNamed returns a stream derived from a base seed and a name, so that
// components can own independent streams ("mask", "sensor-noise", ...)
// without coordinating offsets.
func NewNamed(seed uint64, name string) *Stream {
	h := seed
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 0x100000001b3 // FNV-1a prime, then mixed by splitmix below
	}
	return New(splitmix64(&h))
}

// Split returns a new stream whose future outputs are independent of the
// receiver's. The receiver advances by one draw.
func (r *Stream) Split() *Stream {
	s := r.Uint64()
	return New(s)
}

// ChildSeed derives the seed of the index-th child of a base seed. Unlike
// Split, derivation is a pure function of (seed, index): children can be
// created in any order, from any goroutine, and the result never depends on
// how many children were derived before. This is the primitive the parallel
// experiment runner uses to keep fan-out bit-for-bit deterministic
// regardless of worker count or completion order.
func ChildSeed(seed, index uint64) uint64 {
	// Mix the seed first so the (seed, index) → child map has no linear
	// structure, then fold the index in and mix again. The constant
	// separates this domain from New's direct SplitMix64 expansion.
	h := seed ^ 0x6a09e667f3bcc909
	h = splitmix64(&h)
	h ^= index
	return splitmix64(&h)
}

// NewChild returns the index-th child stream of a base seed; see ChildSeed.
func NewChild(seed, index uint64) *Stream {
	return New(ChildSeed(seed, index))
}

// ChildAt returns the index-th child stream derived from the receiver's
// current state, without advancing the receiver. Distinct indices yield
// independent streams, and the same index always yields the same stream
// until the receiver is advanced. Multiple goroutines may call ChildAt
// concurrently as long as none of them advances the receiver at the same
// time.
func (r *Stream) ChildAt(index uint64) *Stream {
	h := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^
		bits.RotateLeft64(r.s[2], 29) ^ bits.RotateLeft64(r.s[3], 43)
	h = splitmix64(&h)
	h ^= index
	return New(splitmix64(&h))
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller; deterministic
// given the stream state, unlike ziggurat implementations that consume a
// variable number of uniforms in rare tail cases — determinism per draw
// count keeps golden tests stable).
func (r *Stream) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}
