package sysid

import (
	"errors"
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/sim"
)

// synth generates data from a known ARX system for recovery tests.
func synth(seed uint64, n int, a []float64, b [][]float64, noise float64) ([]float64, [][]float64) {
	r := rng.New(seed)
	nu := len(b)
	order := len(a)
	u := make([][]float64, nu)
	for j := range u {
		u[j] = make([]float64, n)
		// Random steps held for random durations (persistently exciting).
		hold, val := 0, 0.0
		for t := 0; t < n; t++ {
			if hold == 0 {
				val = r.Float64()
				hold = r.IntRange(2, 10)
			}
			hold--
			u[j][t] = val
		}
	}
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		s := 0.0
		for i := 1; i <= order; i++ {
			if t-i >= 0 {
				s += a[i-1] * y[t-i]
			}
		}
		for j := 0; j < nu; j++ {
			for i := 1; i <= order; i++ {
				if t-i >= 0 {
					s += b[j][i-1] * u[j][t-i]
				}
			}
		}
		y[t] = s + noise*r.NormFloat64()
	}
	return y, u
}

func TestFitRecoversKnownSystem(t *testing.T) {
	a := []float64{0.6, -0.1}
	b := [][]float64{{1.5, 0.3}, {-0.8, 0.2}}
	y, u := synth(1, 3000, a, b, 0.001)
	m, err := Fit(y, u, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(m.A[i]-a[i]) > 0.02 {
			t.Fatalf("a[%d]=%g want %g", i, m.A[i], a[i])
		}
	}
	for j := range b {
		for i := range b[j] {
			if math.Abs(m.B[j][i]-b[j][i]) > 0.02 {
				t.Fatalf("b[%d][%d]=%g want %g", j, i, m.B[j][i], b[j][i])
			}
		}
	}
	if m.FitR2 < 0.99 {
		t.Fatalf("R²=%g", m.FitR2)
	}
}

func TestFitWithNoiseStillGood(t *testing.T) {
	a := []float64{0.5}
	b := [][]float64{{2.0}}
	y, u := synth(2, 5000, a, b, 0.1)
	m, err := Fit(y, u, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A[0]-0.5) > 0.05 || math.Abs(m.B[0][0]-2.0) > 0.05 {
		t.Fatalf("noisy recovery off: a=%v b=%v", m.A, m.B)
	}
	if m.ResidualStd < 0.05 || m.ResidualStd > 0.2 {
		t.Fatalf("residual std %g inconsistent with injected noise 0.1", m.ResidualStd)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, [][]float64{{1, 2, 3}}, 2, 0); !errors.Is(err, ErrTooShort) {
		t.Fatalf("want ErrTooShort, got %v", err)
	}
	if _, err := Fit([]float64{1, 2}, nil, 1, 0); err == nil {
		t.Fatal("want error for no inputs")
	}
	if _, err := Fit([]float64{1, 2}, [][]float64{{1}}, 1, 0); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestDCGain(t *testing.T) {
	// y(T) = 0.5 y(T-1) + 1.0 u(T-1): DC gain = 1/(1-0.5) = 2.
	m := &Model{Order: 1, NumInputs: 1, A: []float64{0.5}, B: [][]float64{{1.0}}, UMean: []float64{0}}
	g := m.DCGain()
	if math.Abs(g[0]-2) > 1e-12 {
		t.Fatalf("DC gain %g want 2", g[0])
	}
}

func TestStable(t *testing.T) {
	stable := &Model{Order: 1, NumInputs: 1, A: []float64{0.9}, B: [][]float64{{1}}, UMean: []float64{0}}
	if !stable.Stable() {
		t.Fatal("|a|=0.9 should be stable")
	}
	unstable := &Model{Order: 1, NumInputs: 1, A: []float64{1.1}, B: [][]float64{{1}}, UMean: []float64{0}}
	if unstable.Stable() {
		t.Fatal("|a|=1.1 should be unstable")
	}
}

func TestSimulateTracksGroundTruth(t *testing.T) {
	a := []float64{0.7, -0.12}
	b := [][]float64{{1.2, 0.4}}
	y, u := synth(3, 2000, a, b, 0)
	m, err := Fit(y, u, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ysim := m.Simulate(u)
	// Free-run simulation should track after the initial transient.
	if r := signal.RMSE(ysim[100:], y[100:]); r > 0.05 {
		t.Fatalf("free-run RMSE %g", r)
	}
}

func TestFitBestOrderPicksTrueOrder(t *testing.T) {
	a := []float64{0.8, -0.3}
	b := [][]float64{{1.0, 0.5}}
	y, u := synth(4, 4000, a, b, 0.02)
	m, err := FitBestOrder(y, u, 5, 1e-6, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Order >= true order fits well; an order-1 model can't.
	if m.Order < 2 {
		t.Fatalf("picked order %d, want >= 2", m.Order)
	}
}

func TestCollectExcitationProducesUsableLog(t *testing.T) {
	cfg := sim.Sys1()
	log := CollectExcitation(cfg, TrainingSet(), 7, 20, 12000)
	if len(log.Y) < 500 {
		t.Fatalf("log too short: %d", len(log.Y))
	}
	if len(log.U) != 3 {
		t.Fatalf("want 3 input channels, got %d", len(log.U))
	}
	for j := range log.U {
		if len(log.U[j]) != len(log.Y) {
			t.Fatalf("channel %d length mismatch", j)
		}
		// Excitation must actually vary each input.
		if signal.StdDev(log.U[j]) < 0.1 {
			t.Fatalf("input %d barely excited: std=%g", j, signal.StdDev(log.U[j]))
		}
	}
	// Power must respond: output variance well above sensor noise.
	if signal.StdDev(log.Y) < 0.5 {
		t.Fatalf("output barely moves: std=%g", signal.StdDev(log.Y))
	}
}

func TestFitOnSimulatedMachine(t *testing.T) {
	// End-to-end §V-A: excite the simulated Sys1, fit order 4, and require
	// a usable one-step fit and stable dynamics.
	cfg := sim.Sys1()
	log := CollectExcitation(cfg, TrainingSet(), 11, 20, 15000)
	m, err := Fit(log.Y, log.U, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if m.FitR2 < 0.5 {
		t.Fatalf("machine model R²=%g too poor for control", m.FitR2)
	}
	if !m.Stable() {
		t.Fatal("identified model unstable")
	}
	g := m.DCGain()
	// Signs: DVFS and balloon raise power; idle injection lowers it.
	if g[0] <= 0 {
		t.Fatalf("DVFS DC gain %g should be positive", g[0])
	}
	if g[1] >= 0 {
		t.Fatalf("idle DC gain %g should be negative", g[1])
	}
	if g[2] <= 0 {
		t.Fatalf("balloon DC gain %g should be positive", g[2])
	}
}

func TestExcitationLogAppend(t *testing.T) {
	var a ExcitationLog
	b := ExcitationLog{Y: []float64{1, 2}, U: [][]float64{{3, 4}, {5, 6}, {7, 8}}}
	a.Append(b)
	a.Append(b)
	if len(a.Y) != 4 || len(a.U) != 3 || len(a.U[2]) != 4 {
		t.Fatalf("append broken: %+v", a)
	}
}
