// Package sysid implements the System Identification step of §V-A: run a
// training set of applications on the machine while exciting the inputs
// with random steps, log inputs and outputs every control period, and fit
// a dynamic polynomial (ARX) model
//
//	y(T) = a₁y(T−1) + … + a_m y(T−m) + b₁u(T−1) + … + b_n u(T−n)
//
// by least squares (Ljung [43]). The fitted model feeds controller
// synthesis in internal/control. Inputs are one-step delayed (no direct
// feedthrough): actuation decided at period T takes effect from T+1, which
// matches the simulated machine's actuation lag.
package sysid

import (
	"errors"
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/mat"
	"github.com/maya-defense/maya/internal/signal"
)

// Model is a fitted ARX model with equal output and input orders
// (m = n = Order, as in the paper's dimension-4 models).
type Model struct {
	Order     int
	NumInputs int
	// A holds a₁..a_m (coefficients on past outputs).
	A []float64
	// B[j] holds b_{j,1}..b_{j,n} (coefficients on past values of input j).
	B [][]float64
	// YMean and UMean center the data; the model operates on deviations.
	YMean float64
	UMean []float64
	// ResidualStd is the one-step prediction residual standard deviation.
	ResidualStd float64
	// FitR2 is the one-step coefficient of determination on the fit data.
	FitR2 float64
}

// ErrTooShort indicates the log has too few samples for the model order.
var ErrTooShort = errors.New("sysid: log too short for requested order")

// Fit estimates an ARX model of the given order from an input/output log.
// y[t] is the measured output at period t; u[j][t] is input j commanded at
// period t (taking effect at t+1). ridge adds Tikhonov damping to tolerate
// weakly exciting logs.
func Fit(y []float64, u [][]float64, order int, ridge float64) (*Model, error) {
	nu := len(u)
	if nu == 0 {
		return nil, errors.New("sysid: no inputs")
	}
	n := len(y)
	for j := range u {
		if len(u[j]) != n {
			return nil, fmt.Errorf("sysid: input %d length %d != output length %d", j, len(u[j]), n)
		}
	}
	if order < 1 {
		return nil, errors.New("sysid: order must be >= 1")
	}
	rows := n - order
	cols := order + nu*order
	if rows < 4*cols {
		return nil, ErrTooShort
	}

	// Center: fit on deviations so the model has no affine offset term.
	ym := signal.Mean(y)
	um := make([]float64, nu)
	for j := range u {
		um[j] = signal.Mean(u[j])
	}

	phi := mat.New(rows, cols)
	rhs := make([]float64, rows)
	for t := order; t < n; t++ {
		r := t - order
		c := 0
		for i := 1; i <= order; i++ {
			phi.Set(r, c, y[t-i]-ym)
			c++
		}
		for j := 0; j < nu; j++ {
			for i := 1; i <= order; i++ {
				phi.Set(r, c, u[j][t-i]-um[j])
				c++
			}
		}
		rhs[r] = y[t] - ym
	}
	theta, err := mat.LeastSquares(phi, rhs, ridge)
	if err != nil {
		return nil, fmt.Errorf("sysid: least squares failed: %w", err)
	}

	m := &Model{Order: order, NumInputs: nu, YMean: ym, UMean: um}
	m.A = append(m.A, theta[:order]...)
	for j := 0; j < nu; j++ {
		bj := make([]float64, order)
		copy(bj, theta[order+j*order:order+(j+1)*order])
		m.B = append(m.B, bj)
	}

	// Residual statistics.
	pred := phi.MulVec(theta)
	var sse, sst float64
	for r := 0; r < rows; r++ {
		d := rhs[r] - pred[r]
		sse += d * d
		sst += rhs[r] * rhs[r]
	}
	m.ResidualStd = math.Sqrt(sse / float64(rows))
	if sst > 0 {
		m.FitR2 = 1 - sse/sst
	}
	return m, nil
}

// Predict returns the one-step prediction of y(T) given the most recent
// Order outputs (yHist[0] = y(T-1), yHist[1] = y(T-2), ...) and inputs
// (uHist[j][0] = u_j(T-1), ...).
func (m *Model) Predict(yHist []float64, uHist [][]float64) float64 {
	if len(yHist) < m.Order {
		panic("sysid: Predict needs Order past outputs")
	}
	s := 0.0
	for i := 0; i < m.Order; i++ {
		s += m.A[i] * (yHist[i] - m.YMean)
	}
	for j := 0; j < m.NumInputs; j++ {
		for i := 0; i < m.Order; i++ {
			s += m.B[j][i] * (uHist[j][i] - m.UMean[j])
		}
	}
	return s + m.YMean
}

// Simulate free-runs the model from rest over an input sequence
// (u[j][t] commanded at period t) and returns the simulated outputs.
func (m *Model) Simulate(u [][]float64) []float64 {
	if len(u) != m.NumInputs {
		panic("sysid: Simulate input count mismatch")
	}
	n := 0
	if m.NumInputs > 0 {
		n = len(u[0])
	}
	y := make([]float64, n)
	yHist := make([]float64, m.Order)
	uHist := make([][]float64, m.NumInputs)
	for j := range uHist {
		uHist[j] = make([]float64, m.Order)
		for i := range uHist[j] {
			uHist[j][i] = m.UMean[j]
		}
	}
	for i := range yHist {
		yHist[i] = m.YMean
	}
	for t := 0; t < n; t++ {
		y[t] = m.Predict(yHist, uHist)
		// Shift histories.
		copy(yHist[1:], yHist[:m.Order-1])
		yHist[0] = y[t]
		for j := 0; j < m.NumInputs; j++ {
			copy(uHist[j][1:], uHist[j][:m.Order-1])
			uHist[j][0] = u[j][t]
		}
	}
	return y
}

// DCGain returns the steady-state gain from each input to the output:
// G_j = Σᵢ b_{j,i} / (1 − Σᵢ a_i).
func (m *Model) DCGain() []float64 {
	den := 1.0
	for _, a := range m.A {
		den -= a
	}
	out := make([]float64, m.NumInputs)
	for j := range out {
		num := 0.0
		for _, b := range m.B[j] {
			num += b
		}
		if math.Abs(den) < 1e-12 {
			out[j] = math.Inf(1)
			continue
		}
		out[j] = num / den
	}
	return out
}

// Stable reports whether the model's autoregressive part is Schur stable
// (all companion-matrix eigenvalues inside the unit circle).
func (m *Model) Stable() bool {
	n := m.Order
	comp := mat.New(n, n)
	for i := 0; i < n; i++ {
		comp.Set(0, i, m.A[i])
	}
	for i := 1; i < n; i++ {
		comp.Set(i, i-1, 1)
	}
	return mat.SpectralRadius(comp) < 1
}

// FitBestOrder fits orders 1..maxOrder and returns the model with the best
// one-step R² on a held-out validation suffix (the last valFrac of the log).
func FitBestOrder(y []float64, u [][]float64, maxOrder int, ridge, valFrac float64) (*Model, error) {
	if valFrac <= 0 || valFrac >= 1 {
		valFrac = 0.25
	}
	split := int(float64(len(y)) * (1 - valFrac))
	var best *Model
	bestScore := math.Inf(-1)
	var lastErr error
	for order := 1; order <= maxOrder; order++ {
		trainU := make([][]float64, len(u))
		for j := range u {
			trainU[j] = u[j][:split]
		}
		m, err := Fit(y[:split], trainU, order, ridge)
		if err != nil {
			lastErr = err
			continue
		}
		score := validationR2(m, y, u, split)
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = errors.New("sysid: no order could be fit")
		}
		return nil, lastErr
	}
	return best, nil
}

// validationR2 scores one-step predictions on the held-out suffix.
func validationR2(m *Model, y []float64, u [][]float64, split int) float64 {
	var sse, sst float64
	yHist := make([]float64, m.Order)
	uHist := make([][]float64, m.NumInputs)
	for j := range uHist {
		uHist[j] = make([]float64, m.Order)
	}
	count := 0
	for t := split; t < len(y); t++ {
		if t < m.Order {
			continue
		}
		for i := 0; i < m.Order; i++ {
			yHist[i] = y[t-1-i]
			for j := 0; j < m.NumInputs; j++ {
				uHist[j][i] = u[j][t-1-i]
			}
		}
		p := m.Predict(yHist, uHist)
		d := y[t] - p
		sse += d * d
		dm := y[t] - m.YMean
		sst += dm * dm
		count++
	}
	if count == 0 || sst == 0 { //nolint:maya/floateq zero-variance guard before division
		return math.Inf(-1)
	}
	return 1 - sse/sst
}
