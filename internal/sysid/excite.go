package sysid

import (
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

// ExcitationLog is an input/output log collected under random-step
// excitation, in the normalized input space the controller will use.
type ExcitationLog struct {
	Y []float64   // measured power per control period (watts)
	U [][]float64 // U[j][t]: normalized input j commanded at period t
}

// Append concatenates another log (separate training runs).
func (l *ExcitationLog) Append(o ExcitationLog) {
	l.Y = append(l.Y, o.Y...)
	if l.U == nil {
		l.U = make([][]float64, len(o.U))
	}
	for j := range o.U {
		l.U[j] = append(l.U[j], o.U[j]...)
	}
}

// excitePolicy drives the machine with persistently exciting random input
// steps: every input is re-drawn uniformly and held for a random number of
// control periods, mirroring the paper's identification experiments
// ("we run a training set of applications ... change the system inputs").
type excitePolicy struct {
	knobs interface {
		FromNorms([3]float64) (float64, float64, float64)
	}
	r       *rng.Stream
	holdLo  int
	holdHi  int
	holdFor int
	cur     [3]float64
	history [][3]float64
}

func (p *excitePolicy) Decide(step int, powerW float64) sim.Inputs {
	if p.holdFor <= 0 {
		for i := range p.cur {
			p.cur[i] = p.r.Float64()
		}
		p.holdFor = p.r.IntRange(p.holdLo, p.holdHi)
	}
	p.holdFor--
	p.history = append(p.history, p.cur)
	d, idle, b := p.knobs.FromNorms(p.cur)
	return sim.Inputs{FreqGHz: d, Idle: idle, Balloon: b}
}

// CollectExcitation runs each training workload on a fresh machine with
// random-step input excitation and returns the merged log. periodTicks is
// the control period (20 = 20 ms); maxTicks bounds each run.
func CollectExcitation(cfg sim.Config, training []workload.Workload, seed uint64, periodTicks, maxTicks int) ExcitationLog {
	var log ExcitationLog
	log.U = make([][]float64, 3)
	for i, w := range training {
		m := sim.NewMachine(cfg, seed+uint64(i)*101)
		w.Reset(seed + uint64(i))
		pol := &excitePolicy{
			knobs:  cfg.Knobs(),
			r:      rng.NewNamed(seed+uint64(i), "sysid/excite"),
			holdLo: 3, holdHi: 15,
		}
		res := sim.Run(m, w, pol, sim.RunSpec{
			ControlPeriodTicks: periodTicks,
			MaxTicks:           maxTicks,
			StopOnFinish:       true,
		})
		// Alignment with the runtime loop: after reading y(T) the controller
		// emits u, which is in force during period T+1 and shapes y(T+1).
		// The model's convention "u(T−1) affects y(T)" therefore pairs
		// Y[t] = DefenseSamples[t] with U[t] = history[t+1] (the input
		// chosen right after sample t was read).
		n := len(res.DefenseSamples)
		if n > len(pol.history)-1 {
			n = len(pol.history) - 1
		}
		for t := 0; t < n; t++ {
			log.Y = append(log.Y, res.DefenseSamples[t])
			for j := 0; j < 3; j++ {
				log.U[j] = append(log.U[j], pol.history[t+1][j])
			}
		}
	}
	return log
}

// TrainingSet returns the identification workloads. The paper uses
// swaptions, ferret (PARSEC) and barnes, raytrace (SPLASH-2x); of those
// only raytrace has a synthetic counterpart here, so the set substitutes
// three other diverse programs (compute-bound, memory-bound, and
// phase-alternating) to span the same behaviour range. Training and
// evaluation sets still differ in composition, as in the paper.
func TrainingSet() []workload.Workload {
	return []workload.Workload{
		workload.NewApp("raytrace").Scale(0.3),
		workload.NewApp("canneal").Scale(0.3),
		workload.NewApp("bodytrack").Scale(0.3),
		workload.NewApp("vips").Scale(0.3),
	}
}
