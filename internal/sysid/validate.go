package sysid

import (
	"errors"
	"fmt"

	"github.com/maya-defense/maya/internal/signal"
)

// Validation reports how well a fitted model explains data it was not
// trained on — the checks Ljung's methodology prescribes before a model is
// trusted for control design.
type Validation struct {
	// R2 is the one-step coefficient of determination on the data.
	R2 float64
	// ResidualMean should be ≈ 0 (no systematic bias).
	ResidualMean float64
	// LjungBoxQ is the Ljung-Box portmanteau statistic over Lags residual
	// autocorrelations; under the whiteness hypothesis it is χ²(Lags).
	LjungBoxQ float64
	// Lags used for the statistic.
	Lags int
	// WhitenessOK reports Q below the χ² 95th percentile: residuals are
	// plausibly white, i.e. the model captured the predictable dynamics.
	WhitenessOK bool
	// InputCorrelation is the largest |cross-correlation| between residuals
	// and any input over ±Lags; large values mean un-modeled input effects.
	InputCorrelation float64
}

// chi2_95 holds 95th percentiles of the χ² distribution for 1..30 degrees
// of freedom (Abramowitz & Stegun); enough for the lag counts used here.
var chi2_95 = []float64{
	3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919,
	18.307, 19.675, 21.026, 22.362, 23.685, 24.996, 26.296, 27.587, 28.869,
	30.144, 31.410, 32.671, 33.924, 35.172, 36.415, 37.652, 38.885, 40.113,
	41.337, 42.557, 43.773,
}

// Validate scores the model's one-step predictions on a held-out log.
func Validate(m *Model, y []float64, u [][]float64, lags int) (*Validation, error) {
	if len(u) != m.NumInputs {
		return nil, errors.New("sysid: input count mismatch")
	}
	n := len(y)
	if n < m.Order+lags+10 {
		return nil, ErrTooShort
	}
	if lags < 1 || lags > len(chi2_95) {
		return nil, fmt.Errorf("sysid: lags must be in [1,%d]", len(chi2_95))
	}

	yHist := make([]float64, m.Order)
	uHist := make([][]float64, m.NumInputs)
	for j := range uHist {
		uHist[j] = make([]float64, m.Order)
	}
	var residuals []float64
	var sse, sst float64
	for t := m.Order; t < n; t++ {
		for i := 0; i < m.Order; i++ {
			yHist[i] = y[t-1-i]
			for j := 0; j < m.NumInputs; j++ {
				uHist[j][i] = u[j][t-1-i]
			}
		}
		p := m.Predict(yHist, uHist)
		r := y[t] - p
		residuals = append(residuals, r)
		sse += r * r
		d := y[t] - m.YMean
		sst += d * d
	}
	v := &Validation{Lags: lags}
	if sst > 0 {
		v.R2 = 1 - sse/sst
	}
	v.ResidualMean = signal.Mean(residuals)

	// Ljung-Box on the residual autocorrelations.
	nr := float64(len(residuals))
	rbar := v.ResidualMean
	den := 0.0
	for _, r := range residuals {
		den += (r - rbar) * (r - rbar)
	}
	q := 0.0
	for k := 1; k <= lags; k++ {
		num := 0.0
		for t := k; t < len(residuals); t++ {
			num += (residuals[t] - rbar) * (residuals[t-k] - rbar)
		}
		rho := 0.0
		if den > 0 {
			rho = num / den
		}
		q += rho * rho / (nr - float64(k))
	}
	v.LjungBoxQ = nr * (nr + 2) * q
	v.WhitenessOK = v.LjungBoxQ < chi2_95[lags-1]

	// Residual-input cross correlation.
	for j := 0; j < m.NumInputs; j++ {
		c := signal.CrossCorrelationPeak(residuals, u[j][m.Order:], lags)
		if c > v.InputCorrelation {
			v.InputCorrelation = c
		}
	}
	return v, nil
}

// String renders the validation summary.
func (v *Validation) String() string {
	return fmt.Sprintf("sysid.Validation{R²=%.3f, residual mean=%.3g, Ljung-Box Q=%.1f (%d lags, white=%v), input corr=%.2f}",
		v.R2, v.ResidualMean, v.LjungBoxQ, v.Lags, v.WhitenessOK, v.InputCorrelation)
}
