package fault_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/maya-defense/maya/internal/fault"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/workload"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	for _, plan := range fault.Plans() {
		var buf bytes.Buffer
		if err := plan.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", plan.Name, err)
		}
		got, err := fault.ReadPlanJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", plan.Name, err)
		}
		if !reflect.DeepEqual(got, plan) {
			t.Errorf("%s: round trip changed the plan:\n got %+v\nwant %+v", plan.Name, got, plan)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	for _, plan := range fault.Plans() {
		if err := plan.Validate(); err != nil {
			t.Errorf("canned plan %s does not validate: %v", plan.Name, err)
		}
	}
	bad := []fault.Plan{
		{Sensor: fault.SensorPlan{DropoutProb: 1.5}},
		{Sensor: fault.SensorPlan{SpikeProb: -0.1}},
		{Sensor: fault.SensorPlan{SpikeMagW: -1}},
		{Sensor: fault.SensorPlan{StuckReads: -1}},
		{Counter: fault.CounterPlan{WrapJ: -1}},
		{Actuator: fault.ActuatorPlan{StuckTicks: -1}},
		{Actuator: fault.ActuatorPlan{LagScale: -2}},
		{Timing: fault.TimingPlan{MissProb: 2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
		if _, err := fault.New(p, 1); err == nil {
			t.Errorf("New accepted bad plan %d", i)
		}
	}
}

func TestReadPlanJSONRejectsUnknownFields(t *testing.T) {
	if _, err := fault.ReadPlanJSON(strings.NewReader(`{"sensor":{"dropuot_prob":0.1}}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(fault.Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if !(fault.Plan{Name: "x", Actuator: fault.ActuatorPlan{LagScale: 1}}).Empty() {
		t.Error("LagScale=1 (nominal) plan not Empty")
	}
	for _, plan := range fault.Plans() {
		if plan.Empty() {
			t.Errorf("canned plan %s reports Empty", plan.Name)
		}
	}
}

func TestPlanByName(t *testing.T) {
	for _, name := range fault.PlanNames() {
		p, ok := fault.PlanByName(name)
		if !ok || p.Name != name {
			t.Errorf("PlanByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := fault.PlanByName("no-such-plan"); ok {
		t.Error("PlanByName accepted an unknown name")
	}
}

// runPlan drives a baseline-controlled machine with the plan's faults fully
// wired (sensor wrapper, machine hooks, policy wrapper) and returns what
// fired plus the recorded samples and input trace.
func runPlan(t *testing.T, plan fault.Plan, seed uint64, ticks int) (fault.Stats, sim.RunResult) {
	t.Helper()
	cfg := sim.Sys1()
	m := sim.NewMachine(cfg, seed)
	inj := fault.MustNew(plan, seed)
	inj.Attach(m)
	w := workload.NewApp("blackscholes").Scale(0.1)
	w.Reset(seed + 1)
	res := sim.Run(m, w, inj.Policy(sim.NewBaselinePolicy(cfg)), sim.RunSpec{
		ControlPeriodTicks: 20,
		MaxTicks:           ticks,
		DefenseSensor:      inj.Sensor(sim.NewRAPLSensor(m)),
	})
	return inj.Stats(), res
}

// TestEachChannelFires proves every canned plan exercises the fault channels
// it claims to — a plan that silently injects nothing would make the whole
// robustness harness vacuous.
func TestEachChannelFires(t *testing.T) {
	const ticks = 40000
	stats := map[string]fault.Stats{}
	results := map[string]sim.RunResult{}
	for _, plan := range fault.Plans() {
		s, res := runPlan(t, plan, 7, ticks)
		stats[plan.Name] = s
		results[plan.Name] = res
	}

	if s := stats["sensor-dropout"]; s.SensorDropouts == 0 || s.SensorStuck == 0 {
		t.Errorf("sensor-dropout fired nothing: %v", s)
	}
	if s := stats["sensor-spike"]; s.SensorSpikes == 0 || s.SensorNonFinite == 0 {
		t.Errorf("sensor-spike fired nothing: %v", s)
	}
	if s := stats["actuator-stuck"]; s.CommandDrops == 0 || s.KnobStuck == 0 {
		t.Errorf("actuator-stuck fired nothing: %v", s)
	}
	if s := stats["deadline-miss"]; s.DeadlineMisses == 0 || s.StaleSamples == 0 {
		t.Errorf("deadline-miss fired nothing: %v", s)
	}
	if s := stats["kitchen-sink"]; s.Total() == 0 {
		t.Errorf("kitchen-sink fired nothing: %v", s)
	}

	// The counter channel fires inside the machine, not the injector: a
	// wrapped energy counter surfaces as impossible 0-W readings once the
	// RAPL reader clamps the negative delta.
	zeros := 0
	for _, v := range results["rapl-wrap"].DefenseSamples {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("rapl-wrap produced no clamped 0-W readings")
	}
}

// TestInjectorDeterministic proves the whole faulted run — injected sensor
// values, actuation, timing — replays bit-for-bit for a fixed (plan, seed).
func TestInjectorDeterministic(t *testing.T) {
	for _, plan := range fault.Plans() {
		s1, r1 := runPlan(t, plan, 11, 12000)
		s2, r2 := runPlan(t, plan, 11, 12000)
		if s1 != s2 {
			t.Errorf("%s: stats differ across identical runs:\n%v\n%v", plan.Name, s1, s2)
		}
		if !sameFloats(r1.DefenseSamples, r2.DefenseSamples) {
			t.Errorf("%s: samples differ across identical runs", plan.Name)
		}
		if !reflect.DeepEqual(r1.InputTrace, r2.InputTrace) {
			t.Errorf("%s: input traces differ across identical runs", plan.Name)
		}

		// A different seed must realize a different fault sequence.
		s3, _ := runPlan(t, plan, 12, 12000)
		if plan.Name != "rapl-wrap" && s1 == s3 {
			t.Errorf("%s: stats identical across different seeds: %v", plan.Name, s1)
		}
	}
}

// TestEmptyPlanNonInvasive is the load-bearing guarantee: fully wiring an
// empty plan (sensor wrapper, machine hooks, policy wrapper) leaves the run
// byte-identical to an unwrapped one.
func TestEmptyPlanNonInvasive(t *testing.T) {
	cfg := sim.Sys1()
	run := func(wrap bool) sim.RunResult {
		m := sim.NewMachine(cfg, 3)
		w := workload.NewApp("blackscholes").Scale(0.1)
		w.Reset(4)
		var pol sim.Policy = sim.NewBaselinePolicy(cfg)
		spec := sim.RunSpec{ControlPeriodTicks: 20, MaxTicks: 12000}
		if wrap {
			inj := fault.MustNew(fault.Plan{Name: "empty"}, 99)
			inj.Attach(m)
			pol = inj.Policy(pol)
			spec.DefenseSensor = inj.Sensor(sim.NewRAPLSensor(m))
		}
		return sim.Run(m, w, pol, spec)
	}
	plain, wrapped := run(false), run(true)
	if !sameFloats(plain.DefenseSamples, wrapped.DefenseSamples) {
		t.Error("empty plan changed the power samples")
	}
	if !reflect.DeepEqual(plain.InputTrace, wrapped.InputTrace) {
		t.Error("empty plan changed the input trace")
	}
	if plain.EnergyJ != wrapped.EnergyJ {
		t.Errorf("empty plan changed the energy: %g vs %g", plain.EnergyJ, wrapped.EnergyJ)
	}
}

// sameFloats is bit-for-bit equality that treats NaN as equal to itself
// (injected NaN readings must also replay deterministically).
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
