// Package fault provides deterministic, seed-reproducible fault injection
// for the simulated substrate. The paper's controller runs on real machines
// where sensors glitch, RAPL energy counters wrap, and knobs apply late or
// get stuck (§V, §VI); this package reproduces those disturbances in the
// simulator so the control loop's graceful degradation can be exercised and
// regression-tested.
//
// A Plan is a declarative description of which faults to inject and how
// often. An Injector realizes a plan for one run: it owns per-channel
// rng.ChildSeed-derived streams, so two runs with the same (plan, seed)
// replay bit-for-bit regardless of how many other runs execute concurrently.
// The empty Plan injects nothing and leaves every wrapped component's
// behaviour byte-identical to the unwrapped one.
//
// Fault channels:
//
//   - sensor: dropped readings (0 W), additive spikes, non-finite readings
//     (NaN/±Inf), and stuck-at-last-value windows, applied by FaultySensor
//     on top of any sim.PowerSensor;
//   - counter: RAPL energy-counter wraparound (sim.Machine.SetEnergyWrap),
//     which an un-hardened reader observes as an impossible negative energy
//     delta;
//   - actuator: dropped commands, stuck knobs, and scaled actuation lag,
//     applied through sim.Machine.SetInputFilter / SetLagScale;
//   - timing: missed controller deadlines (the previous command stays in
//     force) and jittered wake-ups (the decision consumes a stale sample),
//     applied by wrapping the sim.Policy.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
)

// SensorPlan configures measurement-path faults. All probabilities are
// per-read; zero values disable the channel.
type SensorPlan struct {
	// DropoutProb is the probability a reading is lost and reported as 0 W
	// (a failed RAPL MSR read / hwmon timeout).
	DropoutProb float64 `json:"dropout_prob,omitempty"`
	// SpikeProb is the probability a reading carries an additive spike of
	// ±SpikeMagW (bus glitch, cross-talk).
	SpikeProb float64 `json:"spike_prob,omitempty"`
	// SpikeMagW is the spike magnitude in watts.
	SpikeMagW float64 `json:"spike_mag_w,omitempty"`
	// NonFiniteProb is the probability a reading is NaN or ±Inf (driver
	// bug, torn read).
	NonFiniteProb float64 `json:"non_finite_prob,omitempty"`
	// StuckProb is the probability a read starts a stuck window during
	// which the sensor repeats its last value for StuckReads reads.
	StuckProb float64 `json:"stuck_prob,omitempty"`
	// StuckReads is the length of a stuck window in reads.
	StuckReads int `json:"stuck_reads,omitempty"`
}

// CounterPlan configures energy-counter faults.
type CounterPlan struct {
	// WrapJ makes the machine's RAPL-style energy counter wrap modulo this
	// many joules (0 disables). Real counters are finite-width (a 32-bit
	// Intel counter wraps every ~65 kJ); small values here compress hours
	// of wall time into seconds of simulation.
	WrapJ float64 `json:"wrap_j,omitempty"`
}

// ActuatorPlan configures actuation-path faults. Probabilities are
// per-command (one command per control period).
type ActuatorPlan struct {
	// DropProb is the probability a command is silently dropped and the
	// previous command stays in force.
	DropProb float64 `json:"drop_prob,omitempty"`
	// StuckProb is the probability a command starts a stuck window during
	// which one randomly chosen knob is frozen at its current value for
	// StuckTicks simulator ticks.
	StuckProb float64 `json:"stuck_prob,omitempty"`
	// StuckTicks is the length of a stuck window in ticks.
	StuckTicks int `json:"stuck_ticks,omitempty"`
	// LagScale multiplies every actuation time constant (values > 1 mean
	// knobs apply late; 0 or 1 is nominal).
	LagScale float64 `json:"lag_scale,omitempty"`
}

// TimingPlan configures controller-scheduling faults. Probabilities are
// per-wakeup.
type TimingPlan struct {
	// MissProb is the probability a controller deadline is missed entirely:
	// the decision does not run and the previous inputs stay in force.
	MissProb float64 `json:"miss_prob,omitempty"`
	// StaleProb is the probability a wakeup is jittered enough that the
	// decision consumes the previous period's sample instead of the
	// current one.
	StaleProb float64 `json:"stale_prob,omitempty"`
}

// Plan is a composable description of the faults to inject into one run.
// The zero value injects nothing.
type Plan struct {
	// Name labels the plan in reports and test tables.
	Name     string       `json:"name,omitempty"`
	Sensor   SensorPlan   `json:"sensor,omitempty"`
	Counter  CounterPlan  `json:"counter,omitempty"`
	Actuator ActuatorPlan `json:"actuator,omitempty"`
	Timing   TimingPlan   `json:"timing,omitempty"`
}

// Empty reports whether the plan injects no faults at all (the name is
// ignored). Wrapping components with an empty plan is guaranteed not to
// perturb behaviour. Plan fields are exact config values, never computed,
// so zero tests are exact by construction.
func (p Plan) Empty() bool {
	s, c, a, t := p.Sensor, p.Counter, p.Actuator, p.Timing
	return s.DropoutProb == 0 && s.SpikeProb == 0 && s.NonFiniteProb == 0 && s.StuckProb == 0 && //nolint:maya/floateq exact zero test of config values
		c.WrapJ == 0 && //nolint:maya/floateq exact zero test of config values
		a.DropProb == 0 && a.StuckProb == 0 && (a.LagScale == 0 || a.LagScale == 1) && //nolint:maya/floateq exact zero/one test of config values
		t.MissProb == 0 && t.StaleProb == 0 //nolint:maya/floateq exact zero test of config values
}

// Validate checks that probabilities are in [0, 1] and magnitudes are
// non-negative. Fields are checked in a fixed order so the reported
// violation (and therefore the error text) is the same on every run.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"sensor.dropout_prob", p.Sensor.DropoutProb},
		{"sensor.spike_prob", p.Sensor.SpikeProb},
		{"sensor.non_finite_prob", p.Sensor.NonFiniteProb},
		{"sensor.stuck_prob", p.Sensor.StuckProb},
		{"actuator.drop_prob", p.Actuator.DropProb},
		{"actuator.stuck_prob", p.Actuator.StuckProb},
		{"timing.miss_prob", p.Timing.MissProb},
		{"timing.stale_prob", p.Timing.StaleProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0, 1]", pr.name, pr.v)
		}
	}
	switch {
	case p.Sensor.SpikeMagW < 0:
		return fmt.Errorf("fault: sensor.spike_mag_w negative")
	case p.Sensor.StuckReads < 0:
		return fmt.Errorf("fault: sensor.stuck_reads negative")
	case p.Counter.WrapJ < 0:
		return fmt.Errorf("fault: counter.wrap_j negative")
	case p.Actuator.StuckTicks < 0:
		return fmt.Errorf("fault: actuator.stuck_ticks negative")
	case p.Actuator.LagScale < 0:
		return fmt.Errorf("fault: actuator.lag_scale negative")
	}
	return nil
}

// WriteJSON serializes the plan, so users can start from a canned plan
// (`mayactl -dump-fault-plan <name>`), tune it, and load the result with
// `mayactl -faults plan.json`.
func (p Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// ReadPlanJSON parses and validates a fault plan.
func ReadPlanJSON(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: plan decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Plans returns the canned fault plans used by the robustness regression
// harness, the `faults` experiment sweep, and `mayactl -faults <name>`.
// Rates are aggressive relative to real hardware so that short simulated
// runs exercise many fault events.
func Plans() []Plan {
	return []Plan{
		{
			Name: "sensor-dropout",
			Sensor: SensorPlan{
				DropoutProb: 0.05,
				StuckProb:   0.01, StuckReads: 5,
			},
		},
		{
			Name: "sensor-spike",
			Sensor: SensorPlan{
				SpikeProb: 0.05, SpikeMagW: 60,
				NonFiniteProb: 0.01,
			},
		},
		{
			Name:    "rapl-wrap",
			Counter: CounterPlan{WrapJ: 1.5},
		},
		{
			Name: "actuator-stuck",
			Actuator: ActuatorPlan{
				DropProb:  0.05,
				StuckProb: 0.02, StuckTicks: 400,
				LagScale: 3,
			},
		},
		{
			Name:   "deadline-miss",
			Timing: TimingPlan{MissProb: 0.10, StaleProb: 0.10},
		},
		{
			Name: "kitchen-sink",
			Sensor: SensorPlan{
				DropoutProb: 0.02,
				SpikeProb:   0.02, SpikeMagW: 60,
				NonFiniteProb: 0.005,
				StuckProb:     0.005, StuckReads: 5,
			},
			Counter: CounterPlan{WrapJ: 3},
			Actuator: ActuatorPlan{
				DropProb:  0.02,
				StuckProb: 0.01, StuckTicks: 200,
				LagScale: 2,
			},
			Timing: TimingPlan{MissProb: 0.05, StaleProb: 0.05},
		},
	}
}

// PlanByName returns the canned plan with the given name.
func PlanByName(name string) (Plan, bool) {
	for _, p := range Plans() {
		if p.Name == name {
			return p, true
		}
	}
	return Plan{}, false
}

// PlanNames lists the canned plan names in Plans() order.
func PlanNames() []string {
	ps := Plans()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
