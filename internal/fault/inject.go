package fault

import (
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/telemetry"
)

// Fixed child indices for the per-channel streams. Each channel owns an
// independent stream so that, e.g., raising the sensor fault rate never
// shifts which actuator commands are dropped.
const (
	sensorChannel = iota
	actuatorChannel
	timingChannel
)

// injectorDomain separates the injector's seed derivation from other users
// of rng.ChildSeed on the same run seed.
const injectorDomain = 0xfa171 // "FAULT"

// Stats counts the faults an injector actually fired, per channel. The
// regression harness uses them to prove a plan exercised what it claims to.
type Stats struct {
	SensorDropouts  uint64
	SensorSpikes    uint64
	SensorNonFinite uint64
	SensorStuck     uint64 // reads served from a stuck window
	CommandDrops    uint64
	KnobStuck       uint64 // commands altered by a stuck window
	DeadlineMisses  uint64
	StaleSamples    uint64
}

// Total sums all fired faults.
func (s Stats) Total() uint64 {
	return s.SensorDropouts + s.SensorSpikes + s.SensorNonFinite + s.SensorStuck +
		s.CommandDrops + s.KnobStuck + s.DeadlineMisses + s.StaleSamples
}

func (s Stats) String() string {
	return fmt.Sprintf("sensor{drop=%d spike=%d nonfinite=%d stuck=%d} actuator{drop=%d stuck=%d} timing{miss=%d stale=%d}",
		s.SensorDropouts, s.SensorSpikes, s.SensorNonFinite, s.SensorStuck,
		s.CommandDrops, s.KnobStuck, s.DeadlineMisses, s.StaleSamples)
}

// Metrics instruments an injector's fault channels. Attach with
// Injector.SetMetrics; a nil injector metrics keeps injection
// un-instrumented (the Stats counters always run).
type Metrics struct {
	SensorFaults   *telemetry.Counter
	ActuatorFaults *telemetry.Counter
	TimingFaults   *telemetry.Counter
}

// NewMetrics registers the injected-fault counters.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		SensorFaults:   reg.Counter("maya_fault_sensor_injected_total", "sensor faults injected"),
		ActuatorFaults: reg.Counter("maya_fault_actuator_injected_total", "actuator faults injected"),
		TimingFaults:   reg.Counter("maya_fault_timing_injected_total", "controller timing faults injected"),
	}
}

// Injector realizes a Plan for one run. It is not safe for concurrent use:
// like the machine and the engine, each run owns its injector. Runs with
// the same (plan, seed) replay bit-for-bit.
type Injector struct {
	plan Plan

	sensorR, actR, timR *rng.Stream

	// Actuator stuck window: knob index frozen at a value until stuckUntil.
	stuckKnob  int
	stuckVal   float64
	stuckUntil int64

	stats   Stats
	metrics *Metrics
}

// New builds an injector for the plan. The per-channel streams derive from
// rng.ChildSeed(seed, channel) under a fixed domain constant, so the same
// (plan, seed) replays identically no matter how many injectors exist or
// which goroutine runs them.
func New(plan Plan, seed uint64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	base := rng.ChildSeed(seed, injectorDomain)
	return &Injector{
		plan:    plan,
		sensorR: rng.NewChild(base, sensorChannel),
		actR:    rng.NewChild(base, actuatorChannel),
		timR:    rng.NewChild(base, timingChannel),
	}, nil
}

// MustNew is New for canned (pre-validated) plans.
func MustNew(plan Plan, seed uint64) *Injector {
	in, err := New(plan, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats { return in.stats }

// SetMetrics attaches telemetry counters (nil detaches).
func (in *Injector) SetMetrics(m *Metrics) { in.metrics = m }

// MachineHooks is the fault-hook surface of a simulated machine: the three
// seams the counter and actuator fault channels install into. *sim.Machine
// satisfies it, and so does one tenant column of a sim.MachineBank
// (*sim.BankMachine), which is how the fleet engine attaches per-tenant
// plans without scalar machines.
type MachineHooks interface {
	SetInputFilter(sim.InputFilter)
	SetLagScale(float64)
	SetEnergyWrap(float64)
}

// Attach installs the plan's counter and actuator faults on the machine:
// energy-counter wraparound, actuation lag scaling, and the SetInputs
// filter for command drops and stuck knobs. An empty plan installs nothing.
func (in *Injector) Attach(m *sim.Machine) { in.AttachHooks(m) }

// AttachHooks is Attach over any MachineHooks implementation.
func (in *Injector) AttachHooks(h MachineHooks) {
	if in.plan.Counter.WrapJ > 0 {
		h.SetEnergyWrap(in.plan.Counter.WrapJ)
	}
	if s := in.plan.Actuator.LagScale; s > 0 && s != 1 { //nolint:maya/floateq LagScale is an exact config value; 1 means disabled
		h.SetLagScale(s)
	}
	a := in.plan.Actuator
	if a.DropProb > 0 || a.StuckProb > 0 {
		h.SetInputFilter(in.filterInputs)
	}
}

// TimingDecision draws the plan's timing faults for one control step and
// returns the verdict: miss means the wakeup never happened (the caller
// must hold the previous command and not run the policy), stale means the
// policy runs on the previous period's sample. The draw order, stats, and
// metrics are exactly FaultyPolicy.Decide's — at most one timing fault
// fires per step, and step 0 never faults (there is no previous command to
// hold yet). The fleet engine calls this directly where the scalar path
// goes through the FaultyPolicy wrapper.
func (in *Injector) TimingDecision(step int) (miss, stale bool) {
	t := in.plan.Timing
	if step > 0 && t.MissProb > 0 && in.timR.Bool(t.MissProb) {
		in.stats.DeadlineMisses++
		if in.metrics != nil {
			in.metrics.TimingFaults.Inc()
		}
		return true, false
	}
	if step > 0 && t.StaleProb > 0 && in.timR.Bool(t.StaleProb) {
		in.stats.StaleSamples++
		if in.metrics != nil {
			in.metrics.TimingFaults.Inc()
		}
		return false, true
	}
	return false, false
}

// filterInputs implements the actuator fault channel as a sim.InputFilter.
func (in *Injector) filterInputs(tick int64, commanded, current sim.Inputs) sim.Inputs {
	a := in.plan.Actuator
	if a.DropProb > 0 && in.actR.Bool(a.DropProb) {
		in.stats.CommandDrops++
		if in.metrics != nil {
			in.metrics.ActuatorFaults.Inc()
		}
		return current
	}
	if a.StuckProb > 0 && tick >= in.stuckUntil && in.actR.Bool(a.StuckProb) {
		// Start a stuck window: one knob freezes at its current setting.
		in.stuckKnob = in.actR.Intn(3)
		in.stuckUntil = tick + int64(a.StuckTicks)
		switch in.stuckKnob {
		case 0:
			in.stuckVal = current.FreqGHz
		case 1:
			in.stuckVal = current.Idle
		default:
			in.stuckVal = current.Balloon
		}
	}
	if tick < in.stuckUntil {
		in.stats.KnobStuck++
		if in.metrics != nil {
			in.metrics.ActuatorFaults.Inc()
		}
		switch in.stuckKnob {
		case 0:
			commanded.FreqGHz = in.stuckVal
		case 1:
			commanded.Idle = in.stuckVal
		default:
			commanded.Balloon = in.stuckVal
		}
	}
	return commanded
}

// Sensor wraps s with the plan's sensor faults. With an empty sensor plan
// the wrapper forwards readings untouched (and draws nothing from the
// fault stream), so wrapping is always safe.
func (in *Injector) Sensor(s sim.PowerSensor) *FaultySensor {
	return &FaultySensor{inner: s, in: in}
}

// Policy wraps p with the plan's timing faults.
func (in *Injector) Policy(p sim.Policy) *FaultyPolicy {
	return &FaultyPolicy{inner: p, in: in}
}

// FaultySensor overlays a SensorPlan on any sim.PowerSensor (RAPLSensor,
// OutletSensor, ...). It satisfies the sensor read-after-observe contract:
// Observe is forwarded per tick and ReadW perturbs only the returned value,
// never the inner sensor's accumulation state.
type FaultySensor struct {
	inner sim.PowerSensor
	in    *Injector

	stuckLeft int
	stuckVal  float64
}

// Observe implements sim.PowerSensor.
func (s *FaultySensor) Observe(r sim.StepResult) { s.inner.Observe(r) }

// ReadW implements sim.PowerSensor, applying the plan's read faults in a
// fixed order: stuck window, dropout, non-finite, spike.
func (s *FaultySensor) ReadW() float64 {
	v := s.inner.ReadW()
	p := s.in.plan.Sensor
	if s.stuckLeft > 0 {
		s.stuckLeft--
		s.count(&s.in.stats.SensorStuck)
		return s.stuckVal
	}
	if p.StuckProb > 0 && s.in.sensorR.Bool(p.StuckProb) && p.StuckReads > 0 {
		s.stuckLeft = p.StuckReads
		s.stuckVal = v
		// The triggering read itself is served from the window too.
		s.stuckLeft--
		s.count(&s.in.stats.SensorStuck)
		return s.stuckVal
	}
	if p.DropoutProb > 0 && s.in.sensorR.Bool(p.DropoutProb) {
		s.count(&s.in.stats.SensorDropouts)
		return 0
	}
	if p.NonFiniteProb > 0 && s.in.sensorR.Bool(p.NonFiniteProb) {
		s.count(&s.in.stats.SensorNonFinite)
		switch s.in.sensorR.Intn(3) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		default:
			return math.Inf(-1)
		}
	}
	if p.SpikeProb > 0 && s.in.sensorR.Bool(p.SpikeProb) {
		s.count(&s.in.stats.SensorSpikes)
		mag := p.SpikeMagW
		if s.in.sensorR.Bool(0.5) {
			mag = -mag
		}
		return v + mag
	}
	return v
}

func (s *FaultySensor) count(c *uint64) {
	*c++
	if s.in.metrics != nil {
		s.in.metrics.SensorFaults.Inc()
	}
}

// FaultyPolicy overlays a TimingPlan on a sim.Policy: missed deadlines keep
// the previous command in force without running the inner policy (the
// wakeup never happened, so the mask does not advance either), and jittered
// wakeups hand the inner policy the previous period's sample.
type FaultyPolicy struct {
	inner sim.Policy
	in    *Injector

	prev      sim.Inputs
	prevPower float64
}

// Inner returns the wrapped policy (the engine, for telemetry access).
func (p *FaultyPolicy) Inner() sim.Policy { return p.inner }

// Decide implements sim.Policy.
func (p *FaultyPolicy) Decide(step int, powerW float64) sim.Inputs {
	miss, stale := p.in.TimingDecision(step)
	if miss {
		p.prevPower = powerW
		return p.prev
	}
	pw := powerW
	if stale {
		pw = p.prevPower
	}
	p.prevPower = powerW
	p.prev = p.inner.Decide(step, pw)
	return p.prev
}
