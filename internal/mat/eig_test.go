package mat

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"

	"github.com/maya-defense/maya/internal/rng"
)

// sortEigs orders eigenvalues by (real, imag) for comparison.
func sortEigs(e []complex128) {
	sort.Slice(e, func(i, j int) bool {
		if real(e[i]) != real(e[j]) {
			return real(e[i]) < real(e[j])
		}
		return imag(e[i]) < imag(e[j])
	})
}

func eigsClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	sortEigs(a)
	sortEigs(b)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := Diag([]float64{3, -1, 0.5})
	got := Eigenvalues(a)
	want := []complex128{3, -1, 0.5}
	if !eigsClose(got, want, 1e-10) {
		t.Fatalf("got %v", got)
	}
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := FromRows([][]float64{
		{2, 5, -3},
		{0, -4, 1},
		{0, 0, 7},
	})
	got := Eigenvalues(a)
	if !eigsClose(got, []complex128{2, -4, 7}, 1e-9) {
		t.Fatalf("got %v", got)
	}
}

func TestEigenvaluesComplexPair(t *testing.T) {
	// Rotation-scaling matrix: eigenvalues r·e^{±iθ}.
	r, theta := 0.9, 0.7
	a := FromRows([][]float64{
		{r * math.Cos(theta), -r * math.Sin(theta)},
		{r * math.Sin(theta), r * math.Cos(theta)},
	})
	got := Eigenvalues(a)
	want := []complex128{
		cmplx.Rect(r, theta),
		cmplx.Rect(r, -theta),
	}
	if !eigsClose(got, want, 1e-9) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of (z-1)(z-2)(z-3) = z³ − 6z² + 11z − 6.
	a := FromRows([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	got := Eigenvalues(a)
	if !eigsClose(got, []complex128{1, 2, 3}, 1e-8) {
		t.Fatalf("got %v", got)
	}
}

func TestEigenvaluesTraceDetInvariants(t *testing.T) {
	// Σλ = trace, Πλ = det — for random matrices.
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		eigs := Eigenvalues(a)
		if len(eigs) != n {
			return false
		}
		var sum, prod complex128 = 0, 1
		for _, e := range eigs {
			sum += e
			prod *= e
		}
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		lu, err := Factor(a)
		det := 0.0
		if err == nil {
			det = lu.Det()
		}
		scale := 1 + math.Abs(tr)
		if cmplx.Abs(sum-complex(tr, 0)) > 1e-6*scale {
			return false
		}
		dScale := 1 + math.Abs(det)
		return err != nil || cmplx.Abs(prod-complex(det, 0)) < 1e-6*dScale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralRadiusExactMatchesGelfand(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(5)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, 0.4*r.NormFloat64())
			}
		}
		exact := SpectralRadiusExact(a)
		approx := SpectralRadius(a)
		if math.Abs(exact-approx) > 0.05*(1+exact) {
			t.Fatalf("exact %g vs approx %g", exact, approx)
		}
	}
}

func TestEigenvaluesEmptyAndOne(t *testing.T) {
	if got := Eigenvalues(New(0, 0)); len(got) != 0 {
		t.Fatal("empty matrix should have no eigenvalues")
	}
	got := Eigenvalues(FromRows([][]float64{{4.5}}))
	if len(got) != 1 || got[0] != 4.5 {
		t.Fatalf("got %v", got)
	}
}

func TestEigenvaluesDefectiveJordan(t *testing.T) {
	// Jordan block: repeated eigenvalue 2 with deficiency.
	a := FromRows([][]float64{
		{2, 1, 0},
		{0, 2, 1},
		{0, 0, 2},
	})
	got := Eigenvalues(a)
	for _, e := range got {
		if cmplx.Abs(e-2) > 1e-4 {
			t.Fatalf("Jordan eigenvalues %v", got)
		}
	}
}
