package mat

import (
	"math"
	"testing"
)

func TestSolveDAREScalar(t *testing.T) {
	// Scalar DARE: p = a²p − a²p²b²/(r+b²p) + q with a=1, b=1, q=1, r=1.
	// p = p − p²/(1+p) + 1 → p² = p + 1 + p... solve analytically:
	// p = p·1/(1+p)·1... rearranged: p(1+p) = p(1+p) − p² + (1+p)
	// → p² − p − 1 = 0 → p = (1+√5)/2 (golden ratio).
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1}})
	q := FromRows([][]float64{{1}})
	r := FromRows([][]float64{{1}})
	p, err := SolveDARE(a, b, q, r, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Sqrt(5)) / 2
	if !almostEq(p.At(0, 0), want, 1e-8) {
		t.Fatalf("p=%g want %g", p.At(0, 0), want)
	}
}

func TestSolveDAREResidual(t *testing.T) {
	a := FromRows([][]float64{{0.9, 0.2}, {0, 0.8}})
	b := FromRows([][]float64{{0}, {1}})
	q := Identity(2)
	r := FromRows([][]float64{{0.5}})
	p, err := SolveDARE(a, b, q, r, 1e-12, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Check the Riccati residual directly.
	bt := b.T()
	g := r.Add(bt.Mul(p).Mul(b))
	gInv, err := Inverse(g)
	if err != nil {
		t.Fatal(err)
	}
	rhs := a.T().Mul(p).Mul(a).Sub(a.T().Mul(p).Mul(b).Mul(gInv).Mul(bt).Mul(p).Mul(a)).Add(q)
	if !p.Equal(rhs, 1e-8) {
		t.Fatalf("DARE residual too large:\nP=\n%vRHS=\n%v", p, rhs)
	}
	// P must be symmetric positive definite: check diagonal positivity + symmetry.
	if p.At(0, 1) != p.At(1, 0) {
		t.Fatal("P not symmetric")
	}
	if p.At(0, 0) <= 0 || p.At(1, 1) <= 0 {
		t.Fatal("P not positive on diagonal")
	}
}

func TestLQRGainStabilizes(t *testing.T) {
	// Unstable plant; LQR must stabilize the closed loop A − B K.
	a := FromRows([][]float64{{1.2, 0.1}, {0, 1.05}})
	b := FromRows([][]float64{{0.3}, {1}})
	q := Identity(2)
	r := FromRows([][]float64{{1}})
	k, err := LQRGain(a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	acl := a.Sub(b.Mul(k))
	rho := SpectralRadius(acl)
	if rho >= 1 {
		t.Fatalf("closed loop unstable: rho=%g\nK=%v", rho, k)
	}
	// Open loop is unstable; sanity check the metric itself.
	if SpectralRadius(a) <= 1 {
		t.Fatalf("open loop should be unstable, rho=%g", SpectralRadius(a))
	}
}

func TestSolveDiscreteLyapunov(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0.1}, {0, 0.3}})
	q := Identity(2)
	p, err := SolveDiscreteLyapunov(a, q, 1e-13, 500)
	if err != nil {
		t.Fatal(err)
	}
	rhs := a.Mul(p).Mul(a.T()).Add(q)
	if !p.Equal(rhs, 1e-9) {
		t.Fatalf("Lyapunov residual:\nP=\n%vRHS=\n%v", p, rhs)
	}
}

func TestSpectralRadiusDiagonal(t *testing.T) {
	a := Diag([]float64{0.2, -0.7, 0.5})
	rho := SpectralRadius(a)
	if math.Abs(rho-0.7) > 0.05 {
		t.Fatalf("rho=%g want ~0.7", rho)
	}
}

func TestLQRGainScalarKnown(t *testing.T) {
	// a=0.5, b=1, q=1, r=1: p = a²p − a²p²/(1+p) + 1; K = p·a/(1+p).
	a := FromRows([][]float64{{0.5}})
	b := FromRows([][]float64{{1}})
	q := FromRows([][]float64{{1}})
	r := FromRows([][]float64{{1}})
	p, err := SolveDARE(a, b, q, r, 1e-13, 10000)
	if err != nil {
		t.Fatal(err)
	}
	pv := p.At(0, 0)
	// Verify scalar fixed point.
	want := 0.25*pv - 0.25*pv*pv/(1+pv) + 1
	if !almostEq(pv, want, 1e-9) {
		t.Fatalf("scalar DARE fixed point violated: %g vs %g", pv, want)
	}
	k, err := LQRGain(a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(k.At(0, 0), 0.5*pv/(1+pv), 1e-9) {
		t.Fatalf("K=%g", k.At(0, 0))
	}
}
