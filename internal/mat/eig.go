package mat

import (
	"math"
	"math/cmplx"
)

// Eigenvalues computes all eigenvalues of a real square matrix via
// Hessenberg reduction followed by the Francis implicit double-shift QR
// iteration (the standard real Schur approach: complex conjugate pairs are
// handled without complex arithmetic, and 2×2 trailing blocks are resolved
// analytically). Controller synthesis uses it to report true closed-loop
// poles; SpectralRadius uses it for exact stability checks.
func Eigenvalues(a *Matrix) []complex128 {
	n := a.Rows()
	if a.Cols() != n {
		panic("mat: Eigenvalues of non-square matrix")
	}
	if n == 0 {
		return nil
	}
	h := hessenberg(a)
	return francis(h)
}

// hessenberg reduces a to upper Hessenberg form with Householder
// reflections (similarity transform, eigenvalues preserved).
func hessenberg(a *Matrix) *Matrix {
	n := a.Rows()
	h := a.Clone()
	for k := 0; k < n-2; k++ {
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, h.At(i, k))
		}
		if norm == 0 { //nolint:maya/floateq exact-zero column needs no elimination
			continue
		}
		alpha := -norm
		if h.At(k+1, k) < 0 {
			alpha = norm
		}
		v := make([]float64, n)
		for i := k + 1; i < n; i++ {
			v[i] = h.At(i, k)
		}
		v[k+1] -= alpha
		vn := 0.0
		for _, x := range v {
			vn = math.Hypot(vn, x)
		}
		if vn == 0 { //nolint:maya/floateq exact-zero reflector vector; nothing to apply
			continue
		}
		for i := range v {
			v[i] /= vn
		}
		// H ← (I − 2vvᵀ) H (I − 2vvᵀ).
		for j := 0; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * h.At(i, j)
			}
			s *= 2
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-s*v[i])
			}
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s *= 2
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-s*v[j])
			}
		}
	}
	return h
}

// francis runs the implicit double-shift QR iteration on a Hessenberg
// matrix, deflating eigenvalues from the bottom.
func francis(h *Matrix) []complex128 {
	n := h.Rows()
	eigs := make([]complex128, 0, n)
	m := n - 1 // active block is rows/cols [l..m]
	iter := 0
	for m >= 0 {
		// Find the start l of the active unreduced block.
		l := m
		for l > 0 {
			s := math.Abs(h.At(l-1, l-1)) + math.Abs(h.At(l, l))
			if s == 0 { //nolint:maya/floateq exact-zero scale guard before division
				s = 1
			}
			if math.Abs(h.At(l, l-1)) <= 1e-13*s {
				h.Set(l, l-1, 0)
				break
			}
			l--
		}
		switch {
		case l == m:
			eigs = append(eigs, complex(h.At(m, m), 0))
			m--
			iter = 0
		case l == m-1:
			eigs = append(eigs, twoByTwo(h, m-1)...)
			m -= 2
			iter = 0
		default:
			iter++
			if iter > 40*(m-l+1) {
				// Stalled (should not happen with exceptional shifts);
				// deflate the trailing 2×2 analytically as a last resort
				// and keep going.
				eigs = append(eigs, twoByTwo(h, m-1)...)
				m -= 2
				iter = 0
				continue
			}
			exceptional := iter%12 == 0
			doubleShiftSweep(h, l, m, exceptional)
		}
	}
	return eigs
}

// twoByTwo returns the eigenvalues of the 2×2 block at (k, k).
func twoByTwo(h *Matrix, k int) []complex128 {
	a := h.At(k, k)
	b := h.At(k, k+1)
	c := h.At(k+1, k)
	d := h.At(k+1, k+1)
	tr := a + d
	det := a*d - b*c
	disc := cmplx.Sqrt(complex(tr*tr/4-det, 0))
	return []complex128{complex(tr/2, 0) + disc, complex(tr/2, 0) - disc}
}

// doubleShiftSweep performs one Francis double-shift bulge chase on the
// active block [l..m]. When exceptional is set, ad-hoc shifts break rare
// convergence stalls (Wilkinson's trick).
func doubleShiftSweep(h *Matrix, l, m int, exceptional bool) {
	var s, t float64
	if exceptional {
		w := math.Abs(h.At(m, m-1)) + math.Abs(h.At(m-1, m-2))
		s = 1.5 * w
		t = w * w
	} else {
		s = h.At(m-1, m-1) + h.At(m, m)
		t = h.At(m-1, m-1)*h.At(m, m) - h.At(m-1, m)*h.At(m, m-1)
	}
	// First column of (H − σ₁I)(H − σ₂I).
	x := h.At(l, l)*h.At(l, l) + h.At(l, l+1)*h.At(l+1, l) - s*h.At(l, l) + t
	y := h.At(l+1, l) * (h.At(l, l) + h.At(l+1, l+1) - s)
	z := 0.0
	if l+2 <= m {
		z = h.At(l+2, l+1) * h.At(l+1, l)
	}
	for k := l; k <= m-2; k++ {
		applyBulge(h, k, l, m, x, y, z)
		x = h.At(k+1, k)
		y = h.At(k+2, k)
		if k+3 <= m {
			z = h.At(k+3, k)
		} else {
			z = 0
		}
	}
	// Final 2-row reflector (z absent).
	applyBulge2(h, m-1, l, m, x, y)
}

// applyBulge applies a 3-element Householder reflector zeroing (y, z)
// against x, acting on rows/cols k..k+2 of the active block.
func applyBulge(h *Matrix, k, l, m int, x, y, z float64) {
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm == 0 { //nolint:maya/floateq exact-zero reflector norm; nothing to eliminate
		return
	}
	alpha := -norm
	if x < 0 {
		alpha = norm
	}
	v0, v1, v2 := x-alpha, y, z
	vn := math.Sqrt(v0*v0 + v1*v1 + v2*v2)
	if vn == 0 { //nolint:maya/floateq exact-zero reflector norm; nothing to eliminate
		return
	}
	v0, v1, v2 = v0/vn, v1/vn, v2/vn
	colLo := k - 1
	if colLo < l {
		colLo = l
	}
	// Left: rows k..k+2, columns colLo..m.
	for j := colLo; j <= m; j++ {
		s := v0*h.At(k, j) + v1*h.At(k+1, j) + v2*h.At(k+2, j)
		s *= 2
		h.Set(k, j, h.At(k, j)-s*v0)
		h.Set(k+1, j, h.At(k+1, j)-s*v1)
		h.Set(k+2, j, h.At(k+2, j)-s*v2)
	}
	// Right: columns k..k+2, rows l..min(k+3, m).
	rowHi := k + 3
	if rowHi > m {
		rowHi = m
	}
	for i := l; i <= rowHi; i++ {
		s := v0*h.At(i, k) + v1*h.At(i, k+1) + v2*h.At(i, k+2)
		s *= 2
		h.Set(i, k, h.At(i, k)-s*v0)
		h.Set(i, k+1, h.At(i, k+1)-s*v1)
		h.Set(i, k+2, h.At(i, k+2)-s*v2)
	}
}

// applyBulge2 is the trailing 2-element reflector of a sweep.
func applyBulge2(h *Matrix, k, l, m int, x, y float64) {
	norm := math.Hypot(x, y)
	if norm == 0 { //nolint:maya/floateq exact-zero rotation norm; nothing to eliminate
		return
	}
	alpha := -norm
	if x < 0 {
		alpha = norm
	}
	v0, v1 := x-alpha, y
	vn := math.Hypot(v0, v1)
	if vn == 0 { //nolint:maya/floateq exact-zero rotation norm; nothing to eliminate
		return
	}
	v0, v1 = v0/vn, v1/vn
	colLo := k - 1
	if colLo < l {
		colLo = l
	}
	for j := colLo; j <= m; j++ {
		s := 2 * (v0*h.At(k, j) + v1*h.At(k+1, j))
		h.Set(k, j, h.At(k, j)-s*v0)
		h.Set(k+1, j, h.At(k+1, j)-s*v1)
	}
	for i := l; i <= m; i++ {
		s := 2 * (v0*h.At(i, k) + v1*h.At(i, k+1))
		h.Set(i, k, h.At(i, k)-s*v0)
		h.Set(i, k+1, h.At(i, k+1)-s*v1)
	}
}

// SpectralRadiusExact returns max |λ| using the QR eigenvalue solver.
func SpectralRadiusExact(a *Matrix) float64 {
	rho := 0.0
	for _, e := range Eigenvalues(a) {
		if m := cmplx.Abs(e); m > rho {
			rho = m
		}
	}
	return rho
}
