package mat_test

import (
	"fmt"
	"math/cmplx"

	"github.com/maya-defense/maya/internal/mat"
)

// ExampleLQRGain designs a discrete LQR regulator for a scalar plant —
// the optimization kernel behind control.Synthesize.
func ExampleLQRGain() {
	a := mat.FromRows([][]float64{{0.9}})
	b := mat.FromRows([][]float64{{1}})
	q := mat.FromRows([][]float64{{1}})
	r := mat.FromRows([][]float64{{1}})
	k, err := mat.LQRGain(a, b, q, r)
	if err != nil {
		fmt.Println("synthesis failed:", err)
		return
	}
	acl := a.Sub(b.Mul(k))
	fmt.Printf("closed-loop pole %.3f (stable: %v)\n",
		acl.At(0, 0), mat.SpectralRadius(acl) < 1)
	// Output: closed-loop pole 0.362 (stable: true)
}

// ExampleEigenvalues finds a complex conjugate pair with the QR iteration.
func ExampleEigenvalues() {
	// 90° rotation scaled by 0.5: eigenvalues ±0.5i.
	a := mat.FromRows([][]float64{
		{0, -0.5},
		{0.5, 0},
	})
	eigs := mat.Eigenvalues(a)
	fmt.Printf("|λ₁| = %.1f, |λ₂| = %.1f\n", cmplx.Abs(eigs[0]), cmplx.Abs(eigs[1]))
	// Output: |λ₁| = 0.5, |λ₂| = 0.5
}
