package mat

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
)

// Property-based coverage of the solvers: instead of a handful of
// hand-picked systems, each test draws many random well-conditioned
// problems (deterministic seeds — these are regression tests, not flaky
// fuzzers) and checks the algebraic identity the solver promises.

// randMatrix fills an r×c matrix with Uniform(-1,1) entries.
func randMatrix(s *rng.Stream, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, s.Uniform(-1, 1))
		}
	}
	return m
}

// randDominant draws a strictly diagonally dominant n×n matrix — always
// invertible and well-conditioned enough for tight residual checks.
func randDominant(s *rng.Stream, n int) *Matrix {
	m := randMatrix(s, n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += math.Abs(m.At(i, j))
		}
		sign := 1.0
		if s.Bool(0.5) {
			sign = -1
		}
		m.Set(i, i, sign*(sum+1))
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestPropertyLUSolve: for random dominant A and known x, solving A x = b
// recovers x, both through the one-shot helpers and a reused factorization.
func TestPropertyLUSolve(t *testing.T) {
	s := rng.NewNamed(1, "lu-solve")
	for trial := 0; trial < 200; trial++ {
		n := s.IntRange(1, 9)
		a := randDominant(s, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = s.Uniform(-10, 10)
		}
		b := a.MulVec(x)

		got, err := SolveVec(a, b)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if d := maxAbsDiff(got, x); d > 1e-9 {
			t.Fatalf("trial %d (n=%d): SolveVec off by %g", trial, n, d)
		}

		f, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: factor: %v", trial, err)
		}
		if d := maxAbsDiff(f.SolveVec(b), x); d > 1e-9 {
			t.Fatalf("trial %d: factored solve diverges from one-shot", trial)
		}
	}
}

// TestPropertyLUInverse: A · A⁻¹ = I for random dominant A.
func TestPropertyLUInverse(t *testing.T) {
	s := rng.NewNamed(2, "lu-inverse")
	for trial := 0; trial < 100; trial++ {
		n := s.IntRange(1, 8)
		a := randDominant(s, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-9) {
			t.Fatalf("trial %d (n=%d): A·A⁻¹ far from identity", trial, n)
		}
	}
}

// TestPropertyQRMatchesLU: on square well-conditioned systems the QR and LU
// paths must agree; QR additionally handles the tall case below.
func TestPropertyQRMatchesLU(t *testing.T) {
	s := rng.NewNamed(3, "qr-lu")
	for trial := 0; trial < 100; trial++ {
		n := s.IntRange(1, 8)
		a := randDominant(s, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = s.Uniform(-5, 5)
		}
		lu, err := SolveVec(a, b)
		if err != nil {
			t.Fatalf("trial %d: lu: %v", trial, err)
		}
		qr, err := FactorQR(a).SolveVec(b)
		if err != nil {
			t.Fatalf("trial %d: qr: %v", trial, err)
		}
		if d := maxAbsDiff(lu, qr); d > 1e-8 {
			t.Fatalf("trial %d (n=%d): QR and LU disagree by %g", trial, n, d)
		}
	}
}

// TestPropertyLeastSquaresNormalEquations: the least-squares solution of a
// random tall system satisfies the (ridge-regularized) normal equations
// (AᵀA + λI) x = Aᵀ b — equivalently, the residual is orthogonal to the
// column space when λ = 0.
func TestPropertyLeastSquaresNormalEquations(t *testing.T) {
	s := rng.NewNamed(4, "lsq")
	for trial := 0; trial < 100; trial++ {
		n := s.IntRange(1, 6)
		m := n + s.IntRange(1, 10)
		a := randMatrix(s, m, n)
		// Lift the smallest singular value away from zero so the residual
		// tolerance stays tight: add a scaled identity into the top block.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+2)
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = s.Uniform(-5, 5)
		}
		ridge := 0.0
		if trial%2 == 1 {
			ridge = s.Uniform(0.01, 1)
		}
		x, err := LeastSquares(a, b, ridge)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		at := a.T()
		lhs := at.Mul(a).MulVec(x)
		for i := 0; i < n; i++ {
			lhs[i] += ridge * x[i]
		}
		rhs := at.MulVec(b)
		if d := maxAbsDiff(lhs, rhs); d > 1e-8 {
			t.Fatalf("trial %d (m=%d n=%d ridge=%g): normal equations violated by %g",
				trial, m, n, ridge, d)
		}
	}
}

// dareResidual returns ‖AᵀXA − X − AᵀXB(R+BᵀXB)⁻¹BᵀXA + Q‖∞.
func dareResidual(t *testing.T, a, b, q, r, x *Matrix) float64 {
	t.Helper()
	at, bt := a.T(), b.T()
	g := r.Add(bt.Mul(x).Mul(b))
	gInv, err := Inverse(g)
	if err != nil {
		t.Fatalf("R + BᵀXB singular: %v", err)
	}
	next := at.Mul(x).Mul(a).
		Sub(at.Mul(x).Mul(b).Mul(gInv).Mul(bt).Mul(x).Mul(a)).
		Add(q)
	return next.Sub(x).MaxAbs()
}

// TestPropertyDAREFixedPoint: SolveDARE's result is a true fixed point of
// the Riccati map for random stable plants, and is symmetric positive
// semidefinite (X ⪰ Q ≻ 0 on the diagonal).
func TestPropertyDAREFixedPoint(t *testing.T) {
	s := rng.NewNamed(5, "dare")
	for trial := 0; trial < 40; trial++ {
		n := s.IntRange(1, 5)
		nu := s.IntRange(1, 3)
		a := randMatrix(s, n, n)
		// Scale A to spectral radius ~0.9: stable, but with enough dynamics
		// that the fixed point is far from Q.
		if rho := SpectralRadius(a); rho > 1e-6 {
			a = a.Scale(0.9 / rho)
		}
		b := randMatrix(s, n, nu)
		q := Identity(n)
		r := Identity(nu).Scale(s.Uniform(0.1, 2))

		x, err := SolveDARE(a, b, q, r, 1e-12, 20000)
		if err != nil {
			t.Fatalf("trial %d (n=%d nu=%d): %v", trial, n, nu, err)
		}
		if res := dareResidual(t, a, b, q, r, x); res > 1e-7 {
			t.Fatalf("trial %d (n=%d nu=%d): Riccati residual %g", trial, n, nu, res)
		}
		for i := 0; i < n; i++ {
			if x.At(i, i) < q.At(i, i)-1e-9 {
				t.Fatalf("trial %d: X diagonal %g below Q's %g", trial, x.At(i, i), q.At(i, i))
			}
			for j := 0; j < n; j++ {
				if math.Abs(x.At(i, j)-x.At(j, i)) > 1e-8 {
					t.Fatalf("trial %d: X not symmetric at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}
