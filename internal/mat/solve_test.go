package mat

import (
	"errors"
	"github.com/maya-defense/maya/internal/rng"
	"math"
	"testing"
	"testing/quick"
)

func randSquare(r *rng.Stream, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
		m.Set(i, i, m.At(i, i)+float64(n)) // diagonal dominance: well conditioned
	}
	return m
}

func TestSolveVecKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveVec(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x=%v", x)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(8)
		a := randSquare(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if !almostEq(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveVec(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(7)
	a := randSquare(r, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(5), 1e-9) {
		t.Fatalf("A*A^-1 != I:\n%v", a.Mul(inv))
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 6, 1e-12) {
		t.Fatalf("det=%g want 6", f.Det())
	}
	// Swapping rows flips the sign.
	b := FromRows([][]float64{{0, 3}, {2, 0}})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fb.Det(), -6, 1e-12) {
		t.Fatalf("det=%g want -6", fb.Det())
	}
}

func TestSolveMatrixRHS(t *testing.T) {
	r := rng.New(3)
	a := randSquare(r, 4)
	x := randSquare(r, 4)
	b := a.Mul(x)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x, 1e-8) {
		t.Fatalf("Solve matrix RHS mismatch")
	}
}

func TestQRLeastSquaresExactSystem(t *testing.T) {
	// Overdetermined but consistent: solution is exact.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := []float64{2, -1}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x=%v want %v", x, want)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space of A.
	r := rng.New(11)
	m, n := 40, 5
	a := New(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		b[i] = r.NormFloat64()
	}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(x)
	res := make([]float64, m)
	for i := range res {
		res[i] = b[i] - ax[i]
	}
	proj := a.T().MulVec(res)
	for j := range proj {
		if math.Abs(proj[j]) > 1e-8 {
			t.Fatalf("Aᵀr[%d]=%g not ~0", j, proj[j])
		}
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	r := rng.New(21)
	m, n := 30, 4
	a := New(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		b[i] = r.NormFloat64()
	}
	x0, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := LeastSquares(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := 0.0, 0.0
	for i := range x0 {
		n0 += x0[i] * x0[i]
		n1 += x1[i] * x1[i]
	}
	if n1 >= n0 {
		t.Fatalf("ridge did not shrink solution: %g >= %g", n1, n0)
	}
}

func TestQRMatchesNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		m := 10 + r.Intn(20)
		n := 2 + r.Intn(4)
		a := New(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			b[i] = r.NormFloat64()
		}
		xq, err := LeastSquares(a, b, 0)
		if err != nil {
			return false
		}
		xn, err := LeastSquares(a, b, 1e-12)
		if err != nil {
			return false
		}
		for i := range xq {
			if !almostEq(xq[i], xn[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
