// Package mat provides the dense linear-algebra substrate used by system
// identification (least-squares ARX fitting) and controller synthesis
// (Lyapunov and Riccati equations). The paper relied on MATLAB's robust
// control toolbox for these steps; this package implements the numerical
// kernels needed to perform the same synthesis offline in pure Go.
//
// Matrices are dense, row-major, and always of type float64. Operations
// that can fail (singular solves, non-converging iterations) return errors
// rather than panicking; dimension mismatches panic because they indicate
// programmer error, mirroring the stdlib convention for slice indexing.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero matrix with the given dimensions.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with v on the diagonal.
func Diag(v []float64) *Matrix {
	m := New(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// check panics on an out-of-range index. The formatted panic only runs on
// the failure path, so hot callers are not charged for it.
//
//maya:coldpath
func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 { //nolint:maya/floateq sparsity skip: exact zeros contribute nothing
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes m*v into dst, which must have length m.Rows().
// It performs no allocation; this is the hot path of the runtime controller.
func (m *Matrix) MulVecTo(dst, v []float64) {
	if m.cols != len(v) || m.rows != len(dst) {
		m.badMulVecTo(len(dst), len(v))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// badMulVecTo panics with the dimension-mismatch detail. The formatting
// only runs on the failure path, so hot callers are not charged for it.
//
//maya:coldpath
func (m *Matrix) badMulVecTo(dstLen, vLen int) {
	panic(fmt.Sprintf("mat: MulVecTo dimension mismatch dst[%d] = %dx%d * v[%d]", dstLen, m.rows, m.cols, vLen))
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Slice returns the submatrix with rows [r0,r1) and columns [c0,c1) as a copy.
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: Slice [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SetSlice copies src into m starting at (r0, c0).
func (m *Matrix) SetSlice(r0, c0 int, src *Matrix) {
	if r0+src.rows > m.rows || c0+src.cols > m.cols || r0 < 0 || c0 < 0 {
		panic(fmt.Sprintf("mat: SetSlice %dx%d at (%d,%d) exceeds %dx%d", src.rows, src.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+src.cols], src.data[i*src.cols:(i+1)*src.cols])
	}
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether m and b have the same shape and all elements within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%10.5g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// ErrSingular is returned when a solve encounters a (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")
