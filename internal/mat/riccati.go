package mat

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when a fixed-point iteration fails to converge.
var ErrNoConverge = errors.New("mat: iteration did not converge")

// SolveDARE solves the discrete-time algebraic Riccati equation
//
//	P = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q
//
// by the structured doubling-free fixed-point iteration (value iteration on
// the Riccati recursion), which is robust for the small, stable-izable
// systems produced by system identification in this repository.
// Q must be symmetric positive semidefinite and R symmetric positive
// definite. The iteration stops when successive iterates differ by less
// than tol in the max norm, or fails after maxIter sweeps.
func SolveDARE(a, b, q, r *Matrix, tol float64, maxIter int) (*Matrix, error) {
	n := a.Rows()
	if a.Cols() != n || q.Rows() != n || q.Cols() != n || b.Rows() != n || r.Rows() != b.Cols() || r.Cols() != b.Cols() {
		panic("mat: SolveDARE dimension mismatch")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	p := q.Clone()
	at := a.T()
	bt := b.T()
	for iter := 0; iter < maxIter; iter++ {
		// G = R + BᵀPB
		g := r.Add(bt.Mul(p).Mul(b))
		gInv, err := Inverse(g)
		if err != nil {
			return nil, err
		}
		// P' = AᵀPA − AᵀPB G⁻¹ BᵀPA + Q
		pa := p.Mul(a)
		atpa := at.Mul(pa)
		atpb := at.Mul(p).Mul(b)
		btpa := bt.Mul(pa)
		next := atpa.Sub(atpb.Mul(gInv).Mul(btpa)).Add(q)
		// Symmetrize to suppress round-off drift.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				avg := 0.5 * (next.At(i, j) + next.At(j, i))
				next.Set(i, j, avg)
				next.Set(j, i, avg)
			}
		}
		diff := next.Sub(p).MaxAbs()
		scale := 1 + p.MaxAbs()
		p = next
		if diff/scale < tol {
			return p, nil
		}
	}
	return nil, ErrNoConverge
}

// LQRGain returns the infinite-horizon discrete LQR state-feedback gain
// K = (R + BᵀPB)⁻¹ BᵀPA where P solves the associated DARE, so that the
// optimal control is u = −K x.
func LQRGain(a, b, q, r *Matrix) (*Matrix, error) {
	p, err := SolveDARE(a, b, q, r, 1e-9, 100000)
	if err != nil {
		return nil, err
	}
	bt := b.T()
	g := r.Add(bt.Mul(p).Mul(b))
	gInv, err := Inverse(g)
	if err != nil {
		return nil, err
	}
	return gInv.Mul(bt).Mul(p).Mul(a), nil
}

// SolveDiscreteLyapunov solves P = A P Aᵀ + Q by the fixed-point iteration
// with squaring (doubling): it converges quadratically when A is Schur
// stable (spectral radius < 1).
func SolveDiscreteLyapunov(a, q *Matrix, tol float64, maxIter int) (*Matrix, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	p := q.Clone()
	ak := a.Clone()
	for iter := 0; iter < maxIter; iter++ {
		term := ak.Mul(p).Mul(ak.T())
		next := p.Add(term)
		ak = ak.Mul(ak)
		diff := term.MaxAbs()
		scale := 1 + p.MaxAbs()
		p = next
		if diff/scale < tol {
			return p, nil
		}
	}
	return nil, ErrNoConverge
}

// SpectralRadius returns the largest eigenvalue magnitude of a square
// matrix. Small matrices (every system in this repository) use the exact
// QR eigenvalue solver; larger ones fall back to Gelfand's formula
// ρ(A) = lim ||A^k||^(1/k) with repeated squaring.
func SpectralRadius(a *Matrix) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	if n <= 64 {
		return SpectralRadiusExact(a)
	}
	k := 1
	ak := a.Clone()
	rho := ak.FrobeniusNorm()
	for step := 0; step < 10; step++ {
		norm := ak.FrobeniusNorm()
		if norm == 0 { //nolint:maya/floateq A^k vanishing exactly ends the Krylov iteration
			// A^k vanished numerically; the last estimate stands (or the
			// matrix is nilpotent, where 0 is correct only if k ≥ n — the
			// previous estimate upper-bounds ρ either way).
			return rho
		}
		rho = math.Pow(norm, 1/float64(k))
		if math.IsInf(norm, 0) || norm > 1e150 || norm < 1e-150 {
			break
		}
		ak = ak.Mul(ak)
		k *= 2
	}
	return rho
}
