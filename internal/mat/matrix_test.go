package mat

import (
	"github.com/maya-defense/maya/internal/rng"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("element mismatch: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.Mul(Identity(3))
	if !got.Equal(a, 0) {
		t.Fatalf("A*I != A:\n%v", got)
	}
	got = Identity(2).Mul(a)
	if !got.Equal(a, 0) {
		t.Fatalf("I*A != A:\n%v", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Fatalf("got\n%vwant\n%v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rng.New(1)
	a := New(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	v := make([]float64, 6)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	vm := New(6, 1)
	for i, x := range v {
		vm.Set(i, 0, x)
	}
	got := a.MulVec(v)
	want := a.Mul(vm)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d]=%g want %g", i, got[i], want.At(i, 0))
		}
	}
	dst := make([]float64, 4)
	a.MulVecTo(dst, v)
	for i := range dst {
		if dst[i] != got[i] {
			t.Fatalf("MulVecTo disagrees at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(uint64(seed))
		r := 1 + g.Intn(6)
		c := 1 + g.Intn(6)
		a := New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, g.NormFloat64())
			}
		}
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(uint64(seed))
		r := 1 + g.Intn(5)
		c := 1 + g.Intn(5)
		a, b := New(r, c), New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				a.Set(i, j, g.NormFloat64())
				b.Set(i, j, g.NormFloat64())
			}
		}
		// (a+b)-b == a and 2a == a+a
		if !a.Add(b).Sub(b).Equal(a, 1e-12) {
			return false
		}
		return a.Scale(2).Equal(a.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSetSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Fatalf("Slice got\n%v", s)
	}
	b := New(4, 4)
	b.SetSlice(1, 2, s)
	if b.At(1, 2) != 4 || b.At(2, 3) != 8 || b.At(0, 0) != 0 {
		t.Fatalf("SetSlice wrong:\n%v", b)
	}
}

func TestRowColSetRow(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if r := a.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1)=%v", r)
	}
	if c := a.Col(0); c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0)=%v", c)
	}
	a.SetRow(0, []float64{9, 10})
	if a.At(0, 1) != 10 {
		t.Fatalf("SetRow failed:\n%v", a)
	}
	// Row returns a copy: mutating it must not affect the matrix.
	r := a.Row(0)
	r[0] = -1
	if a.At(0, 0) != 9 {
		t.Fatal("Row did not return a copy")
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong:\n%v", d)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{3, -4}})
	if a.FrobeniusNorm() != 5 {
		t.Fatalf("frob=%g", a.FrobeniusNorm())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("maxabs=%g", a.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(4)
		mk := func() *Matrix {
			m := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, r.NormFloat64())
				}
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
