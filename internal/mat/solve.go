package mat

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a. It returns ErrSingular if a
// pivot underflows working precision.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Factor of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 { //nolint:maya/floateq sparsity skip: exact-zero multiplier eliminates nothing
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveVec rhs length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.data[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.data[i*n+j] * x[j]
		}
		x[i] = s / f.lu.data[i*n+i]
	}
	return x
}

// Solve solves A X = B for a matrix right-hand side.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: Solve rhs rows %d != %d", b.rows, n))
	}
	out := New(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.SolveVec(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves A X = B, factoring A internally.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveVec solves A x = b, factoring A internally.
func SolveVec(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// Inverse returns A^-1.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// The Householder vectors are stored explicitly so that Qᵀ can be applied
// to right-hand sides during least-squares solves.
type QR struct {
	r *Matrix     // n×n upper-triangular factor.
	v [][]float64 // v[k] is the Householder vector for step k (length m-k).
}

// FactorQR computes the QR factorization of a (requires rows >= cols).
func FactorQR(a *Matrix) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("mat: FactorQR needs rows >= cols, got %dx%d", m, n))
	}
	w := a.Clone()
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector that zeroes column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, w.At(i, k))
		}
		v := make([]float64, m-k)
		if norm != 0 { //nolint:maya/floateq exact-zero column norm; reflector is identity
			alpha := -norm
			if w.At(k, k) < 0 {
				alpha = norm
			}
			for i := k; i < m; i++ {
				v[i-k] = w.At(i, k)
			}
			v[0] -= alpha
			vn := 0.0
			for _, x := range v {
				vn = math.Hypot(vn, x)
			}
			if vn > 0 {
				for i := range v {
					v[i] /= vn
				}
				// Apply H = I - 2 v vᵀ to the trailing submatrix.
				for j := k; j < n; j++ {
					s := 0.0
					for i := k; i < m; i++ {
						s += v[i-k] * w.At(i, j)
					}
					s *= 2
					for i := k; i < m; i++ {
						w.Set(i, j, w.At(i, j)-s*v[i-k])
					}
				}
			}
		}
		vs[k] = v
	}
	r := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	return &QR{r: r, v: vs}
}

// SolveVec returns the least-squares solution of min ||A x - b||₂.
func (q *QR) SolveVec(b []float64) ([]float64, error) {
	n := q.r.rows
	m := len(q.v[0])
	if len(b) != m {
		panic(fmt.Sprintf("mat: QR SolveVec rhs length %d != %d", len(b), m))
	}
	qtb := make([]float64, m)
	copy(qtb, b)
	for k := 0; k < n; k++ {
		v := q.v[k]
		s := 0.0
		for i := range v {
			s += v[i] * qtb[k+i]
		}
		s *= 2
		for i := range v {
			qtb[k+i] -= s * v[i]
		}
	}
	// Back-substitute R x = (Qᵀ b)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= q.r.At(i, j) * x[j]
		}
		d := q.r.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ||A x - b||₂. With ridge == 0 it uses Householder
// QR. With ridge > 0 it solves the Tikhonov-damped normal equations
// (AᵀA + λI) x = Aᵀ b, which keeps the solve stable when excitation data is
// nearly collinear (common in sysid logs, where an input may sit at one
// level for long stretches).
func LeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.rows != len(b) {
		panic(fmt.Sprintf("mat: LeastSquares rows %d != rhs %d", a.rows, len(b)))
	}
	if ridge == 0 { //nolint:maya/floateq ridge==0 selects the exact (unregularized) path
		return FactorQR(a).SolveVec(b)
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.rows; i++ {
		ata.data[i*ata.cols+i] += ridge
	}
	atb := at.MulVec(b)
	return SolveVec(ata, atb)
}
