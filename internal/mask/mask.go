// Package mask implements Maya's mask generators: the target power
// functions the controller makes the machine follow (§IV-C, Table II,
// Fig 4). An effective mask must change its mean and variance in the time
// domain and produce both spread and peaks in the frequency domain; of the
// standard signals the paper examines, only the Gaussian Sinusoid (Eq. 4)
// has all four properties, and it is the proposed mask.
//
// All generators emit targets in watts inside a configured band whose upper
// end must not exceed the machine's TDP (§V-B constraint 1), and re-draw
// their parameters from a secret random stream — the property that prevents
// attackers who know the algorithm from reproducing the mask (§IV, "Why
// Maya works").
package mask

import (
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/rng"
)

// Generator produces a target power sequence, one sample per control period.
type Generator interface {
	// Name identifies the mask family.
	Name() string
	// Next returns the next target power in watts.
	Next() float64
	// Reset restarts the sequence with a fresh parameter stream derived
	// from seed (a new seed yields an uncorrelated mask — every run of an
	// application is masked differently).
	Reset(seed uint64)
}

// Band is the allowed target power range. Max must stay at or below the
// machine's TDP; Min should be achievable at the lowest-power actuator
// settings.
type Band struct {
	Min, Max float64
}

// Width returns Max − Min.
func (b Band) Width() float64 { return b.Max - b.Min }

// Mid returns the band midpoint.
func (b Band) Mid() float64 { return (b.Min + b.Max) / 2 }

// Clamp limits v to the band.
func (b Band) Clamp(v float64) float64 {
	return math.Max(b.Min, math.Min(b.Max, v))
}

// Contains reports whether v lies inside the band (inclusive). Property
// tests use it to assert mask targets never leave the designed range —
// in particular that they respect the TDP cap the band's Max encodes.
func (b Band) Contains(v float64) bool { return v >= b.Min && v <= b.Max }

func (b Band) validate() {
	if b.Max <= b.Min {
		panic(fmt.Sprintf("mask: empty band [%g, %g]", b.Min, b.Max))
	}
}

// HoldRange is the paper's Nhold: once drawn, mask parameters persist for a
// uniformly random number of samples in [Lo, Hi] (§V-B: 6 to 120).
type HoldRange struct {
	Lo, Hi int
}

// DefaultHold returns the paper's Nhold range of 6–120 samples.
func DefaultHold() HoldRange { return HoldRange{Lo: 6, Hi: 120} }

// Draw samples a hold duration from the range.
func (h HoldRange) Draw(r *rng.Stream) int {
	if h.Hi < h.Lo {
		panic("mask: hold range inverted")
	}
	return r.IntRange(h.Lo, h.Hi)
}

// Constant holds the target at a fixed level (Table II row 1): no change in
// either domain. Used by the Maya Constant design of Table V.
type Constant struct {
	Level float64
}

// NewConstant returns a constant mask at the given level.
func NewConstant(level float64) *Constant { return &Constant{Level: level} }

// Name implements Generator.
func (c *Constant) Name() string { return "constant" }

// Next implements Generator.
func (c *Constant) Next() float64 { return c.Level }

// Reset implements Generator.
func (c *Constant) Reset(uint64) {}

// UniformRandom draws a level uniformly from the band and holds it for a
// random duration (Table II row 2): changes the mean but not the variance;
// spectral spread without peaks.
type UniformRandom struct {
	band Band
	hold HoldRange
	r    *rng.Stream
	left int
	cur  float64
}

// NewUniformRandom returns a uniformly random step mask.
func NewUniformRandom(band Band, hold HoldRange, seed uint64) *UniformRandom {
	band.validate()
	u := &UniformRandom{band: band, hold: hold}
	u.Reset(seed)
	return u
}

// Name implements Generator.
func (u *UniformRandom) Name() string { return "uniform" }

// Reset implements Generator.
func (u *UniformRandom) Reset(seed uint64) {
	u.r = rng.NewNamed(seed, "mask/uniform")
	u.left = 0
}

// Next implements Generator.
func (u *UniformRandom) Next() float64 {
	if u.left <= 0 {
		u.cur = u.r.Uniform(u.band.Min, u.band.Max)
		u.left = u.hold.Draw(u.r)
	}
	u.left--
	return u.cur
}

// Gaussian samples targets from a normal distribution whose mean and
// variance are re-drawn each hold period (Table II row 3): mean and
// variance change; spectrum spread, no peaks.
type Gaussian struct {
	band  Band
	hold  HoldRange
	r     *rng.Stream
	left  int
	mu    float64
	sigma float64
}

// NewGaussian returns a changing-parameter Gaussian mask.
func NewGaussian(band Band, hold HoldRange, seed uint64) *Gaussian {
	band.validate()
	g := &Gaussian{band: band, hold: hold}
	g.Reset(seed)
	return g
}

// Name implements Generator.
func (g *Gaussian) Name() string { return "gaussian" }

// Reset implements Generator.
func (g *Gaussian) Reset(seed uint64) {
	g.r = rng.NewNamed(seed, "mask/gaussian")
	g.left = 0
}

// Next implements Generator.
func (g *Gaussian) Next() float64 {
	if g.left <= 0 {
		w := g.band.Width()
		g.mu = g.r.Uniform(g.band.Min+0.15*w, g.band.Max-0.15*w)
		g.sigma = g.r.Uniform(0.02*w, 0.15*w)
		g.left = g.hold.Draw(g.r)
	}
	g.left--
	return g.band.Clamp(g.r.Normal(g.mu, g.sigma))
}

// Sinusoid generates a sinusoid whose frequency, amplitude, and offset are
// re-drawn each hold period (Table II row 4): mean and variance change;
// sharp spectral peaks without spread — filterable, hence insufficient
// alone.
type Sinusoid struct {
	band     Band
	hold     HoldRange
	sampleHz float64
	// FreqLoHz and FreqHiHz bound the drawn frequency (capped at Nyquist);
	// defaults match the GaussianSinusoid so the Table II ablation compares
	// like with like.
	FreqLoHz, FreqHiHz float64
	r                  *rng.Stream
	left               int
	offset             float64
	amp                float64
	freqHz             float64
	phase              float64
	t                  float64
}

// NewSinusoid returns a changing-parameter sinusoid mask for a control loop
// sampling at sampleHz (the paper's loop: 50 Hz).
func NewSinusoid(band Band, hold HoldRange, sampleHz float64, seed uint64) *Sinusoid {
	band.validate()
	if sampleHz <= 0 {
		panic("mask: non-positive sample rate")
	}
	s := &Sinusoid{band: band, hold: hold, sampleHz: sampleHz, FreqLoHz: 0.3, FreqHiHz: 2.5}
	s.Reset(seed)
	return s
}

// Name implements Generator.
func (s *Sinusoid) Name() string { return "sinusoid" }

// Reset implements Generator.
func (s *Sinusoid) Reset(seed uint64) {
	s.r = rng.NewNamed(seed, "mask/sinusoid")
	s.left = 0
	s.t = 0
}

func (s *Sinusoid) redraw() {
	w := s.band.Width()
	s.amp = s.r.Uniform(0.10*w, 0.35*w)
	s.offset = s.r.Uniform(s.band.Min+s.amp, s.band.Max-s.amp)
	// Nyquist constraint (§V-B): the sinusoid frequency cannot exceed half
	// the control sampling rate (25 Hz for the 20 ms loop).
	fHi := s.FreqHiHz
	if nyq := s.sampleHz / 2; fHi > nyq {
		fHi = nyq
	}
	s.freqHz = s.r.Uniform(s.FreqLoHz, fHi)
	// Keep the waveform continuous across redraws where possible by
	// preserving the running phase.
	s.left = s.hold.Draw(s.r)
}

// Next implements Generator.
func (s *Sinusoid) Next() float64 {
	if s.left <= 0 {
		s.redraw()
	}
	s.left--
	s.phase += 2 * math.Pi * s.freqHz / s.sampleHz
	if s.phase > 2*math.Pi {
		s.phase -= 2 * math.Pi
	}
	s.t++
	return s.band.Clamp(s.offset + s.amp*math.Sin(s.phase))
}

// GaussianSinusoid is the proposed mask (Eq. 4): the sum of the changing
// sinusoid and changing Gaussian noise,
//
//	[Offset + Amp·sin(2π·T/Freq)] + Noise(µ, σ)
//
// with all five parameters re-drawn every Nhold samples, subject to the TDP
// cap and the Nyquist frequency limit. It changes mean and variance in time
// and produces both spread and peaks in the spectrum — the full Table II
// property set.
type GaussianSinusoid struct {
	band     Band
	hold     HoldRange
	sampleHz float64

	// FreqLoHz and FreqHiHz bound the drawn sinusoid frequency. FreqHiHz is
	// further capped at Nyquist (§V-B constraint 2). The default upper
	// bound is a small multiple of the closed loop's bandwidth: a mask the
	// controller cannot follow would leave the emitted targets — not the
	// measured power — carrying the obfuscation.
	FreqLoHz, FreqHiHz float64
	// SigmaHiFrac bounds the drawn noise σ as a fraction of the band width.
	SigmaHiFrac float64

	r      *rng.Stream
	left   int
	offset float64
	amp    float64
	freqHz float64
	mu     float64
	sigma  float64
	phase  float64
	// shift is a per-run offset bias: without it, every run's long-term
	// mean converges to the band center, so a sub-watt app-dependent
	// tracking bias would become the dominant surviving fingerprint.
	// Randomizing the per-run mean drowns that residual.
	shift float64
}

// NewGaussianSinusoid returns the proposed Maya GS mask.
func NewGaussianSinusoid(band Band, hold HoldRange, sampleHz float64, seed uint64) *GaussianSinusoid {
	band.validate()
	if sampleHz <= 0 {
		panic("mask: non-positive sample rate")
	}
	g := &GaussianSinusoid{
		band: band, hold: hold, sampleHz: sampleHz,
		FreqLoHz: 0.3, FreqHiHz: 2.5, SigmaHiFrac: 0.08,
	}
	g.Reset(seed)
	return g
}

// Name implements Generator.
func (g *GaussianSinusoid) Name() string { return "gaussian-sinusoid" }

// Reset implements Generator.
func (g *GaussianSinusoid) Reset(seed uint64) {
	g.r = rng.NewNamed(seed, "mask/gs")
	g.left = 0
	g.phase = 0
	g.shift = g.r.Uniform(-0.10, 0.10) * g.band.Width()
}

func (g *GaussianSinusoid) redraw() {
	w := g.band.Width()
	g.amp = g.r.Uniform(0.10*w, 0.30*w)
	g.mu = g.r.Uniform(-0.05*w, 0.05*w)
	g.sigma = g.r.Uniform(0.02*w, g.SigmaHiFrac*w)
	// Offset leaves room for the sinusoid swing plus noise so the TDP cap
	// (band.Max) is respected without persistent clipping.
	margin := g.amp + 2*g.sigma
	lo := g.band.Min + margin
	hi := g.band.Max - margin
	if hi <= lo {
		g.offset = g.band.Mid()
	} else {
		g.offset = signalClamp(g.r.Uniform(lo, hi)+g.shift, lo, hi)
	}
	fHi := g.FreqHiHz
	if nyq := g.sampleHz / 2; fHi > nyq {
		fHi = nyq
	}
	g.freqHz = g.r.Uniform(g.FreqLoHz, fHi)
	g.left = g.hold.Draw(g.r)
}

// Next implements Generator.
func (g *GaussianSinusoid) Next() float64 {
	if g.left <= 0 {
		g.redraw()
	}
	g.left--
	g.phase += 2 * math.Pi * g.freqHz / g.sampleHz
	if g.phase > 2*math.Pi {
		g.phase -= 2 * math.Pi
	}
	v := g.offset + g.amp*math.Sin(g.phase) + g.r.Normal(g.mu, g.sigma)
	return g.band.Clamp(v)
}

// signalClamp limits v to [lo, hi] (local helper; mask cannot import
// signal without a cycle risk, and the operation is trivial).
func signalClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generate draws n samples from a generator into a new slice.
func Generate(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// DefaultBand returns a sensible target band for a machine with the given
// TDP and idle floor: [floor + 10% headroom, 80% of TDP]. The top stays
// under TDP per §V-B; the bottom stays reachable with idle injection. The
// band is deliberately centered slightly below typical full-load power so
// that, as in the paper's Fig 14, the defended system draws less average
// power than the insecure baseline.
func DefaultBand(idleFloorW, tdpW float64) Band {
	b := Band{Min: idleFloorW + 0.10*(tdpW-idleFloorW), Max: 0.8 * tdpW}
	b.validate()
	return b
}
