package mask

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/maya-defense/maya/internal/signal"
)

const sampleHz = 50.0 // the paper's 20 ms control loop

func testBand() Band { return Band{Min: 8, Max: 25} }

func allGenerators(seed uint64) []Generator {
	b := testBand()
	h := DefaultHold()
	return []Generator{
		NewConstant(b.Mid()),
		NewUniformRandom(b, h, seed),
		NewGaussian(b, h, seed),
		NewSinusoid(b, h, sampleHz, seed),
		NewGaussianSinusoid(b, h, sampleHz, seed),
	}
}

func TestAllMasksStayInBand(t *testing.T) {
	f := func(seed uint64) bool {
		b := testBand()
		for _, g := range allGenerators(seed) {
			for i := 0; i < 2000; i++ {
				v := g.Next()
				if v < b.Min-1e-9 || v > b.Max+1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTDPRespected(t *testing.T) {
	// §V-B constraint 1: targets never exceed the TDP-derived band max.
	b := DefaultBand(5, 30)
	if b.Max > 30 {
		t.Fatalf("band max %g above TDP", b.Max)
	}
	g := NewGaussianSinusoid(b, DefaultHold(), sampleHz, 3)
	for i := 0; i < 50000; i++ {
		if v := g.Next(); v > 30 {
			t.Fatalf("target %g above TDP", v)
		}
	}
}

func TestResetReproducible(t *testing.T) {
	for _, mk := range []func(seed uint64) Generator{
		func(s uint64) Generator { return NewUniformRandom(testBand(), DefaultHold(), s) },
		func(s uint64) Generator { return NewGaussian(testBand(), DefaultHold(), s) },
		func(s uint64) Generator { return NewSinusoid(testBand(), DefaultHold(), sampleHz, s) },
		func(s uint64) Generator { return NewGaussianSinusoid(testBand(), DefaultHold(), sampleHz, s) },
	} {
		a, b := mk(42), mk(42)
		for i := 0; i < 500; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s not reproducible", a.Name())
			}
		}
		// Different seeds must produce different masks (the defender's
		// secret stream).
		c := mk(43)
		a.Reset(42)
		same := 0
		for i := 0; i < 500; i++ {
			if a.Next() == c.Next() {
				same++
			}
		}
		if same > 250 {
			t.Fatalf("%s seeds 42/43 nearly identical (%d/500 equal)", c.Name(), same)
		}
	}
}

func TestRunsUncorrelatedAcrossSeeds(t *testing.T) {
	// §VII-B: "Maya GS produces a different trace in each run that is
	// uncorrelated with other runs", which is why averaging 1000 traces
	// cancels the mask.
	g1 := NewGaussianSinusoid(testBand(), DefaultHold(), sampleHz, 1)
	g2 := NewGaussianSinusoid(testBand(), DefaultHold(), sampleHz, 2)
	x1 := Generate(g1, 3000)
	x2 := Generate(g2, 3000)
	if c := math.Abs(signal.Pearson(x1, x2)); c > 0.15 {
		t.Fatalf("masks across seeds correlate: %g", c)
	}
}

func TestAveragingManyRunsFlattens(t *testing.T) {
	var traces [][]float64
	for seed := uint64(0); seed < 200; seed++ {
		g := NewGaussianSinusoid(testBand(), DefaultHold(), sampleHz, seed)
		traces = append(traces, Generate(g, 1000))
	}
	avg := signal.AverageTraces(traces)
	single := traces[0]
	if signal.StdDev(avg) > 0.25*signal.StdDev(single) {
		t.Fatalf("averaging did not flatten: avg std %g vs single %g",
			signal.StdDev(avg), signal.StdDev(single))
	}
}

// windowStats computes per-window means and variances for time-domain
// property checks.
func windowStats(x []float64, win int) (means, vars []float64) {
	for _, w := range signal.Windows(x, win) {
		means = append(means, signal.Mean(w))
		vars = append(vars, signal.Variance(w))
	}
	return
}

func TestTableIIProperties(t *testing.T) {
	// Verify each Table II row as a relative property check.
	const n = 6000
	b := testBand()
	h := DefaultHold()

	constant := Generate(NewConstant(b.Mid()), n)
	uniform := Generate(NewUniformRandom(b, h, 7), n)
	gaussian := Generate(NewGaussian(b, h, 7), n)
	sinusoid := Generate(NewSinusoid(b, h, sampleHz, 7), n)
	gs := Generate(NewGaussianSinusoid(b, h, sampleHz, 7), n)

	// Time domain: mean changes (std of window means).
	cm, cv := windowStats(constant, 50)
	um, uv := windowStats(uniform, 50)
	gm, gv := windowStats(gaussian, 50)
	_, sv := windowStats(sinusoid, 50)
	xm, xv := windowStats(gs, 50)

	if signal.StdDev(cm) != 0 || signal.StdDev(cv) != 0 {
		t.Fatal("constant mask should not change at all")
	}
	if signal.StdDev(um) < 10*signal.StdDev(cm)+0.5 {
		t.Fatal("uniform mask should change its mean")
	}
	// Uniform holds each level: within-window variance mostly tiny compared
	// to Gaussian's.
	if signal.Quantile(uv, 0.5) > signal.Quantile(gv, 0.5) {
		t.Fatalf("uniform within-window variance (%g) should undercut gaussian (%g)",
			signal.Quantile(uv, 0.5), signal.Quantile(gv, 0.5))
	}
	if signal.StdDev(gm) < 0.5 || signal.StdDev(gv) < 0.1 {
		t.Fatal("gaussian mask should change mean and variance")
	}
	if signal.StdDev(sv) < 0.1 {
		t.Fatal("sinusoid mask should change windowed variance (amplitude draws)")
	}
	if signal.StdDev(xm) < 0.5 || signal.StdDev(xv) < 0.1 {
		t.Fatal("GS mask should change mean and variance")
	}

	// Frequency domain, evaluated per analysis window as in Fig 4:
	// average spectral flatness (spread) and peak counts over windows.
	winSpec := func(x []float64) (flat, peaks float64) {
		ws := signal.Windows(x, 250)
		for _, w := range ws {
			_, mag := signal.Spectrum(w, sampleHz)
			flat += signal.SpectralFlatness(mag)
			peaks += float64(signal.SpectralPeaks(mag))
		}
		n := float64(len(ws))
		return flat / n, peaks / n
	}
	flatG, _ := winSpec(gaussian)
	flatS, peakS := winSpec(sinusoid)
	flatX, peakX := winSpec(gs)
	_, peakU := winSpec(uniform)

	if flatG < 1.5*flatS {
		t.Fatalf("gaussian flatness (%g) should exceed sinusoid flatness (%g)", flatG, flatS)
	}
	if peakS < 1 {
		t.Fatalf("sinusoid should produce spectral peaks, got %g/window", peakS)
	}
	if peakU > peakS {
		t.Fatalf("uniform (%g) should not out-peak the sinusoid (%g)", peakU, peakS)
	}
	// The proposed mask needs both: spread well above the sinusoid's AND peaks.
	if flatX < 1.5*flatS {
		t.Fatalf("GS flatness (%g) too low vs sinusoid (%g)", flatX, flatS)
	}
	if peakX < 0.5 {
		t.Fatalf("GS should retain spectral peaks, got %g/window", peakX)
	}
}

func TestHoldDurations(t *testing.T) {
	// Parameters persist between 6 and 120 samples: level run lengths of
	// the uniform mask must fall in that range.
	g := NewUniformRandom(testBand(), DefaultHold(), 9)
	x := Generate(g, 20000)
	run := 1
	for i := 1; i < len(x); i++ {
		if x[i] == x[i-1] {
			run++
			continue
		}
		if run < 6 || run > 120 {
			t.Fatalf("hold duration %d outside [6,120]", run)
		}
		run = 1
	}
}

func TestSinusoidNyquistCap(t *testing.T) {
	// §V-B constraint 2: sinusoid frequency ≤ sampleHz/2. Verify no
	// spectral energy above Nyquist is aliased into implausible places by
	// checking the redrawn frequencies directly.
	s := NewSinusoid(testBand(), DefaultHold(), sampleHz, 11)
	for i := 0; i < 10000; i++ {
		s.Next()
		if s.freqHz > sampleHz/2 {
			t.Fatalf("sinusoid frequency %g above Nyquist", s.freqHz)
		}
	}
	g := NewGaussianSinusoid(testBand(), DefaultHold(), sampleHz, 11)
	for i := 0; i < 10000; i++ {
		g.Next()
		if g.freqHz > sampleHz/2 {
			t.Fatalf("GS frequency %g above Nyquist", g.freqHz)
		}
	}
}

func TestGenerateLength(t *testing.T) {
	if got := len(Generate(NewConstant(10), 17)); got != 17 {
		t.Fatalf("Generate length %d", got)
	}
}

func TestDefaultBandPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted band")
		}
	}()
	DefaultBand(100, 50)
}
