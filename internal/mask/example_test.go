package mask_test

import (
	"fmt"

	"github.com/maya-defense/maya/internal/mask"
)

// ExampleGaussianSinusoid shows the proposed mask (Eq. 4): targets stay in
// the band, re-draw their parameters every Nhold samples, and are
// reproducible from the seed (the defender's secret).
func ExampleGaussianSinusoid() {
	band := mask.Band{Min: 8, Max: 24}
	g := mask.NewGaussianSinusoid(band, mask.DefaultHold(), 50, 42)
	inBand := true
	for i := 0; i < 1000; i++ {
		v := g.Next()
		if v < band.Min || v > band.Max {
			inBand = false
		}
	}
	fmt.Println("all targets in band:", inBand)

	// Same seed → same mask; different seed → different mask.
	a := mask.NewGaussianSinusoid(band, mask.DefaultHold(), 50, 7)
	b := mask.NewGaussianSinusoid(band, mask.DefaultHold(), 50, 7)
	c := mask.NewGaussianSinusoid(band, mask.DefaultHold(), 50, 8)
	fmt.Println("reproducible:", a.Next() == b.Next())
	fmt.Println("secret-dependent:", a.Next() != c.Next())
	// Output:
	// all targets in band: true
	// reproducible: true
	// secret-dependent: true
}

// ExampleBand demonstrates band arithmetic.
func ExampleBand() {
	b := mask.Band{Min: 5, Max: 25}
	fmt.Println(b.Width(), b.Mid(), b.Clamp(30), b.Clamp(1))
	// Output: 20 15 25 5
}
