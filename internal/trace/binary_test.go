package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
)

// binaryDataset builds a dataset exercising every encoding path: quantized
// traces (exact multiples of a binary-exact quantum), smooth traces (raw
// encoding), NaN/Inf samples (fault-injected readings), empty traces,
// divergent row names, and an unused class.
func binaryDataset() *Dataset {
	st := rng.New(7)
	d := &Dataset{ClassNames: []string{"app-a", "app-b", "unused", "app-d"}}
	// Quantized: levels are multiples of 0.125 (exact in binary).
	for t := 0; t < 3; t++ {
		samples := make([]float64, 400)
		for i := range samples {
			samples[i] = 20 + 0.125*float64(st.Intn(80))
		}
		d.Add(0, 20, samples)
	}
	// Smooth: full-precision floats, raw encoding.
	for t := 0; t < 3; t++ {
		samples := make([]float64, 400)
		for i := range samples {
			samples[i] = 35 + 5*math.Sin(float64(i)/9) + st.Float64()
		}
		d.Add(1, 20, samples)
	}
	// Non-finite values from fault sweeps.
	d.Add(3, 50, []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), 0})
	// Empty and constant traces.
	d.Add(3, 50, nil)
	d.Add(3, 50, []float64{42.5, 42.5, 42.5})
	d.Add(3, 50, []float64{0, 0, 0, 0})
	// A row whose name diverges from the class table (CSV files allow it).
	d.Traces = append(d.Traces, Trace{Label: 0, Name: "renamed", PeriodMS: 20, Samples: []float64{1, 2, 3}})
	return d
}

// datasetsEqual compares datasets treating NaN as equal to itself (the
// round-trip contract is bit-exactness, which reflect.DeepEqual rejects for
// NaN).
func datasetsEqual(a, b *Dataset) bool {
	if !reflect.DeepEqual(a.ClassNames, b.ClassNames) || len(a.Traces) != len(b.Traces) {
		return false
	}
	for i := range a.Traces {
		ta, tb := a.Traces[i], b.Traces[i]
		if ta.Label != tb.Label || ta.Name != tb.Name ||
			math.Float64bits(ta.PeriodMS) != math.Float64bits(tb.PeriodMS) ||
			len(ta.Samples) != len(tb.Samples) {
			return false
		}
		for j := range ta.Samples {
			if math.Float64bits(ta.Samples[j]) != math.Float64bits(tb.Samples[j]) {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTripExact(t *testing.T) {
	d := binaryDataset()
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, got) {
		t.Fatal("binary round trip is not exact")
	}
	// Zero-length samples decode as non-nil empty or nil; normalize check:
	// the Add(nil) trace must stay empty.
	if n := len(got.Traces[7].Samples); n != 0 {
		t.Fatalf("empty trace decoded with %d samples", n)
	}
}

func TestBinaryDeterministicBytes(t *testing.T) {
	d := binaryDataset()
	var a, b bytes.Buffer
	if err := d.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of one dataset differ (format must be content-addressable)")
	}
}

func TestBinaryQuantizedCompresses(t *testing.T) {
	// A RAPL-quantized-shaped trace must take far less than 8 bytes/sample.
	d := &Dataset{ClassNames: []string{"a"}}
	st := rng.New(3)
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = 0.125 * float64(160+st.Intn(16))
	}
	d.Add(0, 20, samples)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > len(samples)*3 {
		t.Fatalf("quantized trace encoded to %d bytes (%.1f B/sample); delta+varint not engaged",
			buf.Len(), float64(buf.Len())/float64(len(samples)))
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, got) {
		t.Fatal("quantized round trip is not exact")
	}
}

// TestBinaryDetectsEveryCorruption flips every byte and tries every
// truncation of a small valid file: each must produce an error, never a
// silently wrong dataset.
func TestBinaryDetectsEveryCorruption(t *testing.T) {
	d := &Dataset{ClassNames: []string{"a", "b"}}
	d.Add(0, 20, []float64{1, 2, 3, 2.5})
	d.Add(1, 50, []float64{9.25, 9.25, 9.5})
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d of %d went undetected", i, len(blob))
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, err := ReadBinary(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(blob))
		}
	}
}

// TestCrossFormatRoundTrip is the property test: a dataset that survives
// CSV's 8-significant-digit formatting must convert among CSV, JSON, and
// binary with full equality in every direction.
func TestCrossFormatRoundTrip(t *testing.T) {
	st := rng.New(11)
	d := &Dataset{ClassNames: []string{"x", "y", "z"}}
	for c := 0; c < 3; c++ {
		for r := 0; r < 4; r++ {
			samples := make([]float64, 200)
			for i := range samples {
				// Multiples of 0.25 below 256: at most 6 significant
				// decimal digits, exact through CSV's %.8g.
				samples[i] = 0.25 * float64(st.Intn(1024))
			}
			d.Add(c, 20, samples)
		}
	}

	var csvBuf bytes.Buffer
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()), d.ClassNames)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, fromCSV) {
		t.Fatal("test premise broken: dataset not CSV-exact")
	}

	var binBuf bytes.Buffer
	if err := fromCSV.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(bytes.NewReader(binBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(fromCSV, fromBin) {
		t.Fatal("CSV -> binary round trip diverged")
	}

	var jsonBuf bytes.Buffer
	if err := fromBin.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(fromBin, fromJSON) {
		t.Fatal("binary -> JSON round trip diverged")
	}
	if !datasetsEqual(d, fromJSON) {
		t.Fatal("full CSV -> binary -> JSON chain diverged from the original")
	}
}

func TestReadCSVInfer(t *testing.T) {
	d := &Dataset{ClassNames: []string{"alpha", "beta", "class2", "delta"}}
	d.Add(0, 20, []float64{1, 2})
	d.Add(1, 20, []float64{3, 4})
	d.Add(3, 50, []float64{5})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVInfer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Label 2 never occurs; the inferred table fills the gap.
	if !reflect.DeepEqual(got.ClassNames, []string{"alpha", "beta", "class2", "delta"}) {
		t.Fatalf("inferred class table %v", got.ClassNames)
	}
	if !datasetsEqual(d, got) {
		t.Fatal("infer round trip diverged")
	}

	if _, err := ReadCSVInfer(bytes.NewReader([]byte("0,a,20,1\n0,b,20,2\n"))); err == nil {
		t.Fatal("conflicting names for one label were accepted")
	}
}

func TestDatasetFileShim(t *testing.T) {
	// CSV inference needs consistent row names and JSON rejects NaN, so the
	// file-shim test uses a dataset valid in all three formats.
	d := &Dataset{ClassNames: []string{"alpha", "beta"}}
	d.Add(0, 20, []float64{1, 2, 3.5})
	d.Add(1, 50, []float64{0.25, 0.5})
	d.Add(1, 50, nil)
	dir := t.TempDir()
	for _, name := range []string{"d.csv", "d.json", "d.bin", "d.mayt"} {
		path := filepath.Join(dir, name)
		if err := WriteDatasetFile(path, d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadDatasetFile(path, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Traces) != len(d.Traces) {
			t.Fatalf("%s: trace count %d -> %d", name, len(d.Traces), len(got.Traces))
		}
	}
	if _, err := FormatForPath("dataset.parquet"); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
