package trace

import (
	"bytes"
	"io"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
)

// benchDataset mirrors the Fig-6 application-detection dataset shape at the
// small experiment scale: 11 classes × 40 runs × 1200 samples (24 s at the
// attacker's 20 ms period), with readings on the RAPL sensor's quantization
// grid. This is the shape the experiment cache and the sweep pipelines
// shuttle around.
func benchDataset() *Dataset {
	const (
		classes      = 11
		runsPerClass = 40
		samples      = 1200
		quantum      = 1.0 / 1024 // exact in binary, RAPL-unit-like
	)
	st := rng.New(42)
	d := &Dataset{ClassNames: make([]string, classes)}
	for c := range d.ClassNames {
		d.ClassNames[c] = "app" + string(rune('a'+c))
	}
	for c := 0; c < classes; c++ {
		for r := 0; r < runsPerClass; r++ {
			xs := make([]float64, samples)
			level := 20000 + 400*c
			for i := range xs {
				level += st.Intn(41) - 20
				xs[i] = quantum * float64(level)
			}
			d.Add(c, 20, xs)
		}
	}
	return d
}

func benchEncode(b *testing.B, write func(*Dataset, io.Writer) error) {
	d := benchDataset()
	var buf bytes.Buffer
	if err := write(d, &buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := write(d, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, write func(*Dataset, io.Writer) error, read func([]byte) (*Dataset, error)) {
	d := benchDataset()
	var buf bytes.Buffer
	if err := write(d, &buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := read(blob)
		if err != nil {
			b.Fatal(err)
		}
		if len(got.Traces) != len(d.Traces) {
			b.Fatal("decode dropped traces")
		}
	}
}

func writeCSVTo(d *Dataset, w io.Writer) error  { return d.WriteCSV(w) }
func writeJSONTo(d *Dataset, w io.Writer) error { return d.WriteJSON(w) }
func writeBinTo(d *Dataset, w io.Writer) error  { return d.WriteBinary(w) }

func BenchmarkTraceEncodeCSV(b *testing.B)    { benchEncode(b, writeCSVTo) }
func BenchmarkTraceEncodeJSON(b *testing.B)   { benchEncode(b, writeJSONTo) }
func BenchmarkTraceEncodeBinary(b *testing.B) { benchEncode(b, writeBinTo) }

func BenchmarkTraceDecodeCSV(b *testing.B) {
	benchDecode(b, writeCSVTo, func(blob []byte) (*Dataset, error) {
		return ReadCSV(bytes.NewReader(blob), benchClassNames)
	})
}

func BenchmarkTraceDecodeJSON(b *testing.B) {
	benchDecode(b, writeJSONTo, func(blob []byte) (*Dataset, error) {
		return ReadJSON(bytes.NewReader(blob))
	})
}

func BenchmarkTraceDecodeBinary(b *testing.B) {
	benchDecode(b, writeBinTo, func(blob []byte) (*Dataset, error) {
		return ReadBinary(bytes.NewReader(blob))
	})
}

var benchClassNames = benchDataset().ClassNames
