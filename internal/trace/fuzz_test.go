package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,a,20,1.5,2.5\n")
	f.Add("1,b,50,9\n0,a,20,1,2,3\n")
	f.Add("zz\n")
	f.Add("0,a\n")
	f.Add("")
	f.Add("0,a,20,NaN\n")
	classNames := []string{"a", "b"}
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), classNames)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		again, err := ReadCSV(&buf, classNames)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.Traces) != len(ds.Traces) {
			t.Fatalf("round trip changed trace count %d -> %d", len(ds.Traces), len(again.Traces))
		}
	})
}

// FuzzReadBinary feeds the columnar reader arbitrary bytes — truncations
// and bit flips of valid files are in the seed corpus's neighbourhood — and
// checks that it never panics, and that anything it accepts re-encodes and
// re-reads to the same dataset (so a forged input can at worst be a valid
// dataset, never a parser state confusion).
func FuzzReadBinary(f *testing.F) {
	seed := func(build func(d *Dataset)) {
		d := &Dataset{ClassNames: []string{"a", "b"}}
		build(d)
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(d *Dataset) { d.Add(0, 20, []float64{1.5, 2.5, 2.5}) })
	seed(func(d *Dataset) {
		d.Add(0, 20, []float64{0.25, 0.5, 0.75, 0.5}) // quantized encoding
		d.Add(1, 50, nil)                             // empty trace
		d.Traces = append(d.Traces, Trace{Label: 0, Name: "other", PeriodMS: 20, Samples: []float64{3}})
	})
	seed(func(d *Dataset) {})
	f.Add([]byte("MAYT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		ds, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.Traces) != len(ds.Traces) || len(again.ClassNames) != len(ds.ClassNames) {
			t.Fatalf("round trip changed shape: %d/%d traces, %d/%d classes",
				len(ds.Traces), len(again.Traces), len(ds.ClassNames), len(again.ClassNames))
		}
		if !datasetsEqual(ds, again) {
			t.Fatal("round trip changed contents")
		}
	})
}

// FuzzReadJSON exercises the JSON path the same way.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"class_names":["a"],"traces":[{"Label":0,"Name":"a","PeriodMS":20,"Samples":[1,2]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
	})
}
