package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("0,a,20,1.5,2.5\n")
	f.Add("1,b,50,9\n0,a,20,1,2,3\n")
	f.Add("zz\n")
	f.Add("0,a\n")
	f.Add("")
	f.Add("0,a,20,NaN\n")
	classNames := []string{"a", "b"}
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), classNames)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		again, err := ReadCSV(&buf, classNames)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.Traces) != len(ds.Traces) {
			t.Fatalf("round trip changed trace count %d -> %d", len(ds.Traces), len(again.Traces))
		}
	})
}

// FuzzReadJSON exercises the JSON path the same way.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"class_names":["a"],"traces":[{"Label":0,"Name":"a","PeriodMS":20,"Samples":[1,2]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
	})
}
