package trace

// Binary columnar dataset container ("MAYT"), the storage format behind the
// experiment cache and the million-trace sweeps. CSV/JSON round-trip every
// sample through decimal strings — the dominant cost when datasets reach
// paper scale — while this format stores columns of fixed-width or
// varint-packed values and verifies integrity before parsing.
//
// Format spec, version 1. All fixed-width integers are little-endian;
// "uvarint"/"svarint" are encoding/binary's unsigned LEB128 and its zigzag
// signed form.
//
//	offset  field
//	0       magic "MAYT" (4 bytes)
//	4       version, uint16 (= 1)
//	6       reserved, uint16 (= 0)
//
//	body — one block per column, in order:
//	  uvarint classCount
//	  classCount × { uvarint nameLen, name bytes }     class-name column
//	  uvarint traceCount
//	  traceCount × uvarint                             label column
//	  traceCount × uint64 (IEEE-754 bits)              period_ms column
//	  traceCount × { nameRef }                         trace-name column
//	  traceCount × uvarint                             sample-count column
//	  traceCount × { encoding byte, payload }          sample vectors
//
//	nameRef: 0x00 when the trace name equals its class name (the common
//	case, 1 byte); 0x01 followed by { uvarint len, bytes } for an explicit
//	name, preserving datasets whose row names diverge from the class table.
//
//	sample-vector encodings:
//	  0x00 raw       n × uint64 IEEE-754 bits — any float64, including
//	                 NaN/Inf from fault-injection sweeps, round-trips
//	                 bit-exactly.
//	  0x01 quantized uint64 quantum bits q, then n × svarint of the delta
//	                 d_i = k_i − k_{i−1} (k_{−1} = 0) where sample_i = k_i·q
//	                 exactly. Quantized power (RAPL energy units, the
//	                 attacker's 10-level quantizer) takes small steps between
//	                 few levels, so deltas pack into 1–2 bytes instead of 8.
//
//	footer:
//	  SHA-256 over everything before it (header + body), 32 bytes.
//
// The writer picks the encoding per trace: quantized when a quantum exists
// that reproduces every sample exactly AND the packed form is smaller than
// raw; raw otherwise. The reader therefore needs no options, and
// WriteBinary→ReadBinary is an exact round trip for every dataset. The
// digest is checked before any column is parsed, so truncated or bit-flipped
// files fail loudly instead of yielding plausible traces.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	binaryMagic   = "MAYT"
	binaryVersion = 1

	encRaw       = 0x00
	encQuantized = 0x01

	nameRefClass    = 0x00
	nameRefExplicit = 0x01

	binaryHeaderLen = 8
	binaryDigestLen = sha256.Size
)

// maxQuantizedStep bounds |k_i| so k·q is computed exactly: above 2^53
// float64 cannot represent every integer and the round trip would silently
// lose the low bits.
const maxQuantizedStep = 1 << 53

// WriteBinary emits the dataset in the MAYT columnar format (see the format
// spec above). The output is a pure function of the dataset contents — no
// timestamps, no host identity — so identical datasets produce identical
// bytes and the files themselves can be content-addressed.
func (d *Dataset) WriteBinary(w io.Writer) error {
	buf := make([]byte, 0, binaryHeaderLen+16*len(d.Traces))
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)

	buf = binary.AppendUvarint(buf, uint64(len(d.ClassNames)))
	for _, name := range d.ClassNames {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Traces)))
	for _, tr := range d.Traces {
		if tr.Label < 0 {
			return fmt.Errorf("trace: negative label %d cannot be encoded", tr.Label)
		}
		buf = binary.AppendUvarint(buf, uint64(tr.Label))
	}
	for _, tr := range d.Traces {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tr.PeriodMS))
	}
	for _, tr := range d.Traces {
		if tr.Label < len(d.ClassNames) && tr.Name == d.ClassNames[tr.Label] {
			buf = append(buf, nameRefClass)
			continue
		}
		buf = append(buf, nameRefExplicit)
		buf = binary.AppendUvarint(buf, uint64(len(tr.Name)))
		buf = append(buf, tr.Name...)
	}
	for _, tr := range d.Traces {
		buf = binary.AppendUvarint(buf, uint64(len(tr.Samples)))
	}
	var scratch []byte
	for _, tr := range d.Traces {
		var ok bool
		scratch, ok = appendQuantized(scratch[:0], tr.Samples)
		if ok && len(scratch) < 8*len(tr.Samples) {
			buf = append(buf, encQuantized)
			buf = append(buf, scratch...)
			continue
		}
		buf = append(buf, encRaw)
		for _, v := range tr.Samples {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}

	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	_, err := w.Write(buf)
	return err
}

// appendQuantized appends the quantized-delta payload (quantum + svarint
// deltas) for samples, or reports !ok when no quantum reproduces every
// sample exactly. The candidate quantum is the smallest nonzero step between
// consecutive samples — for genuinely quantized data every step is a
// multiple of the quantizer's unit, so the smallest one is the unit itself
// (or a multiple that still reproduces the values exactly, which is just as
// good).
func appendQuantized(dst []byte, samples []float64) ([]byte, bool) {
	if len(samples) == 0 {
		return dst, false
	}
	q := 0.0
	for i := 1; i < len(samples); i++ {
		step := math.Abs(samples[i] - samples[i-1])
		if step > 0 && (q == 0 || step < q) { //nolint:maya/floateq selecting the exact smallest nonzero step is the point
			q = step
		}
	}
	if q == 0 { //nolint:maya/floateq all-equal trace: every step was exactly zero
		// Constant trace: use the value itself as the quantum (k_i = 1),
		// or 1 for the all-zero trace (k_i = 0).
		q = math.Abs(samples[0])
		if q == 0 { //nolint:maya/floateq exact zero means the value is literally 0.0
			q = 1
		}
	}
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return dst, false
	}
	prev := int64(0)
	for _, v := range samples {
		k := math.Round(v / q)
		if math.IsNaN(k) || math.Abs(k) > maxQuantizedStep {
			return dst, false
		}
		if k*q != v { //nolint:maya/floateq exactness test is the encoding's correctness criterion
			return dst, false
		}
		if len(dst) == 0 {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q))
		}
		ki := int64(k)
		dst = binary.AppendVarint(dst, ki-prev)
		prev = ki
	}
	return dst, true
}

// binReader is a bounds-checked cursor over the verified body bytes.
type binReader struct {
	data []byte
	pos  int
}

func (r *binReader) remaining() int { return len(r.data) - r.pos }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or malformed uvarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated or malformed svarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("trace: truncated u64 at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("trace: string length %d exceeds remaining %d bytes", n, r.remaining())
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// count reads a uvarint element count and sanity-checks it against the
// bytes actually present (minBytes per element), so corrupt counts fail
// with an error instead of an enormous allocation.
func (r *binReader) count(what string, minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/minBytes) {
		return 0, fmt.Errorf("trace: %s count %d exceeds input size", what, v)
	}
	return int(v), nil
}

// ReadBinary parses a dataset written by WriteBinary. The SHA-256 footer is
// verified over the full header+body before any field is decoded, so any
// truncation or bit flip — including in the digest itself — is detected.
func ReadBinary(rd io.Reader) (*Dataset, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(data) < binaryHeaderLen+binaryDigestLen {
		return nil, fmt.Errorf("trace: binary input too short (%d bytes)", len(data))
	}
	if string(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a MAYT file)", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported MAYT version %d (have %d)", v, binaryVersion)
	}
	body, digest := data[:len(data)-binaryDigestLen], data[len(data)-binaryDigestLen:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], digest) {
		return nil, fmt.Errorf("trace: integrity check failed (file truncated or corrupted)")
	}

	r := &binReader{data: body, pos: binaryHeaderLen}
	nClasses, err := r.count("class", 1)
	if err != nil {
		return nil, err
	}
	d := &Dataset{ClassNames: make([]string, nClasses)}
	for i := range d.ClassNames {
		if d.ClassNames[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	nTraces, err := r.count("trace", 1)
	if err != nil {
		return nil, err
	}
	d.Traces = make([]Trace, nTraces)
	for i := range d.Traces {
		label, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if label > uint64(math.MaxInt32) {
			return nil, fmt.Errorf("trace: label %d out of range", label)
		}
		d.Traces[i].Label = int(label)
	}
	for i := range d.Traces {
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		d.Traces[i].PeriodMS = math.Float64frombits(bits)
	}
	for i := range d.Traces {
		if r.remaining() < 1 {
			return nil, fmt.Errorf("trace: truncated name column at trace %d", i)
		}
		ref := r.data[r.pos]
		r.pos++
		switch ref {
		case nameRefClass:
			if d.Traces[i].Label >= nClasses {
				return nil, fmt.Errorf("trace: trace %d references class name for out-of-range label %d", i, d.Traces[i].Label)
			}
			d.Traces[i].Name = d.ClassNames[d.Traces[i].Label]
		case nameRefExplicit:
			if d.Traces[i].Name, err = r.str(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("trace: unknown name ref 0x%02x at trace %d", ref, i)
		}
	}
	lengths := make([]int, nTraces)
	for i := range lengths {
		n, err := r.count(fmt.Sprintf("sample (trace %d)", i), 1)
		if err != nil {
			return nil, err
		}
		lengths[i] = n
	}
	for i := range d.Traces {
		if r.remaining() < 1 {
			return nil, fmt.Errorf("trace: truncated sample block at trace %d", i)
		}
		enc := r.data[r.pos]
		r.pos++
		samples := make([]float64, lengths[i])
		switch enc {
		case encRaw:
			for j := range samples {
				bits, err := r.u64()
				if err != nil {
					return nil, err
				}
				samples[j] = math.Float64frombits(bits)
			}
		case encQuantized:
			bits, err := r.u64()
			if err != nil {
				return nil, err
			}
			q := math.Float64frombits(bits)
			k := int64(0)
			for j := range samples {
				delta, err := r.varint()
				if err != nil {
					return nil, err
				}
				k += delta
				samples[j] = float64(k) * q
			}
		default:
			return nil, fmt.Errorf("trace: unknown sample encoding 0x%02x at trace %d", enc, i)
		}
		d.Traces[i].Samples = samples
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last column", r.remaining())
	}
	return d, nil
}
