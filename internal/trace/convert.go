package trace

// Compatibility shim between the three dataset encodings. The binary MAYT
// format is self-describing; CSV needs a class table, which ReadCSVInfer
// reconstructs from the rows so files written by WriteCSV convert without a
// side channel. cmd/mayactl -convert is the CLI face of this file.

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSVInfer parses a dataset written by WriteCSV without an external
// class table: the table is rebuilt from the (label, name) pairs on the
// rows. Every label in 0..max(label) gets a slot; labels that never occur
// are named "class<i>". Two rows giving one label different names is an
// error — the file is ambiguous, not merely sparse.
func ReadCSVInfer(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	maxLabel := -1
	named := map[int]string{}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr, err := parseCSVRow(row)
		if err != nil {
			return nil, err
		}
		if tr.Label < 0 {
			return nil, fmt.Errorf("trace: negative label %d", tr.Label)
		}
		if prev, seen := named[tr.Label]; seen && prev != tr.Name {
			return nil, fmt.Errorf("trace: label %d named both %q and %q", tr.Label, prev, tr.Name)
		}
		named[tr.Label] = tr.Name
		if tr.Label > maxLabel {
			maxLabel = tr.Label
		}
		d.Traces = append(d.Traces, tr)
	}
	d.ClassNames = make([]string, maxLabel+1)
	for i := range d.ClassNames {
		if name, ok := named[i]; ok {
			d.ClassNames[i] = name
		} else {
			d.ClassNames[i] = fmt.Sprintf("class%d", i)
		}
	}
	return d, nil
}

// Format names one of the dataset encodings.
type Format string

// The dataset file formats, selected by extension.
const (
	FormatCSV    Format = "csv"
	FormatJSON   Format = "json"
	FormatBinary Format = "binary"
)

// FormatForPath maps a file extension to its dataset format: .csv, .json,
// and .bin/.mayt.
func FormatForPath(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return FormatCSV, nil
	case ".json":
		return FormatJSON, nil
	case ".bin", ".mayt":
		return FormatBinary, nil
	}
	return "", fmt.Errorf("trace: cannot infer dataset format from %q (want .csv, .json, .bin, or .mayt)", path)
}

// ReadDatasetFile loads a dataset from path in the format its extension
// names. classNames is only consulted for CSV (the other formats are
// self-describing); passing nil infers the table from the rows.
func ReadDatasetFile(path string, classNames []string) (*Dataset, error) {
	format, err := FormatForPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case FormatCSV:
		if classNames == nil {
			return ReadCSVInfer(f)
		}
		return ReadCSV(f, classNames)
	case FormatJSON:
		return ReadJSON(f)
	default:
		return ReadBinary(f)
	}
}

// WriteDatasetFile stores a dataset at path in the format its extension
// names.
func WriteDatasetFile(path string, d *Dataset) error {
	format, err := FormatForPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case FormatCSV:
		err = d.WriteCSV(f)
	case FormatJSON:
		err = d.WriteJSON(f)
	default:
		err = d.WriteBinary(f)
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}
