package trace

import (
	"bytes"
	"testing"
)

func sample() *Dataset {
	d := &Dataset{ClassNames: []string{"a", "b"}}
	d.Add(0, 20, []float64{1.5, 2.5, 3.5})
	d.Add(1, 20, []float64{9, 8})
	d.Add(0, 20, []float64{4, 5, 6, 7})
	return d
}

func TestAddAndByLabel(t *testing.T) {
	d := sample()
	if d.NumClasses() != 2 {
		t.Fatalf("classes=%d", d.NumClasses())
	}
	g := d.ByLabel()
	if len(g[0]) != 2 || len(g[1]) != 1 {
		t.Fatalf("groups=%v", g)
	}
	if d.Traces[0].Name != "a" || d.Traces[1].Name != "b" {
		t.Fatal("names not assigned from class table")
	}
}

func TestAddBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sample().Add(5, 20, nil)
}

func TestPowerRange(t *testing.T) {
	lo, hi := sample().PowerRange()
	if lo != 1.5 || hi != 9 {
		t.Fatalf("range [%g,%g]", lo, hi)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.ClassNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != len(d.Traces) {
		t.Fatalf("traces=%d", len(got.Traces))
	}
	for i, tr := range got.Traces {
		want := d.Traces[i]
		if tr.Label != want.Label || tr.Name != want.Name || tr.PeriodMS != want.PeriodMS {
			t.Fatalf("meta mismatch at %d: %+v vs %+v", i, tr, want)
		}
		for j := range tr.Samples {
			if tr.Samples[j] != want.Samples[j] {
				t.Fatalf("sample mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestCSVRejectsBadRows(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("zz,a,20,1\n"), []string{"a"}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("7,a,20,1\n"), []string{"a"}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("0,a\n"), []string{"a"}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("0,a,20,xx\n"), []string{"a"}); err == nil {
		t.Fatal("bad sample accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses() != 2 || len(got.Traces) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Traces[2].Samples[3] != 7 {
		t.Fatal("sample values corrupted")
	}
}
