// Package trace defines the labeled power-trace containers shared by the
// defense harness (which produces traces) and the attack pipeline (which
// consumes them), plus CSV/JSON import-export so experiments can be
// inspected and regenerated offline.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Trace is one labeled power recording.
type Trace struct {
	// Label is the class index (application / video / webpage identity).
	Label int
	// Name is the human-readable class name.
	Name string
	// PeriodMS is the sampling interval in milliseconds.
	PeriodMS float64
	// Samples holds the power readings in watts.
	Samples []float64
}

// Dataset is a collection of labeled traces with class metadata.
type Dataset struct {
	// ClassNames maps label index to name.
	ClassNames []string
	Traces     []Trace
}

// NumClasses returns the number of classes.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// Add appends a trace with the given label; the label must be a valid class.
func (d *Dataset) Add(label int, periodMS float64, samples []float64) {
	if label < 0 || label >= len(d.ClassNames) {
		panic(fmt.Sprintf("trace: label %d out of range (%d classes)", label, len(d.ClassNames)))
	}
	d.Traces = append(d.Traces, Trace{
		Label: label, Name: d.ClassNames[label], PeriodMS: periodMS, Samples: samples,
	})
}

// ByLabel groups trace indices by label.
func (d *Dataset) ByLabel() map[int][]int {
	out := make(map[int][]int)
	for i, tr := range d.Traces {
		out[tr.Label] = append(out[tr.Label], i)
	}
	return out
}

// PowerRange returns the global min and max sample values across the
// dataset, used to configure the attacker's quantizer.
func (d *Dataset) PowerRange() (lo, hi float64) {
	first := true
	for _, tr := range d.Traces {
		for _, v := range tr.Samples {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// WriteCSV emits the dataset as rows of label,name,period_ms,s0,s1,...
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, tr := range d.Traces {
		row := make([]string, 0, len(tr.Samples)+3)
		row = append(row, strconv.Itoa(tr.Label), tr.Name,
			strconv.FormatFloat(tr.PeriodMS, 'g', -1, 64))
		for _, s := range tr.Samples {
			row = append(row, strconv.FormatFloat(s, 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. classNames supplies the
// class table (rows carry names too, but the table fixes ordering).
func ReadCSV(r io.Reader, classNames []string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	d := &Dataset{ClassNames: classNames}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr, err := parseCSVRow(row)
		if err != nil {
			return nil, err
		}
		if tr.Label < 0 || tr.Label >= len(classNames) {
			return nil, fmt.Errorf("trace: label %d out of range", tr.Label)
		}
		d.Traces = append(d.Traces, tr)
	}
	return d, nil
}

// parseCSVRow decodes one label,name,period_ms,s0,... row. Label range
// checking is the caller's job (ReadCSV checks against its class table,
// ReadCSVInfer builds the table from what it sees).
func parseCSVRow(row []string) (Trace, error) {
	// Three fields (label, name, period) is a legal zero-sample trace —
	// WriteCSV emits exactly that for an empty Samples slice.
	if len(row) < 3 {
		return Trace{}, fmt.Errorf("trace: short row with %d fields", len(row))
	}
	label, err := strconv.Atoi(row[0])
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad label %q: %w", row[0], err)
	}
	period, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: bad period %q: %w", row[2], err)
	}
	samples := make([]float64, 0, len(row)-3)
	for _, f := range row[3:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: bad sample %q: %w", f, err)
		}
		samples = append(samples, v)
	}
	return Trace{Label: label, Name: row[1], PeriodMS: period, Samples: samples}, nil
}

// MarshalJSON / JSON round-trip use the natural struct encoding; a small
// wrapper keeps the dataset self-describing.
type jsonDataset struct {
	ClassNames []string `json:"class_names"`
	Traces     []Trace  `json:"traces"`
}

// WriteJSON emits the dataset as a single JSON document.
func (d *Dataset) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(jsonDataset{ClassNames: d.ClassNames, Traces: d.Traces})
}

// ReadJSON parses a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, err
	}
	return &Dataset{ClassNames: jd.ClassNames, Traces: jd.Traces}, nil
}
