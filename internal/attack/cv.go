package attack

import (
	"context"
	"fmt"
	"math"

	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/trace"
)

// CVResult reports a k-fold cross-validation of an attack pipeline.
type CVResult struct {
	// FoldAccuracy holds the held-out accuracy of each fold, in fold order.
	FoldAccuracy []float64
	// MeanAccuracy and StdAccuracy summarize the folds.
	MeanAccuracy float64
	StdAccuracy  float64
	// Chance is 1/numClasses, the failure floor.
	Chance float64
	// Examples counts the feature vectors derived from the dataset.
	Examples int
}

// CrossValidate runs stratification-free k-fold cross-validation of the
// attack: the dataset is featurized once, examples are dealt into k folds by
// a permutation drawn from rng.NewNamed(spec.Seed, "attack/cv"), and each
// fold trains on the other k-1 folds and reports accuracy on its own.
//
// Folds run in parallel across workers (<= 0: GOMAXPROCS). Every fold's
// training stream is a pure function of (spec.Seed, fold), and the fold
// assignment is fixed before any fold runs, so the result is identical for
// every worker count.
func CrossValidate(ds *trace.Dataset, spec Spec, folds, workers int) (*CVResult, error) {
	if folds < 2 {
		return nil, fmt.Errorf("attack: need at least 2 folds, got %d", folds)
	}
	examples, _, err := Featurize(ds, spec)
	if err != nil {
		return nil, err
	}
	if len(examples) < folds {
		return nil, fmt.Errorf("attack: only %d examples for %d folds", len(examples), folds)
	}

	// Deal the shuffled examples round-robin into folds. The permutation is
	// drawn once, up front, from a dedicated named stream.
	perm := rng.NewNamed(spec.Seed, "attack/cv").Perm(len(examples))
	foldOf := make([]int, len(examples))
	for pos, idx := range perm {
		foldOf[idx] = pos % folds
	}

	sizes := append([]int{len(examples[0].X)}, spec.Hidden...)
	sizes = append(sizes, ds.NumClasses())
	cfg := spec.Train
	if cfg.Epochs == 0 {
		cfg = nn.DefaultTrainConfig()
	}

	// Pre-partition every fold's train/test slices before any job runs, in
	// example-index order (the order the per-fold loop used to build them),
	// so the fan-out closures do no shared-state work — they only train.
	trainSets := make([][]nn.Example, folds)
	testSets := make([][]nn.Example, folds)
	for f := 0; f < folds; f++ {
		trainSets[f] = make([]nn.Example, 0, len(examples)-len(examples)/folds)
		testSets[f] = make([]nn.Example, 0, len(examples)/folds+1)
	}
	for i, ex := range examples {
		f := foldOf[i]
		testSets[f] = append(testSets[f], ex)
		for other := 0; other < folds; other++ {
			if other != f {
				trainSets[other] = append(trainSets[other], ex)
			}
		}
	}

	accs, err := runner.MapN(context.Background(), runner.Options{Workers: workers}, folds,
		func(_ context.Context, fold int, _ *rng.Stream) (float64, error) {
			// Per-fold stream: a pure function of (Seed, fold), domain-
			// separated from the restart streams used by Run.
			rr := rng.NewNamed(spec.Seed+uint64(fold)*104_729, "attack/cv/fold")
			m := nn.NewMLP(rr, sizes...)
			m.Train(rr, trainSets[fold], testSets[fold], cfg)
			return m.Accuracy(testSets[fold]), nil
		})
	if err != nil {
		return nil, err
	}

	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(folds)
	varSum := 0.0
	for _, a := range accs {
		varSum += (a - mean) * (a - mean)
	}
	return &CVResult{
		FoldAccuracy: accs,
		MeanAccuracy: mean,
		StdAccuracy:  math.Sqrt(varSum / float64(folds)),
		Chance:       1 / float64(ds.NumClasses()),
		Examples:     len(examples),
	}, nil
}
