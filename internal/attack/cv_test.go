package attack

import (
	"math"
	"testing"

	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/trace"
)

// cvDataset builds a cheap synthetic dataset with separable classes: each
// class sits at a different mean power level with small noise.
func cvDataset(traces, length int) *trace.Dataset {
	ds := &trace.Dataset{ClassNames: []string{"lo", "mid", "hi"}}
	r := rng.New(99)
	for label := 0; label < 3; label++ {
		mean := 20 + 15*float64(label)
		for i := 0; i < traces; i++ {
			s := make([]float64, length)
			for j := range s {
				s[j] = r.Normal(mean, 1)
			}
			ds.Add(label, 20, s)
		}
	}
	return ds
}

func cvSpec() Spec {
	s := DefaultSpec()
	s.AvgBlock = 1
	s.WindowLen = 40
	s.Hidden = []int{16}
	s.Train.Epochs = 8
	return s
}

func TestCrossValidateDeterministicAcrossWorkers(t *testing.T) {
	ds := cvDataset(6, 40)
	spec := cvSpec()
	var ref *CVResult
	for _, workers := range []int{1, 3, 5} {
		res, err := CrossValidate(ds, spec, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for f, a := range res.FoldAccuracy {
			if a != ref.FoldAccuracy[f] {
				t.Fatalf("workers=%d fold %d accuracy %g != %g", workers, f, a, ref.FoldAccuracy[f])
			}
		}
		if res.MeanAccuracy != ref.MeanAccuracy || res.StdAccuracy != ref.StdAccuracy {
			t.Fatalf("workers=%d summary differs", workers)
		}
	}
}

func TestCrossValidateLearnsSeparableClasses(t *testing.T) {
	ds := cvDataset(8, 40)
	res, err := CrossValidate(ds, cvSpec(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 4 {
		t.Fatalf("folds=%d want 4", len(res.FoldAccuracy))
	}
	if res.Examples != 24 {
		t.Fatalf("examples=%d want 24", res.Examples)
	}
	if math.Abs(res.Chance-1.0/3) > 1e-12 {
		t.Fatalf("chance=%g", res.Chance)
	}
	// Widely separated means should be easy well above chance.
	if res.MeanAccuracy < 2*res.Chance {
		t.Fatalf("mean accuracy %.3f not above chance %.3f", res.MeanAccuracy, res.Chance)
	}
	for f, a := range res.FoldAccuracy {
		if a < 0 || a > 1 {
			t.Fatalf("fold %d accuracy %g out of range", f, a)
		}
	}
}

func TestCrossValidateRejectsBadFoldCounts(t *testing.T) {
	ds := cvDataset(2, 40)
	if _, err := CrossValidate(ds, cvSpec(), 1, 0); err == nil {
		t.Fatal("folds=1 should error")
	}
	if _, err := CrossValidate(ds, cvSpec(), 100, 0); err == nil {
		t.Fatal("more folds than examples should error")
	}
}

// benchCV measures k-fold cross-validation at a given worker count; the
// Serial/Parallel pair shows what the runner fan-out buys. Results are
// byte-identical at any worker count, so the pair differs only in time.
func benchCV(b *testing.B, workers int) {
	b.Helper()
	ds := cvDataset(8, 40)
	spec := cvSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(ds, spec, 4, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidateSerial(b *testing.B)   { benchCV(b, 1) }
func BenchmarkCrossValidateParallel(b *testing.B) { benchCV(b, 0) }
