// Package attack implements the paper's machine-learning side-channel
// attacks (§VI-A): turn captured power traces into MLP training examples,
// train the classifier on traces captured *with the defense on* (the
// adaptive-attacker assumption of §VI-B), and report confusion matrices.
//
// Two feature pipelines are provided, matching the paper:
//
//   - Quantized windows: segments of the trace are block-averaged ("average
//     the 5 consecutive measurements ... to remove the effects of noise"),
//     quantized into 10 power levels, and one-hot encoded — used for the
//     application- and video-identification attacks.
//   - FFT magnitudes: the window's one-sided spectrum — used for the
//     webpage attack, "because browser activity has varying rates of change
//     in a short duration. The FFT captures it better."
package attack

import (
	"context"
	"errors"
	"fmt"

	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/runner"
	"github.com/maya-defense/maya/internal/signal"
	"github.com/maya-defense/maya/internal/trace"
)

// Features selects the feature pipeline.
type Features int

const (
	// QuantizedWindows one-hot encodes block-averaged, quantized windows.
	QuantizedWindows Features = iota
	// FFTMagnitudes uses the window's magnitude spectrum.
	FFTMagnitudes
	// SpectrogramBands uses a short-time Fourier transform of the window
	// and keeps per-frame band energies — the time-frequency view §II-A2
	// describes ("phase behavior and peak locations over time, and its
	// frequency spectrum").
	SpectrogramBands
)

// Spec configures an attack.
type Spec struct {
	// Features selects the pipeline.
	Features Features
	// AvgBlock averages this many consecutive samples first (paper: 5).
	// Ignored (treated as 1) when < 2.
	AvgBlock int
	// WindowLen is the number of post-averaging samples per example.
	WindowLen int
	// Levels is the quantization level count (paper: 10).
	Levels int
	// Hidden holds the MLP hidden layer sizes.
	Hidden []int
	// Train overrides training configuration; zero value uses defaults.
	Train nn.TrainConfig
	// Seed drives weight init and the train/val/test split.
	Seed uint64
}

// DefaultSpec returns the window-feature attack configuration used by the
// application- and video-identification experiments.
func DefaultSpec() Spec {
	return Spec{
		Features:  QuantizedWindows,
		AvgBlock:  5,
		WindowLen: 100,
		Levels:    10,
		Hidden:    []int{64, 32},
		Train:     nn.DefaultTrainConfig(),
		Seed:      1,
	}
}

// FFTSpec returns the FFT-feature attack configuration used by the webpage
// experiment.
func FFTSpec() Spec {
	s := DefaultSpec()
	s.Features = FFTMagnitudes
	s.AvgBlock = 1
	s.WindowLen = 128
	return s
}

// SpectrogramSpec returns the time-frequency attack configuration: STFT
// frames of 64 samples hopped by 32, reduced to four band energies each.
func SpectrogramSpec() Spec {
	s := DefaultSpec()
	s.Features = SpectrogramBands
	s.AvgBlock = 1
	s.WindowLen = 512
	return s
}

// Result reports an attack's outcome.
type Result struct {
	Confusion *nn.ConfusionMatrix
	// AverageAccuracy is the mean diagonal of the confusion matrix — the
	// paper's headline number per experiment.
	AverageAccuracy float64
	// Chance is 1/numClasses, the failure floor.
	Chance float64
	// Examples counts the feature vectors derived from the dataset.
	Examples int
	// InputDim is the MLP input size.
	InputDim int
}

// Run executes the full pipeline on a captured dataset: featurize, split
// 60/20/20, train, and evaluate on the held-out test set.
func Run(ds *trace.Dataset, spec Spec) (*Result, error) {
	examples, inputDim, err := Featurize(ds, spec)
	if err != nil {
		return nil, err
	}
	if len(examples) < 10 {
		return nil, fmt.Errorf("attack: only %d examples; traces too short for window %d", len(examples), spec.WindowLen)
	}
	r := rng.NewNamed(spec.Seed, "attack")
	train, val, test := nn.Split(r, examples, 0.6, 0.2)

	sizes := append([]int{inputDim}, spec.Hidden...)
	sizes = append(sizes, ds.NumClasses())
	cfg := spec.Train
	if cfg.Epochs == 0 {
		cfg = nn.DefaultTrainConfig()
	}
	// Train with two random restarts and keep the better network by
	// validation accuracy: gradient training occasionally collapses on
	// small one-hot datasets, and a real attacker simply retrains. The
	// restarts run in parallel; each derives its own named stream from
	// (Seed, restart), and the better-network scan below walks restarts in
	// order with a strict >, so the winner matches the serial loop exactly.
	type trained struct {
		m   *nn.MLP
		val float64
	}
	nets, err := runner.MapN(context.Background(), runner.Options{}, 2,
		func(_ context.Context, restart int, _ *rng.Stream) (trained, error) {
			rr := rng.NewNamed(spec.Seed+uint64(restart)*7919, "attack/restart")
			m := nn.NewMLP(rr, sizes...)
			m.Train(rr, train, val, cfg)
			return trained{m: m, val: m.Accuracy(val)}, nil
		})
	if err != nil {
		return nil, err
	}
	var best *nn.MLP
	bestVal := -1.0
	for _, tr := range nets {
		if tr.val > bestVal {
			best, bestVal = tr.m, tr.val
		}
	}

	cm := nn.Confusion(best, test, ds.ClassNames)
	return &Result{
		Confusion:       cm,
		AverageAccuracy: cm.AverageAccuracy(),
		Chance:          1 / float64(ds.NumClasses()),
		Examples:        len(examples),
		InputDim:        inputDim,
	}, nil
}

// Featurize converts a dataset into MLP examples according to the spec,
// returning the examples and the input dimension.
func Featurize(ds *trace.Dataset, spec Spec) ([]nn.Example, int, error) {
	if spec.WindowLen <= 0 {
		return nil, 0, errors.New("attack: non-positive window length")
	}
	if spec.Levels < 2 && spec.Features == QuantizedWindows {
		return nil, 0, errors.New("attack: need at least 2 quantization levels")
	}
	// Global quantizer range across the whole dataset, as an attacker with
	// the full capture would calibrate it.
	lo, hi := ds.PowerRange()
	if hi <= lo {
		hi = lo + 1
	}
	q := signal.NewQuantizer(lo, hi, max(spec.Levels, 2))

	var examples []nn.Example
	inputDim := 0
	for _, tr := range ds.Traces {
		samples := tr.Samples
		if spec.AvgBlock > 1 {
			samples = signal.AverageBlocks(samples, spec.AvgBlock)
		}
		for _, w := range signal.Windows(samples, spec.WindowLen) {
			var x []float64
			switch spec.Features {
			case QuantizedWindows:
				x = signal.OneHot(q.Apply(w), q.Levels)
			case SpectrogramBands:
				sampleHz := 1000 / tr.PeriodMS / float64(max(spec.AvgBlock, 1))
				sg := signal.STFT(w, sampleHz, 64, 32)
				nyq := sampleHz / 2
				scale := (hi - lo) * (hi - lo)
				// Four octave-ish bands per frame plus the frame means.
				bands := [][2]float64{
					{0, nyq / 8}, {nyq / 8, nyq / 4}, {nyq / 4, nyq / 2}, {nyq / 2, nyq},
				}
				x = make([]float64, 0, 4*sg.Frames())
				for _, b := range bands {
					for _, e := range sg.BandEnergy(b[0], b[1]) {
						x = append(x, e/scale)
					}
				}
			case FFTMagnitudes:
				sampleHz := 1000 / tr.PeriodMS / float64(max(spec.AvgBlock, 1))
				_, mags := signal.Spectrum(w, sampleHz)
				// Scale by the dataset's global power range (not the
				// window's own peak) and prepend the window mean: both the
				// spectral shape and the absolute level carry class
				// information.
				scale := hi - lo
				x = make([]float64, 0, len(mags)+1)
				x = append(x, (signal.Mean(w)-lo)/scale)
				for _, m := range mags {
					x = append(x, m/scale*4)
				}
			default:
				return nil, 0, fmt.Errorf("attack: unknown feature kind %d", spec.Features)
			}
			if inputDim == 0 {
				inputDim = len(x)
			}
			if len(x) != inputDim {
				return nil, 0, errors.New("attack: inconsistent feature dimensions")
			}
			examples = append(examples, nn.Example{X: x, Y: tr.Label})
		}
	}
	return examples, inputDim, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
