package attack

import (
	"errors"
	"math"

	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/trace"
)

// TemplateClassifier is the classical statistical attacker of §II-A2: it
// builds a per-class template (mean feature vector and per-dimension
// variance) from training traces and classifies by maximum Gaussian
// likelihood — equivalently, minimum variance-normalized distance. It is
// weaker than the MLP but needs far less data and is the staple of
// pre-deep-learning side-channel work (template attacks / CPA ancestry).
type TemplateClassifier struct {
	classes int
	mean    [][]float64
	varr    [][]float64
}

// FitTemplates builds templates from labeled examples.
func FitTemplates(examples []nn.Example, classes int) (*TemplateClassifier, error) {
	if classes < 2 {
		return nil, errors.New("attack: need at least two classes")
	}
	if len(examples) == 0 {
		return nil, errors.New("attack: no examples")
	}
	dim := len(examples[0].X)
	tc := &TemplateClassifier{classes: classes}
	counts := make([]int, classes)
	tc.mean = make([][]float64, classes)
	tc.varr = make([][]float64, classes)
	for c := 0; c < classes; c++ {
		tc.mean[c] = make([]float64, dim)
		tc.varr[c] = make([]float64, dim)
	}
	for _, ex := range examples {
		if ex.Y < 0 || ex.Y >= classes {
			return nil, errors.New("attack: label out of range")
		}
		if len(ex.X) != dim {
			return nil, errors.New("attack: inconsistent feature dimension")
		}
		counts[ex.Y]++
		for j, v := range ex.X {
			tc.mean[ex.Y][j] += v
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			return nil, errors.New("attack: a class has no training examples")
		}
		for j := range tc.mean[c] {
			tc.mean[c][j] /= float64(counts[c])
		}
	}
	for _, ex := range examples {
		for j, v := range ex.X {
			d := v - tc.mean[ex.Y][j]
			tc.varr[ex.Y][j] += d * d
		}
	}
	for c := 0; c < classes; c++ {
		for j := range tc.varr[c] {
			tc.varr[c][j] = tc.varr[c][j]/float64(counts[c]) + 1e-6
		}
	}
	return tc, nil
}

// Predict returns the class whose template is nearest in
// variance-normalized distance.
func (t *TemplateClassifier) Predict(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < t.classes; c++ {
		d := 0.0
		for j, v := range x {
			dv := v - t.mean[c][j]
			d += dv * dv / t.varr[c][j]
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Accuracy evaluates the templates on examples.
func (t *TemplateClassifier) Accuracy(examples []nn.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if t.Predict(ex.X) == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// RunTemplate executes the template attack end-to-end on a dataset with the
// same featurization as the MLP attack, returning test-set accuracy. It is
// the second attacker implementation the threat model calls for ("machine
// learning, signal processing, and statistics", §III).
func RunTemplate(ds *trace.Dataset, spec Spec) (float64, error) {
	examples, _, err := Featurize(ds, spec)
	if err != nil {
		return 0, err
	}
	if len(examples) < 10 {
		return 0, errors.New("attack: too few examples for templates")
	}
	r := rng.NewNamed(spec.Seed, "attack/template")
	train, _, test := nn.Split(r, examples, 0.6, 0.2)
	tc, err := FitTemplates(train, ds.NumClasses())
	if err != nil {
		return 0, err
	}
	return tc.Accuracy(test), nil
}

// MeanTemplateDistance reports how far apart the class templates are in
// variance-normalized units — a dataset-level separability score usable
// without a test split.
func (t *TemplateClassifier) MeanTemplateDistance() float64 {
	var sum float64
	pairs := 0
	for a := 0; a < t.classes; a++ {
		for b := a + 1; b < t.classes; b++ {
			d := 0.0
			for j := range t.mean[a] {
				dv := t.mean[a][j] - t.mean[b][j]
				d += dv * dv / (0.5*t.varr[a][j] + 0.5*t.varr[b][j])
			}
			sum += math.Sqrt(d / float64(len(t.mean[a])))
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}
