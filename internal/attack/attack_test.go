package attack

import (
	"context"
	"sync"
	"testing"

	"github.com/maya-defense/maya/internal/core"
	"github.com/maya-defense/maya/internal/defense"
	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/sim"
	"github.com/maya-defense/maya/internal/trace"
)

var (
	artMu   sync.Mutex
	artSys1 *core.Design
)

func sys1Art(t *testing.T) *core.Design {
	t.Helper()
	artMu.Lock()
	defer artMu.Unlock()
	if artSys1 == nil {
		d, err := core.DesignFor(sim.Sys1(), core.DefaultDesignOptions())
		if err != nil {
			t.Fatal(err)
		}
		artSys1 = d
	}
	return artSys1
}

// miniClasses is a 5-app subset with diverse signatures, scaled for tests.
func miniClasses() []defense.Class {
	all := defense.AppClasses(0.15)
	return []defense.Class{all[0], all[2], all[5], all[6], all[9]}
}

// collectMini captures a small dataset under the given design kind.
func collectMini(t *testing.T, kind defense.Kind, seed uint64, runs, maxTicks int) *trace.Dataset {
	t.Helper()
	cfg := sim.Sys1()
	var art *core.Design
	if kind == defense.MayaConstant || kind == defense.MayaGS {
		art = sys1Art(t)
	}
	ds, _ := defense.Collect(context.Background(), defense.CollectSpec{
		Cfg:          cfg,
		Design:       defense.NewDesign(kind, cfg, art, 20),
		Classes:      miniClasses(),
		RunsPerClass: runs,
		MaxTicks:     maxTicks,
		WarmupTicks:  2000,
		Seed:         seed,
	})
	return ds
}

func miniSpec() Spec {
	s := DefaultSpec()
	s.WindowLen = 60 // for the small structural tests
	return s
}

func TestFeaturizeShapes(t *testing.T) {
	ds := &trace.Dataset{ClassNames: []string{"a", "b"}}
	ds.Add(0, 20, make([]float64, 550))
	ds.Add(1, 20, make([]float64, 550))
	spec := miniSpec()
	ex, dim, err := Featurize(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	// 550/5 = 110 → one window of 60 per trace.
	if len(ex) != 2 {
		t.Fatalf("examples=%d want 2", len(ex))
	}
	if dim != 60*10 {
		t.Fatalf("dim=%d want 600", dim)
	}
}

func TestFeaturizeFFT(t *testing.T) {
	ds := &trace.Dataset{ClassNames: []string{"a"}}
	ds.Add(0, 50, make([]float64, 300))
	spec := FFTSpec()
	ex, dim, err := Featurize(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 2 { // 300/128 = 2 windows
		t.Fatalf("examples=%d", len(ex))
	}
	if dim != 128/2+2 { // mean feature + one-sided spectrum
		t.Fatalf("dim=%d want 66", dim)
	}
}

func TestFeaturizeErrors(t *testing.T) {
	ds := &trace.Dataset{ClassNames: []string{"a"}}
	ds.Add(0, 20, make([]float64, 100))
	bad := miniSpec()
	bad.WindowLen = 0
	if _, _, err := Featurize(ds, bad); err == nil {
		t.Fatal("want error for zero window")
	}
	bad = miniSpec()
	bad.Levels = 1
	if _, _, err := Featurize(ds, bad); err == nil {
		t.Fatal("want error for 1 level")
	}
}

func TestRunRejectsTinyDatasets(t *testing.T) {
	ds := &trace.Dataset{ClassNames: []string{"a"}}
	ds.Add(0, 20, make([]float64, 100))
	if _, err := Run(ds, miniSpec()); err == nil {
		t.Fatal("want error for too few examples")
	}
}

// TestAttackOrderingMiniFig6 is the miniature Fig 6: the same attack run
// against the three defended systems must reproduce the paper's security
// conclusion — Random Inputs and Maya Constant leak well above chance while
// Maya GS sits near chance. (The paper itself sees both Random > Constant
// in Fig 6 and Constant > Random in Fig 8; the invariant across every
// experiment is that only Maya GS reaches the chance floor.)
func TestAttackOrderingMiniFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := DefaultSpec()
	spec.WindowLen = 240 // one 24 s window per trace

	const runs, ticks = 60, 24000
	random := mustRun(t, collectMini(t, defense.RandomInputs, 200, runs, ticks), spec)
	constant := mustRun(t, collectMini(t, defense.MayaConstant, 300, runs, ticks), spec)
	gs := mustRun(t, collectMini(t, defense.MayaGS, 400, runs, ticks), spec)

	t.Logf("random=%.2f constant=%.2f gs=%.2f (chance %.2f)",
		random.AverageAccuracy, constant.AverageAccuracy, gs.AverageAccuracy, gs.Chance)

	if random.AverageAccuracy < gs.Chance+0.15 {
		t.Errorf("random-inputs defense should leak clearly: %.2f (chance %.2f)",
			random.AverageAccuracy, gs.Chance)
	}
	if constant.AverageAccuracy < gs.Chance+0.25 {
		t.Errorf("constant-mask defense should leak strongly: %.2f", constant.AverageAccuracy)
	}
	if gs.AverageAccuracy > gs.Chance+0.15 {
		t.Errorf("Maya GS leaked: %.2f vs chance %.2f", gs.AverageAccuracy, gs.Chance)
	}
	if random.AverageAccuracy <= gs.AverageAccuracy {
		t.Errorf("random inputs (%.2f) must leak more than GS (%.2f)",
			random.AverageAccuracy, gs.AverageAccuracy)
	}
	if constant.AverageAccuracy <= gs.AverageAccuracy {
		t.Errorf("constant mask (%.2f) must leak more than GS (%.2f)",
			constant.AverageAccuracy, gs.AverageAccuracy)
	}
}

func mustRun(t *testing.T, ds *trace.Dataset, spec Spec) *Result {
	t.Helper()
	res, err := Run(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfusionRowsValid(t *testing.T) {
	ds := collectMini(t, defense.Baseline, 500, 16, 12000)
	res := mustRun(t, ds, miniSpec())
	for i, row := range res.Confusion.Matrix {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	if res.InputDim != 600 {
		t.Fatalf("input dim %d", res.InputDim)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	ds := collectMini(t, defense.Baseline, 600, 16, 12000)
	spec := miniSpec()
	spec.Train.Epochs = 5
	a := mustRun(t, ds, spec)
	b := mustRun(t, ds, spec)
	if a.AverageAccuracy != b.AverageAccuracy {
		t.Fatalf("attack not deterministic: %g vs %g", a.AverageAccuracy, b.AverageAccuracy)
	}
}

func TestTemplateClassifierSeparable(t *testing.T) {
	// Two classes with distinct template means.
	r := rng.New(1)
	var ex []nn.Example
	for i := 0; i < 200; i++ {
		y := i % 2
		base := 2.0
		if y == 1 {
			base = 8.0
		}
		x := []float64{base + r.NormFloat64(), base/2 + r.NormFloat64()}
		ex = append(ex, nn.Example{X: x, Y: y})
	}
	tc, err := FitTemplates(ex[:150], 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := tc.Accuracy(ex[150:]); acc < 0.95 {
		t.Fatalf("template accuracy %g", acc)
	}
	if tc.MeanTemplateDistance() < 1 {
		t.Fatalf("templates should separate: %g", tc.MeanTemplateDistance())
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := FitTemplates(nil, 2); err == nil {
		t.Fatal("no examples accepted")
	}
	if _, err := FitTemplates([]nn.Example{{X: []float64{1}, Y: 0}}, 1); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := FitTemplates([]nn.Example{{X: []float64{1}, Y: 5}}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := FitTemplates([]nn.Example{{X: []float64{1}, Y: 0}}, 2); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestTemplateAttackOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// The statistical attacker shows the same security shape as the MLP:
	// it reads Maya Constant's texture but fails against Maya GS.
	spec := DefaultSpec()
	spec.WindowLen = 240
	constant := collectMini(t, defense.MayaConstant, 700, 30, 24000)
	gs := collectMini(t, defense.MayaGS, 800, 30, 24000)
	accConst, err := RunTemplate(constant, spec)
	if err != nil {
		t.Fatal(err)
	}
	accGS, err := RunTemplate(gs, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("template attack: constant %.2f, gs %.2f (chance 0.20)", accConst, accGS)
	if accConst < 0.4 {
		t.Errorf("templates should read the constant mask's texture: %.2f", accConst)
	}
	if accGS > 0.45 {
		t.Errorf("templates should fail against GS: %.2f", accGS)
	}
	if accGS >= accConst {
		t.Errorf("ordering broken: gs %.2f >= constant %.2f", accGS, accConst)
	}
}

func TestFeaturizeSpectrogram(t *testing.T) {
	ds := &trace.Dataset{ClassNames: []string{"a"}}
	ds.Add(0, 20, make([]float64, 1100))
	spec := SpectrogramSpec()
	ex, dim, err := Featurize(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	// 1100 samples → 2 windows of 512; STFT frames: (512-64)/32+1 = 15;
	// 4 bands → 60 features.
	if len(ex) != 2 {
		t.Fatalf("examples=%d", len(ex))
	}
	if dim != 60 {
		t.Fatalf("dim=%d want 60", dim)
	}
}

// TestSpectrogramAttackResidual documents a finding of this reproduction
// that goes beyond the paper's evaluation: a time-frequency attacker
// (per-frame band energies into the MLP) extracts substantial application
// information from Maya GS traces — not from the mask, but from the
// defense's own actuation granularity. Every quantized control move changes
// power by (input step × local plant gain), and the local gain depends on
// what the application is doing, so the high-frequency band energy of a
// defended trace is an application fingerprint. The window and FFT
// attackers of §VI-A do not see it (they stay at chance); band-energy
// features isolate it. Injecting cover noise does not help: injected energy
// is itself gain-modulated (see internal/core/dither.go).
//
// The test pins the measured behaviour so regressions in either direction
// (the residual growing, or a change silently breaking the attacker) are
// caught, and keeps the claim honest in EXPERIMENTS.md.
func TestSpectrogramAttackResidual(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := SpectrogramSpec()
	spec.WindowLen = 1200 // whole trace
	constant := collectMini(t, defense.MayaConstant, 900, 50, 24000)
	gs := collectMini(t, defense.MayaGS, 1000, 50, 24000)
	rc, err := Run(constant, spec)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Run(gs, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spectrogram attack: constant %.2f, gs %.2f (chance %.2f)", rc.AverageAccuracy, rg.AverageAccuracy, rg.Chance)
	if rc.AverageAccuracy < rg.Chance+0.1 {
		t.Errorf("spectrograms should read the constant mask: %.2f", rc.AverageAccuracy)
	}
	// The documented residual: well above chance, well below the
	// window-attacker's success on undefended traces.
	if rg.AverageAccuracy < rg.Chance+0.1 {
		t.Errorf("the gain-granularity residual disappeared (%.2f) — update EXPERIMENTS.md if a real fix landed", rg.AverageAccuracy)
	}
	if rg.AverageAccuracy > 0.75 {
		t.Errorf("the residual grew beyond the documented range: %.2f", rg.AverageAccuracy)
	}
}

func TestKNNSeparable(t *testing.T) {
	r := rng.New(21)
	var ex []nn.Example
	for i := 0; i < 300; i++ {
		y := i % 3
		x := []float64{float64(y)*4 + r.NormFloat64(), r.NormFloat64()}
		ex = append(ex, nn.Example{X: x, Y: y})
	}
	c, err := FitKNN(ex[:200], 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(ex[200:]); acc < 0.9 {
		t.Fatalf("kNN accuracy %g", acc)
	}
}

func TestKNNErrors(t *testing.T) {
	if _, err := FitKNN(nil, 3); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := FitKNN([]nn.Example{{X: []float64{1}, Y: 0}}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than the training set is clamped, not an error.
	c, err := FitKNN([]nn.Example{{X: []float64{1}, Y: 0}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Predict([]float64{5}) != 0 {
		t.Fatal("single-example prediction wrong")
	}
}

func TestKNNAttackGSAtChance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := DefaultSpec()
	spec.WindowLen = 240
	gs := collectMini(t, defense.MayaGS, 1100, 30, 24000)
	acc, err := RunKNN(gs, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kNN vs GS: %.2f (chance 0.20)", acc)
	if acc > 0.42 {
		t.Errorf("kNN should fail against GS: %.2f", acc)
	}
}
