package attack

import (
	"errors"
	"sort"

	"github.com/maya-defense/maya/internal/nn"
	"github.com/maya-defense/maya/internal/rng"
	"github.com/maya-defense/maya/internal/trace"
)

// KNNClassifier is the instance-based attacker: classify a trace by the
// majority label among its k nearest training examples in feature space.
// Together with the MLP (learning), templates (statistics), and DTW
// (signal processing), it completes the §III attacker toolbox.
type KNNClassifier struct {
	k        int
	examples []nn.Example
}

// FitKNN stores the training set. k must be odd to avoid ties in binary
// problems; any positive k is accepted.
func FitKNN(examples []nn.Example, k int) (*KNNClassifier, error) {
	if len(examples) == 0 {
		return nil, errors.New("attack: no examples")
	}
	if k < 1 {
		return nil, errors.New("attack: k must be positive")
	}
	if k > len(examples) {
		k = len(examples)
	}
	return &KNNClassifier{k: k, examples: examples}, nil
}

// Predict returns the majority label among the k nearest neighbours
// (Euclidean distance; ties broken toward the closer neighbour set).
func (c *KNNClassifier) Predict(x []float64) int {
	type cand struct {
		d float64
		y int
	}
	cands := make([]cand, 0, len(c.examples))
	for _, ex := range c.examples {
		d := 0.0
		for j := range x {
			dv := x[j] - ex.X[j]
			d += dv * dv
		}
		cands = append(cands, cand{d: d, y: ex.Y})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	votes := map[int]int{}
	best, bestVotes := cands[0].y, 0
	for i := 0; i < c.k && i < len(cands); i++ {
		votes[cands[i].y]++
		if votes[cands[i].y] > bestVotes {
			best, bestVotes = cands[i].y, votes[cands[i].y]
		}
	}
	return best
}

// Accuracy evaluates the classifier.
func (c *KNNClassifier) Accuracy(examples []nn.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if c.Predict(ex.X) == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// RunKNN executes the kNN attack end-to-end with the shared featurization,
// returning the test-set accuracy.
func RunKNN(ds *trace.Dataset, spec Spec, k int) (float64, error) {
	examples, _, err := Featurize(ds, spec)
	if err != nil {
		return 0, err
	}
	if len(examples) < 10 {
		return 0, errors.New("attack: too few examples for kNN")
	}
	r := rng.NewNamed(spec.Seed, "attack/knn")
	train, _, test := nn.Split(r, examples, 0.6, 0.2)
	c, err := FitKNN(train, k)
	if err != nil {
		return 0, err
	}
	return c.Accuracy(test), nil
}
